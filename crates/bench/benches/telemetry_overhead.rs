//! Criterion bench: cost of the *disabled* telemetry handle on the
//! serving hot path.
//!
//! The whole point of `ofpc_telemetry::Telemetry` being an
//! `Option<Arc<_>>` is that a disconnected handle costs one branch per
//! hook — a serving run with telemetry disabled must be
//! indistinguishable from one that never heard of telemetry. The
//! vendored criterion stand-in reports means but exposes no statistics
//! to assert on, so alongside the criterion groups this bench
//! self-measures interleaved trials of both variants and **fails** if
//! the disabled-telemetry median falls outside the baseline's noise
//! band (2% + the baseline's own inter-quartile spread).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, ServiceModel, SiteSpec, TenantSpec,
};
use ofpc_telemetry::Telemetry;
use ofpc_transponder::compute::ComputeTransponderConfig;
use std::hint::black_box;
use std::time::Instant;

const HORIZON_PS: u64 = 500_000_000; // 0.5 ms of virtual time
const RATE_RPS: f64 = 8_000_000.0;
const TRIALS: usize = 15;

fn config() -> ServeConfig {
    ServeConfig {
        seed: 14,
        horizon_ps: HORIZON_PS,
        drain_grace_ps: 200_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000,
        },
        tenants: vec![
            TenantSpec {
                name: "steady".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
            TenantSpec {
                name: "bursty".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
        ],
        verify_every: 0,
    }
}

/// `telemetry: None` builds the runtime bare; `Some(tel)` threads the
/// handle through every hook (a disabled handle must cost ~nothing).
fn runtime(telemetry: Option<&Telemetry>) -> ServeRuntime {
    let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
    let sites = vec![
        SiteSpec {
            node: NodeId(1),
            slots: 1,
            access_ps: 100_000,
        },
        SiteSpec {
            node: NodeId(2),
            slots: 1,
            access_ps: 200_000,
        },
    ];
    let rt = ServeRuntime::new(config(), model, sites);
    match telemetry {
        Some(tel) => rt.with_telemetry(tel),
        None => rt,
    }
}

fn time_run(telemetry: Option<&Telemetry>) -> f64 {
    let rt = runtime(telemetry);
    let t0 = Instant::now();
    black_box(rt.run());
    t0.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn quartile_spread(sorted: &[f64]) -> f64 {
    sorted[(sorted.len() * 3) / 4] - sorted[sorted.len() / 4]
}

/// The asserting half: interleaved trials so clock drift and cache state
/// hit both variants equally, medians so one preempted trial cannot
/// fake a regression.
fn assert_disabled_telemetry_is_free() {
    let disabled = Telemetry::disabled();
    // Warm both paths (first run pays allocator and page-cache costs).
    time_run(None);
    time_run(Some(&disabled));
    let mut base = Vec::with_capacity(TRIALS);
    let mut dis = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        // Alternate order so slow-drift bias cancels.
        if trial % 2 == 0 {
            base.push(time_run(None));
            dis.push(time_run(Some(&disabled)));
        } else {
            dis.push(time_run(Some(&disabled)));
            base.push(time_run(None));
        }
    }
    let m_base = median(&mut base);
    let m_dis = median(&mut dis);
    let noise = quartile_spread(&base);
    let bound = m_base * 1.02 + noise;
    println!(
        "telemetry_overhead: baseline {:.3} ms, disabled-telemetry {:.3} ms \
         (bound {:.3} ms = base +2% + IQR {:.3} ms)",
        m_base * 1e3,
        m_dis * 1e3,
        bound * 1e3,
        noise * 1e3,
    );
    assert!(
        m_dis <= bound,
        "disabled telemetry must be within noise of the bare serve path: \
         {:.3} ms vs bound {:.3} ms",
        m_dis * 1e3,
        bound * 1e3,
    );
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let arrivals = runtime(None).run().arrivals;
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(arrivals));
    group.bench_with_input(BenchmarkId::new("serve", "baseline"), &(), |b, ()| {
        b.iter(|| black_box(runtime(None).run()));
    });
    let disabled = Telemetry::disabled();
    group.bench_with_input(BenchmarkId::new("serve", "disabled"), &(), |b, ()| {
        b.iter(|| black_box(runtime(Some(&disabled)).run()));
    });
    // Enabled telemetry is allowed to cost (it records every request's
    // trace tree); measured here so the overhead stays visible. A fresh
    // handle per run keeps the trace buffer from compounding across
    // iterations.
    group.bench_with_input(BenchmarkId::new("serve", "enabled"), &(), |b, ()| {
        b.iter(|| {
            let enabled = Telemetry::enabled();
            black_box(runtime(Some(&enabled)).run())
        });
    });
    group.finish();
    assert_disabled_telemetry_is_free();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
