//! Criterion bench: cost of the *disabled* telemetry handle on the
//! serving hot path.
//!
//! The whole point of `ofpc_telemetry::Telemetry` being an
//! `Option<Arc<_>>` is that a disconnected handle costs one branch per
//! hook — a serving run with telemetry disabled must be
//! indistinguishable from one that never heard of telemetry. The
//! vendored criterion stand-in reports means but exposes no statistics
//! to assert on, so alongside the criterion groups this bench
//! self-measures and **fails** if disabled telemetry costs real time.
//!
//! # The gate (and why it is shaped this way)
//!
//! The old gate compared one pass of medians against `base·1.02 + IQR`
//! and flaked: on a busy 1-core CI box a single noisy window skews both
//! the median and the IQR of the same pass, and an absolute time band
//! derived from that one pass has no defense against it. The current
//! gate is a **ratio of medians over [`REPS`] independent
//! repetitions**:
//!
//! 1. each repetition interleaves [`TRIALS_PER_REP`] trials of both
//!    variants (alternating order, so slow clock drift cancels) and
//!    reduces each variant to its within-repetition median;
//! 2. the repetition's score is the dimensionless ratio
//!    `median(disabled) / median(baseline)`;
//! 3. the gate fires only if the **median of the repetition ratios**
//!    exceeds [`MAX_RATIO`].
//!
//! A transient stall now has to corrupt a majority of repetitions —
//! each separated by full scheduling quanta — before the gate misfires,
//! while a genuine per-hook cost shifts every repetition's ratio the
//! same way and is still caught. The 5% headroom is far above the
//! per-hook branch cost observed on an idle machine (<0.5%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, ServiceModel, SiteSpec, TenantSpec,
};
use ofpc_telemetry::Telemetry;
use ofpc_transponder::compute::ComputeTransponderConfig;
use std::hint::black_box;
use std::time::Instant;

const HORIZON_PS: u64 = 500_000_000; // 0.5 ms of virtual time
const RATE_RPS: f64 = 8_000_000.0;
/// Independent repetitions; the gate takes the median of their ratios.
const REPS: usize = 5;
/// Interleaved trials per variant within one repetition.
const TRIALS_PER_REP: usize = 5;
/// Fail if the median over repetitions of
/// `median(disabled) / median(baseline)` exceeds this.
const MAX_RATIO: f64 = 1.05;

fn config() -> ServeConfig {
    ServeConfig {
        seed: 14,
        horizon_ps: HORIZON_PS,
        drain_grace_ps: 200_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000,
        },
        tenants: vec![
            TenantSpec {
                name: "steady".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
            TenantSpec {
                name: "bursty".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
        ],
        verify_every: 0,
    }
}

/// `telemetry: None` builds the runtime bare; `Some(tel)` threads the
/// handle through every hook (a disabled handle must cost ~nothing).
fn runtime(telemetry: Option<&Telemetry>) -> ServeRuntime {
    let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
    let sites = vec![
        SiteSpec {
            node: NodeId(1),
            slots: 1,
            access_ps: 100_000,
        },
        SiteSpec {
            node: NodeId(2),
            slots: 1,
            access_ps: 200_000,
        },
    ];
    let rt = ServeRuntime::new(config(), model, sites);
    match telemetry {
        Some(tel) => rt.with_telemetry(tel),
        None => rt,
    }
}

fn time_run(telemetry: Option<&Telemetry>) -> f64 {
    let rt = runtime(telemetry);
    let t0 = Instant::now();
    black_box(rt.run());
    t0.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// One repetition: interleave [`TRIALS_PER_REP`] trials of each variant
/// and return `median(disabled) / median(baseline)`.
fn overhead_ratio(disabled: &Telemetry) -> f64 {
    let mut base = Vec::with_capacity(TRIALS_PER_REP);
    let mut dis = Vec::with_capacity(TRIALS_PER_REP);
    for trial in 0..TRIALS_PER_REP {
        // Alternate order so slow-drift bias cancels.
        if trial % 2 == 0 {
            base.push(time_run(None));
            dis.push(time_run(Some(disabled)));
        } else {
            dis.push(time_run(Some(disabled)));
            base.push(time_run(None));
        }
    }
    median(&mut dis) / median(&mut base)
}

/// The asserting half: median over [`REPS`] repetitions of the
/// per-repetition ratio of medians (see the module header for why).
fn assert_disabled_telemetry_is_free() {
    let disabled = Telemetry::disabled();
    // Warm both paths (first run pays allocator and page-cache costs).
    time_run(None);
    time_run(Some(&disabled));
    let mut ratios: Vec<f64> = (0..REPS).map(|_| overhead_ratio(&disabled)).collect();
    let m = median(&mut ratios);
    println!(
        "telemetry_overhead: per-repetition ratios {:?} -> median {m:.4} (gate {MAX_RATIO})",
        ratios
            .iter()
            .map(|r| (r * 1e4).round() / 1e4)
            .collect::<Vec<_>>(),
    );
    assert!(
        m <= MAX_RATIO,
        "disabled telemetry must be within {:.0}% of the bare serve path: \
         median ratio {m:.4} over {REPS} repetitions",
        (MAX_RATIO - 1.0) * 100.0,
    );
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let arrivals = runtime(None).run().arrivals;
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(arrivals));
    group.bench_with_input(BenchmarkId::new("serve", "baseline"), &(), |b, ()| {
        b.iter(|| black_box(runtime(None).run()));
    });
    let disabled = Telemetry::disabled();
    group.bench_with_input(BenchmarkId::new("serve", "disabled"), &(), |b, ()| {
        b.iter(|| black_box(runtime(Some(&disabled)).run()));
    });
    // Enabled telemetry is allowed to cost (it records every request's
    // trace tree); measured here so the overhead stays visible. A fresh
    // handle per run keeps the trace buffer from compounding across
    // iterations.
    group.bench_with_input(BenchmarkId::new("serve", "enabled"), &(), |b, ()| {
        b.iter(|| {
            let enabled = Telemetry::enabled();
            black_box(runtime(Some(&enabled)).run())
        });
    });
    group.finish();
    assert_disabled_telemetry_is_free();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
