//! Bench gate: the graph compiler's wavelength pipelining must pay off.
//!
//! A plain `harness = false` binary so it can fail CI with a nonzero
//! exit. Two checks on the seeded E16 scenario (3-layer DNN compiled
//! onto the Fig. 1 WAN):
//!
//! 1. **Determinism** — two compiles + runs of the same seeded scenario
//!    must serialize byte-identically; the executor is pure integer
//!    arithmetic, so any divergence is a bug, on any machine.
//! 2. **Pipelining gain** — the compiled pipelined schedule must
//!    deliver at least [`MIN_GAIN`]× the naive sequential throughput at
//!    equal per-request energy. This is a model-level gate (simulated
//!    picoseconds, not wall clock), so it cannot flake on loaded CI.

use ofpc_engine::dnn::Mlp;
use ofpc_graph::exec::{ExecConfig, ExecMode, ExecReport};
use ofpc_graph::lower::LowerConfig;
use ofpc_graph::{compile, ir, GraphExecutor};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

/// Gate: pipelined throughput must beat sequential by this factor.
const MIN_GAIN: f64 = 1.5;
const SEED: u64 = 16;
const REQUESTS: usize = 64;

fn compiled() -> GraphExecutor {
    let mut rng = SimRng::seed_from_u64(SEED);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    let graph = ir::dnn_graph(&mlp, 4.0, 6.0);
    compile(
        &graph,
        &LowerConfig::metro(),
        &Topology::fig1(),
        &[0, 2, 2, 0],
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("DNN compiles onto fig1")
}

fn run(ex: &GraphExecutor, mode: ExecMode) -> ExecReport {
    ex.run(&ExecConfig {
        requests: REQUESTS,
        inter_arrival_ps: 0,
        mode,
    })
}

fn check_determinism() {
    let a = serde_json::to_string(&run(&compiled(), ExecMode::Pipelined)).expect("serializes");
    let b = serde_json::to_string(&run(&compiled(), ExecMode::Pipelined)).expect("serializes");
    assert!(
        a == b,
        "graph_pipeline: two seeded compile+run passes diverged"
    );
    println!("graph_pipeline: determinism OK ({} bytes)", a.len());
}

fn check_pipeline_gain() {
    let ex = compiled();
    let pipe = run(&ex, ExecMode::Pipelined);
    let seq = run(&ex, ExecMode::Sequential);
    let gain = pipe.throughput_rps / seq.throughput_rps;
    println!(
        "graph_pipeline: pipelined {:.0} req/s vs sequential {:.0} req/s -> {gain:.2}x (gate {MIN_GAIN}x)",
        pipe.throughput_rps, seq.throughput_rps
    );
    assert!(
        gain >= MIN_GAIN,
        "graph_pipeline: gain {gain:.2}x below the {MIN_GAIN}x gate"
    );
    assert!(
        pipe.energy_per_request_j <= seq.energy_per_request_j,
        "graph_pipeline: pipelining must not cost energy \
         ({} J vs {} J per request)",
        pipe.energy_per_request_j,
        seq.energy_per_request_j
    );
}

fn main() {
    check_determinism();
    check_pipeline_gain();
    println!("graph_pipeline: all gates passed");
}
