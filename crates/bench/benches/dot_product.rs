//! Criterion bench: P1 photonic dot product (simulator throughput).
//!
//! Measures how fast the *simulation* of the Fig.-2a pipeline runs per
//! vector length — the number that bounds every higher-level experiment
//! — alongside the modeled device latency for context. Both kernel
//! backends are measured (the scalar reference and the vectorized
//! fused-power-domain path), and a summary table reports throughput in
//! GMAC/s — multiply-accumulates per wall-clock second, the figure of
//! merit the photonic-computing literature quotes — next to the
//! wall-time criterion prints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig, KernelBackend};
use ofpc_photonics::SimRng;
use std::hint::black_box;
use std::time::Instant;

/// A calibrated unit from a fixed seed on the given config + backend.
fn calibrated(mut config: DotUnitConfig, backend: KernelBackend) -> DotProductUnit {
    config.backend = backend;
    let mut rng = SimRng::seed_from_u64(1);
    let mut unit = DotProductUnit::new(config, &mut rng);
    unit.calibrate(256);
    unit
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_dot_product");
    for &n in &[16usize, 64, 256] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, config) in [
            ("ideal", DotUnitConfig::ideal()),
            ("realistic", DotUnitConfig::realistic()),
        ] {
            for (suffix, backend) in [
                ("", KernelBackend::Scalar),
                ("-vectorized", KernelBackend::Vectorized),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}{suffix}"), n),
                    &n,
                    |b, &n| {
                        let mut unit = calibrated(config.clone(), backend);
                        let a = vec![0.5; n];
                        let w = vec![0.25; n];
                        b.iter(|| black_box(unit.dot_nonneg(black_box(&a), black_box(&w))));
                    },
                );
            }
        }
    }
    group.finish();
}

/// Explicit GMAC/s summary for the hot configuration (realistic, both
/// backends): MACs per wall-clock second over a sustained run.
fn bench_gmacs(_c: &mut Criterion) {
    let n = 256usize;
    let reps = 200usize;
    for (label, backend) in [
        ("scalar", KernelBackend::Scalar),
        ("vectorized", KernelBackend::Vectorized),
    ] {
        let mut unit = calibrated(DotUnitConfig::realistic(), backend);
        let a = vec![0.5; n];
        let w = vec![0.25; n];
        // Warm-up (LUT build, allocator).
        for _ in 0..reps {
            black_box(unit.dot_nonneg(black_box(&a), black_box(&w)));
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..reps {
                black_box(unit.dot_nonneg(black_box(&a), black_box(&w)));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let gmacs = (n * reps) as f64 / best / 1e9;
        println!(
            "p1_dot_product/gmacs/realistic-{label:<10}  {:>8.2} ms for {} MACs -> {gmacs:.4} GMAC/s",
            best * 1e3,
            n * reps,
        );
    }
}

fn bench_signed(c: &mut Criterion) {
    c.bench_function("p1_dot_signed_64", |b| {
        let mut unit = DotProductUnit::ideal();
        let a: Vec<f64> = (0..64).map(|i| (i as f64 / 32.0) - 1.0).collect();
        let w: Vec<f64> = (0..64).map(|i| 1.0 - (i as f64 / 32.0)).collect();
        b.iter(|| black_box(unit.dot_signed(black_box(&a), black_box(&w))));
    });
}

criterion_group!(benches, bench_dot, bench_gmacs, bench_signed);
criterion_main!(benches);
