//! Criterion bench: P1 photonic dot product (simulator throughput).
//!
//! Measures how fast the *simulation* of the Fig.-2a pipeline runs per
//! vector length — the number that bounds every higher-level experiment
//! — alongside the modeled device latency for context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_photonics::SimRng;
use std::hint::black_box;

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_dot_product");
    for &n in &[16usize, 64, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, &n| {
            let mut unit = DotProductUnit::ideal();
            let a = vec![0.5; n];
            let w = vec![0.25; n];
            b.iter(|| black_box(unit.dot_nonneg(black_box(&a), black_box(&w))));
        });
        group.bench_with_input(BenchmarkId::new("realistic", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(1);
            let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
            unit.calibrate(256);
            let a = vec![0.5; n];
            let w = vec![0.25; n];
            b.iter(|| black_box(unit.dot_nonneg(black_box(&a), black_box(&w))));
        });
    }
    group.finish();
}

fn bench_signed(c: &mut Criterion) {
    c.bench_function("p1_dot_signed_64", |b| {
        let mut unit = DotProductUnit::ideal();
        let a: Vec<f64> = (0..64).map(|i| (i as f64 / 32.0) - 1.0).collect();
        let w: Vec<f64> = (0..64).map(|i| 1.0 - (i as f64 / 32.0)).collect();
        b.iter(|| black_box(unit.dot_signed(black_box(&a), black_box(&w))));
    });
}

criterion_group!(benches, bench_dot, bench_signed);
criterion_main!(benches);
