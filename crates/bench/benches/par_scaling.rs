//! Bench gate: parallel scaling and sequential-throughput regression.
//!
//! Three checks, run as a plain `harness = false` binary so it can fail
//! CI with a nonzero exit:
//!
//! 1. **Determinism** — the mini-E12 sweep at 4 workers must be
//!    byte-identical to the 1-worker run (always checked, on any
//!    machine; threads exist even when cores do not).
//! 2. **Scaling** — on a machine with ≥ 4 cores, the 4-worker sweep
//!    must finish at least [`MIN_SPEEDUP`]× faster than the 1-worker
//!    run (best of [`TIMING_REPS`] trials each). On narrower machines —
//!    e.g. 1-core CI containers — the check prints a notice and skips:
//!    a speedup gate without cores would only measure scheduler noise.
//! 3. **Sequential regression** — the single-threaded dot-product and
//!    network-sim kernels must stay within [`MAX_REGRESSION`] (+10%) of
//!    the timings pinned in `BENCH_BASELINE.json` at the repo root.
//!    Timings are the **best of [`TIMING_REPS`] trials** — the minimum
//!    is the standard robust estimator for "how fast can this machine
//!    run it", immune to one preempted trial. The baseline records the
//!    core count it was taken on; on a different machine shape (or with
//!    `OFPC_BENCH_RECORD=1`, or when the file is missing) the baseline
//!    is re-recorded instead of compared, so the gate never compares
//!    numbers from different hardware.

use ofpc_bench::golden;
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_engine::Primitive;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Gate: 4 workers must beat 1 worker by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;
/// Gate: sequential kernels may regress at most this much vs baseline.
const MAX_REGRESSION: f64 = 1.10;
/// Trials per timing; the best (minimum) is the reported figure.
const TIMING_REPS: usize = 5;
/// Baseline file at the repo root, tracked in git.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    /// Core count the timings were recorded on; a mismatch triggers
    /// re-recording rather than a cross-hardware comparison.
    cores: usize,
    dot_product_ms: f64,
    network_sim_ms: f64,
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Best-of-N wall-clock seconds for one invocation of `f`.
fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// ------------------------------------------------------- sequential kernels

/// The P1 dot-product hot loop: realistic calibrated unit, 200
/// length-256 MVM rows.
fn dot_product_kernel() {
    let mut rng = SimRng::seed_from_u64(1);
    let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
    unit.calibrate(256);
    let a = vec![0.5; 256];
    let w = vec![0.25; 256];
    for _ in 0..200 {
        black_box(unit.dot_nonneg(black_box(&a), black_box(&w)));
    }
}

/// The discrete-event simulator hot loop: fig-1 WAN with an in-network
/// compute detour, 200 compute packets to idle.
fn network_sim_kernel() {
    let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
    net.install_shortest_path_routes();
    let last = NodeId(net.topo.node_count() as u32 - 1);
    net.add_engine(
        NodeId(1),
        1,
        OpSpec::Dot {
            weights: vec![0.5; 16],
        },
        0.0,
    );
    net.install_compute_detour(Primitive::VectorDotProduct, NodeId(1));
    for i in 0..200usize {
        let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 16);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(last, 1),
            i as u32,
            pch,
            Packet::encode_operands(&[0.5; 16]),
        );
        net.inject(i as u64 * 10_000, NodeId(0), p);
    }
    net.run_to_idle();
    black_box(net.stats.delivered_count());
}

// ------------------------------------------------------------------- checks

fn check_determinism() {
    let reference = golden::e12_mini(&WorkerPool::new(1));
    let wide = golden::e12_mini(&WorkerPool::new(4));
    assert!(
        reference == wide,
        "par_scaling: 4-worker mini-E12 sweep diverged from the 1-worker bytes"
    );
    println!(
        "par_scaling: determinism OK (1-worker and 4-worker sweeps byte-identical, {} bytes)",
        reference.len()
    );
}

fn check_speedup() {
    let n = cores();
    if n < 4 {
        println!(
            "par_scaling: speedup gate skipped — {n} core(s) available, \
             need 4 for a meaningful {MIN_SPEEDUP}x check"
        );
        return;
    }
    let seq = best_time(TIMING_REPS, || {
        black_box(golden::e12_mini(&WorkerPool::new(1)));
    });
    let par = best_time(TIMING_REPS, || {
        black_box(golden::e12_mini(&WorkerPool::new(4)));
    });
    let speedup = seq / par;
    println!(
        "par_scaling: mini-E12 sweep {:.1} ms @1 worker, {:.1} ms @4 workers -> {speedup:.2}x",
        seq * 1e3,
        par * 1e3,
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "par_scaling: speedup at 4 workers is {speedup:.2}x, gate requires {MIN_SPEEDUP}x"
    );
}

fn check_sequential_regression() {
    // Warm-up pass (allocator, page cache, branch predictors).
    dot_product_kernel();
    network_sim_kernel();
    let measured = Baseline {
        cores: cores(),
        dot_product_ms: best_time(TIMING_REPS, dot_product_kernel) * 1e3,
        network_sim_ms: best_time(TIMING_REPS, network_sim_kernel) * 1e3,
    };
    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match std::fs::read_to_string(BASELINE_PATH) {
            Err(_) => Some("no baseline file".to_string()),
            Ok(text) => match serde_json::from_str::<Baseline>(&text) {
                Err(e) => Some(format!("unreadable baseline ({e})")),
                Ok(base) if base.cores != measured.cores => Some(format!(
                    "baseline is from a {}-core machine, this one has {}",
                    base.cores, measured.cores
                )),
                Ok(base) => {
                    for (name, got, want) in [
                        ("dot_product", measured.dot_product_ms, base.dot_product_ms),
                        ("network_sim", measured.network_sim_ms, base.network_sim_ms),
                    ] {
                        println!(
                            "par_scaling: {name} {got:.2} ms vs baseline {want:.2} ms \
                             (gate {:.2} ms)",
                            want * MAX_REGRESSION
                        );
                        assert!(
                            got <= want * MAX_REGRESSION,
                            "par_scaling: sequential {name} kernel regressed: \
                             {got:.2} ms vs baseline {want:.2} ms (+{:.0}% allowed); \
                             if intentional, re-pin with OFPC_BENCH_RECORD=1",
                            (MAX_REGRESSION - 1.0) * 100.0,
                        );
                    }
                    None
                }
            },
        }
    };
    if let Some(reason) = record_reason {
        let json = serde_json::to_string_pretty(&measured).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "par_scaling: recorded new baseline ({reason}): \
             dot_product {:.2} ms, network_sim {:.2} ms on {} core(s)",
            measured.dot_product_ms, measured.network_sim_ms, measured.cores
        );
    }
}

fn main() {
    check_determinism();
    check_speedup();
    check_sequential_regression();
    println!("par_scaling: all gates passed");
}
