//! Bench gate: resilience-layer determinism, energy overhead, and
//! throughput.
//!
//! Three checks, run as a `harness = false` binary so it can fail CI
//! with a nonzero exit:
//!
//! 1. **Determinism** — the mini-E18 storm comparison at 4 workers must
//!    be byte-identical to the 1-worker bytes: the whole redundancy
//!    dance (set formation, first-home-wins arbitration, cancellation,
//!    reconstruction) replays exactly on the `ofpc-par` pool.
//! 2. **Energy-overhead gates** — the mini scenario's protection price
//!    must stay within the ISSUE's contract: replica ≤ 2.1×, parity
//!    ≤ 1.5× of the unprotected baseline, with parity strictly cheaper
//!    than replication.
//! 3. **Throughput regression** — one sequential mini-E18 comparison
//!    (three serving runs under the same storm) must stay within
//!    [`MAX_REGRESSION`] of the `resil_overhead_ms` figure pinned in
//!    `BENCH_BASELINE.json`. The baseline file is shared with the other
//!    gates, so this one reads and writes it as a JSON value tree,
//!    preserving every key it does not own, with its own core stamp
//!    (`resil_overhead_cores`). A missing file, missing key, core
//!    mismatch, or `OFPC_BENCH_RECORD=1` re-records instead of failing.

use ofpc_bench::resil::{run_e18, E18Config};
use ofpc_par::WorkerPool;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Gate: the sequential comparison may regress at most this much.
const MAX_REGRESSION: f64 = 1.50;
/// Trials per timing; the best (minimum) is the reported figure.
const TIMING_REPS: usize = 10;
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn comparison_kernel() {
    let pool = WorkerPool::sequential();
    let cfg = E18Config::mini();
    black_box(run_e18(&pool, black_box(&cfg)));
}

fn check_determinism() {
    let reference = ofpc_bench::resil::e18_mini(&WorkerPool::new(1));
    let wide = ofpc_bench::resil::e18_mini(&WorkerPool::new(4));
    assert!(
        reference == wide,
        "resil_overhead: 4-worker mini-E18 comparison diverged from the 1-worker bytes"
    );
    println!(
        "resil_overhead: determinism OK (1-worker and 4-worker storms byte-identical, {} bytes)",
        reference.len()
    );
}

fn check_energy_gates() {
    let rep = run_e18(&WorkerPool::sequential(), &E18Config::mini());
    let replica = &rep.runs[1];
    let parity = &rep.runs[2];
    println!(
        "resil_overhead: energy overhead replica {:.3}x (gate 2.1x), parity {:.3}x (gate 1.5x)",
        replica.energy_overhead, parity.energy_overhead
    );
    assert!(
        replica.energy_overhead <= 2.1,
        "resil_overhead: replica energy overhead {:.3} above the 2.1x gate",
        replica.energy_overhead
    );
    assert!(
        parity.energy_overhead <= 1.5,
        "resil_overhead: parity energy overhead {:.3} above the 1.5x gate",
        parity.energy_overhead
    );
    assert!(
        parity.energy_overhead < replica.energy_overhead,
        "resil_overhead: coding must undercut full replication"
    );
}

/// Fetch a numeric key from the baseline map, if present.
fn get_num(map: &[(String, Value)], key: &str) -> Option<f64> {
    map.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

/// Insert-or-replace a key in the baseline map.
fn set_key(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

fn check_throughput_regression() {
    // Warm-up pass.
    comparison_kernel();
    let measured_ms = best_time(TIMING_REPS, comparison_kernel) * 1e3;
    let measured_cores = cores();

    let mut map: Vec<(String, Value)> = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match (
            get_num(&map, "resil_overhead_cores"),
            get_num(&map, "resil_overhead_ms"),
        ) {
            (Some(c), Some(want)) if c as usize == measured_cores => {
                println!(
                    "resil_overhead: mini-E18 comparison {measured_ms:.2} ms vs baseline \
                     {want:.2} ms (gate {:.2} ms)",
                    want * MAX_REGRESSION
                );
                assert!(
                    measured_ms <= want * MAX_REGRESSION,
                    "resil_overhead: storm-comparison throughput regressed: {measured_ms:.2} ms \
                     vs baseline {want:.2} ms (+{:.0}% allowed); if intentional, re-pin with \
                     OFPC_BENCH_RECORD=1",
                    (MAX_REGRESSION - 1.0) * 100.0,
                );
                None
            }
            (Some(c), Some(_)) => Some(format!(
                "baseline is from a {}-core machine, this one has {measured_cores}",
                c as usize
            )),
            _ => Some("no resil_overhead baseline keys".to_string()),
        }
    };

    if let Some(reason) = record_reason {
        set_key(
            &mut map,
            "resil_overhead_cores",
            Value::UInt(measured_cores as u64),
        );
        set_key(&mut map, "resil_overhead_ms", Value::Float(measured_ms));
        let json = serde_json::to_string_pretty(&Value::Map(map)).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "resil_overhead: recorded new baseline ({reason}): {measured_ms:.2} ms on \
             {measured_cores} core(s)"
        );
    }
}

fn main() {
    check_determinism();
    check_energy_gates();
    check_throughput_regression();
    println!("resil_overhead: all gates passed");
}
