//! Criterion bench: P3 nonlinear activation and photonic DNN inference.

use criterion::{criterion_group, criterion_main, Criterion};
use ofpc_engine::dnn::{Mlp, PhotonicDnn};
use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_engine::nonlinear::NonlinearUnit;
use ofpc_photonics::SimRng;
use std::hint::black_box;

fn bench_activation(c: &mut Criterion) {
    c.bench_function("p3_activate", |b| {
        let mut u = NonlinearUnit::ideal();
        b.iter(|| black_box(u.activate(black_box(0.6))));
    });
    c.bench_function("p3_transfer_curve_33", |b| {
        let mut u = NonlinearUnit::ideal();
        b.iter(|| black_box(u.transfer_curve(33)));
    });
}

fn bench_dnn(c: &mut Criterion) {
    c.bench_function("photonic_dnn_64_16_4_inference", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let mlp = Mlp::new_random(&[64, 16, 4], &mut rng);
        let calib: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..64).map(|_| rng.uniform()).collect())
            .collect();
        let engine = PhotonicMatVec::ideal(4);
        let mut pdnn = PhotonicDnn::new(&mlp, engine, NonlinearUnit::ideal(), &calib);
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64 / 7.0).collect();
        b.iter(|| black_box(pdnn.predict(black_box(&x))));
    });
    c.bench_function("digital_dnn_64_16_4_inference", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let mlp = Mlp::new_random(&[64, 16, 4], &mut rng);
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64 / 7.0).collect();
        b.iter(|| black_box(mlp.predict_digital(black_box(&x))));
    });
}

criterion_group!(benches, bench_activation, bench_dnn);
criterion_main!(benches);
