//! Criterion bench: one representative kernel per Table-1 use case.

use criterion::{criterion_group, criterion_main, Criterion};
use ofpc_apps::intrusion::{AhoCorasick, PhotonicIds};
use ofpc_apps::iprouting::{random_rules, PhotonicLpm, TcamModel};
use ofpc_apps::mimo::{measure_ser, Detector};
use ofpc_apps::video::{encode_frame, synthetic_frame, Transform};
use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_net::Addr;
use ofpc_photonics::SimRng;
use std::hint::black_box;

fn bench_video(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    let frame = synthetic_frame(32, 16, 0, &mut rng);
    c.bench_function("video_encode_32x16_digital", |b| {
        b.iter(|| {
            black_box(encode_frame(
                black_box(&frame),
                0.8,
                &mut Transform::Digital,
            ))
        });
    });
    c.bench_function("video_encode_32x16_photonic", |b| {
        let mut engine = PhotonicMatVec::ideal(8);
        b.iter(|| {
            black_box(encode_frame(
                black_box(&frame),
                0.8,
                &mut Transform::Photonic(&mut engine),
            ))
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(2);
    let rules = random_rules(64, &mut rng);
    c.bench_function("iprouting_tcam_lookup_64rules", |b| {
        let mut tcam = TcamModel::new(rules.clone());
        let a: Addr = "10.1.2.3".parse().unwrap();
        b.iter(|| black_box(tcam.lookup(black_box(a))));
    });
    c.bench_function("iprouting_photonic_lookup_64rules", |b| {
        let mut plpm = PhotonicLpm::ideal(rules.clone());
        let a: Addr = "10.1.2.3".parse().unwrap();
        b.iter(|| black_box(plpm.lookup(black_box(a))));
    });
}

fn bench_ids(c: &mut Criterion) {
    let signatures = vec![b"ATTACK".to_vec(), b"EVIL".to_vec()];
    let payload = vec![0xA5u8; 256];
    c.bench_function("ids_aho_corasick_256B", |b| {
        let mut ac = AhoCorasick::new(&signatures);
        b.iter(|| black_box(ac.scan(black_box(&payload))));
    });
    c.bench_function("ids_photonic_256B", |b| {
        let mut ids = PhotonicIds::ideal(&signatures);
        b.iter(|| black_box(ids.scan(black_box(&payload))));
    });
}

fn bench_mimo(c: &mut Criterion) {
    c.bench_function("mimo_zf_8x4_10frames_digital", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let mut det = Detector::Digital;
            black_box(measure_ser(8, 4, 15.0, 10, &mut det, &mut rng))
        });
    });
}

criterion_group!(benches, bench_video, bench_routing, bench_ids, bench_mimo);
criterion_main!(benches);
