//! Bench gate: design-space-sweep determinism and throughput.
//!
//! Two checks, run as a `harness = false` binary so it can fail CI with
//! a nonzero exit:
//!
//! 1. **Determinism** — the mini-E17 sweep at 4 workers must be
//!    byte-identical to the 1-worker bytes (the same contract the
//!    serving sweeps pin in `par_scaling`).
//! 2. **Throughput regression** — the full sequential E17 sweep (54
//!    design points, closed-form pricing) must stay within
//!    [`MAX_REGRESSION`] (+50%) of the `dse_sweep_ms` figure pinned in
//!    `BENCH_BASELINE.json`. The baseline file is shared with
//!    `par_scaling`, which rewrites it with only its own keys when it
//!    re-records — so this gate reads and writes the file as a JSON
//!    value tree, preserving every key it does not own, and keeps its
//!    own core-count stamp (`dse_sweep_cores`) so the two gates
//!    re-record independently. A missing file, missing key, core-count
//!    mismatch, or `OFPC_BENCH_RECORD=1` re-records instead of failing.

use ofpc_bench::golden;
use ofpc_dse::{run_sweep, SweepSpec};
use ofpc_par::WorkerPool;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Gate: the sequential sweep may regress at most this much. Wider
/// than `par_scaling`'s 1.10 because one trial here is only ~10 ms —
/// short enough that sustained scheduler interference during a full
/// `ci.sh` run can inflate even a best-of minimum past 10%.
const MAX_REGRESSION: f64 = 1.50;
/// Trials per timing; the best (minimum) is the reported figure. Enough
/// trials to spread the measurement window past transient CPU
/// contention from earlier CI steps.
const TIMING_REPS: usize = 15;
/// Full-sweep invocations per trial, so one trial is comfortably above
/// timer resolution.
const SWEEPS_PER_TRIAL: usize = 10;
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn sweep_kernel() {
    let pool = WorkerPool::sequential();
    let spec = SweepSpec::e17();
    for _ in 0..SWEEPS_PER_TRIAL {
        black_box(run_sweep(&pool, black_box(&spec)));
    }
}

fn check_determinism() {
    let reference = golden::e17_mini(&WorkerPool::new(1));
    let wide = golden::e17_mini(&WorkerPool::new(4));
    assert!(
        reference == wide,
        "dse_sweep: 4-worker mini-E17 sweep diverged from the 1-worker bytes"
    );
    println!(
        "dse_sweep: determinism OK (1-worker and 4-worker sweeps byte-identical, {} bytes)",
        reference.len()
    );
}

/// Fetch a numeric key from the baseline map, if present.
fn get_num(map: &[(String, Value)], key: &str) -> Option<f64> {
    map.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

/// Insert-or-replace a key in the baseline map.
fn set_key(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

fn check_throughput_regression() {
    // Warm-up pass.
    sweep_kernel();
    let measured_ms = best_time(TIMING_REPS, sweep_kernel) * 1e3;
    let measured_cores = cores();

    // Load the shared baseline as a value tree; unknown/absent states
    // re-record rather than fail.
    let mut map: Vec<(String, Value)> = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match (
            get_num(&map, "dse_sweep_cores"),
            get_num(&map, "dse_sweep_ms"),
        ) {
            (Some(c), Some(want)) if c as usize == measured_cores => {
                println!(
                    "dse_sweep: {SWEEPS_PER_TRIAL}x E17 sweep {measured_ms:.2} ms vs baseline \
                     {want:.2} ms (gate {:.2} ms)",
                    want * MAX_REGRESSION
                );
                assert!(
                    measured_ms <= want * MAX_REGRESSION,
                    "dse_sweep: sweep throughput regressed: {measured_ms:.2} ms vs baseline \
                     {want:.2} ms (+{:.0}% allowed); if intentional, re-pin with \
                     OFPC_BENCH_RECORD=1",
                    (MAX_REGRESSION - 1.0) * 100.0,
                );
                None
            }
            (Some(c), Some(_)) => Some(format!(
                "baseline is from a {}-core machine, this one has {measured_cores}",
                c as usize
            )),
            _ => Some("no dse_sweep baseline keys".to_string()),
        }
    };

    if let Some(reason) = record_reason {
        set_key(
            &mut map,
            "dse_sweep_cores",
            Value::UInt(measured_cores as u64),
        );
        set_key(&mut map, "dse_sweep_ms", Value::Float(measured_ms));
        let json = serde_json::to_string_pretty(&Value::Map(map)).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "dse_sweep: recorded new baseline ({reason}): {measured_ms:.2} ms on \
             {measured_cores} core(s)"
        );
    }
}

fn main() {
    check_determinism();
    check_throughput_regression();
    println!("dse_sweep: all gates passed");
}
