//! Bench gate: vectorized-kernel speedup over the scalar reference.
//!
//! Three checks, run as a `harness = false` binary so it can fail CI
//! with a nonzero exit:
//!
//! 1. **Relative speedup** — the vectorized P1 dot-product kernel must
//!    beat the scalar reference by at least [`MIN_SPEEDUP`]× on the
//!    *same machine in the same process* (best of [`TIMING_REPS`]
//!    trials each). This gate always runs: both sides see the same
//!    hardware, so no core-count escape hatch applies.
//! 2. **Absolute speedup** — when `BENCH_BASELINE.json` carries a
//!    scalar `dot_product_ms` figure recorded on a machine with the
//!    same core count, the vectorized kernel must also beat *that*
//!    pinned figure by [`MIN_SPEEDUP`]×. On a different machine shape
//!    the check prints a notice and skips — comparing against another
//!    machine's milliseconds would measure the hardware, not the code.
//! 3. **Vectorized regression** — the vectorized kernel must stay
//!    within [`MAX_VEC_REGRESSION`] (+50%) of the `dot_product_vec_ms`
//!    figure pinned in `BENCH_BASELINE.json`. The baseline file is
//!    shared with `par_scaling` and `dse_sweep`, so this gate reads and
//!    writes it as a JSON value tree (preserving keys it does not own)
//!    and keeps its own core stamp (`kernel_vec_cores`). A missing
//!    file, missing key, core mismatch, or `OFPC_BENCH_RECORD=1`
//!    re-records instead of failing.
//!
//! Both kernels replicate `par_scaling`'s `dot_product_kernel` exactly
//! (seed 1, realistic config, 256 calibration symbols, 200 length-256
//! rows) so the scalar figure here is directly comparable to the
//! `dot_product_ms` baseline. Throughput is also reported in GMAC/s —
//! multiply-accumulates per wall-clock second — the unit the photonics
//! literature quotes for analog compute engines.

use ofpc_engine::dot::{DotProductUnit, DotUnitConfig, KernelBackend};
use ofpc_photonics::SimRng;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Gate: vectorized must beat scalar by at least this factor.
const MIN_SPEEDUP: f64 = 5.0;
/// Gate: the vectorized kernel may regress at most this much vs its own
/// pinned baseline. Wider than `par_scaling`'s 1.10 because one trial
/// is ~1 ms — short enough that scheduler interference during a full
/// `ci.sh` run can inflate even a best-of minimum well past 10%.
const MAX_VEC_REGRESSION: f64 = 1.50;
/// Trials per timing; the best (minimum) is the reported figure.
const TIMING_REPS: usize = 5;
/// MVM rows per kernel invocation (matches `par_scaling`).
const ROWS: usize = 200;
/// Row length per invocation (matches `par_scaling`).
const ROW_LEN: usize = 256;
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The P1 dot-product hot loop from `par_scaling`, parameterized on the
/// kernel backend: realistic calibrated unit, 200 length-256 MVM rows.
fn dot_product_kernel(backend: KernelBackend) {
    let mut rng = SimRng::seed_from_u64(1);
    let mut config = DotUnitConfig::realistic();
    config.backend = backend;
    let mut unit = DotProductUnit::new(config, &mut rng);
    unit.calibrate(256);
    let a = vec![0.5; ROW_LEN];
    let w = vec![0.25; ROW_LEN];
    for _ in 0..ROWS {
        black_box(unit.dot_nonneg(black_box(&a), black_box(&w)));
    }
}

/// GMAC/s for one kernel invocation that took `secs` seconds.
fn gmacs(secs: f64) -> f64 {
    (ROWS * ROW_LEN) as f64 / secs / 1e9
}

/// Fetch a numeric key from the baseline map, if present.
fn get_num(map: &[(String, Value)], key: &str) -> Option<f64> {
    map.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

/// Insert-or-replace a key in the baseline map.
fn set_key(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

fn main() {
    // Warm-up pass for both backends (allocator, page cache, LUT build).
    dot_product_kernel(KernelBackend::Scalar);
    dot_product_kernel(KernelBackend::Vectorized);

    let scalar_s = best_time(TIMING_REPS, || dot_product_kernel(KernelBackend::Scalar));
    let vec_s = best_time(TIMING_REPS, || {
        dot_product_kernel(KernelBackend::Vectorized)
    });
    let speedup = scalar_s / vec_s;
    println!(
        "kernel_speedup: scalar {:.2} ms ({:.3} GMAC/s), vectorized {:.3} ms ({:.3} GMAC/s) \
         -> {speedup:.2}x",
        scalar_s * 1e3,
        gmacs(scalar_s),
        vec_s * 1e3,
        gmacs(vec_s),
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "kernel_speedup: vectorized backend is only {speedup:.2}x the scalar reference, \
         gate requires {MIN_SPEEDUP}x"
    );

    // Load the shared baseline as a value tree; unknown/absent states
    // re-record rather than fail.
    let mut map: Vec<(String, Value)> = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let measured_cores = cores();

    // Absolute gate against the scalar baseline pinned by par_scaling.
    match (get_num(&map, "cores"), get_num(&map, "dot_product_ms")) {
        (Some(c), Some(base_ms)) if c as usize == measured_cores => {
            let abs_speedup = base_ms / (vec_s * 1e3);
            println!(
                "kernel_speedup: vectorized vs pinned scalar baseline {base_ms:.2} ms \
                 -> {abs_speedup:.2}x"
            );
            assert!(
                abs_speedup >= MIN_SPEEDUP,
                "kernel_speedup: vectorized kernel is only {abs_speedup:.2}x the pinned \
                 scalar baseline ({base_ms:.2} ms), gate requires {MIN_SPEEDUP}x"
            );
        }
        (Some(c), Some(_)) => println!(
            "kernel_speedup: absolute gate skipped — scalar baseline is from a {}-core \
             machine, this one has {measured_cores}",
            c as usize
        ),
        _ => println!("kernel_speedup: absolute gate skipped — no pinned scalar baseline"),
    }

    // Vectorized self-regression gate, with its own core stamp.
    let vec_ms = vec_s * 1e3;
    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match (
            get_num(&map, "kernel_vec_cores"),
            get_num(&map, "dot_product_vec_ms"),
        ) {
            (Some(c), Some(want)) if c as usize == measured_cores => {
                println!(
                    "kernel_speedup: vectorized {vec_ms:.3} ms vs baseline {want:.3} ms \
                     (gate {:.3} ms)",
                    want * MAX_VEC_REGRESSION
                );
                assert!(
                    vec_ms <= want * MAX_VEC_REGRESSION,
                    "kernel_speedup: vectorized kernel regressed: {vec_ms:.3} ms vs baseline \
                     {want:.3} ms (+{:.0}% allowed); if intentional, re-pin with \
                     OFPC_BENCH_RECORD=1",
                    (MAX_VEC_REGRESSION - 1.0) * 100.0,
                );
                None
            }
            (Some(c), Some(_)) => Some(format!(
                "baseline is from a {}-core machine, this one has {measured_cores}",
                c as usize
            )),
            _ => Some("no kernel_speedup baseline keys".to_string()),
        }
    };
    if let Some(reason) = record_reason {
        set_key(
            &mut map,
            "kernel_vec_cores",
            Value::UInt(measured_cores as u64),
        );
        set_key(&mut map, "dot_product_vec_ms", Value::Float(vec_ms));
        set_key(
            &mut map,
            "dot_product_vec_gmacs",
            Value::Float(gmacs(vec_s)),
        );
        let json = serde_json::to_string_pretty(&Value::Map(map)).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "kernel_speedup: recorded new baseline ({reason}): vectorized {vec_ms:.3} ms \
             ({:.3} GMAC/s) on {measured_cores} core(s)",
            gmacs(vec_s)
        );
    }
    println!("kernel_speedup: all gates passed");
}
