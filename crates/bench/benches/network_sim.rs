//! Criterion bench: discrete-event simulator throughput — packets per
//! second of wall time through the Fig.-1 and Abilene WANs, plain and
//! compute traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::Primitive;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use std::hint::black_box;

fn run_batch(topo: Topology, compute: bool, packets: usize) -> usize {
    let mut net = Network::new(topo, SimRng::seed_from_u64(0));
    net.install_shortest_path_routes();
    let last = NodeId(net.topo.node_count() as u32 - 1);
    if compute {
        net.add_engine(
            NodeId(1),
            1,
            OpSpec::Dot {
                weights: vec![0.5; 16],
            },
            0.0,
        );
        net.install_compute_detour(Primitive::VectorDotProduct, NodeId(1));
    }
    for i in 0..packets {
        let p = if compute {
            let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 16);
            Packet::compute(
                Network::node_addr(NodeId(0), 1),
                Network::node_addr(last, 1),
                i as u32,
                pch,
                Packet::encode_operands(&[0.5; 16]),
            )
        } else {
            Packet::data(
                Network::node_addr(NodeId(0), 1),
                Network::node_addr(last, 1),
                i as u32,
                vec![0u8; 256],
            )
        };
        net.inject(i as u64 * 10_000, NodeId(0), p);
    }
    net.run_to_idle();
    net.stats.delivered_count()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_throughput");
    let packets = 500usize;
    group.throughput(Throughput::Elements(packets as u64));
    for (name, topo_fn, compute) in [
        ("fig1_plain", Topology::fig1 as fn() -> Topology, false),
        ("fig1_compute", Topology::fig1 as fn() -> Topology, true),
        (
            "abilene_plain",
            Topology::abilene as fn() -> Topology,
            false,
        ),
        (
            "abilene_compute",
            Topology::abilene as fn() -> Topology,
            true,
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compute,
            |b, &compute| {
                b.iter(|| black_box(run_batch(topo_fn(), compute, packets)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
