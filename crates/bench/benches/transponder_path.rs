//! Criterion bench: transponder TX/RX paths (Fig. 3) and the in-flight
//! compute pipeline (Fig. 4) at the optical-field level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_photonics::SimRng;
use ofpc_transponder::commodity::CommodityTransponder;
use ofpc_transponder::compute::{ComputeOp, PhotonicComputeTransponder};
use ofpc_transponder::frame::Frame;
use std::hint::black_box;

fn bench_commodity(c: &mut Criterion) {
    let mut group = c.benchmark_group("commodity_frame_roundtrip");
    for &payload in &[64usize, 512, 1500] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(payload),
            &payload,
            |b, &payload| {
                let mut rng = SimRng::seed_from_u64(0);
                let mut t = CommodityTransponder::ideal(&mut rng);
                let frame = Frame::data(vec![0u8; payload]);
                b.iter(|| {
                    let field = t.transmit_frame(black_box(&frame));
                    black_box(t.receive_frame(&field).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_compute_path(c: &mut Criterion) {
    c.bench_function("fig4_dot_product_64_in_flight", |b| {
        let mut rng = SimRng::seed_from_u64(0);
        let mut tp = PhotonicComputeTransponder::ideal(&mut rng);
        tp.load_op(ComputeOp::DotProduct {
            weights: vec![0.5; 64],
        });
        let frame = Frame::compute(1, vec![0u8; 128]);
        let operands = vec![0.5; 64];
        b.iter(|| {
            let field = tp.transmit_compute_frame(black_box(&frame), black_box(&operands));
            black_box(tp.process(&field).unwrap())
        });
    });
}

criterion_group!(benches, bench_commodity, bench_compute_path);
criterion_main!(benches);
