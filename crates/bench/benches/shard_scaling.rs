//! Bench gate: sharded-controller determinism, parallel-shard scaling,
//! and per-decision latency regression.
//!
//! Three checks, run as a `harness = false` binary so it can fail CI
//! with a nonzero exit:
//!
//! 1. **Determinism** — the mini-E20 report at 4 workers must be
//!    byte-identical to the 1-worker bytes (always checked; threads
//!    exist even when cores do not).
//! 2. **Parallel-shard scaling** — on ≥ 4 cores, a from-scratch
//!    re-solve of a 12-region WAN loaded with local demands must run at
//!    least [`MIN_SPEEDUP`]× faster on 4 workers than on 1 (best of
//!    [`TIMING_REPS`] trials each); all twelve shard solves are
//!    independent, so this measures the ofpc-par scatter over real
//!    controller work. Skipped with a notice on narrower machines.
//! 3. **Per-decision latency regression** — the mean sequential
//!    `apply_batch` latency over a churn window must stay within
//!    [`MAX_REGRESSION`] of the `shard_decision_us` figure pinned in
//!    `BENCH_BASELINE.json`. The file is shared with the other gates,
//!    so this one reads/writes it as a value tree preserving keys it
//!    does not own, with its own core stamp (`shard_cores`). A missing
//!    file, missing key, core mismatch, or `OFPC_BENCH_RECORD=1`
//!    re-records instead of failing.

use ofpc_bench::shard::e20_mini;
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::topo::{multi_region, MultiRegionSpec};
use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_shard::{RegionMap, ShardEvent, ShardedController};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Gate: 4 workers must beat 1 worker by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;
/// Gate: per-decision latency may regress at most this much (+50%; one
/// decision is tens of µs, well inside scheduler-noise territory).
const MAX_REGRESSION: f64 = 1.50;
/// Trials per timing; the best (minimum) is the reported figure.
const TIMING_REPS: usize = 15;
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// A demand local to `region` of the 12×10 scaling WAN.
fn local_demand(id: u32, region: u32, sites_per_region: u32, rng: &mut SimRng) -> Demand {
    let base = region * sites_per_region;
    let src = NodeId(base + rng.below(sites_per_region as usize) as u32);
    let mut dst = src;
    while dst == src {
        dst = NodeId(base + rng.below(sites_per_region as usize) as u32);
    }
    Demand::new(id, src, dst, TaskDag::single(Primitive::VectorDotProduct))
}

/// A 12-region, 120-site controller loaded with 20 local demands per
/// region — the all-shards-dirty `full_resolve` workload.
fn loaded_controller(pool: &WorkerPool) -> ShardedController {
    const REGIONS: u32 = 12;
    const SITES: u32 = 10;
    let mut rng = SimRng::seed_from_u64(2040);
    let wan = multi_region(
        &MultiRegionSpec::new(REGIONS as usize, SITES as usize),
        &mut rng,
    );
    let n = wan.topo.node_count();
    let capacity: Vec<usize> = (0..n).map(|i| if i % 3 == 0 { 4 } else { 0 }).collect();
    let map = RegionMap::from_assignment(wan.region_of.clone());
    let mut ctl = ShardedController::new(wan.topo, map, capacity, 8).with_pool(pool.clone());
    let mut events = Vec::new();
    for id in 0..20 * REGIONS {
        events.push(ShardEvent::Arrive(local_demand(
            id,
            id % REGIONS,
            SITES,
            &mut rng,
        )));
    }
    ctl.apply_batch(events);
    ctl
}

fn check_determinism() {
    let reference = e20_mini(&WorkerPool::new(1));
    let wide = e20_mini(&WorkerPool::new(4));
    assert!(
        reference == wide,
        "shard_scaling: 4-worker mini-E20 report diverged from the 1-worker bytes"
    );
    println!(
        "shard_scaling: determinism OK (1-worker and 4-worker reports byte-identical, {} bytes)",
        reference.len()
    );
}

fn check_parallel_speedup() {
    if cores() < 4 {
        println!(
            "shard_scaling: speedup check skipped ({} core(s) < 4); \
             determinism and latency gates still apply",
            cores()
        );
        return;
    }
    let time_resolve = |workers: usize| {
        let mut ctl = loaded_controller(&WorkerPool::new(workers));
        ctl.full_resolve(); // warm-up
        best_time(TIMING_REPS, || {
            ctl.full_resolve();
            black_box(&ctl);
        })
    };
    let t1 = time_resolve(1);
    let t4 = time_resolve(4);
    let speedup = t1 / t4;
    println!(
        "shard_scaling: 12-shard full re-solve {:.2} ms @1w, {:.2} ms @4w ({speedup:.2}×, gate {MIN_SPEEDUP:.1}×)",
        t1 * 1e3,
        t4 * 1e3
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "shard_scaling: parallel shard solve speedup {speedup:.2}× below the {MIN_SPEEDUP:.1}× gate"
    );
}

fn get_num(map: &[(String, Value)], key: &str) -> Option<f64> {
    map.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

fn set_key(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

/// Mean sequential per-decision latency (µs) over a 200-event churn
/// window on the loaded 12-region controller.
fn decision_latency_us() -> f64 {
    let mut ctl = loaded_controller(&WorkerPool::sequential());
    let mut rng = SimRng::seed_from_u64(2041);
    let mut id = 20 * 12;
    let secs = best_time(TIMING_REPS, || {
        for i in 0..200u32 {
            let region = i % 12;
            ctl.apply_batch(vec![
                ShardEvent::Arrive(local_demand(id, region, 10, &mut rng)),
                ShardEvent::Depart(id - 20 * 12),
            ]);
            id += 1;
        }
    });
    secs * 1e6 / 200.0
}

fn check_latency_regression() {
    let measured_us = decision_latency_us();
    let measured_cores = cores();

    let mut map: Vec<(String, Value)> = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match (
            get_num(&map, "shard_cores"),
            get_num(&map, "shard_decision_us"),
        ) {
            (Some(c), Some(want)) if c as usize == measured_cores => {
                println!(
                    "shard_scaling: per-decision latency {measured_us:.1} µs vs baseline \
                     {want:.1} µs (gate {:.1} µs)",
                    want * MAX_REGRESSION
                );
                assert!(
                    measured_us <= want * MAX_REGRESSION,
                    "shard_scaling: per-decision latency regressed: {measured_us:.1} µs vs \
                     baseline {want:.1} µs (+{:.0}% allowed); if intentional, re-pin with \
                     OFPC_BENCH_RECORD=1",
                    (MAX_REGRESSION - 1.0) * 100.0,
                );
                None
            }
            (Some(c), Some(_)) => Some(format!(
                "baseline is from a {}-core machine, this one has {measured_cores}",
                c as usize
            )),
            _ => Some("no shard baseline keys".to_string()),
        }
    };

    if let Some(reason) = record_reason {
        set_key(&mut map, "shard_cores", Value::UInt(measured_cores as u64));
        set_key(&mut map, "shard_decision_us", Value::Float(measured_us));
        let json = serde_json::to_string_pretty(&Value::Map(map)).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "shard_scaling: recorded new baseline ({reason}): {measured_us:.1} µs on \
             {measured_cores} core(s)"
        );
    }
}

fn main() {
    check_determinism();
    check_parallel_speedup();
    check_latency_regression();
    println!("shard_scaling: all gates passed");
}
