//! Criterion bench: serving-runtime event-loop throughput.
//!
//! Measures simulated requests processed per wall-clock second through
//! the full admission → batching → EDF-dispatch pipeline, batched vs
//! unbatched, at a load just past the saturation knee — the number that
//! bounds how long the E12 sweep takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, ServiceModel, SiteSpec, TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;
use std::hint::black_box;

const HORIZON_PS: u64 = 500_000_000; // 0.5 ms of virtual time
const RATE_RPS: f64 = 16_000_000.0;

fn config(batching: bool) -> ServeConfig {
    ServeConfig {
        seed: 7,
        horizon_ps: HORIZON_PS,
        drain_grace_ps: 200_000_000,
        batch: if batching {
            BatchPolicy {
                max_batch: 8,
                max_wait_ps: 5_000_000,
            }
        } else {
            BatchPolicy::disabled()
        },
        tenants: vec![
            TenantSpec {
                name: "a".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
            TenantSpec {
                name: "b".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: RATE_RPS / 2.0,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 1_000_000_000,
            },
        ],
        verify_every: 0,
    }
}

fn runtime(batching: bool) -> ServeRuntime {
    let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
    let sites = vec![
        SiteSpec {
            node: NodeId(1),
            slots: 1,
            access_ps: 100_000,
        },
        SiteSpec {
            node: NodeId(2),
            slots: 1,
            access_ps: 200_000,
        },
    ];
    ServeRuntime::new(config(batching), model, sites)
}

fn bench_serve(c: &mut Criterion) {
    // Arrival count is seed-determined; measure once for the throughput
    // denominator.
    let arrivals = runtime(true).run().arrivals;
    let mut group = c.benchmark_group("serve_runtime");
    group.sample_size(10);
    group.throughput(Throughput::Elements(arrivals));
    for batching in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("run", if batching { "batched" } else { "unbatched" }),
            &batching,
            |b, &batching| {
                b.iter(|| black_box(runtime(batching).run()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
