//! Criterion bench: P2 pattern matching and the sliding correlator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofpc_engine::correlator::{bytes_to_bits, Correlator};
use ofpc_engine::matcher::PatternMatcher;
use ofpc_engine::ternary::{parse_pattern, TernaryMatcher};
use std::hint::black_box;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_pattern_match");
    for &n in &[32usize, 128, 512] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, &n| {
            let mut m = PatternMatcher::ideal();
            let data: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let pattern: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            b.iter(|| black_box(m.match_block(black_box(&data), black_box(&pattern))));
        });
    }
    group.finish();
}

fn bench_ternary(c: &mut Criterion) {
    c.bench_function("p2_ternary_prefix_32", |b| {
        let mut m = TernaryMatcher::ideal();
        let pattern = parse_pattern(&("10".repeat(8) + &"*".repeat(16))).unwrap();
        let data: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        b.iter(|| black_box(m.match_block(black_box(&data), black_box(&pattern))));
    });
}

fn bench_correlator(c: &mut Criterion) {
    c.bench_function("p2_correlator_scan_256B", |b| {
        let sig = bytes_to_bits(b"EVIL");
        let mut corr = Correlator::ideal(vec![sig], 0.0, 8);
        let stream = bytes_to_bits(&vec![0xA5u8; 256]);
        b.iter(|| black_box(corr.scan(black_box(&stream))));
    });
}

criterion_group!(benches, bench_match, bench_ternary, bench_correlator);
criterion_main!(benches);
