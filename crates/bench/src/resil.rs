//! E18 — proactive multipath resilience under fault storms.
//!
//! The question this harness answers: when a seeded storm of correlated
//! fiber cuts sweeps a serving plant, what does proactive redundancy
//! actually buy, and what does it cost? Three configurations run under
//! the **byte-identical** storm and arrival processes:
//!
//! * `unprotected` — the PR-2 reactive baseline: a cut loses in-flight
//!   work, displaced requests retry on capped backoff, and whatever
//!   cannot meet its deadline is shed.
//! * `replica` — every batch is cloned onto two link-disjoint paths;
//!   first valid delivery wins, the duplicate is cancelled.
//! * `parity` — each batch splits into `k` data groups plus one XOR
//!   parity group across `k + 1` disjoint paths; a single lost group is
//!   reconstructed digitally from the survivors.
//!
//! The plant is a hub-and-spoke metro: one front-end, `spokes` compute
//! sites each on its own short span, so every site route is
//! link-disjoint by construction and a single cut severs exactly one
//! path. Storm bursts cut one link at a time (`cuts_per_burst: 1`) and
//! splice it before the next burst: the single-fault-at-a-time regime
//! the redundancy modes are *designed* to absorb with zero lost work —
//! the gates in `tests/resil.rs` and `expt_resil` hold them to exactly
//! that, while the same storm forces deadline misses on the baseline.
//!
//! Traffic is deliberately bursty (MMPP-2 with burst rates above plant
//! capacity): batches fill during bursts, which is what keeps the
//! parity overhead near its coding-rate floor of `(k + 1) / k` instead
//! of degenerating to per-request replication.
//!
//! Deadlines are tuned against the span propagation delay: a request
//! served first-try makes it comfortably; a request whose results were
//! lost mid-flight pays the elapsed flight plus backoff plus a full
//! second pass, which overruns the deadline unless the cut struck very
//! early. That asymmetry — not an artificially hostile deadline — is
//! what separates the protected and unprotected availability curves.

use ofpc_faults::{generate_storm, FaultKind, FaultPlan, StormSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_resil::{MultipathPlan, RedundancyMode};
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, ResilSummary, RetryPolicy, ServeConfig, ServeReport, ServeRuntime,
    ServiceModel, SiteSpec, TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::Serialize;

/// Full parameterization of one E18 run set.
#[derive(Debug, Clone, Serialize)]
pub struct E18Config {
    pub seed: u64,
    /// Arrivals are generated in `[0, horizon_ps)`.
    pub horizon_ps: u64,
    pub drain_grace_ps: u64,
    /// Compute sites, each on its own span from the front-end.
    pub spokes: usize,
    pub span_km: f64,
    pub slots_per_site: usize,
    pub wdm_channels: usize,
    /// Per-tenant MMPP base rate (two tenants; see [`E18Config::serve_config`]).
    pub tenant_rps: f64,
    pub operand_len: usize,
    pub deadline_ps: u64,
    /// XOR-parity data groups (`k`); the coding-rate floor is `(k+1)/k`.
    pub data_groups: u8,
    pub storm: StormSpec,
}

impl E18Config {
    /// The full E18 scenario: 5 spokes, 4 ms of arrivals, 8 single-cut
    /// storm bursts.
    pub fn full() -> Self {
        E18Config {
            seed: 18,
            horizon_ps: 4_000_000_000,
            drain_grace_ps: 1_000_000_000,
            spokes: 5,
            span_km: 10.0,
            slots_per_site: 1,
            wdm_channels: 1,
            tenant_rps: 1.0e6,
            operand_len: 2048,
            deadline_ps: 200_000_000, // 200 µs against a ~98 µs two-way span delay
            data_groups: 4,
            storm: StormSpec {
                bursts: 8,
                cuts_per_burst: 1,
                burst_jitter_ps: 30_000_000,
                cut_down_ps: 150_000_000,
                engines_per_burst: 0,
                engine_down_ps: 0,
                drift_sigmas: Vec::new(),
            },
        }
    }

    /// The golden-fixture miniature: same plant and rates, a 1 ms
    /// horizon with 2 storm bursts (the full run's cut density).
    pub fn mini() -> Self {
        E18Config {
            horizon_ps: 1_000_000_000,
            drain_grace_ps: 400_000_000,
            storm: StormSpec {
                bursts: 2,
                ..Self::full().storm
            },
            ..Self::full()
        }
    }

    /// The serving config shared verbatim by all three runs: two bursty
    /// MMPP tenants whose burst rate exceeds plant capacity (full
    /// batches during bursts) over a calm trickle.
    pub fn serve_config(&self) -> ServeConfig {
        let tenant = |name: &str| TenantSpec {
            name: name.to_string(),
            weight: 1,
            queue_capacity: 1024,
            arrivals: ArrivalSpec::Mmpp {
                calm_rps: self.tenant_rps * 0.02,
                burst_rps: self.tenant_rps * 10.0,
                mean_calm_s: 80e-6,
                mean_burst_s: 8e-6,
            },
            primitive: ofpc_engine::Primitive::VectorDotProduct,
            operand_len: self.operand_len,
            deadline_ps: self.deadline_ps,
        };
        ServeConfig {
            seed: self.seed,
            horizon_ps: self.horizon_ps,
            drain_grace_ps: self.drain_grace_ps,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_ps: 20_000_000,
            },
            tenants: vec![tenant("burst-a"), tenant("burst-b")],
            verify_every: 0,
        }
    }

    /// Build the hub-and-spoke plant: the topology, the link-disjoint
    /// route plan from the front-end, and the site list with access
    /// latency taken from each planned route's propagation delay.
    pub fn plant(&self) -> (MultipathPlan, Vec<SiteSpec>) {
        let mut topo = Topology::new();
        let fe = topo.add_node("fe");
        let mut nodes = Vec::new();
        for i in 0..self.spokes {
            let s = topo.add_node(format!("s{i}"));
            topo.add_link(fe, s, self.span_km);
            nodes.push(s);
        }
        let plan = MultipathPlan::plan(&topo, fe, &nodes);
        let sites = plan
            .routes
            .iter()
            .map(|r| SiteSpec {
                node: r.node,
                slots: self.slots_per_site,
                access_ps: r.route.delay_ps,
            })
            .collect();
        (plan, sites)
    }

    /// The seeded storm all three runs replay byte-identically.
    pub fn storm_plan(&self, plan: &MultipathPlan) -> FaultPlan {
        let links: Vec<_> = plan
            .routes
            .iter()
            .flat_map(|r| r.route.links.iter().copied())
            .collect();
        let sites: Vec<NodeId> = plan.routes.iter().map(|r| r.node).collect();
        let mut rng = SimRng::seed_from_u64(self.seed).derive("e18-storm");
        generate_storm(&links, &sites, self.horizon_ps, &self.storm, &mut rng)
    }
}

/// One protection mode's outcome under the shared storm.
#[derive(Debug, Clone, Serialize)]
pub struct E18Run {
    pub mode: String,
    /// Requests that did not complete photonically on time:
    /// shed + degraded + unfinished.
    pub failed: u64,
    /// completed / arrivals.
    pub availability: f64,
    pub goodput_rps: f64,
    pub p99_latency_us: Option<f64>,
    pub energy_per_completed_j: f64,
    /// `energy_per_completed_j` relative to the unprotected run.
    pub energy_overhead: f64,
    pub report: ServeReport,
    pub resil: ResilSummary,
}

/// The E18 comparison document (serialized into `results/e18_resil.json`
/// by `expt_resil`, and — in mini form — pinned as a golden fixture).
#[derive(Debug, Clone, Serialize)]
pub struct E18Report {
    pub config: E18Config,
    pub storm_events: usize,
    pub link_cuts: usize,
    pub runs: Vec<E18Run>,
}

/// Run the three protection modes under the byte-identical storm.
pub fn run_e18(pool: &WorkerPool, cfg: &E18Config) -> E18Report {
    let (plan, sites) = cfg.plant();
    let storm = cfg.storm_plan(&plan);
    let link_cuts = storm
        .events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::FiberCut { .. }))
        .count();
    let serve_cfg = cfg.serve_config();
    let modes: Vec<(String, RedundancyMode)> = vec![
        ("unprotected".to_string(), RedundancyMode::Unprotected),
        ("replica".to_string(), RedundancyMode::Replica),
        (
            "parity".to_string(),
            RedundancyMode::XorParity {
                data_groups: cfg.data_groups,
            },
        ),
    ];
    let runs = pool.scatter_gather("e18-resil", modes, |_, (mode, policy)| {
        let model =
            ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), cfg.wdm_channels);
        let policies = vec![policy; serve_cfg.tenants.len()];
        // The reactive baseline pays fault detection plus controller
        // reconvergence before it can re-dispatch displaced work; 100 µs
        // is charitable next to PR-2's measured time-to-recover. The
        // proactive modes never touch this path on a single-cut storm.
        let retry = RetryPolicy {
            base_ps: 100_000_000,
            max_backoff_ps: 1_000_000_000,
            max_retries: 4,
        };
        let (report, resil) = ServeRuntime::new(serve_cfg.clone(), model, sites.clone())
            .with_redundancy(&policies, plan.clone())
            .with_storm(&storm)
            .with_retry_policy(retry)
            .run_with_resil();
        assert_eq!(
            report.arrivals,
            report.completed + report.shed + report.degraded + report.unfinished,
            "request conservation violated in E18 {mode} run"
        );
        (mode, report, resil)
    });
    let baseline_j = runs[0].1.joules_per_completed;
    let runs = runs
        .into_iter()
        .map(|(mode, report, resil)| E18Run {
            mode,
            failed: report.shed + report.degraded + report.unfinished,
            availability: if report.arrivals > 0 {
                report.completed as f64 / report.arrivals as f64
            } else {
                1.0
            },
            goodput_rps: report.goodput_rps,
            p99_latency_us: report.p99_latency_us,
            energy_per_completed_j: report.joules_per_completed,
            energy_overhead: if baseline_j > 0.0 {
                report.joules_per_completed / baseline_j
            } else {
                1.0
            },
            report,
            resil,
        })
        .collect();
    E18Report {
        config: cfg.clone(),
        storm_events: storm.events.len(),
        link_cuts,
        runs,
    }
}

/// Mini E18 for the golden-replay suite: the full comparison document,
/// versioned and pretty-printed.
pub fn e18_mini(pool: &WorkerPool) -> String {
    crate::table::versioned_pretty(&run_e18(pool, &E18Config::mini()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_storm_separates_protected_from_unprotected() {
        let pool = WorkerPool::new(2);
        let rep = run_e18(&pool, &E18Config::mini());
        assert_eq!(rep.runs.len(), 3);
        let base = &rep.runs[0];
        assert!(
            base.failed > 0,
            "the storm must force failures on the unprotected baseline"
        );
        for run in &rep.runs[1..] {
            assert_eq!(
                run.failed, 0,
                "{} must survive the storm with zero lost work",
                run.mode
            );
            assert_eq!(run.report.arrivals, run.report.completed);
            assert_eq!(run.resil.unsettled_sets, 0);
            assert!(run.resil.link_cuts_seen > 0, "the storm must be observed");
        }
    }

    #[test]
    fn energy_overhead_stays_within_the_acceptance_gates() {
        let pool = WorkerPool::new(2);
        let rep = run_e18(&pool, &E18Config::mini());
        let replica = &rep.runs[1];
        let parity = &rep.runs[2];
        assert!(
            replica.energy_overhead <= 2.1,
            "replica overhead {} above the 2.1x gate",
            replica.energy_overhead
        );
        assert!(
            parity.energy_overhead <= 1.5,
            "parity overhead {} above the 1.5x gate",
            parity.energy_overhead
        );
        assert!(
            parity.energy_overhead < replica.energy_overhead,
            "coding must beat full replication"
        );
    }
}
