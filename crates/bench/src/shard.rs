//! E20 harness core: churn + fault-storm event streams driven through
//! the sharded incremental controller (ofpc-shard).
//!
//! The full experiment (`expt_controller_shard`) sustains ≥10⁵ admitted
//! requests on a ≥100-site multi-region WAN; [`e20_mini`] is the same
//! machinery on a 12-site toy, pinned as a golden fixture and replayed
//! across worker counts by the differential tests. Both share one
//! runner, [`run_e20`], whose report contains no wall-clock material —
//! the bytes are a pure function of the spec, on any `OFPC_WORKERS`.

use std::collections::VecDeque;
use std::time::Instant;

use ofpc_controller::build_plan_from_placements;
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::topo::{multi_region, MultiRegionSpec};
use ofpc_engine::Primitive;
use ofpc_faults::storm::{generate_storm, StormSpec};
use ofpc_net::{LinkId, NodeId};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_shard::{RegionMap, ShardEvent, ShardedController};
use serde::Serialize;

/// One virtual tick per arrival — the storm's time axis.
const TICK_PS: u64 = 1_000;

/// Scenario parameters for an E20 run.
#[derive(Debug, Clone)]
pub struct E20Spec {
    pub seed: u64,
    pub regions: usize,
    pub sites_per_region: usize,
    /// Slots at every third node (the paper's partial-upgrade story).
    pub slots_per_site: usize,
    /// Total arrivals; departures trail FIFO once `max_live` is reached.
    pub arrivals: usize,
    pub max_live: usize,
    /// Fraction of demands whose dst is in another region (boundary).
    pub cross_region_pct: f64,
    /// Correlated fault storm over the run, `None` = fault-free.
    pub storm: Option<StormSpec>,
    /// Differential checkpoint cadence (clone + from-scratch re-solve +
    /// placement equality assert); 0 disables.
    pub check_every: usize,
    pub max_options: usize,
}

impl E20Spec {
    /// The headline instance: 120 sites in 12 regions (30× fig1),
    /// 115k arrivals under an 8-burst fault storm.
    pub fn full() -> Self {
        E20Spec {
            seed: 20,
            regions: 12,
            sites_per_region: 10,
            slots_per_site: 4,
            arrivals: 115_000,
            max_live: 100,
            cross_region_pct: 0.25,
            storm: Some(StormSpec {
                bursts: 8,
                cuts_per_burst: 3,
                burst_jitter_ps: 0,
                cut_down_ps: 4_000 * TICK_PS,
                engines_per_burst: 1,
                engine_down_ps: 6_000 * TICK_PS,
                drift_sigmas: Vec::new(),
            }),
            check_every: 20_000,
            max_options: 8,
        }
    }

    /// The golden-fixture miniature: 12 sites in 3 regions, 240
    /// arrivals, a 2-burst storm, differential checks every 60 events.
    pub fn mini() -> Self {
        E20Spec {
            seed: 20,
            regions: 3,
            sites_per_region: 4,
            slots_per_site: 4,
            arrivals: 240,
            max_live: 12,
            cross_region_pct: 0.3,
            storm: Some(StormSpec {
                bursts: 2,
                cuts_per_burst: 2,
                burst_jitter_ps: 0,
                cut_down_ps: 40 * TICK_PS,
                engines_per_burst: 1,
                engine_down_ps: 60 * TICK_PS,
                drift_sigmas: Vec::new(),
            }),
            check_every: 60,
            max_options: 8,
        }
    }

    pub fn node_count(&self) -> usize {
        self.regions * self.sites_per_region
    }
}

/// Deterministic E20 results — everything a golden fixture may pin.
#[derive(Debug, Serialize)]
pub struct E20Report {
    pub nodes: usize,
    pub regions: usize,
    pub slots_total: usize,
    pub arrivals: usize,
    pub admitted: usize,
    pub rejected: usize,
    pub displaced: usize,
    pub revived: usize,
    pub replanned: usize,
    pub fault_events: usize,
    pub fault_batches: usize,
    pub shard_resolves: usize,
    pub boundary_reruns: usize,
    pub boundary_demands_seen: usize,
    pub final_live: usize,
    pub final_satisfied: usize,
    pub final_objective: f64,
    pub te_installs: usize,
    pub te_overrides: usize,
    pub te_unsatisfied: usize,
    pub differential_checks: usize,
}

/// Run an E20 scenario. Returns the deterministic report plus the
/// per-`apply_batch` wall-clock latencies (ns) — timing stays out of
/// the report so its bytes are worker-count- and machine-independent.
pub fn run_e20(spec: &E20Spec, pool: &WorkerPool) -> (E20Report, Vec<u64>) {
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let wan = multi_region(
        &MultiRegionSpec::new(spec.regions, spec.sites_per_region),
        &mut rng.derive("topo"),
    );
    let n = wan.topo.node_count();
    let capacity: Vec<usize> = (0..n)
        .map(|i| if i % 3 == 0 { spec.slots_per_site } else { 0 })
        .collect();
    let slots_total: usize = capacity.iter().sum();
    let sites: Vec<NodeId> = (0..n)
        .filter(|&i| capacity[i] > 0)
        .map(|i| NodeId(i as u32))
        .collect();
    let links: Vec<LinkId> = (0..wan.topo.link_count())
        .map(|i| LinkId(i as u32))
        .collect();

    // Storm → a time-sorted queue of shard events (via the typed
    // fault-plan views), drained into batches between arrivals.
    let mut faults: Vec<(u64, ShardEvent)> = Vec::new();
    if let Some(storm) = &spec.storm {
        let horizon = (spec.arrivals as u64 + 1) * TICK_PS;
        let plan = generate_storm(&links, &sites, horizon, storm, &mut rng.derive("storm"));
        for (t, l, up) in plan.link_events() {
            let ev = if up {
                ShardEvent::RepairLink(l)
            } else {
                ShardEvent::CutLink(l)
            };
            faults.push((t, ev));
        }
        for (t, node, up) in plan.engine_events() {
            let ev = if up {
                ShardEvent::RepairSite(node)
            } else {
                ShardEvent::FailSite(node)
            };
            faults.push((t, ev));
        }
        faults.sort_by_key(|&(t, _)| t);
    }

    let region_map = RegionMap::from_assignment(wan.region_of.clone());
    let mut ctl = ShardedController::new(wan.topo.clone(), region_map, capacity, spec.max_options)
        .with_pool(pool.clone());

    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    let mut drng = rng.derive("demands");
    let mut fifo: VecDeque<u32> = VecDeque::new();
    let mut next_fault = 0usize;
    let mut decision_ns: Vec<u64> = Vec::with_capacity(spec.arrivals);
    let mut report = E20Report {
        nodes: n,
        regions: spec.regions,
        slots_total,
        arrivals: spec.arrivals,
        admitted: 0,
        rejected: 0,
        displaced: 0,
        revived: 0,
        replanned: 0,
        fault_events: 0,
        fault_batches: 0,
        shard_resolves: 0,
        boundary_reruns: 0,
        boundary_demands_seen: 0,
        final_live: 0,
        final_satisfied: 0,
        final_objective: 0.0,
        te_installs: 0,
        te_overrides: 0,
        te_unsatisfied: 0,
        differential_checks: 0,
    };
    let tally = |report: &mut E20Report, out: &ofpc_shard::EventOutcome| {
        report.displaced += out.displaced.len();
        report.revived += out.revived.len();
        report.replanned += out.replanned.len();
        report.shard_resolves += out.resolved_shards.len();
        report.boundary_reruns += usize::from(out.boundary_rerun);
    };

    for i in 0..spec.arrivals {
        let now = (i as u64 + 1) * TICK_PS;

        // Correlated fault burst due before this arrival → one batch.
        let mut burst: Vec<ShardEvent> = Vec::new();
        while next_fault < faults.len() && faults[next_fault].0 <= now {
            burst.push(faults[next_fault].1.clone());
            next_fault += 1;
        }
        if !burst.is_empty() {
            report.fault_events += burst.len();
            report.fault_batches += 1;
            let start = Instant::now();
            let out = ctl.apply_batch(burst);
            decision_ns.push(start.elapsed().as_nanos() as u64);
            tally(&mut report, &out);
        }

        // Arrival (+ the FIFO departure keeping `max_live` bounded).
        let src = NodeId(drng.below(n) as u32);
        let cross = drng.chance(spec.cross_region_pct);
        let dst = loop {
            let d = NodeId(drng.below(n) as u32);
            let same = wan.region_of[d.0 as usize] == wan.region_of[src.0 as usize];
            if d != src && same != cross {
                break d;
            }
        };
        if cross {
            report.boundary_demands_seen += 1;
        }
        // 80% single-task, 20% two-task chains.
        let dag = if drng.chance(0.2) {
            TaskDag::chain(vec![prims[drng.below(3)], prims[drng.below(3)]])
        } else {
            TaskDag::single(prims[drng.below(3)])
        };
        let mut batch = vec![ShardEvent::Arrive(Demand::new(i as u32, src, dst, dag))];
        if fifo.len() >= spec.max_live {
            batch.push(ShardEvent::Depart(fifo.pop_front().unwrap()));
        }
        fifo.push_back(i as u32);
        let start = Instant::now();
        let out = ctl.apply_batch(batch);
        decision_ns.push(start.elapsed().as_nanos() as u64);
        report.admitted += out.admitted.len();
        report.rejected += out.rejected.len();
        tally(&mut report, &out);

        // Differential checkpoint: the incremental state must equal a
        // from-scratch re-solve, byte for byte.
        if spec.check_every > 0 && (i + 1) % spec.check_every == 0 {
            let mut scratch = ctl.clone();
            scratch.full_resolve();
            assert_eq!(
                ctl.placements(),
                scratch.placements(),
                "incremental state drifted from scratch re-solve after event {i}"
            );
            ctl.check_invariants()
                .unwrap_or_else(|e| panic!("invariant violated after event {i}: {e}"));
            report.differential_checks += 1;
        }
    }

    report.final_live = ctl.live_count();
    report.final_satisfied = ctl.satisfied_count();
    report.final_objective = ctl.objective();

    // Exercise the TE-update seam: the final placements, pushed through
    // the same plan builder the monolithic controller uses.
    let demands = ctl.live_demands();
    let placements: Vec<Option<Vec<NodeId>>> = ctl.placements().into_values().collect();
    let plan = build_plan_from_placements(&demands, &placements);
    report.te_installs = plan.installs.len();
    report.te_overrides = plan.overrides.len();
    report.te_unsatisfied = plan.unsatisfied.len();

    (report, decision_ns)
}

/// Mini E20: the golden-fixture miniature (see [`E20Spec::mini`]).
pub fn e20_mini(pool: &WorkerPool) -> String {
    let (report, _) = run_e20(&E20Spec::mini(), pool);
    crate::table::versioned_pretty(&report)
}

/// Latency percentiles over a decision-latency series, in microseconds.
pub fn latency_us(decision_ns: &mut [u64]) -> (f64, f64, f64) {
    assert!(!decision_ns.is_empty());
    decision_ns.sort_unstable();
    let pick = |q: f64| decision_ns[((decision_ns.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    (pick(0.5), pick(0.99), pick(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_run_is_reproducible_and_admits() {
        let pool = WorkerPool::sequential();
        let (report, lat) = run_e20(&E20Spec::mini(), &pool);
        assert_eq!(report.arrivals, 240);
        assert!(report.admitted > 120, "admitted {}", report.admitted);
        assert!(report.rejected > 0, "mini should exercise rejections");
        assert!(report.differential_checks >= 4);
        assert!(report.fault_events > 0);
        assert!(!lat.is_empty());
        let again = e20_mini(&pool);
        assert_eq!(e20_mini(&pool), again);
    }
}
