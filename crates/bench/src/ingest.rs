//! E21 harness core: the sharded million-tenant ingest front-end
//! (ofpc-ingest) driven at population scale.
//!
//! The full experiment (`expt_ingest`) fronts **1,000,064 tenants**
//! offering ≥10⁶ req/s at a deliberately under-provisioned transponder
//! fleet, and checks that the overload lands where the paper's serving
//! story says it must: bounded queues shed the abusive heavy-hitter
//! class while DRR keeps completed goodput per unit weight level across
//! saturated classes. [`e21_mini`] is the same machinery on a
//! 5,008-tenant toy, pinned as a golden fixture and replayed across
//! worker counts by the differential tests. Both share one config
//! family; the report bytes are a pure function of it on any
//! `OFPC_WORKERS`.

use ofpc_engine::Primitive;
use ofpc_ingest::{IngestConfig, IngestFrontEnd, IngestReport, RebalanceConfig, TenantClass};
use ofpc_net::NodeId;
use ofpc_par::WorkerPool;
use ofpc_serve::{BatchPolicy, ServiceModel, SiteSpec};

/// The service model both E21 instances share: a 100 Gbps line with 8
/// WDM channels per transponder slot. The thermo-optic engine settle
/// (100 µs per batch) dominates service time, which is what makes the
/// fleet a scarce resource at millions of offered req/s — and what
/// makes WDM batching worth it, since a full batch amortizes one settle
/// over `max_batch` requests.
fn model() -> ServiceModel {
    ServiceModel {
        line_rate_bps: 100e9,
        wdm_channels: 8,
        engine_settle_ps: 100_000_000,
        reconfig_fixed_ps: 2_000_000,
        reconfig_per_element_ps: 10_000,
        readout_per_request_ps: 800,
        laser_w: 0.05,
        dac_sample_j: 1e-12,
        mac_j: 1e-14,
        adc_result_j: 1e-12,
    }
}

/// The headline instance: 1,000,064 tenants in three classes —
/// 64 whales, 50k steady subscribers, 950k long-tail users — offering
/// ≈1.02M req/s against 8 transponder slots. Deadlines are 1 s, far
/// past the 100 ms horizon, so every shed is bounded-queue backpressure
/// rather than deadline expiry: exactly the fairness mechanism under
/// test.
pub fn full_config() -> IngestConfig {
    IngestConfig {
        seed: 21,
        shards: 8,
        classes: vec![
            TenantClass {
                name: "whale".into(),
                population: 64,
                weight: 8,
                queue_capacity: 128,
                mean_rate_rps: 4_000.0,
                primitive: Primitive::VectorDotProduct,
                operand_len: 1024,
                deadline_ps: 1_000_000_000_000,
            },
            TenantClass {
                name: "steady".into(),
                population: 50_000,
                weight: 2,
                queue_capacity: 16,
                mean_rate_rps: 12.0,
                primitive: Primitive::PatternMatching,
                operand_len: 512,
                deadline_ps: 1_000_000_000_000,
            },
            TenantClass {
                name: "tail".into(),
                population: 950_000,
                weight: 1,
                queue_capacity: 8,
                mean_rate_rps: 0.17,
                primitive: Primitive::NonlinearFunction,
                operand_len: 256,
                deadline_ps: 1_000_000_000_000,
            },
        ],
        sites: vec![
            SiteSpec {
                node: NodeId(1),
                slots: 5,
                access_ps: 25_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 3,
                access_ps: 100_000,
            },
        ],
        model: model(),
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 50_000_000,
        },
        epoch_ps: 20_000_000_000,
        epochs: 5,
        rebalance: RebalanceConfig {
            every_epochs: 1,
            max_migrations: 16,
        },
        corrupt_every: 997,
        drain_quantum: 256,
    }
}

/// The golden-fixture miniature: 5,008 tenants over 4 shards and 5
/// slots, 6 ms horizon, same class shape (whale / steady / tail) so the
/// fixture pins the identical code paths — overload shedding, typed
/// frame rejections, and two rebalance passes.
pub fn mini_config() -> IngestConfig {
    IngestConfig {
        seed: 21,
        shards: 4,
        classes: vec![
            TenantClass {
                name: "whale".into(),
                population: 8,
                weight: 8,
                queue_capacity: 64,
                mean_rate_rps: 50_000.0,
                primitive: Primitive::VectorDotProduct,
                operand_len: 256,
                deadline_ps: 20_000_000_000,
            },
            TenantClass {
                name: "steady".into(),
                population: 1_000,
                weight: 2,
                queue_capacity: 16,
                mean_rate_rps: 150.0,
                primitive: Primitive::PatternMatching,
                operand_len: 128,
                deadline_ps: 20_000_000_000,
            },
            TenantClass {
                name: "tail".into(),
                population: 4_000,
                weight: 1,
                queue_capacity: 8,
                mean_rate_rps: 25.0,
                primitive: Primitive::NonlinearFunction,
                operand_len: 64,
                deadline_ps: 20_000_000_000,
            },
        ],
        sites: vec![
            SiteSpec {
                node: NodeId(1),
                slots: 3,
                access_ps: 25_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 2,
                access_ps: 100_000,
            },
        ],
        model: model(),
        batch: BatchPolicy {
            max_batch: 4,
            max_wait_ps: 50_000_000,
        },
        epoch_ps: 2_000_000_000,
        epochs: 3,
        rebalance: RebalanceConfig {
            every_epochs: 1,
            max_migrations: 8,
        },
        corrupt_every: 53,
        drain_quantum: 64,
    }
}

/// Run an E21 instance. The report is a deterministic function of the
/// config; `pool` only changes how fast it arrives.
pub fn run_e21(config: IngestConfig, pool: &WorkerPool) -> IngestReport {
    IngestFrontEnd::new(config).run(pool)
}

/// Mini E21: the golden-fixture miniature (see [`mini_config`]).
pub fn e21_mini(pool: &WorkerPool) -> String {
    let report = run_e21(mini_config(), pool);
    crate::table::versioned_pretty(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_run_sheds_rejects_and_rebalances() {
        let pool = WorkerPool::sequential();
        let report = run_e21(mini_config(), &pool);
        assert_eq!(report.tenants, 5_008);
        assert!(report.parsed > 1_000, "mini should see real traffic");
        assert!(report.completed > 0);
        assert!(report.shed > 0, "mini must be overloaded enough to shed");
        assert!(
            report.frames.rejected_total > 0,
            "corrupt_every must exercise the typed-error path"
        );
        assert_eq!(report.rebalance.passes, 2);
        let again = e21_mini(&pool);
        assert_eq!(e21_mini(&pool), again);
    }
}
