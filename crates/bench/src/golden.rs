//! Miniature replicas of the E12/E13/E14/E17/E18 experiment scenarios for the
//! golden-replay regression suite and the parallel differential tests.
//!
//! Each `*_mini` function is a scaled-down (µs-horizon) version of the
//! corresponding harness sweep, returning the result as pretty-printed
//! JSON. The contract, enforced by `tests/golden.rs` against the pinned
//! fixtures under `results/golden/` and by `tests/parallel.rs` across
//! worker counts:
//!
//! * the bytes are a pure function of the scenario — same fixture on
//!   every run, every machine, every `OFPC_WORKERS` setting;
//! * any behavioral drift in the serving/fault/telemetry stacks shows
//!   up as a fixture diff, reviewed like any other golden change
//!   (regenerate with `cargo run -p ofpc-bench --bin golden_regen`).

use ofpc_engine::batch::{BatchEngine, KernelOutput, KernelSpec};
use ofpc_engine::dot::KernelBackend;
use ofpc_par::WorkerPool;
use ofpc_serve::{
    run_sweep, ArrivalSpec, BatchPolicy, EngineFaultEvent, ServeConfig, SweepScenario, TenantSpec,
};
use ofpc_telemetry::{validate_balanced, Telemetry};
use serde::Serialize;

const OPERAND_LEN: usize = 512;

fn mini_config(seed: u64, total_rps: f64, batching: bool) -> ServeConfig {
    ServeConfig {
        seed,
        horizon_ps: 100_000_000, // 100 µs of arrivals
        drain_grace_ps: 100_000_000,
        batch: if batching {
            BatchPolicy {
                max_batch: 8,
                max_wait_ps: 2_000_000,
            }
        } else {
            BatchPolicy::disabled()
        },
        tenants: vec![
            TenantSpec {
                name: "steady".to_string(),
                weight: 3,
                queue_capacity: 48,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: total_rps * 0.75,
                },
                primitive: ofpc_engine::Primitive::VectorDotProduct,
                operand_len: OPERAND_LEN,
                deadline_ps: 400_000_000,
            },
            TenantSpec {
                name: "bursty".to_string(),
                weight: 1,
                queue_capacity: 16,
                arrivals: ArrivalSpec::Mmpp {
                    calm_rps: total_rps * 0.125,
                    burst_rps: total_rps * 1.125,
                    mean_calm_s: 20e-6,
                    mean_burst_s: 5e-6,
                },
                primitive: ofpc_engine::Primitive::VectorDotProduct,
                operand_len: OPERAND_LEN,
                deadline_ps: 400_000_000,
            },
        ],
        verify_every: 64,
    }
}

/// The E13c-style double-site outage window, scaled to the µs horizon.
fn mini_outage() -> Vec<EngineFaultEvent> {
    vec![
        EngineFaultEvent {
            at_ps: 25_000_000,
            node: ofpc_net::NodeId(1),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 40_000_000,
            node: ofpc_net::NodeId(2),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 60_000_000,
            node: ofpc_net::NodeId(2),
            up: true,
        },
        EngineFaultEvent {
            at_ps: 75_000_000,
            node: ofpc_net::NodeId(1),
            up: true,
        },
    ]
}

/// The mini-E12 scenario grid: 2 batching modes × 3 load points on the
/// metro deployment, verifying on `backend`.
fn e12_scenarios(backend: KernelBackend) -> Vec<SweepScenario> {
    let mut scenarios = Vec::new();
    for &batching in &[true, false] {
        for &rps in &[1.5e6, 4e6, 8e6] {
            let mut s = SweepScenario::metro(
                &format!("e12-{}-{}", batching, rps as u64),
                12,
                4,
                mini_config(12, rps, batching),
            );
            s.verify_backend = backend;
            scenarios.push(s);
        }
    }
    scenarios
}

/// Mini E12: the serving knee in miniature — 2 batching modes × 3 load
/// points on the metro deployment. Verifies on the production
/// `Vectorized` backend (the fixture pins those bytes); `e13_mini`
/// stays on `Scalar` so both backends remain exercised in CI.
pub fn e12_mini(pool: &WorkerPool) -> String {
    e12_mini_with_backend(pool, KernelBackend::Vectorized)
}

/// [`e12_mini`] with the runtime verification engine on an explicit
/// kernel backend. `Vectorized` reproduces the pinned fixture; `Scalar`
/// must differ from it only in the verify-error statistics — the
/// differential golden tests pin both claims.
pub fn e12_mini_with_backend(pool: &WorkerPool, backend: KernelBackend) -> String {
    let reports = run_sweep(pool, e12_scenarios(backend));
    crate::table::versioned_pretty(&reports)
}

/// The mini-E13 scenario pair: the engine-outage window with and
/// without the digital fallback, verifying on `backend`.
fn e13_scenarios(backend: KernelBackend) -> Vec<SweepScenario> {
    [false, true]
        .iter()
        .map(|&fallback| {
            let mut s = SweepScenario::metro(
                &format!("e13-fallback-{fallback}"),
                13,
                4,
                mini_config(13, 6e6, true),
            );
            s.engine_faults = mini_outage();
            s.digital_fallback = fallback;
            s.verify_backend = backend;
            s
        })
        .collect()
}

/// Mini E13: the engine-outage window replayed with and without the
/// digital fallback.
pub fn e13_mini(pool: &WorkerPool) -> String {
    e13_mini_with_backend(pool, KernelBackend::Scalar)
}

/// [`e13_mini`] with the runtime verification engine on an explicit
/// kernel backend (see [`e12_mini_with_backend`]).
pub fn e13_mini_with_backend(pool: &WorkerPool, backend: KernelBackend) -> String {
    let reports = run_sweep(pool, e13_scenarios(backend));
    crate::table::versioned_pretty(&reports)
}

#[derive(Debug, Serialize)]
struct E14Mini {
    report: ofpc_serve::ServeReport,
    trace_events: usize,
    trace_spans: usize,
    metrics: ofpc_telemetry::MetricsSnapshot,
}

/// Mini E14: one instrumented replay of the mini fault scenario — the
/// report, the balanced-span count, and the full metrics snapshot.
/// Runs the scenario twice through the pool (instrumented + bare) and
/// asserts telemetry perturbed nothing before snapshotting. Verifies on
/// the production `Vectorized` backend, like [`e12_mini`].
pub fn e14_mini(pool: &WorkerPool) -> String {
    e14_mini_with_backend(pool, KernelBackend::Vectorized)
}

/// [`e14_mini`] with the runtime verification engine on an explicit
/// kernel backend (see [`e12_mini_with_backend`]).
pub fn e14_mini_with_backend(pool: &WorkerPool, backend: KernelBackend) -> String {
    let mut scenario = SweepScenario::metro("e14", 14, 4, mini_config(14, 6e6, true));
    scenario.engine_faults = mini_outage();
    scenario.digital_fallback = true;
    scenario.verify_backend = backend;
    let runs = pool.scatter_gather("e14-mini", vec![true, false], |_, instrument| {
        let tel = instrument.then(Telemetry::enabled);
        let report = match &tel {
            Some(tel) => scenario.run_with_telemetry(tel),
            None => scenario.run(),
        };
        (report, tel)
    });
    let [(report, tel), (bare_report, _)] = <[_; 2]>::try_from(runs).expect("two runs");
    let tel = tel.expect("first run instrumented");
    assert_eq!(
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&bare_report).expect("report serializes"),
        "telemetry must not perturb the mini scenario"
    );
    let events = tel.trace_events();
    let spans = validate_balanced(&events).expect("mini trace must balance");
    crate::table::versioned_pretty(&E14Mini {
        report,
        trace_events: events.len(),
        trace_spans: spans,
        metrics: tel.snapshot(),
    })
}

/// Mini E18: the resilience comparison miniature — unprotected vs
/// replica vs XOR-parity under one byte-identical fault storm.
pub fn e18_mini(pool: &WorkerPool) -> String {
    crate::resil::e18_mini(pool)
}

/// Mini E17: the design-space sweep miniature — 2 apps × 3 converter
/// pairings × 2 core sizes × 2 wavelength counts with the per-app
/// Pareto frontier marked.
pub fn e17_mini(pool: &WorkerPool) -> String {
    let points = ofpc_dse::run_sweep(pool, &ofpc_dse::SweepSpec::mini());
    crate::table::versioned_pretty(&points)
}

/// The mixed kernel batch the `kernels_mini` fixture replays: signed
/// and non-negative MVMs (multi-lane WDM), a correlator scan, and a
/// pattern match — every [`KernelSpec`] variant, with operand values
/// chosen to hit the interesting code points (0, full scale, mid-rail,
/// sub-LSB).
fn kernels_batch() -> Vec<KernelSpec> {
    let sig = vec![true, true, false, true, false, false, true, true];
    let mut stream = vec![false; 48];
    stream[24..32].copy_from_slice(&sig);
    vec![
        KernelSpec::MvmNonneg {
            matrix: vec![
                vec![0.5, 0.25, 1.0, 0.0],
                vec![0.125, 0.75, 0.0001, 0.9999],
                vec![1.0, 1.0, 1.0, 1.0],
            ],
            x: vec![0.8, 0.0, 0.5, 1.0],
            lanes: 2,
        },
        KernelSpec::MvmSigned {
            matrix: vec![vec![0.5, -0.5, 0.25], vec![-1.0, 1.0, -0.125]],
            x: vec![1.0, 0.5, -0.75],
            lanes: 3,
        },
        KernelSpec::Correlate {
            signatures: vec![sig.clone()],
            stream,
            tolerance: 0.4,
            stride: 8,
        },
        KernelSpec::MatchBlock {
            data: sig.clone(),
            pattern: sig,
        },
    ]
}

#[derive(Debug, Serialize)]
struct KernelsMini {
    scalar: Vec<KernelOutput>,
    vectorized: Vec<KernelOutput>,
}

/// Mini kernel fixture: the mixed batch replayed on both kernel
/// backends from the same base seed, in one versioned document. Pins
/// the scalar bytes (any drift is a golden diff) *and* the vectorized
/// bytes (the fused kernels are deterministic per seed too — their own
/// noise stream, but a replay-stable one).
pub fn kernels_mini(pool: &WorkerPool) -> String {
    let scalar = BatchEngine::realistic(81).execute(pool, kernels_batch());
    let vectorized = BatchEngine::realistic(81)
        .with_backend(KernelBackend::Vectorized)
        .execute(pool, kernels_batch());
    crate::table::versioned_pretty(&KernelsMini { scalar, vectorized })
}

/// A named golden-fixture generator.
pub type GoldenCase = (&'static str, fn(&WorkerPool) -> String);

/// The golden fixture set: `(name, generator)` in fixture order.
pub fn cases() -> Vec<GoldenCase> {
    vec![
        ("e12_mini", e12_mini as fn(&WorkerPool) -> String),
        ("e13_mini", e13_mini),
        ("e14_mini", e14_mini),
        ("e17_mini", e17_mini),
        ("e18_mini", e18_mini),
        ("e20_mini", crate::shard::e20_mini),
        ("e21_mini", crate::ingest::e21_mini),
        ("kernels_mini", kernels_mini),
    ]
}

/// First-divergence diff between a fixture and a regenerated document:
/// `None` when identical, otherwise a readable report naming the first
/// differing line with two lines of context on each side.
pub fn first_divergence(name: &str, golden: &str, current: &str) -> Option<String> {
    if golden == current {
        return None;
    }
    let g: Vec<&str> = golden.lines().collect();
    let c: Vec<&str> = current.lines().collect();
    let mut line = 0;
    while line < g.len() && line < c.len() && g[line] == c[line] {
        line += 1;
    }
    let mut out = format!(
        "golden fixture {name:?} drifted at line {} ({} golden lines, {} current)\n",
        line + 1,
        g.len(),
        c.len()
    );
    let lo = line.saturating_sub(2);
    for (label, side) in [("golden ", &g), ("current", &c)] {
        for (i, text) in side.iter().enumerate().take(line + 3).skip(lo) {
            let marker = if i == line { ">" } else { " " };
            out.push_str(&format!("{marker} {label} {:>5} | {text}\n", i + 1));
        }
    }
    out.push_str("regenerate with: cargo run -p ofpc-bench --bin golden_regen\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_reports_first_differing_line() {
        assert!(first_divergence("x", "a\nb\nc", "a\nb\nc").is_none());
        let diff = first_divergence("x", "a\nb\nc", "a\nB\nc").expect("differs");
        assert!(diff.contains("line 2"), "{diff}");
        assert!(diff.contains("golden_regen"), "{diff}");
    }

    #[test]
    fn case_names_are_unique_and_stable() {
        let names: Vec<&str> = cases().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "e12_mini",
                "e13_mini",
                "e14_mini",
                "e17_mini",
                "e18_mini",
                "e20_mini",
                "e21_mini",
                "kernels_mini"
            ]
        );
    }
}
