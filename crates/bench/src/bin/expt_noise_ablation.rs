//! E10 — §4's called-out challenge: "new algorithms to mitigate photonic
//! noise during computation and achieve high accuracy."
//!
//! Two mitigation knobs, each ablated on the glyph-classification task:
//!
//! 1. **Device calibration** (gain/offset): run the P1 unit with its
//!    calibration replaced by the nominal (loss-blind) constants and
//!    watch dot-product precision collapse.
//! 2. **Photonics-aware training**: train the DNN against the exact
//!    ReLU, then execute on the photonic activation (mismatch), versus
//!    training against the measured transfer curve (matched). Accuracy
//!    recovers under matched training.

use ofpc_apps::ml::{
    accuracy_photonic, accuracy_with_activation, deploy_curve_trained, synthetic_glyphs, train_mlp,
    TrainActivation, TrainConfig,
};
use ofpc_bench::table::{dump_json, Table};
use ofpc_engine::calibration::DotCalibration;
use ofpc_engine::dnn::PhotonicDnn;
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_engine::nonlinear::NonlinearUnit;
use ofpc_engine::precision::measure_precision;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize, Default)]
struct E10Result {
    calibrated_rms: f64,
    uncalibrated_rms: f64,
    calibrated_bits: f64,
    uncalibrated_bits: f64,
    relu_trained_digital_acc: f64,
    relu_trained_photonic_acc: f64,
    curve_trained_digital_acc: f64,
    curve_trained_photonic_acc: f64,
}

fn main() {
    println!("E10: noise-mitigation ablations\n");
    let mut result = E10Result::default();

    // ---- Ablation 1: calibration ----
    let make_unit = |calibrated: bool| -> DotProductUnit {
        let mut rng = SimRng::seed_from_u64(10);
        let mut cfg = DotUnitConfig::ideal();
        cfg.mzm_a.insertion_loss_db = 3.5;
        cfg.mzm_b.insertion_loss_db = 3.5;
        cfg.pd.shot_noise = true;
        let mut unit = DotProductUnit::new(cfg.clone(), &mut rng);
        if calibrated {
            unit.calibrate(512);
        } else {
            // Nominal constants: responsivity × laser power, loss-blind.
            let p0 = ofpc_photonics::units::dbm_to_watts(cfg.laser.power_dbm);
            unit.set_calibration(DotCalibration {
                unit_current_a: cfg.pd.responsivity_a_w * p0,
                dark_current_a: 0.0,
            });
        }
        unit
    };
    let mut prng = SimRng::seed_from_u64(11);
    let cal = measure_precision(&mut make_unit(true), 64, 25, &mut prng);
    let mut prng = SimRng::seed_from_u64(11);
    let uncal = measure_precision(&mut make_unit(false), 64, 25, &mut prng);
    let mut t = Table::new(
        "ablation 1 — gain/offset calibration (P1, n=64)",
        &["configuration", "rms error", "effective bits"],
    );
    t.row(&[
        "calibrated".into(),
        format!("{:.2e}", cal.rms_error),
        format!("{:.2}", cal.effective_bits),
    ]);
    t.row(&[
        "uncalibrated (nominal)".into(),
        format!("{:.2e}", uncal.rms_error),
        format!("{:.2}", uncal.effective_bits),
    ]);
    t.print();
    result.calibrated_rms = cal.rms_error;
    result.uncalibrated_rms = uncal.rms_error;
    result.calibrated_bits = cal.effective_bits;
    result.uncalibrated_bits = uncal.effective_bits;
    assert!(
        uncal.rms_error > 10.0 * cal.rms_error,
        "calibration must matter: {:.2e} vs {:.2e}",
        uncal.rms_error,
        cal.rms_error
    );

    // ---- Ablation 2: photonics-aware training ----
    let mut rng = SimRng::seed_from_u64(12);
    let train = synthetic_glyphs(30, 0.08, &mut rng);
    let test = synthetic_glyphs(12, 0.08, &mut rng);
    let curve = NonlinearUnit::ideal().transfer_curve(64);
    let scale = 4.0;

    // (a) ReLU-trained, photonic execution (mismatched).
    let relu_mlp = train_mlp(
        &[64, 16, 4],
        &train,
        TrainConfig::default(),
        &TrainActivation::Relu,
        &mut rng,
    );
    result.relu_trained_digital_acc = ofpc_apps::ml::accuracy_digital(&relu_mlp, &test);
    let engine = {
        let mut erng = SimRng::seed_from_u64(13);
        let mut e = PhotonicMatVec::new(DotUnitConfig::ideal(), 4, &mut erng);
        e.calibrate(64);
        e
    };
    let calib: Vec<Vec<f64>> = train.images.iter().take(16).cloned().collect();
    let mut relu_pdnn = PhotonicDnn::new(&relu_mlp, engine, NonlinearUnit::ideal(), &calib);
    result.relu_trained_photonic_acc = accuracy_photonic(&mut relu_pdnn, &test);

    // (b) curve-trained, photonic execution (matched).
    let act = TrainActivation::ScaledCurve {
        curve: curve.clone(),
        scale,
    };
    let curve_mlp = train_mlp(&[64, 16, 4], &train, TrainConfig::default(), &act, &mut rng);
    result.curve_trained_digital_acc = accuracy_with_activation(&curve_mlp, &test, &act);
    let mut curve_pdnn = deploy_curve_trained(&curve_mlp, scale, 4, &mut rng);
    result.curve_trained_photonic_acc = accuracy_photonic(&mut curve_pdnn, &test);

    let mut t = Table::new(
        "ablation 2 — photonics-aware training (glyph classification)",
        &["training", "digital acc", "photonic acc"],
    );
    t.row(&[
        "exact ReLU (mismatched)".into(),
        format!("{:.2}", result.relu_trained_digital_acc),
        format!("{:.2}", result.relu_trained_photonic_acc),
    ]);
    t.row(&[
        "measured curve (matched)".into(),
        format!("{:.2}", result.curve_trained_digital_acc),
        format!("{:.2}", result.curve_trained_photonic_acc),
    ]);
    t.print();

    assert!(
        result.curve_trained_photonic_acc >= result.relu_trained_photonic_acc,
        "matched training must not be worse photonic-side"
    );
    assert!(
        result.curve_trained_photonic_acc >= 0.8,
        "matched training should restore high accuracy ({})",
        result.curve_trained_photonic_acc
    );
    println!(
        "\nphotonic accuracy: {:.2} (ReLU-trained) → {:.2} (curve-trained)",
        result.relu_trained_photonic_acc, result.curve_trained_photonic_acc
    );
    dump_json("e10_noise_ablation", &result);
}
