//! E13 — fault injection & failure recovery: availability vs MTBF,
//! time-to-recovery after a fiber cut, and graceful digital fallback.
//!
//! Three sub-experiments over the Fig. 1 WAN and a metro serving
//! deployment:
//!
//! * **Availability sweep** — seeded random fault plans (fiber cuts and
//!   engine hard-fails from MTBF/MTTR renewal processes) replayed
//!   through the full recovery loop (reconverge → re-allocate →
//!   staged re-install). Availability must degrade monotonically as
//!   MTBF shrinks, and every recovery's TTR must respect the
//!   [`RecoveryParams::ttr_bound_ps`] bound.
//! * **Cut + protection switching** — a targeted fiber cut on the
//!   primary path; goodput (computed deliveries per injected packet)
//!   after recovery must reach ≥ 90% of the pre-fault level.
//! * **Digital fallback** — the serving runtime under an engine-outage
//!   schedule, with and without the digital fallback. The fallback
//!   answers displaced requests exactly (digital arithmetic carries no
//!   analog noise) at worse latency/energy, so the shed rate must drop
//!   below the no-fallback baseline while correctness stays 100%.

use ofpc_apps::digital::ComputeModel;
use ofpc_bench::table::{dump_json, Table};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::protection::RecoveryParams;
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_faults::{AvailabilityLedger, FaultKind, FaultPlan, MtbfSpec, Orchestrator};
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, EngineFaultEvent, ServeConfig, ServeReport, ServeRuntime, TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::Serialize;

const SEED: u64 = 13;
const P1: Primitive = Primitive::VectorDotProduct;

fn solver() -> Solver {
    Solver::Exact {
        node_budget: 1_000_000,
    }
}

/// Fig. 1 WAN with compute sites at B and C and one A→D demand.
fn fig1_system() -> OnFiberNetwork {
    let mut sys = OnFiberNetwork::new(Topology::fig1(), SEED);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    sys.submit_demand(
        Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
        OpSpec::Dot {
            weights: vec![0.25; 8],
        },
    );
    sys
}

fn compute_packet(id: u32) -> Packet {
    Packet::compute(
        Network::node_addr(NodeId(0), 1),
        Network::node_addr(NodeId(3), 1),
        id,
        PchHeader::request(P1, 1, 8),
        Packet::encode_operands(&[0.5; 8]),
    )
}

// ---------------------------------------------------------------- E13a

#[derive(Debug, Serialize)]
struct AvailRow {
    mtbf_ms: f64,
    hard_faults: usize,
    availability: f64,
    downtime_ms: f64,
    p50_ttr_us: f64,
    p99_ttr_us: f64,
    ttr_bound_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64
}

/// Replay a random fault plan through the recovery loop, folding every
/// outage into the ledger. Returns (row, ttrs).
fn availability_run(mtbf_ps: u64, horizon_ps: u64) -> AvailRow {
    let mut sys = fig1_system();
    let orch = Orchestrator::new(RecoveryParams::default(), solver());
    sys.allocate_and_apply(orch.solver);

    let mut rng = SimRng::seed_from_u64(SEED);
    // Engine faults on one site only: the survivor keeps the demand
    // satisfiable, so outages are bounded by recovery, not repair.
    let spec = MtbfSpec {
        link_mtbf_ps: Some(mtbf_ps),
        engine_mtbf_ps: Some(mtbf_ps),
        mttr_ps: 20_000_000_000, // 20 ms to splice / swap hardware
    };
    let plan = FaultPlan::random(&sys.net.topo, &[NodeId(1)], horizon_ps, spec, &mut rng);

    let mut ledger = AvailabilityLedger::new(horizon_ps);
    let mut ttrs: Vec<u64> = Vec::new();
    // When a fault leaves the demand unsatisfiable (e.g. overlapping
    // cuts disconnecting A from D), the outage stays open until a
    // repair brings service back.
    let mut down_since: Option<u64> = None;
    for ev in &plan.events {
        let out = match ev.kind {
            FaultKind::FiberCut { link } => {
                sys.net.set_link_up(link, false);
                let out = orch.recover_from_cut(&mut sys, ev.at_ps);
                ttrs.push(out.timeline.ttr_ps());
                out
            }
            FaultKind::LinkRestore { link } => {
                sys.net.set_link_up(link, true);
                orch.recover_from_cut(&mut sys, ev.at_ps)
            }
            FaultKind::EngineFail { node } => {
                let out = orch.recover_from_engine_fail(&mut sys, &[node], ev.at_ps);
                ttrs.push(out.timeline.ttr_ps());
                out
            }
            FaultKind::EngineRepair { node } => {
                sys.repair_site(node);
                orch.recover_from_cut(&mut sys, ev.at_ps)
            }
            FaultKind::NoiseStep { .. } => continue,
        };
        let serving = out.unsatisfied == 0 && out.fully_applied;
        let is_fault = matches!(
            ev.kind,
            FaultKind::FiberCut { .. } | FaultKind::EngineFail { .. }
        );
        match (serving, down_since) {
            (true, Some(since)) => {
                // Repair (or a parallel-path recovery) brought service
                // back: close the long outage at this re-install.
                ledger.record(since, out.timeline.installed_at_ps);
                down_since = None;
            }
            (true, None) if is_fault => ledger.record_recovery(&out.timeline),
            (false, None) => down_since = Some(ev.at_ps),
            _ => {}
        }
    }
    if let Some(since) = down_since {
        ledger.record(since, horizon_ps);
    }

    ttrs.sort_unstable();
    let bound = orch.recovery.ttr_bound_ps(sys.net.topo.node_count());
    AvailRow {
        mtbf_ms: mtbf_ps as f64 / 1e9,
        hard_faults: plan.fault_count(),
        availability: ledger.availability(),
        downtime_ms: ledger.downtime_ps() as f64 / 1e9,
        p50_ttr_us: percentile(&ttrs, 0.50) / 1e6,
        p99_ttr_us: percentile(&ttrs, 0.99) / 1e6,
        ttr_bound_us: bound as f64 / 1e6,
    }
}

// ---------------------------------------------------------------- E13b

#[derive(Debug, Serialize)]
struct CutRow {
    injected_per_phase: u64,
    computed_before: u64,
    computed_after: u64,
    goodput_recovery: f64,
    ttr_us: f64,
    ttr_bound_us: f64,
    routers_updated: usize,
}

/// Targeted cut on the A-side primary link: compare computed-delivery
/// goodput before the fault and after recovery.
fn cut_and_recover() -> CutRow {
    let mut sys = fig1_system();
    let orch = Orchestrator::new(RecoveryParams::default(), solver());
    sys.allocate_and_apply(orch.solver);

    const N: u64 = 200;
    const GAP_PS: u64 = 1_000_000; // 1 µs spacing
    for i in 0..N {
        sys.net
            .inject(i * GAP_PS, NodeId(0), compute_packet(i as u32 + 1));
    }
    sys.net.run_to_idle();
    let computed_before = sys
        .net
        .stats
        .delivered
        .iter()
        .filter(|d| d.computed)
        .count() as u64;

    // Cut the first link out of A (on the installed primary path).
    let a = sys.net.topo.find_node("A").unwrap();
    let (cut_link, _) = sys.net.topo.neighbors(a)[0];
    sys.net.set_link_up(cut_link, false);
    let fault_at = sys.net.now_ps(); // cut strikes once phase 1 quiesced
    let out = orch.recover_from_cut(&mut sys, fault_at);
    assert!(out.fully_applied, "recovery re-install must apply cleanly");
    assert_eq!(out.unsatisfied, 0, "survivor path must absorb the demand");

    let resume = out.timeline.installed_at_ps;
    for i in 0..N {
        sys.net.inject(
            resume + i * GAP_PS,
            NodeId(0),
            compute_packet((N + i) as u32 + 1),
        );
    }
    sys.net.run_to_idle();
    let computed_total = sys
        .net
        .stats
        .delivered
        .iter()
        .filter(|d| d.computed)
        .count() as u64;
    let computed_after = computed_total - computed_before;

    CutRow {
        injected_per_phase: N,
        computed_before,
        computed_after,
        goodput_recovery: computed_after as f64 / computed_before.max(1) as f64,
        ttr_us: out.timeline.ttr_ps() as f64 / 1e6,
        ttr_bound_us: orch.recovery.ttr_bound_ps(sys.net.topo.node_count()) as f64 / 1e6,
        routers_updated: out.routers_updated,
    }
}

// ---------------------------------------------------------------- E13c

#[derive(Debug, Serialize)]
struct FallbackRow {
    fallback: bool,
    arrivals: u64,
    completed: u64,
    shed: u64,
    degraded: u64,
    shed_rate: f64,
    degraded_rate: f64,
    goodput_rps: f64,
    degraded_energy_j: f64,
    energy_total_j: f64,
    report: ServeReport,
}

/// A double-site outage window mid-run: node 1 fails first, node 2
/// joins (zero photonic capacity), then both repair in reverse order.
fn outage_schedule() -> Vec<EngineFaultEvent> {
    vec![
        EngineFaultEvent {
            at_ps: 500_000_000,
            node: NodeId(1),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 800_000_000,
            node: NodeId(2),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 1_200_000_000,
            node: NodeId(2),
            up: true,
        },
        EngineFaultEvent {
            at_ps: 1_500_000_000,
            node: NodeId(1),
            up: true,
        },
    ]
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        seed: SEED,
        horizon_ps: 2_000_000_000,
        drain_grace_ps: 1_000_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000,
        },
        tenants: vec![TenantSpec {
            name: "steady".to_string(),
            weight: 1,
            queue_capacity: 96,
            arrivals: ArrivalSpec::Poisson { rate_rps: 6e6 },
            primitive: P1,
            operand_len: 2048,
            deadline_ps: 2_000_000_000,
        }],
        verify_every: 256,
    }
}

fn serve_under_faults(fallback: bool) -> ServeReport {
    let mut sys = OnFiberNetwork::new(Topology::line(3, 10.0), SEED);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    let mut rt = ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        4,
        serve_config(),
    )
    .with_engine_faults(&outage_schedule());
    if fallback {
        rt = rt.with_digital_fallback(ComputeModel::cpu());
    }
    rt.run()
}

fn main() {
    // --- E13a: availability vs MTBF ---
    // Each MTBF point replays its own seeded fault plan against its own
    // copy of the system: independent scenarios, scattered across the
    // pool with rows gathered in sweep order.
    let pool = WorkerPool::from_env();
    let horizon_ps = 2_000_000_000_000; // 2 s of virtual time
    let mtbf_ms = [20.0_f64, 80.0, 320.0, 1_280.0];
    let avail: Vec<AvailRow> = pool.scatter_gather("e13a-mtbf", mtbf_ms.to_vec(), |_, m| {
        availability_run((m * 1e9) as u64, horizon_ps)
    });

    let mut t = Table::new(
        "E13a — availability vs MTBF (2 s horizon, MTTR 20 ms)",
        &[
            "MTBF ms",
            "faults",
            "availability",
            "downtime ms",
            "p50 TTR µs",
            "p99 TTR µs",
            "bound µs",
        ],
    );
    for r in &avail {
        t.row(&[
            format!("{:.0}", r.mtbf_ms),
            format!("{}", r.hard_faults),
            format!("{:.5}", r.availability),
            format!("{:.2}", r.downtime_ms),
            format!("{:.0}", r.p50_ttr_us),
            format!("{:.0}", r.p99_ttr_us),
            format!("{:.0}", r.ttr_bound_us),
        ]);
    }
    t.print();

    for w in avail.windows(2) {
        assert!(
            w[0].availability <= w[1].availability + 1e-12,
            "availability must degrade as MTBF shrinks: {} ms → {:.5}, {} ms → {:.5}",
            w[0].mtbf_ms,
            w[0].availability,
            w[1].mtbf_ms,
            w[1].availability
        );
    }
    for r in &avail {
        assert!(
            r.p99_ttr_us <= r.ttr_bound_us,
            "p99 TTR {} µs exceeds the staged-install bound {} µs",
            r.p99_ttr_us,
            r.ttr_bound_us
        );
    }

    // --- E13b: fiber cut + protection switching ---
    let cut = cut_and_recover();
    let mut t = Table::new(
        "E13b — fiber cut, protection switching",
        &[
            "injected",
            "computed pre",
            "computed post",
            "recovery",
            "TTR µs",
            "bound µs",
            "routers",
        ],
    );
    t.row(&[
        format!("{}", cut.injected_per_phase),
        format!("{}", cut.computed_before),
        format!("{}", cut.computed_after),
        format!("{:.1}%", cut.goodput_recovery * 100.0),
        format!("{:.0}", cut.ttr_us),
        format!("{:.0}", cut.ttr_bound_us),
        format!("{}", cut.routers_updated),
    ]);
    t.print();
    assert!(
        cut.goodput_recovery >= 0.9,
        "post-recovery goodput {:.2} must reach 90% of pre-fault",
        cut.goodput_recovery
    );
    assert!(cut.ttr_us <= cut.ttr_bound_us, "TTR exceeds bound");

    // --- E13c: graceful digital fallback ---
    let rows: Vec<FallbackRow> =
        pool.scatter_gather("e13c-fallback", vec![false, true], |_, fb| {
            let report = serve_under_faults(fb);
            FallbackRow {
                fallback: fb,
                arrivals: report.arrivals,
                completed: report.completed,
                shed: report.shed,
                degraded: report.degraded,
                shed_rate: report.shed_rate,
                degraded_rate: report.degraded_rate,
                goodput_rps: report.goodput_rps,
                degraded_energy_j: report.degraded_energy_j,
                energy_total_j: report.energy_total_j,
                report,
            }
        });

    let mut t = Table::new(
        "E13c — engine outage: digital fallback vs shedding",
        &[
            "fallback",
            "arrivals",
            "completed",
            "shed",
            "degraded",
            "shed %",
            "goodput Mrps",
            "energy mJ",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{}", r.fallback),
            format!("{}", r.arrivals),
            format!("{}", r.completed),
            format!("{}", r.shed),
            format!("{}", r.degraded),
            format!("{:.1}", r.shed_rate * 100.0),
            format!("{:.2}", r.goodput_rps / 1e6),
            format!("{:.2}", r.energy_total_j * 1e3),
        ]);
    }
    t.print();

    let (no_fb, fb) = (&rows[0], &rows[1]);
    assert!(
        no_fb.shed > 0,
        "the outage window must displace work in the baseline"
    );
    assert!(fb.degraded > 0, "fallback must absorb displaced requests");
    assert!(
        fb.shed_rate < no_fb.shed_rate,
        "fallback shed rate {:.4} must undercut the baseline {:.4}",
        fb.shed_rate,
        no_fb.shed_rate
    );
    // Every degraded answer is exact (digital arithmetic), so answered
    // fraction strictly improves with fallback on.
    assert!(
        fb.completed + fb.degraded > no_fb.completed,
        "fallback must answer more requests than the shedding baseline"
    );
    // Determinism: the fault scenario replays byte-identical.
    let replay = serde_json::to_string(&serve_under_faults(true)).unwrap();
    let first = serde_json::to_string(&fb.report).unwrap();
    assert_eq!(first, replay, "same seed + same fault plan ⇒ same report");

    println!(
        "fallback answered {} displaced requests exactly ({} shed avoided), \
         at {:.1} nJ/degraded-request of digital energy",
        fb.degraded,
        no_fb.shed - fb.shed,
        fb.degraded_energy_j * 1e9 / fb.degraded.max(1) as f64
    );

    #[derive(Serialize)]
    struct E13 {
        availability: Vec<AvailRow>,
        cut_recovery: CutRow,
        fallback: Vec<FallbackRow>,
    }
    dump_json(
        "e13_faults",
        &E13 {
            availability: avail,
            cut_recovery: cut,
            fallback: rows,
        },
    );
}
