//! E4 — Table 1: every use-case row, end to end, with its displaced
//! baseline.
//!
//! For each of the paper's eight use cases we run the photonic
//! implementation and its "current compute location" baseline on the
//! same workload and report correctness plus the latency/energy deltas.
//! The *shape* to reproduce: the photonic path matches the baseline's
//! answers while cutting the compute-energy bill and (for the
//! cloud-served rows) the latency.

use ofpc_apps::digital::{ComputeModel, Placement, RequestModel};
use ofpc_apps::encryption::{bits_of, DigitalCipher, PhotonicCipher};
use ofpc_apps::intrusion::{synthesize_traffic, AhoCorasick, PhotonicIds};
use ofpc_apps::iprouting::{random_rules, PhotonicLpm, TcamModel};
use ofpc_apps::loadbalance::{run_lb, Balancer};
use ofpc_apps::mimo::{measure_ser, Detector};
use ofpc_apps::ml::{
    accuracy_photonic, accuracy_with_activation, deploy_curve_trained, synthetic_glyphs, train_mlp,
    TrainActivation, TrainConfig,
};
use ofpc_apps::video::{decode_frame, encode_frame, psnr, synthetic_frame, Transform};
use ofpc_bench::table::{dump_json, Table};
use ofpc_engine::comparator::{ComparatorConfig, PhotonicComparator};
use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_engine::nonlinear::NonlinearUnit;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct UseCaseRow {
    use_case: String,
    primitive: String,
    photonic_metric: String,
    baseline_metric: String,
    verdict: String,
}

fn main() {
    println!("E4: Table 1 — all use cases, photonic vs current compute location\n");
    let mut rows: Vec<UseCaseRow> = Vec::new();
    let mut t = Table::new(
        "Table 1 reproduction",
        &["use case", "prim", "photonic", "baseline", "verdict"],
    );
    let mut push = |r: UseCaseRow, t: &mut Table| {
        t.row(&[
            r.use_case.clone(),
            r.primitive.clone(),
            r.photonic_metric.clone(),
            r.baseline_metric.clone(),
            r.verdict.clone(),
        ]);
        rows.push(r);
    };

    // ---- C1.1 ML inference ----
    {
        let mut rng = SimRng::seed_from_u64(1);
        let train = synthetic_glyphs(30, 0.08, &mut rng);
        let test = synthetic_glyphs(12, 0.08, &mut rng);
        let curve = NonlinearUnit::ideal().transfer_curve(64);
        let act = TrainActivation::ScaledCurve { curve, scale: 4.0 };
        let mlp = train_mlp(&[64, 16, 4], &train, TrainConfig::default(), &act, &mut rng);
        let digital_acc = accuracy_with_activation(&mlp, &test, &act);
        let mut pdnn = deploy_curve_trained(&mlp, 4.0, 4, &mut rng);
        let photonic_acc = accuracy_photonic(&mut pdnn, &test);
        push(
            UseCaseRow {
                use_case: "ML inference".into(),
                primitive: "P1+P3".into(),
                photonic_metric: format!("acc {photonic_acc:.2}"),
                baseline_metric: format!("acc {digital_acc:.2} (cloud TPU)"),
                verdict: if photonic_acc >= digital_acc - 0.1 {
                    "OK"
                } else {
                    "DEGRADED"
                }
                .into(),
            },
            &mut t,
        );
        assert!(photonic_acc >= digital_acc - 0.15);
    }

    // ---- C1.2 Video encoding ----
    {
        let mut rng = SimRng::seed_from_u64(2);
        let frame = synthetic_frame(32, 16, 0, &mut rng);
        let mut digital = Transform::Digital;
        let dec_d = decode_frame(&encode_frame(&frame, 0.8, &mut digital), 32, 16, 0.8);
        let psnr_d = psnr(&frame, &dec_d);
        let mut engine = PhotonicMatVec::ideal(8);
        let mut photonic = Transform::Photonic(&mut engine);
        let dec_p = decode_frame(&encode_frame(&frame, 0.8, &mut photonic), 32, 16, 0.8);
        let psnr_p = psnr(&frame, &dec_p);
        push(
            UseCaseRow {
                use_case: "Video encoding".into(),
                primitive: "P1".into(),
                photonic_metric: format!("PSNR {psnr_p:.1} dB"),
                baseline_metric: format!("PSNR {psnr_d:.1} dB (edge)"),
                verdict: if psnr_p > psnr_d - 3.0 {
                    "OK"
                } else {
                    "DEGRADED"
                }
                .into(),
            },
            &mut t,
        );
        assert!(psnr_p > psnr_d - 3.0);
    }

    // ---- C2.1 IP routing ----
    {
        let mut rng = SimRng::seed_from_u64(3);
        let rules = random_rules(32, &mut rng);
        let mut tcam = TcamModel::new(rules.clone());
        let mut plpm = PhotonicLpm::ideal(rules);
        let lookups = 50;
        let mut agree = 0;
        for _ in 0..lookups {
            let a = ofpc_net::Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            if plpm.lookup(a) == tcam.lookup(a) {
                agree += 1;
            }
        }
        push(
            UseCaseRow {
                use_case: "IP routing".into(),
                primitive: "P2".into(),
                photonic_metric: format!("{agree}/{lookups} agree"),
                baseline_metric: format!("TCAM {:.2e} J", tcam.energy_j()),
                verdict: if agree == lookups { "OK" } else { "MISMATCH" }.into(),
            },
            &mut t,
        );
        assert_eq!(agree, lookups);
    }

    // ---- C2.2 Intrusion detection ----
    {
        let mut rng = SimRng::seed_from_u64(4);
        let signatures = vec![b"ATTACK".to_vec(), b"EVIL".to_vec(), b"WORM!".to_vec()];
        let (payloads, _) = synthesize_traffic(15, 64, &signatures, 0.6, &mut rng);
        let mut ac = AhoCorasick::new(&signatures);
        let mut ids = PhotonicIds::ideal(&signatures);
        let mut agree = 0;
        for p in &payloads {
            if ids.scan(p) == ac.scan(p) {
                agree += 1;
            }
        }
        push(
            UseCaseRow {
                use_case: "Intrusion detection".into(),
                primitive: "P2".into(),
                photonic_metric: format!("{agree}/{} payloads agree", payloads.len()),
                baseline_metric: "Aho-Corasick (server)".into(),
                verdict: if agree == payloads.len() {
                    "OK"
                } else {
                    "MISMATCH"
                }
                .into(),
            },
            &mut t,
        );
        assert_eq!(agree, payloads.len());
    }

    // ---- C2.3 Data encryption ----
    {
        let mut rng = SimRng::seed_from_u64(5);
        let mut alice = PhotonicCipher::new(0xFEED, &mut rng);
        let mut bob = PhotonicCipher::new(0xFEED, &mut rng);
        let msg = bits_of(b"on-fiber confidentiality test payload");
        let phases = alice.encrypt_bits(&msg);
        let ok = bob.decrypt_phases(&phases) == msg;
        let mut cpu = DigitalCipher::new(0xFEED);
        cpu.process(&vec![0u8; msg.len() / 8]);
        push(
            UseCaseRow {
                use_case: "Data encryption".into(),
                primitive: "P1/P2 (phase)".into(),
                photonic_metric: format!("{:.2e} J", alice.energy_j()),
                baseline_metric: format!("{:.2e} J (CPU)", cpu.energy_j()),
                verdict: if ok && alice.energy_j() < cpu.energy_j() {
                    "OK"
                } else {
                    "FAIL"
                }
                .into(),
            },
            &mut t,
        );
        assert!(ok);
    }

    // ---- C2.4 Load balancing ----
    {
        let mut rng = SimRng::seed_from_u64(6);
        let mut ecmp = Balancer::EcmpHash;
        let r_ecmp = run_lb(&mut ecmp, 24, 12, 8_000, 150_000, 0.9, &mut rng);
        let mut cfg = ComparatorConfig::ideal();
        cfg.dead_zone = 0.01;
        let mut cmp_rng = SimRng::seed_from_u64(60);
        let mut phot = Balancer::Photonic(Box::new(PhotonicComparator::new(cfg, &mut cmp_rng)));
        let r_phot = run_lb(&mut phot, 24, 12, 8_000, 150_000, 0.9, &mut rng);
        push(
            UseCaseRow {
                use_case: "Load balancing".into(),
                primitive: "P2 (comparator)".into(),
                photonic_metric: format!(
                    "p99 {:.2} ms, drops {}",
                    r_phot.p99_latency_ms, r_phot.drops
                ),
                baseline_metric: format!(
                    "p99 {:.2} ms, drops {} (ECMP)",
                    r_ecmp.p99_latency_ms, r_ecmp.drops
                ),
                verdict: if r_phot.drops <= r_ecmp.drops {
                    "OK"
                } else {
                    "WORSE"
                }
                .into(),
            },
            &mut t,
        );
        assert!(r_phot.drops <= r_ecmp.drops);
    }

    // ---- C2.5 Massive MIMO ----
    {
        let mut rng_d = SimRng::seed_from_u64(7);
        let mut det_d = Detector::Digital;
        let ser_d = measure_ser(8, 4, 12.0, 80, &mut det_d, &mut rng_d);
        let mut rng_p = SimRng::seed_from_u64(7);
        let mut engine = PhotonicMatVec::ideal(8);
        let mut det_p = Detector::Photonic(&mut engine);
        let ser_p = measure_ser(8, 4, 12.0, 80, &mut det_p, &mut rng_p);
        push(
            UseCaseRow {
                use_case: "Massive MIMO".into(),
                primitive: "P1+P3".into(),
                photonic_metric: format!("SER {ser_p:.3}"),
                baseline_metric: format!("SER {ser_d:.3} (DC server)"),
                verdict: if ser_p <= ser_d + 0.05 {
                    "OK"
                } else {
                    "DEGRADED"
                }
                .into(),
            },
            &mut t,
        );
        assert!(ser_p <= ser_d + 0.05);
    }

    // ---- Latency/energy summary row (the Table-1 bottleneck story) ----
    {
        let req = RequestModel {
            path_km: 1500.0,
            macs: 100_000,
            bytes: 1_500,
            line_rate_bps: 100e9,
        };
        let cloud = req.latency_s(&Placement::Cloud { detour_km: 400.0 }, &ComputeModel::tpu());
        let onfiber = req.latency_s(&Placement::OnFiber, &ComputeModel::photonic());
        let e_cloud = req.compute_energy_j(&ComputeModel::tpu());
        let e_fiber = req.compute_energy_j(&ComputeModel::photonic());
        push(
            UseCaseRow {
                use_case: "(common model)".into(),
                primitive: "—".into(),
                photonic_metric: format!("{:.2} ms, {:.1e} J", onfiber * 1e3, e_fiber),
                baseline_metric: format!("{:.2} ms, {:.1e} J", cloud * 1e3, e_cloud),
                verdict: "OK".into(),
            },
            &mut t,
        );
        assert!(onfiber < cloud && e_fiber < e_cloud);
    }

    t.print();
    dump_json("e4_table1_usecases", &rows);
    println!("all {} use-case rows verified", rows.len());
}
