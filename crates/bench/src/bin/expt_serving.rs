//! E12 — request serving on the photonic substrate: offered load vs
//! latency, goodput, and shed rate, with dynamic batching on and off.
//!
//! A metro deployment (three 10 km spans, two upgraded sites) serves two
//! tenants — a steady Poisson tenant with weight 3 and a bursty MMPP
//! tenant with weight 1 — through the full `ofpc-serve` pipeline:
//! admission (bounded queues, DRR weighted fair sharing), dynamic
//! batching into WDM wavelength batches, EDF dispatch onto the
//! transponder inventory, explicit load shedding.
//!
//! The sweep crosses the saturation knee. Expected shape:
//!
//! * **batching beats no-batching on goodput at high load** — batches
//!   amortize the fixed reconfiguration/settling costs across WDM
//!   channels, so the saturation ceiling sits higher;
//! * **p99 latency and shed rate rise monotonically past the knee** —
//!   open-loop arrivals keep coming, queues fill, backpressure sheds;
//! * **bit-for-bit reproducible** under the fixed seed (the replay tests
//!   pin the same property).

use ofpc_bench::table::{dump_json, Table};
use ofpc_core::OnFiberNetwork;
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_serve::{
    ArrivalSpec, BatchClass, BatchPolicy, ServeConfig, ServeReport, ServeRuntime, ServiceModel,
    TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::Serialize;

const SEED: u64 = 12;
const WDM_CHANNELS: usize = 4;
const OPERAND_LEN: usize = 2048;
const HORIZON_PS: u64 = 2_000_000_000; // 2 ms of arrivals
const DRAIN_PS: u64 = 1_000_000_000;

fn deployment() -> OnFiberNetwork {
    // Front-end at node 0; compute transponders at the two downstream
    // metro sites (10 km spans — ~49 µs of glass each way per span).
    let mut sys = OnFiberNetwork::new(Topology::line(3, 10.0), SEED);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    sys
}

/// Aggregate slot capacity in requests/s with full, affinity-hot batches
/// — the expected saturation knee.
fn capacity_rps(model: &ServiceModel, slots: usize, max_batch: usize) -> f64 {
    let class = BatchClass {
        primitive: Primitive::VectorDotProduct,
        operand_len: OPERAND_LEN as u32,
    };
    let (service_ps, _) = model.batch_service(class, max_batch, Some(class));
    slots as f64 * max_batch as f64 / (service_ps as f64 * 1e-12)
}

fn config(total_rps: f64, batching: bool) -> ServeConfig {
    let batch = if batching {
        BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000, // 5 µs
        }
    } else {
        BatchPolicy::disabled()
    };
    ServeConfig {
        seed: SEED,
        horizon_ps: HORIZON_PS,
        drain_grace_ps: DRAIN_PS,
        batch,
        tenants: vec![
            TenantSpec {
                name: "steady".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: total_rps * 0.75,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: OPERAND_LEN,
                deadline_ps: 2_000_000_000, // 2 ms
            },
            TenantSpec {
                name: "bursty".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Mmpp {
                    calm_rps: total_rps * 0.125,
                    burst_rps: total_rps * 1.125,
                    mean_calm_s: 200e-6,
                    mean_burst_s: 50e-6,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: OPERAND_LEN,
                deadline_ps: 2_000_000_000,
            },
        ],
        verify_every: 256,
    }
}

fn run(total_rps: f64, batching: bool) -> ServeReport {
    let sys = deployment();
    ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        WDM_CHANNELS,
        config(total_rps, batching),
    )
    .with_verify_backend(ofpc_engine::dot::KernelBackend::Vectorized)
    .run()
}

#[derive(Debug, Serialize)]
struct E12Row {
    load_frac: f64,
    offered_rps: f64,
    batching: bool,
    goodput_rps: f64,
    shed_rate: f64,
    p50_latency_us: Option<f64>,
    p99_latency_us: Option<f64>,
    p999_latency_us: Option<f64>,
    mean_batch_occupancy: f64,
    joules_per_completed: f64,
    verify_mean_abs_error: f64,
    report: ServeReport,
}

fn main() {
    let model =
        ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), WDM_CHANNELS);
    let knee = capacity_rps(&model, 2, 8);
    println!(
        "estimated slot capacity (batched, hot): {:.2} M req/s\n",
        knee / 1e6
    );

    let fracs = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];
    // Every (batching, load) point is an independent seeded scenario:
    // scatter the grid across the pool and gather rows in grid order,
    // byte-identical to the old sequential loop (OFPC_WORKERS=1).
    let mut grid: Vec<(bool, f64)> = Vec::new();
    for &batching in &[true, false] {
        for &f in &fracs {
            grid.push((batching, f));
        }
    }
    let pool = WorkerPool::from_env();
    let rows: Vec<E12Row> = pool.scatter_gather("e12-sweep", grid, |_, (batching, f)| {
        let offered = f * knee;
        let report = run(offered, batching);
        E12Row {
            load_frac: f,
            offered_rps: offered,
            batching,
            goodput_rps: report.goodput_rps,
            shed_rate: report.shed_rate,
            p50_latency_us: report.p50_latency_us,
            p99_latency_us: report.p99_latency_us,
            p999_latency_us: report.p999_latency_us,
            mean_batch_occupancy: report.mean_batch_occupancy,
            joules_per_completed: report.joules_per_completed,
            verify_mean_abs_error: report.verify_mean_abs_error,
            report,
        }
    });

    for batching in [true, false] {
        let mut t = Table::new(
            &format!(
                "E12 — serving sweep (batching {})",
                if batching { "ON, max 8" } else { "OFF" }
            ),
            &[
                "load",
                "offered Mrps",
                "goodput Mrps",
                "shed %",
                "p50 µs",
                "p99 µs",
                "p999 µs",
                "occupancy",
                "nJ/req",
            ],
        );
        for r in rows.iter().filter(|r| r.batching == batching) {
            t.row(&[
                format!("{:.2}", r.load_frac),
                format!("{:.2}", r.offered_rps / 1e6),
                format!("{:.2}", r.goodput_rps / 1e6),
                format!("{:.1}", r.shed_rate * 100.0),
                r.p50_latency_us.map_or("-".into(), |v| format!("{v:.1}")),
                r.p99_latency_us.map_or("-".into(), |v| format!("{v:.1}")),
                r.p999_latency_us.map_or("-".into(), |v| format!("{v:.1}")),
                format!("{:.2}", r.mean_batch_occupancy),
                format!("{:.2}", r.joules_per_completed * 1e9),
            ]);
        }
        t.print();
    }

    // Acceptance checks (also enforced in tests/serving.rs).
    let high_load = |batching: bool| {
        rows.iter()
            .filter(|r| r.batching == batching && r.load_frac >= 1.25)
            .map(|r| r.goodput_rps)
            .sum::<f64>()
    };
    let (on, off) = (high_load(true), high_load(false));
    println!(
        "high-load goodput: batching {:.2} Mrps vs unbatched {:.2} Mrps ({}x)",
        on / 1e6,
        off / 1e6,
        (on / off * 100.0).round() / 100.0
    );
    assert!(
        on > off,
        "batching must beat no-batching on goodput at high load"
    );
    for batching in [true, false] {
        let past_knee: Vec<&E12Row> = rows
            .iter()
            .filter(|r| r.batching == batching && r.load_frac >= 1.0)
            .collect();
        for w in past_knee.windows(2) {
            assert!(
                w[1].shed_rate >= w[0].shed_rate - 1e-9,
                "shed rate must rise monotonically past the knee (batching {batching})"
            );
        }
    }

    dump_json("expt_serving", &rows);
}
