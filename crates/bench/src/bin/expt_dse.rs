//! E17 — design-space exploration over the calibrated component
//! library.
//!
//! Two sub-experiments:
//!
//! * **E17a — Pareto sweep.** The full app × converter × core ×
//!   wavelength space (3 × 3 × 3 × 2 = 54 points) priced through the
//!   transponder-derived service model, run deterministically in
//!   parallel on `ofpc-par`, with the per-app non-dominated set marked
//!   on (energy/request, batch latency, effective bits). The full
//!   point set — frontier flags included — lands in
//!   `results/e17_dse.json` under the versioned envelope.
//! * **E17b — per-stage variant binding.** The DNN graph lowered with
//!   *all* catalog pairings as candidates: the error budget must bind
//!   the cheap 8-bit converters to the 3.5-bit hidden layers and
//!   escalate the 7.2-bit output layer to the 12-bit part, with each
//!   decision traced on the DSE telemetry track. The mixed plan must
//!   also price differently from either single-variant lowering — the
//!   selection is load-bearing, not cosmetic.

use ofpc_apps::digital::ComputeModel;
use ofpc_bench::table::{dump_json, Table};
use ofpc_dse::{hardware_variant, run_sweep, ConverterChoice, DesignPoint, SweepSpec};
use ofpc_graph::lower::{lower, lower_traced, ErrorBudget, LowerConfig, Stage};
use ofpc_graph::Target;
use ofpc_par::WorkerPool;
use ofpc_telemetry::{track, Telemetry};
use serde::Serialize;

const WDM_CHANNELS: usize = 4;

#[derive(Debug, Serialize)]
struct StageBinding {
    label: String,
    target: String,
    variant: Option<String>,
    predicted_bits: f64,
    service_ps: u64,
    energy_j: f64,
}

impl StageBinding {
    fn of(s: &Stage) -> Self {
        StageBinding {
            label: s.label.clone(),
            target: match s.target {
                Target::Photonic => "photonic".to_string(),
                Target::Digital => "digital".to_string(),
            },
            variant: s.variant.clone(),
            predicted_bits: s.predicted_bits,
            service_ps: s.service_ps,
            energy_j: s.energy_j,
        }
    }
}

#[derive(Debug, Serialize)]
struct E17Result {
    points: Vec<DesignPoint>,
    mixed_lowering: Vec<StageBinding>,
}

fn sweep(pool: &WorkerPool) -> Vec<DesignPoint> {
    let spec = SweepSpec::e17();
    assert!(
        spec.converters.len() >= 3
            && spec.core_sizes.len() >= 3
            && spec.wavelength_counts.len() >= 2,
        "E17 acceptance: >=3 converters x >=3 cores x >=2 wavelength counts"
    );
    let points = run_sweep(pool, &spec);

    let mut t = Table::new(
        "E17a — per-app Pareto frontier (energy/request, batch latency, effective bits)",
        &[
            "app",
            "converter",
            "core",
            "wl",
            "energy/req",
            "latency",
            "bits",
            "module",
            "fits",
        ],
    );
    for p in points.iter().filter(|p| p.pareto) {
        t.row(&[
            p.app.clone(),
            p.converter.clone(),
            p.core_size.to_string(),
            p.wavelengths.to_string(),
            format!("{:.1} pJ", p.energy_per_request_j * 1e12),
            format!("{:.2} us", p.latency_ps as f64 * 1e-6),
            format!("{:.2}", p.effective_bits),
            format!("{:.1} W / {:.1} mm2", p.module_power_w, p.module_area_mm2),
            p.fits_osfp.to_string(),
        ]);
    }
    t.print();

    for app in ["dnn", "correlation", "pattern-match"] {
        let frontier = points.iter().filter(|p| p.app == app && p.pareto).count();
        assert!(frontier >= 1, "E17a: empty frontier for {app}");
        // A healthy frontier shows a genuine trade-off: not every point
        // survives domination.
        let total = points.iter().filter(|p| p.app == app).count();
        assert!(
            frontier < total,
            "E17a: every {app} point is on the frontier — no trade-off priced"
        );
    }
    points
}

fn mixed_lowering() -> Vec<StageBinding> {
    let variants: Vec<_> = ConverterChoice::ALL
        .iter()
        .map(|&c| hardware_variant(c, WDM_CHANNELS))
        .collect();
    let graph = ofpc_dse::App::Dnn.build(16, 17);
    let cfg = LowerConfig {
        budget: ErrorBudget::realistic(),
        model: variants[0].model.clone(),
        digital: ComputeModel::edge_soc(),
        variants: variants.clone(),
    };
    let tel = Telemetry::enabled();
    let plan = lower_traced(&graph, &cfg, &tel).expect("DNN lowers");

    let mut t = Table::new(
        "E17b — per-stage hardware binding (DNN, hidden 3.5 b / output 7.2 b)",
        &["stage", "target", "variant", "bits", "service", "energy"],
    );
    for s in &plan.stages {
        t.row(&[
            s.label.clone(),
            format!("{:?}", s.target),
            s.variant.clone().unwrap_or_else(|| "-".to_string()),
            format!("{:.2}", s.predicted_bits),
            format!("{} ps", s.service_ps),
            format!("{:.2} pJ", s.energy_j * 1e12),
        ]);
    }
    t.print();

    // Acceptance: the lowerer binds >=2 distinct variants across stages.
    let used = plan.variants_used();
    assert!(
        used.len() >= 2,
        "E17b: expected >=2 distinct variants per plan, got {used:?}"
    );
    // Every decision left an audit instant on the DSE track.
    let dse_events = tel
        .trace_events()
        .iter()
        .filter(|e| e.pid == track::DSE)
        .count();
    assert_eq!(dse_events, plan.stages.len(), "one DSE instant per stage");

    // The mixed binding changes the priced plan vs either single-variant
    // lowering: cheaper than all-12-bit, finer than all-8-bit.
    let single = |choice: ConverterChoice| {
        let v = hardware_variant(choice, WDM_CHANNELS);
        let mut c = cfg.clone();
        c.model = v.model.clone();
        c.variants = vec![v];
        lower(&graph, &c).expect("DNN lowers")
    };
    let all12 = single(ConverterChoice::Cv12bFast);
    let all8 = single(ConverterChoice::Cv8bFast);
    assert!(
        plan.energy_per_request_j() < all12.energy_per_request_j(),
        "mixed plan must undercut the all-12-bit energy"
    );
    assert!(
        plan.photonic_stage_count() > all8.photonic_stage_count(),
        "mixed plan must keep more stages photonic than the 8-bit-only lowering"
    );

    plan.stages.iter().map(StageBinding::of).collect()
}

fn main() {
    let pool = WorkerPool::from_env();
    println!("E17: design-space exploration ({} workers)", pool.workers());
    let points = sweep(&pool);
    let mixed = mixed_lowering();
    dump_json(
        "e17_dse",
        &E17Result {
            points,
            mixed_lowering: mixed,
        },
    );
    println!("E17: wrote results/e17_dse.json");
}
