//! E7 — §3: the compute-communication protocol.
//!
//! Three measurements:
//!
//! 1. **Header overhead** — bytes the PCH adds per packet across payload
//!    sizes (the protocol tax).
//! 2. **Dual-lookup correctness** — mixed compute and plain traffic on
//!    the same WAN: plain packets must take shortest paths untouched,
//!    compute packets must detour exactly once and arrive computed.
//! 3. **Rollout convergence** — how many in-flight compute packets miss
//!    their engine while the controller's next-hop updates propagate
//!    router by router, as a function of the update gap.

use ofpc_bench::table::{dump_json, Table};
use ofpc_core::protocol::{protocol_overhead, staged_rollout};
use ofpc_engine::Primitive;
use ofpc_net::packet::{Packet, IP_HEADER_BYTES};
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize, Default)]
struct E7Result {
    overhead_pct_64b: f64,
    overhead_pct_1500b: f64,
    plain_hops: u32,
    compute_hops: u32,
    computed_coverage: f64,
    rollout: Vec<(u64, usize, usize)>, // (gap_ps, computed, missed)
}

fn main() {
    println!("E7: compute-communication protocol\n");
    let mut result = E7Result::default();

    // ---- 1. Header overhead ----
    let mut t = Table::new(
        "PCH overhead by payload size",
        &["payload B", "plain wire B", "compute wire B", "overhead %"],
    );
    for &payload in &[64usize, 256, 1500] {
        let plain = IP_HEADER_BYTES + payload;
        let tagged = plain + protocol_overhead(payload);
        let pct = 100.0 * protocol_overhead(payload) as f64 / plain as f64;
        t.row(&[
            payload.to_string(),
            plain.to_string(),
            tagged.to_string(),
            format!("{pct:.2}"),
        ]);
        if payload == 64 {
            result.overhead_pct_64b = pct;
        }
        if payload == 1500 {
            result.overhead_pct_1500b = pct;
        }
    }
    t.print();
    assert!(result.overhead_pct_1500b < 1.0, "negligible at MTU size");

    // ---- 2. Dual-lookup correctness on Abilene ----
    let topo = Topology::abilene();
    let mut net = Network::new(topo, SimRng::seed_from_u64(7));
    net.install_shortest_path_routes();
    let seattle = net.topo.find_node("Seattle").unwrap();
    let ny = net.topo.find_node("NewYork").unwrap();
    let denver = net.topo.find_node("Denver").unwrap();
    net.add_engine(
        denver,
        1,
        OpSpec::Dot {
            weights: vec![0.5; 8],
        },
        0.0,
    );
    net.install_compute_detour(Primitive::VectorDotProduct, denver);
    // One plain + one compute packet, Seattle → New York.
    let src = Network::node_addr(seattle, 1);
    let dst = Network::node_addr(ny, 1);
    net.inject(0, seattle, Packet::data(src, dst, 1, vec![0u8; 100]));
    let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 8);
    net.inject(
        0,
        seattle,
        Packet::compute(src, dst, 2, pch, Packet::encode_operands(&[0.5; 8])),
    );
    net.run_to_idle();
    assert_eq!(net.stats.delivered_count(), 2);
    let plain = net
        .stats
        .delivered
        .iter()
        .find(|r| r.packet_id == 1)
        .unwrap();
    let compute = net
        .stats
        .delivered
        .iter()
        .find(|r| r.packet_id == 2)
        .unwrap();
    result.plain_hops = plain.hops;
    result.compute_hops = compute.hops;
    result.computed_coverage = if compute.computed { 1.0 } else { 0.0 };
    println!(
        "dual lookup: plain took {} hops (shortest), compute took {} hops via Denver, computed = {}\n",
        plain.hops, compute.hops, compute.computed
    );
    assert!(compute.computed);
    assert!(!plain.computed);
    assert!(
        compute.hops >= plain.hops,
        "detour cannot be shorter than the shortest path"
    );

    // ---- 3. Rollout convergence ----
    let mut t = Table::new(
        "staged rollout: computed vs missed while updates propagate",
        &["update gap (ms)", "computed", "missed"],
    );
    for &gap_ms in &[0.001f64, 1.0, 5.0, 20.0] {
        let gap_ps = (gap_ms * 1e9) as u64;
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(8));
        net.install_shortest_path_routes();
        let c = NodeId(2);
        net.add_engine(
            c,
            1,
            OpSpec::Dot {
                weights: vec![1.0; 4],
            },
            0.0,
        );
        let report = staged_rollout(
            &mut net,
            Primitive::VectorDotProduct,
            c,
            gap_ps,
            NodeId(0),
            Network::node_addr(NodeId(3), 1),
            1,
            &[0.5; 4],
            20,
            1_000_000_000, // 1 ms between packets
        );
        t.row(&[
            format!("{gap_ms}"),
            report.computed.to_string(),
            report.missed.to_string(),
        ]);
        result
            .rollout
            .push((gap_ps, report.computed, report.missed));
        assert_eq!(report.computed + report.missed, 20);
    }
    t.print();
    // Shape: slower rollout → more missed packets. The packet injected
    // at t=0 always races the first update, so even an instant rollout
    // can miss that single in-flight packet.
    let fastest_missed = result.rollout.first().unwrap().2;
    let slowest_missed = result.rollout.last().unwrap().2;
    assert!(slowest_missed >= fastest_missed);
    assert!(
        fastest_missed <= 1,
        "instant rollout misses at most the in-flight packet"
    );
    assert!(slowest_missed > 1, "slow rollout must miss more");

    dump_json("e7_protocol", &result);
}
