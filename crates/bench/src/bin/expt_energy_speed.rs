//! E5 — the §2.2 energy & speed claims.
//!
//! Paper numbers: photonic MAC at 40×10⁻¹⁸ J vs TPU 8-bit MAC at
//! 7×10⁻¹⁴ J (a 1750× gap); TPU clock ≈ 1.05 GHz, A100 ≈ 1.41 GHz,
//! photonic compute at modulator bandwidth (tens of GHz per lane, ×WDM
//! lanes). This harness (a) verifies the constants are wired through the
//! whole stack — the *measured* energy/MAC of a simulated engine run
//! must land on the constant — and (b) reports latency/energy for a DNN
//! workload across all platform models.

use ofpc_apps::digital::ComputeModel;
use ofpc_bench::table::{dump_json, Table};
use ofpc_core::metrics::SystemReport;
use ofpc_core::scenario::Fig1Scenario;
use ofpc_photonics::energy::constants;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct PlatformRow {
    platform: String,
    mac_energy_j: f64,
    macs_per_joule: f64,
    time_for_1m_macs_us: f64,
}

#[derive(Serialize)]
struct E5Result {
    platforms: Vec<PlatformRow>,
    paper_energy_ratio: f64,
    measured_engine_j_per_mac: f64,
    clock_ratio_photonic_vs_tpu: f64,
}

fn main() {
    println!("E5: §2.2 energy & speed claims\n");
    let platforms = [
        ComputeModel::photonic(),
        ComputeModel::tpu(),
        ComputeModel::gpu(),
        ComputeModel::cpu(),
        ComputeModel::edge_soc(),
        ComputeModel::switch_asic(),
    ];
    let mut t = Table::new(
        "compute platforms on a 1M-MAC DNN workload",
        &["platform", "J/MAC", "MACs/J", "time (µs)"],
    );
    let mut rows = Vec::new();
    for p in &platforms {
        let row = PlatformRow {
            platform: p.name.clone(),
            mac_energy_j: p.mac_energy_j,
            macs_per_joule: 1.0 / p.mac_energy_j,
            time_for_1m_macs_us: p.time_for_macs(1_000_000) * 1e6,
        };
        t.row(&[
            row.platform.clone(),
            format!("{:.1e}", row.mac_energy_j),
            format!("{:.1e}", row.macs_per_joule),
            format!("{:.2}", row.time_for_1m_macs_us),
        ]);
        rows.push(row);
    }
    t.print();

    // The paper's headline ratio.
    let ratio = constants::TPU_MAC_J / constants::PHOTONIC_MAC_J;
    println!("photonic vs TPU energy advantage: {ratio:.0}× (paper: 1750×)");
    assert!((ratio - 1750.0).abs() < 1.0);

    // Clock-rate comparison (§2.2's "orders of magnitude" speed claim is
    // per-device-rate; per-lane photonic symbol rate vs TPU clock).
    let clock_ratio = constants::PHOTONIC_LANE_HZ / constants::TPU_CLOCK_HZ;
    println!(
        "photonic lane rate vs TPU clock: {:.1}× ({:.1} GHz vs {:.2} GHz); A100 {:.2} GHz",
        clock_ratio,
        constants::PHOTONIC_LANE_HZ / 1e9,
        constants::TPU_CLOCK_HZ / 1e9,
        constants::GPU_CLOCK_HZ / 1e9
    );
    assert!(clock_ratio > 10.0, "photonic symbol rate ≫ digital clock");

    // End-to-end verification: run the Fig.-1 scenario and confirm the
    // engines' measured J/MAC lands on the photonic constant (plus the
    // amortized result-readout ADC).
    let mut scenario = Fig1Scenario::build(5);
    let mut rng = SimRng::seed_from_u64(5);
    scenario.inject_traffic(100, 0, 1_000_000, &mut rng);
    scenario.run();
    let report = SystemReport::from_network(&scenario.system.net);
    let measured = report.energy_per_mac_j();
    println!(
        "\nmeasured engine energy: {:.2e} J/MAC over {} MACs (constant: {:.2e} + readout amortization)",
        measured,
        report.engine_macs,
        constants::PHOTONIC_MAC_J
    );
    assert!(measured >= constants::PHOTONIC_MAC_J);
    // With 16–64-element operands the single result-ADC readout (pJ
    // class) dominates the aJ-class MACs — the same amortization effect
    // photonic-accelerator papers report; large matvecs amortize it away.
    assert!(
        measured < 1e-12,
        "per-op readout must stay below a picojoule per MAC"
    );

    dump_json(
        "e5_energy_speed",
        &E5Result {
            platforms: rows,
            paper_energy_ratio: ratio,
            measured_engine_j_per_mac: measured,
            clock_ratio_photonic_vs_tpu: clock_ratio,
        },
    );
}
