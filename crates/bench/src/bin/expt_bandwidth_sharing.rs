//! E8 — §5 scalability: "photonic compute transponders can support up to
//! 800 Gbps network bandwidth on one wavelength. This bandwidth can be
//! shared among many users."
//!
//! N users share one compute transponder's 800 Gbps wavelength with
//! identical CBR compute flows. We sweep N at a fixed aggregate offered
//! load below, at, and above capacity, and report per-user goodput,
//! Jain's fairness index, and the compute coverage — the shape to see:
//! full fairness and full coverage until the wavelength saturates, then
//! graceful queue-drop degradation.

use ofpc_bench::table::{dump_json, Table};
use ofpc_engine::Primitive;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::stats::jain_fairness;
use ofpc_net::Topology;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct E8Row {
    users: usize,
    offered_load_frac: f64,
    delivered: usize,
    injected: usize,
    goodput_gbps: f64,
    fairness: f64,
    coverage: f64,
    drops: u64,
}

fn run_sharing(users: usize, load_frac: f64) -> E8Row {
    // Two-node WAN: all users at A, compute engine at B (also the sink).
    let mut topo = Topology::new();
    let a = topo.add_node("A");
    let b = topo.add_node("B");
    topo.add_link(a, b, 100.0); // one 800 Gbps wavelength
    let mut net = Network::with_queue_capacity(topo, SimRng::seed_from_u64(8), 64 * 1024);
    net.install_shortest_path_routes();
    let weights = vec![0.5; 64];
    net.add_engine(b, 1, OpSpec::Dot { weights }, 0.0);

    let payload = 1_024usize;
    let wire_bits = ((payload + 16 + 8) * 8) as f64;
    let capacity = 800e9;
    let per_user_rate = load_frac * capacity / users as f64; // bits/s
    let gap_ps = (wire_bits / per_user_rate * 1e12).round() as u64;
    let duration_ps = 10_000_000u64; // 10 µs of traffic
    let mut injected = 0usize;
    for u in 0..users {
        let src = Network::node_addr(a, (u + 1) as u8);
        let dst = Network::node_addr(b, (u + 1) as u8);
        // Stagger users so they don't all burst at t=0.
        let mut t = (u as u64 * gap_ps) / users as u64;
        let mut id = (u as u32) << 20;
        while t < duration_ps {
            let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 64);
            let ops = vec![0.5; 64];
            // Operand segment up front, app payload padding behind it,
            // so the packet really occupies `payload` bytes of the
            // wavelength.
            let mut body = Packet::encode_operands(&ops).to_vec();
            body.resize(payload, 0);
            net.inject(t, a, Packet::compute(src, dst, id, pch, body));
            id += 1;
            injected += 1;
            t += gap_ps;
        }
    }
    net.run_to_idle();
    // Per-user delivered counts → fairness.
    let mut per_user = vec![0f64; users];
    for r in &net.stats.delivered {
        per_user[(r.packet_id >> 20) as usize] += 1.0;
    }
    E8Row {
        users,
        offered_load_frac: load_frac,
        delivered: net.stats.delivered_count(),
        injected,
        goodput_gbps: net.stats.goodput_bps() / 1e9,
        fairness: jain_fairness(&per_user),
        coverage: if net.stats.delivered_count() == 0 {
            0.0
        } else {
            net.stats.computed_count() as f64 / net.stats.delivered_count() as f64
        },
        drops: net.stats.total_drops(),
    }
}

fn main() {
    println!("E8: sharing one 800 Gbps compute wavelength among N users\n");
    let mut t = Table::new(
        "per-load sweep",
        &[
            "users",
            "load",
            "delivered/injected",
            "goodput Gbps",
            "Jain",
            "coverage",
            "drops",
        ],
    );
    let mut rows = Vec::new();
    for &users in &[2usize, 8, 32] {
        for &load in &[0.5, 0.9, 1.5] {
            let row = run_sharing(users, load);
            t.row(&[
                row.users.to_string(),
                format!("{:.1}", row.offered_load_frac),
                format!("{}/{}", row.delivered, row.injected),
                format!("{:.0}", row.goodput_gbps),
                format!("{:.3}", row.fairness),
                format!("{:.2}", row.coverage),
                row.drops.to_string(),
            ]);
            rows.push(row);
        }
    }
    t.print();

    for row in &rows {
        // Every delivered compute packet was computed, at any load.
        assert!(
            (row.coverage - 1.0).abs() < 1e-9,
            "coverage must stay 1.0: {row:?}"
        );
        // Below capacity: no drops, everything delivered.
        if row.offered_load_frac <= 0.9 {
            assert_eq!(row.delivered, row.injected, "{row:?}");
        }
        // Fairness stays high (identical CBR flows through one FIFO);
        // drop-tail under overload can skew it slightly.
        assert!(row.fairness > 0.8, "{row:?}");
    }
    // Overload sheds load via queue drops.
    assert!(
        rows.iter()
            .filter(|r| r.offered_load_frac > 1.0)
            .all(|r| r.drops > 0),
        "overload must drop"
    );
    println!("\nall sharing invariants hold (full coverage, Jain > 0.9, overload drops)");
    dump_json("e8_bandwidth_sharing", &rows);
}
