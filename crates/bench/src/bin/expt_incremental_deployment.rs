//! E9 — §1/§2.2: backward-compatible incremental deployment.
//!
//! "On-fiber computing does not require replacing router ASICs, thus
//! making it backward compatible for incremental deployment." We sweep
//! the fraction of Abilene sites upgraded with compute transponders
//! (hubs first) and report the satisfied-demand fraction and the mean
//! detour penalty — the curve an operator would use to plan a rollout.

use ofpc_bench::table::{dump_json, Table};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::deployment::{deployment_sweep, upgrade_order_by_degree};
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

fn main() {
    println!("E9: incremental deployment on Abilene (hubs first)\n");
    let topo = Topology::abilene();
    let mut rng = SimRng::seed_from_u64(9);
    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    let demands: Vec<Demand> = (0..24)
        .map(|i| {
            let src = NodeId(rng.below(topo.node_count()) as u32);
            let mut dst = src;
            while dst == src {
                dst = NodeId(rng.below(topo.node_count()) as u32);
            }
            Demand::new(i, src, dst, TaskDag::single(prims[rng.below(3)]))
        })
        .collect();
    let order = upgrade_order_by_degree(&topo);
    let points = deployment_sweep(&topo, &order, 8, &demands);

    let mut t = Table::new(
        "coverage vs upgraded fraction",
        &["sites", "fraction", "satisfied", "mean added ms"],
    );
    for p in &points {
        t.row(&[
            p.upgraded_sites.to_string(),
            format!("{:.2}", p.fraction),
            format!("{}/{}", p.satisfied, p.total_demands),
            format!("{:.3}", p.mean_added_latency_ms),
        ]);
    }
    t.print();

    // Shape assertions: monotone coverage; early hubs carry most demand;
    // detours shrink as deployment densifies.
    for w in points.windows(2) {
        assert!(w[1].satisfied >= w[0].satisfied);
    }
    let quarter = &points[3]; // ~27% of sites
    assert!(
        quarter.satisfied as f64 / quarter.total_demands as f64 >= 0.8,
        "3 hub sites should already cover ≥80%: {quarter:?}"
    );
    let full = points.last().unwrap();
    assert_eq!(full.satisfied, full.total_demands);
    let first_full = points
        .iter()
        .find(|p| p.satisfied == p.total_demands)
        .unwrap();
    assert!(full.mean_added_latency_ms <= first_full.mean_added_latency_ms + 1e-9);
    println!(
        "\nfirst full coverage at {} / {} sites; detour penalty falls from {:.3} to {:.3} ms",
        first_full.upgraded_sites,
        points.len() - 1,
        first_full.mean_added_latency_ms,
        full.mean_added_latency_ms
    );
    dump_json("e9_incremental_deployment", &points);
}
