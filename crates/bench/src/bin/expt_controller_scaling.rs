//! E6 — §3/§5: controller allocation quality and the integer-program
//! scalability wall.
//!
//! The paper: "The optimization formulation is fundamentally an integer
//! problem because it needs to decide which photonic computing
//! transponder to use." We sweep WAN size and demand count, solving each
//! instance three ways — exact branch & bound, LP relaxation +
//! randomized rounding, and greedy — and report satisfied demands,
//! optimality gap (vs the LP upper bound), and solver work. The exact
//! solver's search-node count should blow up with scale while LP/greedy
//! stay flat: that is the §5 scalability discussion, measured.

use ofpc_bench::table::{dump_json, Table};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::lp::{round_lp, solve_lp};
use ofpc_controller::options::enumerate_options;
use ofpc_controller::{is_feasible, score};
use ofpc_core::topo::{multi_region, MultiRegionSpec};
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use ofpc_shard::{RegionMap, ShardEvent, ShardedController};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct E6Row {
    nodes: usize,
    demands: usize,
    exact_satisfied: usize,
    exact_nodes_expanded: u64,
    exact_proven: bool,
    exact_ms: f64,
    lp_satisfied: usize,
    lp_gap_pct: f64,
    lp_ms: f64,
    greedy_satisfied: usize,
    greedy_gap_pct: f64,
    greedy_ms: f64,
}

/// One row of the incremental-vs-scratch comparison (the E6 ↔ E20
/// seam): mean per-event latency of the sharded controller's dirty-set
/// re-plan vs a from-scratch re-solve of the same state.
#[derive(Serialize)]
struct E6IncrementalRow {
    nodes: usize,
    regions: usize,
    live_demands: usize,
    incremental_us: f64,
    scratch_us: f64,
    speedup: f64,
}

/// Drive churn through a sharded controller at `regions × 6` sites and
/// time incremental events against from-scratch re-solves.
fn incremental_vs_scratch(regions: usize, rng: &mut SimRng) -> E6IncrementalRow {
    let wan = multi_region(&MultiRegionSpec::new(regions, 6), rng);
    let n = wan.topo.node_count();
    let capacity: Vec<usize> = (0..n).map(|i| if i % 3 == 0 { 2 } else { 0 }).collect();
    let map = RegionMap::from_assignment(wan.region_of.clone());
    let mut ctl = ShardedController::new(wan.topo.clone(), map, capacity, 8);
    let max_live = 4 * regions;
    let make_demand = |id: u32, rng: &mut SimRng| {
        let src = NodeId(rng.below(n) as u32);
        let mut dst = src;
        while dst == src {
            dst = NodeId(rng.below(n) as u32);
        }
        Demand::new(id, src, dst, TaskDag::single(Primitive::VectorDotProduct))
    };
    // Warm up to a steady live population.
    let warmup = 4 * max_live;
    for i in 0..warmup {
        let mut batch = vec![ShardEvent::Arrive(make_demand(i as u32, rng))];
        if i >= max_live {
            batch.push(ShardEvent::Depart((i - max_live) as u32));
        }
        ctl.apply_batch(batch);
    }
    // Measure: per-event incremental apply vs full re-solve of a clone.
    let events = 60;
    let mut inc_ns = 0u64;
    let mut scratch_ns = 0u64;
    for i in warmup..warmup + events {
        let batch = vec![
            ShardEvent::Arrive(make_demand(i as u32, rng)),
            ShardEvent::Depart((i - max_live) as u32),
        ];
        let start = Instant::now();
        ctl.apply_batch(batch);
        inc_ns += start.elapsed().as_nanos() as u64;

        let mut scratch = ctl.clone();
        let start = Instant::now();
        scratch.full_resolve();
        scratch_ns += start.elapsed().as_nanos() as u64;
        assert_eq!(ctl.placements(), scratch.placements());
    }
    let incremental_us = inc_ns as f64 / events as f64 / 1e3;
    let scratch_us = scratch_ns as f64 / events as f64 / 1e3;
    E6IncrementalRow {
        nodes: n,
        regions,
        live_demands: ctl.live_count(),
        incremental_us,
        scratch_us,
        speedup: scratch_us / incremental_us,
    }
}

fn random_demands(topo: &Topology, n: usize, rng: &mut SimRng) -> Vec<Demand> {
    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    (0..n)
        .map(|i| {
            let src = NodeId(rng.below(topo.node_count()) as u32);
            let mut dst = src;
            while dst == src {
                dst = NodeId(rng.below(topo.node_count()) as u32);
            }
            // 70% single-task, 30% two-task chains.
            let dag = if rng.chance(0.3) {
                TaskDag::chain(vec![prims[rng.below(3)], prims[rng.below(3)]])
            } else {
                TaskDag::single(prims[rng.below(3)])
            };
            Demand::new(i as u32, src, dst, dag)
        })
        .collect()
}

fn main() {
    println!("E6: controller allocation — exact vs LP-rounding vs greedy\n");
    let mut t = Table::new(
        "solver scaling (capacity: 2 slots at 1/3 of sites)",
        &[
            "nodes",
            "demands",
            "exact sat",
            "b&b nodes",
            "proven",
            "exact ms",
            "lp sat",
            "lp gap%",
            "greedy sat",
            "greedy gap%",
        ],
    );
    let mut rows = Vec::new();
    for &(n_nodes, n_demands) in &[
        (8usize, 6usize),
        (12, 10),
        (16, 14),
        (24, 20),
        (32, 28),
        (48, 40),
    ] {
        let mut rng = SimRng::seed_from_u64(6000 + n_nodes as u64);
        let topo = Topology::random_geometric(n_nodes, 2000.0, 700.0, &mut rng);
        // A third of sites upgraded, 2 slots each.
        let slots: Vec<usize> = (0..n_nodes)
            .map(|i| if i % 3 == 0 { 2 } else { 0 })
            .collect();
        let demands = random_demands(&topo, n_demands, &mut rng);
        let instance = enumerate_options(&topo, &slots, &demands, 8);

        let start = Instant::now();
        let exact = solve_exact(&instance, 2_000_000);
        let exact_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(is_feasible(&instance, &exact.allocation));

        let start = Instant::now();
        let lp = solve_lp(&instance);
        let mut lp_rng = SimRng::seed_from_u64(1);
        let rounded = round_lp(&instance, &lp, 20, &mut lp_rng);
        let lp_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(is_feasible(&instance, &rounded));

        let start = Instant::now();
        let greedy = solve_greedy(&instance);
        let greedy_ms = start.elapsed().as_secs_f64() * 1e3;

        let exact_score = score(&instance, &exact.allocation);
        let lp_score = score(&instance, &rounded);
        let greedy_score = greedy.score;
        // Gaps vs the LP upper bound (valid even when B&B is truncated).
        let ub = lp.upper_bound.max(exact_score);
        let gap = |s: f64| 100.0 * (ub - s) / ub.max(1e-9);

        let row = E6Row {
            nodes: n_nodes,
            demands: n_demands,
            exact_satisfied: exact.allocation.satisfied_count(),
            exact_nodes_expanded: exact.nodes_expanded,
            exact_proven: exact.proven_optimal,
            exact_ms,
            lp_satisfied: rounded.satisfied_count(),
            lp_gap_pct: gap(lp_score),
            lp_ms,
            greedy_satisfied: greedy.allocation.satisfied_count(),
            greedy_gap_pct: gap(greedy_score),
            greedy_ms,
        };
        t.row(&[
            row.nodes.to_string(),
            row.demands.to_string(),
            row.exact_satisfied.to_string(),
            row.exact_nodes_expanded.to_string(),
            row.exact_proven.to_string(),
            format!("{:.1}", row.exact_ms),
            row.lp_satisfied.to_string(),
            format!("{:.2}", row.lp_gap_pct),
            row.greedy_satisfied.to_string(),
            format!("{:.2}", row.greedy_gap_pct),
        ]);
        // Sanity: exact is never worse than the heuristics it bounds.
        assert!(exact_score >= greedy_score - 1e-6);
        rows.push(row);
    }
    t.print();

    // The §5 wall: B&B work must grow sharply with instance size.
    let first = rows.first().unwrap().exact_nodes_expanded;
    let last = rows.last().unwrap().exact_nodes_expanded;
    println!(
        "branch-and-bound nodes grew {first} → {last} ({:.0}×) across the sweep",
        last as f64 / first.max(1) as f64
    );
    assert!(last > 10 * first, "expected the integer-program wall");

    // The way past the wall: sharded incremental re-planning (E20).
    // Same churn, two costs — dirty-set apply vs from-scratch re-solve.
    let mut it = Table::new(
        "incremental vs scratch re-solve (sharded controller)",
        &[
            "nodes",
            "regions",
            "live",
            "inc µs",
            "scratch µs",
            "speedup",
        ],
    );
    let mut inc_rows = Vec::new();
    for &regions in &[2usize, 4, 8] {
        let mut rng = SimRng::seed_from_u64(6200 + regions as u64);
        let row = incremental_vs_scratch(regions, &mut rng);
        it.row(&[
            row.nodes.to_string(),
            row.regions.to_string(),
            row.live_demands.to_string(),
            format!("{:.1}", row.incremental_us),
            format!("{:.1}", row.scratch_us),
            format!("{:.1}×", row.speedup),
        ]);
        inc_rows.push(row);
    }
    it.print();
    let last = inc_rows.last().unwrap();
    println!(
        "incremental re-plan is {:.1}× faster than scratch at {} nodes",
        last.speedup, last.nodes
    );
    if !cfg!(debug_assertions) {
        assert!(
            last.speedup > 1.5,
            "incremental must beat scratch at scale, got {:.2}×",
            last.speedup
        );
    }

    #[derive(Serialize)]
    struct E6Dump {
        solver_rows: Vec<E6Row>,
        incremental_rows: Vec<E6IncrementalRow>,
    }
    dump_json(
        "e6_controller_scaling",
        &E6Dump {
            solver_rows: rows,
            incremental_rows: inc_rows,
        },
    );
}
