//! E6 — §3/§5: controller allocation quality and the integer-program
//! scalability wall.
//!
//! The paper: "The optimization formulation is fundamentally an integer
//! problem because it needs to decide which photonic computing
//! transponder to use." We sweep WAN size and demand count, solving each
//! instance three ways — exact branch & bound, LP relaxation +
//! randomized rounding, and greedy — and report satisfied demands,
//! optimality gap (vs the LP upper bound), and solver work. The exact
//! solver's search-node count should blow up with scale while LP/greedy
//! stay flat: that is the §5 scalability discussion, measured.

use ofpc_bench::table::{dump_json, Table};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::lp::{round_lp, solve_lp};
use ofpc_controller::options::enumerate_options;
use ofpc_controller::{is_feasible, score};
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct E6Row {
    nodes: usize,
    demands: usize,
    exact_satisfied: usize,
    exact_nodes_expanded: u64,
    exact_proven: bool,
    exact_ms: f64,
    lp_satisfied: usize,
    lp_gap_pct: f64,
    lp_ms: f64,
    greedy_satisfied: usize,
    greedy_gap_pct: f64,
    greedy_ms: f64,
}

fn random_demands(topo: &Topology, n: usize, rng: &mut SimRng) -> Vec<Demand> {
    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    (0..n)
        .map(|i| {
            let src = NodeId(rng.below(topo.node_count()) as u32);
            let mut dst = src;
            while dst == src {
                dst = NodeId(rng.below(topo.node_count()) as u32);
            }
            // 70% single-task, 30% two-task chains.
            let dag = if rng.chance(0.3) {
                TaskDag::chain(vec![prims[rng.below(3)], prims[rng.below(3)]])
            } else {
                TaskDag::single(prims[rng.below(3)])
            };
            Demand::new(i as u32, src, dst, dag)
        })
        .collect()
}

fn main() {
    println!("E6: controller allocation — exact vs LP-rounding vs greedy\n");
    let mut t = Table::new(
        "solver scaling (capacity: 2 slots at 1/3 of sites)",
        &[
            "nodes",
            "demands",
            "exact sat",
            "b&b nodes",
            "proven",
            "exact ms",
            "lp sat",
            "lp gap%",
            "greedy sat",
            "greedy gap%",
        ],
    );
    let mut rows = Vec::new();
    for &(n_nodes, n_demands) in &[
        (8usize, 6usize),
        (12, 10),
        (16, 14),
        (24, 20),
        (32, 28),
        (48, 40),
    ] {
        let mut rng = SimRng::seed_from_u64(6000 + n_nodes as u64);
        let topo = Topology::random_geometric(n_nodes, 2000.0, 700.0, &mut rng);
        // A third of sites upgraded, 2 slots each.
        let slots: Vec<usize> = (0..n_nodes)
            .map(|i| if i % 3 == 0 { 2 } else { 0 })
            .collect();
        let demands = random_demands(&topo, n_demands, &mut rng);
        let instance = enumerate_options(&topo, &slots, &demands, 8);

        let start = Instant::now();
        let exact = solve_exact(&instance, 2_000_000);
        let exact_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(is_feasible(&instance, &exact.allocation));

        let start = Instant::now();
        let lp = solve_lp(&instance);
        let mut lp_rng = SimRng::seed_from_u64(1);
        let rounded = round_lp(&instance, &lp, 20, &mut lp_rng);
        let lp_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(is_feasible(&instance, &rounded));

        let start = Instant::now();
        let greedy = solve_greedy(&instance);
        let greedy_ms = start.elapsed().as_secs_f64() * 1e3;

        let exact_score = score(&instance, &exact.allocation);
        let lp_score = score(&instance, &rounded);
        let greedy_score = greedy.score;
        // Gaps vs the LP upper bound (valid even when B&B is truncated).
        let ub = lp.upper_bound.max(exact_score);
        let gap = |s: f64| 100.0 * (ub - s) / ub.max(1e-9);

        let row = E6Row {
            nodes: n_nodes,
            demands: n_demands,
            exact_satisfied: exact.allocation.satisfied_count(),
            exact_nodes_expanded: exact.nodes_expanded,
            exact_proven: exact.proven_optimal,
            exact_ms,
            lp_satisfied: rounded.satisfied_count(),
            lp_gap_pct: gap(lp_score),
            lp_ms,
            greedy_satisfied: greedy.allocation.satisfied_count(),
            greedy_gap_pct: gap(greedy_score),
            greedy_ms,
        };
        t.row(&[
            row.nodes.to_string(),
            row.demands.to_string(),
            row.exact_satisfied.to_string(),
            row.exact_nodes_expanded.to_string(),
            row.exact_proven.to_string(),
            format!("{:.1}", row.exact_ms),
            row.lp_satisfied.to_string(),
            format!("{:.2}", row.lp_gap_pct),
            row.greedy_satisfied.to_string(),
            format!("{:.2}", row.greedy_gap_pct),
        ]);
        // Sanity: exact is never worse than the heuristics it bounds.
        assert!(exact_score >= greedy_score - 1e-6);
        rows.push(row);
    }
    t.print();

    // The §5 wall: B&B work must grow sharply with instance size.
    let first = rows.first().unwrap().exact_nodes_expanded;
    let last = rows.last().unwrap().exact_nodes_expanded;
    println!(
        "branch-and-bound nodes grew {first} → {last} ({:.0}×) across the sweep",
        last as f64 / first.max(1) as f64
    );
    assert!(last > 10 * first, "expected the integer-program wall");
    dump_json("e6_controller_scaling", &rows);
}
