//! E2 — Fig. 2a/2b/2c: the three photonic computing primitives,
//! characterized at the device level.
//!
//! * **E2a (Fig. 2a, P1)**: dot-product accuracy and effective bits vs
//!   vector length and optical power.
//! * **E2b (Fig. 2b, P2)**: pattern-match discrimination — distance
//!   estimates for matched vs 1-bit-off vs random blocks, and the error
//!   rate of the match decision under receiver noise.
//! * **E2c (Fig. 2c, P3)**: the nonlinear transfer curve and its
//!   deviation from an ideal shifted ReLU.

use ofpc_bench::table::{dump_json, Table};
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_engine::matcher::{MatcherConfig, PatternMatcher};
use ofpc_engine::nonlinear::{relu_reference, NonlinearUnit};
use ofpc_engine::precision::measure_precision;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct E2aRow {
    n: usize,
    laser_dbm: f64,
    rms_error: f64,
    effective_bits: f64,
}

#[derive(Serialize)]
struct E2bRow {
    pattern_bits: usize,
    matched_est: f64,
    one_off_est: f64,
    random_est: f64,
    decision_errors: usize,
    trials: usize,
}

#[derive(Serialize, Default)]
struct E2Result {
    a: Vec<E2aRow>,
    b: Vec<E2bRow>,
    c_curve: Vec<(f64, f64)>,
    c_max_relu_dev: f64,
}

fn main() {
    let mut result = E2Result::default();

    // ---------- E2a: P1 precision sweep ----------
    let mut t = Table::new(
        "E2a — P1 dot product: precision vs vector length and power",
        &["n", "laser dBm", "rms err", "eff. bits"],
    );
    for &laser_dbm in &[13.0, 3.0, -7.0] {
        for &n in &[4usize, 16, 64, 256] {
            let mut rng = SimRng::seed_from_u64(1000 + n as u64);
            let mut cfg = DotUnitConfig::realistic();
            cfg.laser.power_dbm = laser_dbm;
            let mut unit = DotProductUnit::new(cfg, &mut rng);
            unit.calibrate(512);
            let mut prng = SimRng::seed_from_u64(7);
            let report = measure_precision(&mut unit, n, 25, &mut prng);
            t.row(&[
                n.to_string(),
                format!("{laser_dbm:.0}"),
                format!("{:.2e}", report.rms_error),
                format!("{:.2}", report.effective_bits),
            ]);
            result.a.push(E2aRow {
                n,
                laser_dbm,
                rms_error: report.rms_error,
                effective_bits: report.effective_bits,
            });
        }
    }
    t.print();
    // Shape check: precision degrades as launch power falls.
    let hi = result
        .a
        .iter()
        .filter(|r| r.laser_dbm == 13.0)
        .map(|r| r.effective_bits)
        .sum::<f64>();
    let lo = result
        .a
        .iter()
        .filter(|r| r.laser_dbm == -7.0)
        .map(|r| r.effective_bits)
        .sum::<f64>();
    assert!(hi > lo, "effective bits must fall with optical power");

    // ---------- E2b: P2 discrimination ----------
    let mut t = Table::new(
        "E2b — P2 pattern matching: distance estimates and decisions",
        &[
            "bits",
            "matched est",
            "1-off est",
            "random est",
            "errors/trials",
        ],
    );
    for &bits in &[8usize, 32, 128] {
        let mut rng = SimRng::seed_from_u64(2000 + bits as u64);
        let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
        m.calibrate(256);
        let mut wrng = SimRng::seed_from_u64(5);
        let pattern: Vec<bool> = (0..bits).map(|_| wrng.chance(0.5)).collect();
        let trials = 30;
        let mut matched_sum = 0.0;
        let mut oneoff_sum = 0.0;
        let mut random_sum = 0.0;
        let mut errors = 0;
        for _ in 0..trials {
            let r = m.match_block(&pattern, &pattern);
            matched_sum += r.distance_estimate;
            if !r.matched {
                errors += 1;
            }
            let mut oneoff = pattern.clone();
            let flip = wrng.below(bits);
            oneoff[flip] = !oneoff[flip];
            let r = m.match_block(&oneoff, &pattern);
            oneoff_sum += r.distance_estimate;
            if r.matched {
                errors += 1;
            }
            let random: Vec<bool> = (0..bits).map(|_| wrng.chance(0.5)).collect();
            let r = m.match_block(&random, &pattern);
            random_sum += r.distance_estimate;
        }
        let row = E2bRow {
            pattern_bits: bits,
            matched_est: matched_sum / trials as f64,
            one_off_est: oneoff_sum / trials as f64,
            random_est: random_sum / trials as f64,
            decision_errors: errors,
            trials: 2 * trials,
        };
        t.row(&[
            bits.to_string(),
            format!("{:.3}", row.matched_est),
            format!("{:.3}", row.one_off_est),
            format!("{:.1}", row.random_est),
            format!("{}/{}", row.decision_errors, row.trials),
        ]);
        result.b.push(row);
    }
    t.print();
    for row in &result.b {
        assert!(row.matched_est < 0.3, "matched blocks near zero distance");
        assert!(
            (row.one_off_est - 1.0).abs() < 0.3,
            "one-off distance ≈ 1 (got {})",
            row.one_off_est
        );
        assert!(
            (row.random_est - row.pattern_bits as f64 / 2.0).abs() < row.pattern_bits as f64 * 0.25,
            "random distance ≈ n/2"
        );
    }

    // ---------- E2c: P3 transfer curve ----------
    let mut unit = NonlinearUnit::ideal();
    let curve = unit.transfer_curve(33);
    let knee = curve
        .iter()
        .find(|(_, y)| *y > 0.05)
        .map(|(x, _)| *x)
        .unwrap_or(0.0);
    let mut max_dev: f64 = 0.0;
    let mut t = Table::new(
        "E2c — P3 transfer curve (x → f(x))",
        &["x", "f(x)", "ReLU ref"],
    );
    for &(x, y) in &curve {
        let r = relu_reference(x, knee);
        if x > knee {
            max_dev = max_dev.max((y - r).abs());
        }
        if (x * 8.0).fract() < 1e-9 {
            t.row(&[format!("{x:.3}"), format!("{y:.3}"), format!("{r:.3}")]);
        }
    }
    t.print();
    println!("knee ≈ {knee:.3}; max deviation from shifted ReLU above knee: {max_dev:.3}");
    result.c_curve = curve;
    result.c_max_relu_dev = max_dev;
    assert!(max_dev < 0.3, "P3 must be ReLU-like above the knee");

    dump_json("e2_primitives", &result);
}
