//! E14 — telemetry: replay the E12 serving load point and the E13
//! fault scenarios with tracing and the metrics registry enabled, then
//! cross-check everything the telemetry layer reports against the
//! exact summaries the runtimes compute themselves.
//!
//! Three properties are enforced:
//!
//! * **The trace is well formed** — every `B` has a matching `E` on its
//!   (pid, tid) track (checked by `validate_balanced`) and the dump is
//!   valid Chrome-trace JSON (an array of trace_event objects a
//!   `chrome://tracing` / Perfetto load accepts).
//! * **The registry agrees with the reports** — per-tenant
//!   p50/p99/p999 latency from the log-linear histograms lands within
//!   the bucket quantization bound (±3.2% plus nearest-rank slack) of
//!   the exact percentiles in [`ServeReport`]; per-stage energy gauges
//!   and the arrival/completion/shed counters match exactly.
//! * **Telemetry preserves determinism** — the instrumented runs replay
//!   byte-identical (same seed ⇒ same trace JSON, same metrics JSON),
//!   and the report equals the un-instrumented baseline's.

use ofpc_apps::digital::ComputeModel;
use ofpc_bench::table::{dump_json, Table};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::protection::RecoveryParams;
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_faults::{trace_recovery, Orchestrator};
use ofpc_net::sim::OpSpec;
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_serve::{
    ArrivalSpec, BatchClass, BatchPolicy, EngineFaultEvent, ServeConfig, ServeReport, ServeRuntime,
    ServiceModel, TenantSpec,
};
use ofpc_telemetry::{labels, validate_balanced, Telemetry};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::Serialize;

const SEED: u64 = 14;
const WDM_CHANNELS: usize = 4;
const OPERAND_LEN: usize = 2048;
const P1: Primitive = Primitive::VectorDotProduct;

/// Worst-case relative error of a histogram percentile: ±3.2% bucket
/// quantization plus nearest-rank slack on small samples.
const PCTL_TOL: f64 = 0.08;

// ------------------------------------------------------------- E12 replay

fn metro() -> OnFiberNetwork {
    let mut sys = OnFiberNetwork::new(Topology::line(3, 10.0), SEED);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    sys
}

/// The E12 knee estimate (full, affinity-hot batches across both slots).
fn capacity_rps() -> f64 {
    let model =
        ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), WDM_CHANNELS);
    let class = BatchClass {
        primitive: P1,
        operand_len: OPERAND_LEN as u32,
    };
    let (service_ps, _) = model.batch_service(class, 8, Some(class));
    2.0 * 8.0 / (service_ps as f64 * 1e-12)
}

/// The E12 two-tenant mix at the saturation knee, batching on.
fn e12_config(total_rps: f64) -> ServeConfig {
    ServeConfig {
        seed: 12,
        horizon_ps: 2_000_000_000,
        drain_grace_ps: 1_000_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000,
        },
        tenants: vec![
            TenantSpec {
                name: "steady".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson {
                    rate_rps: total_rps * 0.75,
                },
                primitive: P1,
                operand_len: OPERAND_LEN,
                deadline_ps: 2_000_000_000,
            },
            TenantSpec {
                name: "bursty".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Mmpp {
                    calm_rps: total_rps * 0.125,
                    burst_rps: total_rps * 1.125,
                    mean_calm_s: 200e-6,
                    mean_burst_s: 50e-6,
                },
                primitive: P1,
                operand_len: OPERAND_LEN,
                deadline_ps: 2_000_000_000,
            },
        ],
        verify_every: 256,
    }
}

fn run_e12(tel: Option<&Telemetry>) -> ServeReport {
    let sys = metro();
    let mut rt = ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        WDM_CHANNELS,
        e12_config(capacity_rps()),
    )
    .with_verify_backend(ofpc_engine::dot::KernelBackend::Vectorized);
    if let Some(tel) = tel {
        rt = rt.with_telemetry(tel);
    }
    rt.run()
}

// ------------------------------------------------------------ E13 replays

/// The E13c double-site outage window.
fn outage_schedule() -> Vec<EngineFaultEvent> {
    vec![
        EngineFaultEvent {
            at_ps: 500_000_000,
            node: NodeId(1),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 800_000_000,
            node: NodeId(2),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 1_200_000_000,
            node: NodeId(2),
            up: true,
        },
        EngineFaultEvent {
            at_ps: 1_500_000_000,
            node: NodeId(1),
            up: true,
        },
    ]
}

fn run_e13_fallback(tel: Option<&Telemetry>) -> ServeReport {
    let sys = metro();
    let mut rt = ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        WDM_CHANNELS,
        ServeConfig {
            seed: 13,
            horizon_ps: 2_000_000_000,
            drain_grace_ps: 1_000_000_000,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_ps: 5_000_000,
            },
            tenants: vec![TenantSpec {
                name: "steady".to_string(),
                weight: 1,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson { rate_rps: 6e6 },
                primitive: P1,
                operand_len: OPERAND_LEN,
                deadline_ps: 2_000_000_000,
            }],
            verify_every: 256,
        },
    )
    .with_engine_faults(&outage_schedule())
    .with_digital_fallback(ComputeModel::cpu())
    .with_verify_backend(ofpc_engine::dot::KernelBackend::Vectorized);
    if let Some(tel) = tel {
        rt = rt.with_telemetry(tel);
    }
    rt.run()
}

/// The E13b targeted fiber cut, with the recovery pass traced.
fn run_e13_cut(tel: &Telemetry) -> u64 {
    let mut sys = OnFiberNetwork::new(Topology::fig1(), 13);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    sys.set_telemetry(tel);
    sys.submit_demand(
        Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
        OpSpec::Dot {
            weights: vec![0.25; 8],
        },
    );
    let orch = Orchestrator::new(
        RecoveryParams::default(),
        Solver::Exact {
            node_budget: 1_000_000,
        },
    );
    sys.allocate_and_apply(orch.solver);
    let a = sys.net.topo.find_node("A").unwrap();
    let (cut_link, _) = sys.net.topo.neighbors(a)[0];
    sys.net.set_link_up(cut_link, false);
    let out = orch.recover_from_cut(&mut sys, 1_000_000);
    trace_recovery(tel, "fiber-cut", &out);
    assert!(out.fully_applied && out.unsatisfied == 0);
    out.timeline.ttr_ps()
}

// ------------------------------------------------------------- validation

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12)
}

/// Registry percentiles and counters vs the report's exact numbers.
fn check_report_agreement(tel: &Telemetry, report: &ServeReport, tenants: &[&str]) {
    let snap = tel.snapshot();
    for (i, name) in tenants.iter().enumerate() {
        let t = &report.tenants[i];
        let l = labels(&[("tenant", name)]);
        assert_eq!(
            snap.counter("serve_arrivals_total", &l),
            Some(t.arrivals),
            "{name}: arrivals counter"
        );
        assert_eq!(
            snap.counter("serve_completed_total", &l),
            Some(t.completed),
            "{name}: completed counter"
        );
        assert_eq!(
            snap.counter("serve_degraded_total", &l),
            Some(t.degraded),
            "{name}: degraded counter"
        );
        let shed: u64 = [
            "queue-full",
            "expired-queued",
            "expired-serving",
            "engine-failed",
        ]
        .iter()
        .map(|r| {
            snap.counter(
                "serve_shed_total",
                &labels(&[("tenant", name), ("reason", r)]),
            )
            .unwrap_or(0)
        })
        .sum();
        assert_eq!(
            shed,
            t.shed_queue_full
                + t.shed_expired_queued
                + t.shed_expired_serving
                + t.shed_engine_failed,
            "{name}: shed counters"
        );
        let h = snap
            .histogram("serve_latency_ps", &l)
            .expect("latency histogram registered");
        assert_eq!(h.count, t.completed, "{name}: latency sample count");
        for (p, exact_us) in [
            (h.p50, t.p50_latency_us),
            (h.p99, t.p99_latency_us),
            (h.p999, t.p999_latency_us),
        ] {
            let Some(exact_us) = exact_us else { continue };
            let got_us = p as f64 / 1e6;
            assert!(
                close(got_us, exact_us, PCTL_TOL),
                "{name}: histogram percentile {got_us:.2} µs vs exact {exact_us:.2} µs"
            );
        }
        let e = snap
            .gauge("serve_energy_joules", &l)
            .expect("tenant energy gauge");
        assert!(close(e, t.energy_j, 1e-9), "{name}: energy gauge");
    }
    for (stage, &joules) in &report.energy_stages_j {
        let g = snap
            .gauge(
                "serve_stage_energy_joules",
                &labels(&[("stage", stage.as_str())]),
            )
            .unwrap_or_else(|| panic!("stage energy gauge for {stage}"));
        assert!(
            close(g, joules, 1e-9),
            "stage {stage}: gauge {g:.3e} vs report {joules:.3e}"
        );
    }
}

/// Parse the Chrome-trace dump back and sanity-check its shape: a JSON
/// array of objects each carrying name/cat/ph/ts/pid/tid.
fn check_chrome_json(json: &str) -> usize {
    let v: serde_json::Value = serde_json::from_str(json).expect("trace dump parses as JSON");
    let events = v.as_seq().expect("trace dump must be a JSON array");
    assert!(!events.is_empty(), "trace must not be empty");
    for ev in events {
        let o = ev.as_map().expect("every trace event must be an object");
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(
                o.iter().any(|(k, _)| k == key),
                "trace event missing {key:?}"
            );
        }
        let ph = o
            .iter()
            .find(|(k, _)| k == "ph")
            .and_then(|(_, v)| v.as_str())
            .expect("ph is a string");
        assert!(["B", "E", "i"].contains(&ph), "unexpected phase {ph:?}");
    }
    events.len()
}

#[derive(Debug, Serialize)]
struct E14Summary {
    e12_trace_events: usize,
    e12_spans: usize,
    e13_trace_events: usize,
    e13_spans: usize,
    e13_cut_ttr_us: f64,
    e12_report: ServeReport,
    e13_report: ServeReport,
    e12_metrics: ofpc_telemetry::MetricsSnapshot,
    e13_metrics: ofpc_telemetry::MetricsSnapshot,
}

fn main() {
    // --- E12 replay: instrumented twice (replay determinism) and once
    // bare (telemetry must not perturb the simulation). The three runs
    // are independent seeded scenarios, so they scatter across the pool;
    // validation happens on this thread from the gathered handles. ---
    let pool = WorkerPool::from_env();
    let mut e12 = pool.scatter_gather("e14-e12", vec![true, true, false], |_, instrument| {
        let tel = instrument.then(Telemetry::enabled);
        let report = run_e12(tel.as_ref());
        (report, tel)
    });
    let (baseline, _) = e12.pop().expect("three E12 runs");
    let (report_b, tel_b) = e12.pop().expect("three E12 runs");
    let (report_a, tel_a) = e12.pop().expect("three E12 runs");
    let (tel_a, tel_b) = (
        tel_a.expect("first run instrumented"),
        tel_b.expect("second run instrumented"),
    );

    let trace_a = tel_a.chrome_trace_json();
    assert_eq!(
        trace_a,
        tel_b.chrome_trace_json(),
        "same seed ⇒ byte-identical trace"
    );
    assert_eq!(
        tel_a.metrics_json(),
        tel_b.metrics_json(),
        "same seed ⇒ byte-identical metrics"
    );
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&report_b).unwrap(),
        "instrumented replay must be deterministic"
    );
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "telemetry must not perturb the simulation"
    );

    let e12_events = check_chrome_json(&trace_a);
    let e12_spans =
        validate_balanced(&tel_a.trace_events()).expect("E12 trace must balance B/E per track");
    check_report_agreement(&tel_a, &report_a, &["steady", "bursty"]);

    // --- E13 replay: the fallback scenario plus a traced recovery. ---
    let tel_f = Telemetry::enabled();
    let report_f = run_e13_fallback(Some(&tel_f));
    assert!(report_f.degraded > 0, "fallback must absorb displaced work");
    let ttr_ps = run_e13_cut(&tel_f);
    let trace_f = tel_f.chrome_trace_json();
    let e13_events = check_chrome_json(&trace_f);
    let e13_spans =
        validate_balanced(&tel_f.trace_events()).expect("E13 trace must balance B/E per track");
    check_report_agreement(&tel_f, &report_f, &["steady"]);
    let snap_f = tel_f.snapshot();
    assert_eq!(
        snap_f.counter("recoveries_total", &labels(&[("kind", "fiber-cut")])),
        Some(1),
        "the traced recovery must register"
    );
    // The fault instants made it into the trace as structured events.
    for name in [
        "site.fail",
        "site.repair",
        "fallback.digital",
        "fault.fiber-cut",
    ] {
        assert!(
            tel_f.trace_events().iter().any(|e| e.name == name),
            "trace must carry {name:?} events"
        );
    }

    let mut t = Table::new(
        "E14 — telemetry replay (E12 knee + E13 fallback/cut)",
        &["scenario", "trace events", "spans", "completed", "p99 µs"],
    );
    t.row(&[
        "E12 knee".into(),
        format!("{e12_events}"),
        format!("{e12_spans}"),
        format!("{}", report_a.completed),
        report_a
            .p99_latency_us
            .map_or("-".into(), |v| format!("{v:.1}")),
    ]);
    t.row(&[
        "E13 fallback+cut".into(),
        format!("{e13_events}"),
        format!("{e13_spans}"),
        format!("{}", report_f.completed),
        report_f
            .p99_latency_us
            .map_or("-".into(), |v| format!("{v:.1}")),
    ]);
    t.print();
    println!(
        "traced recovery TTR {:.0} µs; registry agrees with reports \
         (counters exact, percentiles within ±{:.0}%)",
        ttr_ps as f64 / 1e6,
        PCTL_TOL * 100.0
    );

    // --- Artifacts: the Chrome trace and the metrics snapshot. ---
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write(
            "results/e14_telemetry_trace.json",
            ofpc_bench::table::versioned_trace(&trace_f),
        );
        let _ = std::fs::write(
            "results/e14_telemetry_trace_e12.json",
            ofpc_bench::table::versioned_trace(&trace_a),
        );
    }
    dump_json(
        "e14_telemetry",
        &E14Summary {
            e12_trace_events: e12_events,
            e12_spans,
            e13_trace_events: e13_events,
            e13_spans,
            e13_cut_ttr_us: ttr_ps as f64 / 1e6,
            e12_report: report_a,
            e13_report: report_f,
            e12_metrics: tel_a.snapshot(),
            e13_metrics: snap_f,
        },
    );
    println!(
        "\nwrote results/e14_telemetry{{_trace,_trace_e12}}.json and results/e14_telemetry.json"
    );
}
