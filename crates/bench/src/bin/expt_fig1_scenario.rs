//! E1 — the paper's Fig. 1 end-to-end scenario.
//!
//! Two applications share the A–B–C–D WAN: packet classification (P2,
//! served at site B) and image recognition (P1, served at site C). We
//! measure end-to-end request latency for on-fiber execution and compare
//! against the baselines the paper's Table 1 lists as "current compute
//! locations": a cloud round trip (detour to a DC plus TPU inference)
//! and edge-device execution (no detour, slow SoC).
//!
//! Paper claim (§2.2/§4): on-fiber computing "improves application
//! latency by performing computation inside the network" — latency
//! should collapse to essentially one propagation delay.

use ofpc_apps::digital::{ComputeModel, Placement, RequestModel};
use ofpc_bench::table::{dump_json, Table};
use ofpc_core::metrics::SystemReport;
use ofpc_core::scenario::Fig1Scenario;
use ofpc_photonics::SimRng;
use serde::Serialize;

#[derive(Serialize)]
struct E1Result {
    on_fiber_mean_ms: f64,
    on_fiber_p99_ms: f64,
    cloud_ms: f64,
    edge_ms: f64,
    compute_coverage: f64,
    engine_energy_j: f64,
    speedup_vs_cloud: f64,
}

fn main() {
    println!("E1: Fig. 1 scenario — on-fiber vs cloud vs edge\n");

    // --- On-fiber: run the assembled scenario. ---
    let mut scenario = Fig1Scenario::build(42);
    let mut rng = SimRng::seed_from_u64(1);
    let requests = 200;
    scenario.inject_traffic(requests, 0, 2_000_000, &mut rng);
    let (delivered, computed) = scenario.run();
    assert_eq!(delivered, 2 * requests);
    let report = SystemReport::from_network(&scenario.system.net);

    // --- Baselines: same path geometry (A→D is 1500 km), recognition
    // workload of 64 MACs/request at the in-network hop; the cloud model
    // runs the full model (64×16+16×4 MLP ≈ 1088 MACs) since it has the
    // full accelerator. Detour to the DC: 400 km each way.
    let recognize = RequestModel {
        path_km: 1500.0,
        macs: 1088,
        bytes: 600,
        line_rate_bps: 100e9,
    };
    let cloud_ms =
        recognize.latency_s(&Placement::Cloud { detour_km: 400.0 }, &ComputeModel::tpu()) * 1e3;
    let edge_ms = recognize.latency_s(&Placement::EndDevice, &ComputeModel::edge_soc()) * 1e3;

    let mut t = Table::new(
        "Fig. 1 — request latency by compute placement",
        &["placement", "mean ms", "p99 ms", "notes"],
    );
    t.row(&[
        "on-fiber (B/C)".into(),
        format!("{:.3}", report.mean_latency_ms),
        format!("{:.3}", report.p99_latency_ms),
        format!("{}/{} computed in flight", computed, delivered),
    ]);
    t.row(&[
        "cloud (TPU, +400 km)".into(),
        format!("{cloud_ms:.3}"),
        format!("{cloud_ms:.3}"),
        "detour both ways".into(),
    ]);
    t.row(&[
        "edge device".into(),
        format!("{edge_ms:.3}"),
        format!("{edge_ms:.3}"),
        "no detour, slow SoC".into(),
    ]);
    t.print();

    let (at_b, at_c) = scenario.engine_executions();
    println!("engine executions: site B = {at_b}, site C = {at_c}");
    println!("{report}");

    let result = E1Result {
        on_fiber_mean_ms: report.mean_latency_ms,
        on_fiber_p99_ms: report.p99_latency_ms,
        cloud_ms,
        edge_ms,
        compute_coverage: report.compute_coverage(),
        engine_energy_j: report.engine_energy_j,
        speedup_vs_cloud: cloud_ms / report.mean_latency_ms,
    };
    println!(
        "\non-fiber vs cloud speedup: {:.2}× (propagation-bound floor)",
        result.speedup_vs_cloud
    );
    assert!(
        result.on_fiber_mean_ms < result.cloud_ms,
        "on-fiber must beat the cloud round trip"
    );
    assert!((result.compute_coverage - 1.0).abs() < 1e-9);
    dump_json("e1_fig1_scenario", &result);
}
