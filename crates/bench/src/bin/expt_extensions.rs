//! E11 — the paper's §5 "Discussion and limitations" items, implemented
//! and measured (the extension/future-work experiments):
//!
//! * **Distributed on-fiber computing** — a dot product split across
//!   multiple transponders along the path, accumulated in the PCH.
//! * **Security** — pattern matching on encrypted optical data: the
//!   phase-XOR cipher commutes with interference matching.
//! * **Datacenters** — photonic compute transceivers in a leaf–spine
//!   spine serving cross-rack inference at microsecond latency.
//! * **Coherent transponders** — QPSK IQ path with LO-gain sensitivity,
//!   the hardware the Fig.-3 architecture actually ships with.

use ofpc_apps::secure_match::{encrypt_bits, SecureMatcher};
use ofpc_bench::table::{dump_json, Table};
use ofpc_core::distributed::install_distributed_dot;
use ofpc_core::protocol::tag_request;
use ofpc_engine::Primitive;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use ofpc_transponder::coherent::{span_carrier_phase, CoherentRx, CoherentTx};
use serde::Serialize;

#[derive(Serialize, Default)]
struct E11Result {
    distributed_parts: Vec<(u32, u64)>, // (site, macs)
    distributed_computed: bool,
    secure_match_distance: f64,
    secure_adversary_distance: f64,
    dc_p99_us: f64,
    dc_coverage: f64,
    coherent_span_errors: usize,
    coherent_bits: usize,
}

fn main() {
    println!("E11: §5 extension experiments\n");
    let mut result = E11Result::default();

    // ---- 1. Distributed dot product over a 5-node line ----
    let mut net = Network::new(Topology::line(5, 300.0), SimRng::seed_from_u64(1));
    net.install_shortest_path_routes();
    let sites = [NodeId(1), NodeId(2), NodeId(3)];
    let weights: Vec<f64> = (0..24).map(|i| (i % 8) as f64 / 8.0).collect();
    let plan = install_distributed_dot(
        &mut net,
        &sites,
        100,
        &weights,
        Network::node_prefix(NodeId(4)),
        0.0,
    );
    let operands: Vec<f64> = (0..24).map(|i| ((i * 5) % 9) as f64 / 9.0).collect();
    let p = tag_request(
        Network::node_addr(NodeId(0), 1),
        Network::node_addr(NodeId(4), 1),
        1,
        Primitive::VectorDotProduct,
        plan.entry_op,
        &operands,
    );
    net.inject(0, NodeId(0), p);
    net.run_to_idle();
    result.distributed_computed = net.stats.delivered[0].computed;
    let mut t = Table::new(
        "distributed dot product: 24 weights over 3 transponders",
        &["site", "op", "offset", "part len", "MACs"],
    );
    for &(site, op, offset, len) in &plan.parts {
        let macs = net.engines_at(site)[0].macs;
        t.row(&[
            format!("n{}", site.0),
            op.to_string(),
            offset.to_string(),
            len.to_string(),
            macs.to_string(),
        ]);
        result.distributed_parts.push((site.0, macs));
    }
    t.print();
    assert!(result.distributed_computed, "all parts must complete");
    assert_eq!(
        result
            .distributed_parts
            .iter()
            .map(|&(_, m)| m)
            .sum::<u64>(),
        24
    );

    // ---- 2. Matching on encrypted data ----
    let key = 0xFEED_BEEF;
    let pattern: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
    let mut sm = SecureMatcher::ideal(&pattern, key);
    let mut data = pattern.clone();
    data[7] = !data[7];
    data[40] = !data[40];
    let enc = encrypt_bits(&data, key);
    result.secure_match_distance = sm.match_ciphertext(&enc);
    result.secure_adversary_distance = sm.match_ciphertext_against_plaintext_rule(&enc, &pattern);
    println!(
        "encrypted matching: distance through cipher = {:.2} (true 2); \
         plaintext-rule adversary reads {:.1} (n/2 = 32 — no leak)\n",
        result.secure_match_distance, result.secure_adversary_distance
    );
    assert!((result.secure_match_distance - 2.0).abs() < 0.2);
    assert!((result.secure_adversary_distance - 32.0).abs() < 12.0);

    // ---- 3. Datacenter leaf–spine ----
    let mut dc = Network::new(Topology::leaf_spine(8, 2, 0.1), SimRng::seed_from_u64(2));
    dc.install_shortest_path_routes();
    let spine = NodeId(8);
    dc.add_engine(
        spine,
        1,
        OpSpec::Dot {
            weights: vec![0.5; 16],
        },
        0.0,
    );
    dc.install_compute_detour(Primitive::VectorDotProduct, spine);
    let mut id = 0;
    for src in 0..8u32 {
        for k in 0..8u32 {
            let dst = (src + 1 + k % 7) % 8;
            let p = tag_request(
                Network::node_addr(NodeId(src), 1),
                Network::node_addr(NodeId(dst), 1),
                id,
                Primitive::VectorDotProduct,
                1,
                &[0.5; 16],
            );
            dc.inject(id as u64 * 2_000, NodeId(src), p);
            id += 1;
        }
    }
    dc.run_to_idle();
    result.dc_p99_us = dc.stats.latency_percentile_ms(0.99).unwrap() * 1e3;
    result.dc_coverage = dc.stats.computed_count() as f64 / dc.stats.delivered_count() as f64;
    println!(
        "datacenter: {} cross-rack requests, p99 {:.2} µs, coverage {:.2}\n",
        dc.stats.delivered_count(),
        result.dc_p99_us,
        result.dc_coverage
    );
    assert!(result.dc_p99_us < 10.0, "DC latency must be µs-scale");
    assert!((result.dc_coverage - 1.0).abs() < 1e-9);

    // ---- 4. Coherent QPSK over a long span ----
    let mut rng = SimRng::seed_from_u64(3);
    let mut tx = CoherentTx::ideal(&mut rng);
    let mut rx = CoherentRx::ideal(&mut rng);
    let span = ofpc_photonics::fiber::FiberSpan::compensated(80.0);
    let bits: Vec<bool> = (0..2_000).map(|i| (i * 13) % 7 < 3).collect();
    let field = span.propagate(&tx.transmit(&bits));
    let got = rx.receive(&field, span_carrier_phase(&span, field.wavelength_m));
    result.coherent_bits = bits.len();
    result.coherent_span_errors = got.iter().zip(&bits).filter(|(a, b)| a != b).count();
    println!(
        "coherent QPSK over 80 km: {}/{} bit errors at 2 bits/symbol (64 Gb/s on 32 GBd)",
        result.coherent_span_errors, result.coherent_bits
    );
    assert_eq!(result.coherent_span_errors, 0);

    dump_json("e11_extensions", &result);
    println!("\nall §5 extension experiments verified");
}
