//! E18 — proactive multipath resilience under a correlated-cut fault
//! storm.
//!
//! Runs the full [`ofpc_bench::resil::E18Config`] scenario: one seeded
//! storm (eight single-cut bursts over 4 ms) replayed byte-identically
//! against the unprotected baseline, full replication, and XOR-parity
//! coding, on the same hub-and-spoke plant with the same arrivals.
//!
//! Acceptance gates (the ISSUE's resilience contract):
//!
//! * the storm forces failures (shed/degraded/unfinished) on the
//!   unprotected baseline — it is not a storm in name only;
//! * both protected modes finish with **zero** failed requests and
//!   every redundancy-set member accounted for;
//! * the energy price of protection stays within replica ≤ 2.1× and
//!   parity ≤ 1.5× of the unprotected baseline's joules per completed
//!   request.
//!
//! The full comparison document lands in `results/e18_resil.json`
//! under the versioned envelope.

use ofpc_bench::resil::{run_e18, E18Config};
use ofpc_bench::table::{dump_json, Table};
use ofpc_par::WorkerPool;

fn main() {
    let pool = WorkerPool::from_env();
    let cfg = E18Config::full();
    println!(
        "E18: resilience under a {}-burst storm ({} workers)",
        cfg.storm.bursts,
        pool.workers()
    );
    let rep = run_e18(&pool, &cfg);

    let mut t = Table::new(
        "E18 — availability and energy under one byte-identical storm",
        &[
            "mode",
            "arrivals",
            "completed",
            "failed",
            "availability",
            "goodput",
            "p99",
            "energy/req",
            "overhead",
        ],
    );
    for r in &rep.runs {
        t.row(&[
            r.mode.clone(),
            r.report.arrivals.to_string(),
            r.report.completed.to_string(),
            r.failed.to_string(),
            format!("{:.4}", r.availability),
            format!("{:.2} Mrps", r.goodput_rps / 1e6),
            r.p99_latency_us
                .map(|v| format!("{v:.1} us"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.2} nJ", r.energy_per_completed_j * 1e9),
            format!("{:.3}x", r.energy_overhead),
        ]);
    }
    t.print();

    let base = &rep.runs[0];
    assert!(base.failed > 0, "E18: the storm must hurt the baseline");
    assert!(
        rep.link_cuts >= cfg.storm.bursts,
        "E18: expected at least one cut per burst"
    );
    for r in &rep.runs[1..] {
        assert_eq!(
            r.failed, 0,
            "E18: {} must ride out the storm with zero lost work",
            r.mode
        );
        assert_eq!(r.report.arrivals, r.report.completed);
        assert_eq!(r.resil.unsettled_sets, 0, "E18: unaccounted member");
        assert!(r.resil.link_cuts_seen as usize >= cfg.storm.bursts);
    }
    let replica = &rep.runs[1];
    let parity = &rep.runs[2];
    assert!(replica.resil.replica_sets > 0 && replica.resil.losses_absorbed > 0);
    assert!(parity.resil.parity_sets > 0 && parity.resil.reconstructions > 0);
    assert!(
        replica.energy_overhead <= 2.1,
        "E18: replica overhead {:.3} above the 2.1x gate",
        replica.energy_overhead
    );
    assert!(
        parity.energy_overhead <= 1.5,
        "E18: parity overhead {:.3} above the 1.5x gate",
        parity.energy_overhead
    );
    assert!(
        parity.energy_overhead < replica.energy_overhead,
        "E18: coding must beat full replication on energy"
    );

    dump_json("e18_resil", &rep);
    println!("E18: wrote results/e18_resil.json");
}
