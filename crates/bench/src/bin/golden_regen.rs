//! Regenerate the golden-replay fixtures under `results/golden/`.
//!
//! Run from the repo root after an intentional behavior change:
//!
//! ```text
//! cargo run -p ofpc-bench --bin golden_regen
//! ```
//!
//! then review the fixture diff like any other code change. The
//! fixtures are byte-deterministic, so an unexpected diff means the
//! serving/fault/telemetry stacks changed behavior.

use ofpc_bench::golden;
use ofpc_par::WorkerPool;

fn main() {
    let dir = std::path::Path::new("results/golden");
    std::fs::create_dir_all(dir).expect("create results/golden");
    let pool = WorkerPool::from_env();
    for (name, generate) in golden::cases() {
        let json = generate(&pool);
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, &json).expect("write fixture");
        println!("wrote {} ({} bytes)", path.display(), json.len());
    }
}
