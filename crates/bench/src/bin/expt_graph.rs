//! E16 — graph compiler: compiled-pipelined execution vs a naive
//! sequential baseline, plus precision-driven partitioning and the
//! fault-injection re-lowering path.
//!
//! Four sub-experiments over the Fig. 1 WAN (A→D, compute sites at B
//! and C):
//!
//! * **E16a — pipelined vs sequential.** A seeded 3-layer DNN graph is
//!   compiled (partition → fuse → place → wavelength-assign) and driven
//!   as a closed batch both ways. Wavelength pipelining must deliver
//!   ≥ 1.5× the sequential throughput at *identical* per-request energy
//!   (same stages, same photons) and no worse mean latency.
//! * **E16b — Table-1 lowering.** Every Table-1 builder graph through
//!   the same lowering pass: stage counts, photonic share, and install
//!   charge, demonstrating the partition/fusion rules app by app.
//! * **E16c — error-budget partitioning.** The same DNN under the
//!   realistic vs degraded receiver budget: a starved budget must move
//!   precision-critical stages to the digital fallback and pay for it
//!   in energy.
//! * **E16d — fault-aware re-lowering.** An engine hard-fail at one
//!   placed site (delivered as an [`ofpc_faults::FaultPlan`]) must
//!   re-lower *only that site's stages* to digital; repair must restore
//!   the healthy plan byte-for-byte.

use ofpc_bench::table::{dump_json, Table};
use ofpc_engine::dnn::Mlp;
use ofpc_faults::{FaultEvent, FaultKind, FaultPlan};
use ofpc_graph::exec::{ExecConfig, ExecMode, ExecReport};
use ofpc_graph::ir::{self, WorkGraph};
use ofpc_graph::lower::{lower, ErrorBudget, LowerConfig};
use ofpc_graph::{compile, GraphExecutor};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use serde::Serialize;

const SEED: u64 = 16;
const REQUESTS: usize = 64;
/// Gate: pipelined throughput must beat sequential by this factor.
const MIN_PIPELINE_GAIN: f64 = 1.5;
/// Compute transponder slots per Fig. 1 node (B and C are sites).
const SLOTS: [usize; 4] = [0, 2, 2, 0];
const WDM_CHANNELS: usize = 4;

fn dnn_graph() -> WorkGraph {
    let mut rng = SimRng::seed_from_u64(SEED);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    ir::dnn_graph(&mlp, 4.0, 6.0)
}

fn compiled(budget: ErrorBudget) -> GraphExecutor {
    let mut cfg = LowerConfig::metro();
    cfg.budget = budget;
    compile(
        &dnn_graph(),
        &cfg,
        &Topology::fig1(),
        &SLOTS,
        NodeId(0),
        NodeId(3),
        WDM_CHANNELS,
    )
    .expect("DNN compiles onto fig1")
}

fn batch(mode: ExecMode) -> ExecConfig {
    ExecConfig {
        requests: REQUESTS,
        inter_arrival_ps: 0,
        mode,
    }
}

// ---------------------------------------------------------------- E16a

#[derive(Debug, Serialize)]
struct PipelineRow {
    mode: String,
    throughput_rps: f64,
    mean_latency_us: f64,
    p99_latency_us: f64,
    energy_per_request_nj: f64,
}

fn row(r: &ExecReport) -> PipelineRow {
    PipelineRow {
        mode: r.mode.clone(),
        throughput_rps: r.throughput_rps,
        mean_latency_us: r.mean_latency_ps as f64 * 1e-6,
        p99_latency_us: r.p99_latency_ps as f64 * 1e-6,
        energy_per_request_nj: r.energy_per_request_j * 1e9,
    }
}

fn e16a_pipeline(ex: &GraphExecutor) -> (Vec<PipelineRow>, f64) {
    let pipe = ex.run(&batch(ExecMode::Pipelined));
    let seq = ex.run(&batch(ExecMode::Sequential));
    let gain = pipe.throughput_rps / seq.throughput_rps;

    let mut t = Table::new(
        &format!("E16a: pipelined vs sequential ({REQUESTS} requests, fig1 A->D)"),
        &[
            "mode",
            "thpt (req/s)",
            "mean lat (us)",
            "p99 lat (us)",
            "energy/req (nJ)",
        ],
    );
    for r in [&pipe, &seq] {
        t.row(&[
            r.mode.clone(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.1}", r.mean_latency_ps as f64 * 1e-6),
            format!("{:.1}", r.p99_latency_ps as f64 * 1e-6),
            format!("{:.2}", r.energy_per_request_j * 1e9),
        ]);
    }
    t.print();
    println!("E16a: pipelining gain {gain:.1}x (gate {MIN_PIPELINE_GAIN}x)\n");

    assert!(
        gain >= MIN_PIPELINE_GAIN,
        "pipelined throughput gain {gain:.2}x below the {MIN_PIPELINE_GAIN}x gate"
    );
    assert!(
        pipe.energy_per_request_j <= seq.energy_per_request_j,
        "pipelining must not cost energy"
    );
    assert!(
        pipe.mean_latency_ps <= seq.mean_latency_ps,
        "pipelining must not worsen mean latency"
    );
    (vec![row(&pipe), row(&seq)], gain)
}

// ---------------------------------------------------------------- E16b

#[derive(Debug, Serialize)]
struct AppRow {
    app: String,
    ops: usize,
    stages: usize,
    photonic_stages: usize,
    stage_labels: Vec<String>,
    service_ns: f64,
    install_us: f64,
    energy_per_request_nj: f64,
}

fn e16b_table1_lowering() -> Vec<AppRow> {
    let apps = vec![
        dnn_graph(),
        ir::correlation_graph(64, 16, 4.0),
        ir::pattern_match_graph(32, 3.0),
    ];
    let cfg = LowerConfig::metro();
    let mut t = Table::new(
        "E16b: Table-1 apps through the lowering pass (realistic budget)",
        &[
            "app",
            "ops",
            "stages",
            "photonic",
            "service (ns)",
            "install (us)",
            "energy/req (nJ)",
        ],
    );
    let mut rows = Vec::new();
    for g in &apps {
        let plan = lower(g, &cfg).expect("lowers");
        let install_ps: u64 = plan.stages.iter().map(|s| s.reconfig_ps).sum();
        t.row(&[
            g.name.clone(),
            g.nodes.len().to_string(),
            plan.stages.len().to_string(),
            plan.photonic_stage_count().to_string(),
            format!("{:.1}", plan.total_service_ps() as f64 * 1e-3),
            format!("{:.2}", install_ps as f64 * 1e-6),
            format!("{:.2}", plan.energy_per_request_j() * 1e9),
        ]);
        rows.push(AppRow {
            app: g.name.clone(),
            ops: g.nodes.len(),
            stages: plan.stages.len(),
            photonic_stages: plan.photonic_stage_count(),
            stage_labels: plan.stages.iter().map(|s| s.label.clone()).collect(),
            service_ns: plan.total_service_ps() as f64 * 1e-3,
            install_us: install_ps as f64 * 1e-6,
            energy_per_request_nj: plan.energy_per_request_j() * 1e9,
        });
    }
    t.print();
    println!();
    // Fusion sanity: the DNN's hidden layers fused mvm+nonlinear.
    assert_eq!(rows[0].stage_labels[0], "mvm+nonlinear");
    // Every app keeps at least one photonic stage under the realistic budget.
    assert!(rows.iter().all(|r| r.photonic_stages >= 1));
    rows
}

// ---------------------------------------------------------------- E16c

#[derive(Debug, Serialize)]
struct BudgetRow {
    budget: String,
    pd_snr_db: f64,
    photonic_stages: usize,
    digital_stages: usize,
    energy_per_request_nj: f64,
}

fn e16c_budget_partitioning() -> Vec<BudgetRow> {
    // 6-bit output demand: the realistic receiver clears it (~7.3
    // effective bits at n=16), the degraded one (~4.4) cannot.
    let mut rng = SimRng::seed_from_u64(SEED);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    let g = ir::dnn_graph(&mlp, 2.5, 6.0);
    let mut t = Table::new(
        "E16c: partitioning vs receiver error budget (DNN, 6-bit output demand)",
        &[
            "budget",
            "PD SNR (dB)",
            "photonic",
            "digital",
            "energy/req (nJ)",
        ],
    );
    let mut rows = Vec::new();
    for (name, budget) in [
        ("realistic", ErrorBudget::realistic()),
        ("degraded", ErrorBudget::degraded()),
    ] {
        let mut cfg = LowerConfig::metro();
        cfg.budget = budget;
        let plan = lower(&g, &cfg).expect("lowers");
        let photonic = plan.photonic_stage_count();
        let digital = plan.stages.len() - photonic;
        t.row(&[
            name.to_string(),
            format!("{:.0}", budget.pd_snr_db),
            photonic.to_string(),
            digital.to_string(),
            format!("{:.2}", plan.energy_per_request_j() * 1e9),
        ]);
        rows.push(BudgetRow {
            budget: name.to_string(),
            pd_snr_db: budget.pd_snr_db,
            photonic_stages: photonic,
            digital_stages: digital,
            energy_per_request_nj: plan.energy_per_request_j() * 1e9,
        });
    }
    t.print();
    println!();
    assert!(
        rows[1].photonic_stages < rows[0].photonic_stages,
        "degraded budget must push stages digital"
    );
    assert!(
        rows[1].energy_per_request_nj > rows[0].energy_per_request_nj,
        "digital fallback costs energy"
    );
    rows
}

// ---------------------------------------------------------------- E16d

#[derive(Debug, Serialize)]
struct FaultReport {
    victim_site: u32,
    relowered_stages: Vec<usize>,
    healthy: PipelineRow,
    faulted: PipelineRow,
    healed_matches_healthy: bool,
}

fn e16d_fault_relowering(ex: &GraphExecutor) -> FaultReport {
    let mut ex = ex.clone();
    let sites = ex.placed().photonic_sites();
    assert!(sites.len() >= 2, "fig1 placement spreads over two sites");
    let victim = sites[0];
    let healthy = ex.run(&batch(ExecMode::Pipelined));

    let plan = FaultPlan {
        events: vec![FaultEvent {
            at_ps: 1_000_000,
            kind: FaultKind::EngineFail { node: victim },
        }],
    };
    let changed = ex.apply_faults(&plan);
    let faulted = ex.run(&batch(ExecMode::Pipelined));

    // Only the victim's stages re-lowered; the rest stayed photonic.
    assert_eq!(faulted.relowered_stages.len(), changed);
    assert!(changed >= 1 && changed < faulted.stages);
    for &k in &faulted.relowered_stages {
        assert_eq!(ex.placed().bindings[k].node, victim);
    }
    assert!(
        faulted.energy_per_request_j > healthy.energy_per_request_j,
        "digital fallback costs energy"
    );

    ex.repair_site(victim);
    let healed = ex.run(&batch(ExecMode::Pipelined));
    let healed_matches_healthy = serde_json::to_string(&healed).expect("serializes")
        == serde_json::to_string(&healthy).expect("serializes");
    assert!(
        healed_matches_healthy,
        "repair must restore the healthy plan"
    );

    let mut t = Table::new(
        &format!(
            "E16d: engine fail at site {} -> partial digital fallback",
            victim.0
        ),
        &[
            "state",
            "thpt (req/s)",
            "mean lat (us)",
            "energy/req (nJ)",
            "digital stages",
        ],
    );
    for (state, r) in [
        ("healthy", &healthy),
        ("faulted", &faulted),
        ("healed", &healed),
    ] {
        t.row(&[
            state.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.1}", r.mean_latency_ps as f64 * 1e-6),
            format!("{:.2}", r.energy_per_request_j * 1e9),
            r.digital_stages.to_string(),
        ]);
    }
    t.print();
    println!(
        "E16d: {} of {} stages re-lowered to digital, repair restored the plan\n",
        changed, faulted.stages
    );

    FaultReport {
        victim_site: victim.0,
        relowered_stages: faulted.relowered_stages.clone(),
        healthy: row(&healthy),
        faulted: row(&faulted),
        healed_matches_healthy,
    }
}

// ----------------------------------------------------------------- main

#[derive(Debug, Serialize)]
struct E16Report {
    seed: u64,
    requests: usize,
    pipeline: Vec<PipelineRow>,
    pipeline_gain: f64,
    table1_lowering: Vec<AppRow>,
    budget_partitioning: Vec<BudgetRow>,
    fault: FaultReport,
}

fn main() {
    println!("# E16: workload graph compiler (ofpc-graph)\n");
    let ex = compiled(ErrorBudget::realistic());
    let placed = ex.placed();
    println!(
        "compiled {}: {} stages on sites {:?}, direct path {:.1} us, detour +{:.1} us\n",
        placed.plan.graph_name,
        placed.plan.stages.len(),
        placed
            .photonic_sites()
            .iter()
            .map(|n| n.0)
            .collect::<Vec<_>>(),
        placed.direct_ps as f64 * 1e-6,
        placed.added_latency_ps as f64 * 1e-6,
    );

    let (pipeline, pipeline_gain) = e16a_pipeline(&ex);
    let table1_lowering = e16b_table1_lowering();
    let budget_partitioning = e16c_budget_partitioning();
    let fault = e16d_fault_relowering(&ex);

    dump_json(
        "e16_graph",
        &E16Report {
            seed: SEED,
            requests: REQUESTS,
            pipeline,
            pipeline_gain,
            table1_lowering,
            budget_partitioning,
            fault,
        },
    );
    println!("expt_graph: all gates passed (results/e16_graph.json)");
}
