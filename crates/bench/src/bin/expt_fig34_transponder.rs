//! E3 — Fig. 3 vs Fig. 4: the transponder paths.
//!
//! Drives real optical-field frames through the commodity transponder
//! (Fig. 3) and the photonic compute transponder (Fig. 4) and reports:
//!
//! * through-path integrity (frames survive the photonic engine),
//! * the added in-node latency of on-fiber computing,
//! * per-stage energy — in particular the §2.2 claim that on-fiber
//!   computing avoids per-element DAC/ADC conversions. The comparison
//!   point is a "conventional photonic accelerator" receive chain
//!   (Lightning-style): full RX (ADC every sample) + DAC per element
//!   back into a photonic core + result ADC.

use ofpc_bench::table::{dump_json, Table};
use ofpc_photonics::energy::constants;
use ofpc_photonics::SimRng;
use ofpc_transponder::compute::{
    decode_result, ComputeOp, ComputeResult, PhotonicComputeTransponder,
};
use ofpc_transponder::frame::Frame;
use serde::Serialize;

#[derive(Serialize)]
struct E3Row {
    payload_bytes: usize,
    operand_len: usize,
    on_fiber_added_latency_ns: f64,
    on_fiber_engine_energy_j: f64,
    conventional_conversion_energy_j: f64,
    conversion_savings_x: f64,
}

#[derive(Serialize, Default)]
struct E3Result {
    rows: Vec<E3Row>,
    frames_ok: usize,
    frames_total: usize,
    dot_result_error: f64,
}

fn main() {
    println!("E3: transponder paths — Fig. 3 (commodity) vs Fig. 4 (photonic compute)\n");
    let mut result = E3Result::default();

    let mut t = Table::new(
        "on-fiber compute vs conventional accelerator conversions",
        &[
            "payload B",
            "operands",
            "added ns",
            "engine J",
            "conv. J (DAC/ADC)",
            "savings ×",
        ],
    );

    for &(payload, n_ops) in &[(64usize, 16usize), (256, 64), (1024, 256), (1500, 512)] {
        let mut rng = SimRng::seed_from_u64(100 + n_ops as u64);
        // Ideal (noiseless) devices so results are exact, but with
        // realistic per-operation energy so the ledger comparison is
        // meaningful.
        let mut cfg = ofpc_transponder::compute::ComputeTransponderConfig::ideal();
        cfg.weight_mzm.drive_energy_j = 50e-15;
        cfg.result_adc_energy_j = constants::ADC_SAMPLE_J;
        let mut tp = PhotonicComputeTransponder::new(cfg, &mut rng);
        let one = tp.tx.one_level_w();
        tp.calibrate(one);
        let weights: Vec<f64> = (0..n_ops).map(|i| (i % 7) as f64 / 7.0).collect();
        tp.load_op(ComputeOp::DotProduct {
            weights: weights.clone(),
        });
        let operands: Vec<f64> = (0..n_ops).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
        let frame = Frame::compute(1, vec![0u8; payload]);
        let field = tp.transmit_compute_frame(&frame, &operands);
        let out = tp.process(&field).expect("frame must parse");
        result.frames_total += 1;
        if out.computed.is_some() {
            result.frames_ok += 1;
        }
        if let Some(ComputeResult::Dot(v)) = out.computed {
            let exact: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
            result.dot_result_error = result
                .dot_result_error
                .max((v - exact).abs() / exact.max(1e-9));
            let decoded = decode_result(out.frame.result);
            assert!((decoded - v).abs() < 1e-3, "in-band result field mismatch");
        }

        // Conventional accelerator conversion bill for the same op:
        // ADC per received sample (frame + operands) + DAC per operand
        // into the photonic core + one result ADC.
        let total_samples = frame.line_bits() + n_ops;
        let conventional = total_samples as f64 * constants::ADC_SAMPLE_J
            + n_ops as f64 * constants::DAC_SAMPLE_J
            + constants::ADC_SAMPLE_J;
        // On-fiber conversion bill from the device ledger: weight
        // modulator drives + the single result ADC. PD/TIA static power
        // and TX regeneration exist in both designs and are excluded
        // from both sides.
        let ledger = tp.energy_ledger();
        let engine = ledger.get("engine-weight-mzm") + ledger.get("engine-result-adc");
        let row = E3Row {
            payload_bytes: payload,
            operand_len: n_ops,
            on_fiber_added_latency_ns: out.added_latency_s * 1e9,
            on_fiber_engine_energy_j: engine,
            conventional_conversion_energy_j: conventional,
            conversion_savings_x: conventional / engine.max(1e-30),
        };
        t.row(&[
            payload.to_string(),
            n_ops.to_string(),
            format!("{:.1}", row.on_fiber_added_latency_ns),
            format!("{:.2e}", row.on_fiber_engine_energy_j),
            format!("{:.2e}", row.conventional_conversion_energy_j),
            format!("{:.0}", row.conversion_savings_x),
        ]);
        result.rows.push(row);
    }
    t.print();

    println!(
        "frames computed: {}/{}; worst dot-product relative error {:.3}",
        result.frames_ok, result.frames_total, result.dot_result_error
    );
    assert_eq!(result.frames_ok, result.frames_total);
    assert!(result.dot_result_error < 0.05);
    for row in &result.rows {
        assert!(
            row.conversion_savings_x > 10.0,
            "on-fiber must save ≥10× on conversions (got {}×)",
            row.conversion_savings_x
        );
        assert!(row.on_fiber_added_latency_ns < 1_000.0);
    }
    dump_json("e3_transponder", &result);
}
