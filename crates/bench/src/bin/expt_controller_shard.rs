//! E20 — the sharded incremental controller at WAN scale.
//!
//! The paper's §3 controller "dynamically reconfigures" transponders as
//! demands and faults arrive; E6 measured the monolithic re-solve wall.
//! E20 is the scaling answer: a 120-site, 12-region WAN (30× fig1)
//! absorbing 115k arrivals, trailing FIFO departures, and an 8-burst
//! correlated fault storm — re-planning only the dirty shards per event
//! and reconciling cross-region demands from residual capacity.
//!
//! Claims checked here, beyond the differential suite in
//! `tests/shard.rs`:
//!
//! * ≥10⁵ admitted requests over the run on a ≥100-site topology;
//! * bounded per-decision latency (p99 / max asserted in release);
//! * periodic clone + from-scratch re-solves agree with the
//!   incremental state exactly (E20Spec::check_every);
//! * the report is byte-deterministic — wall-clock stays out of it.
//!
//! `OFPC_E20_MINI=1` runs the golden-fixture miniature instead (the ci
//! smoke path; debug-build friendly).

use ofpc_bench::shard::{latency_us, run_e20, E20Spec};
use ofpc_bench::table::{dump_json, Table};
use ofpc_par::WorkerPool;

fn main() {
    let mini = std::env::var("OFPC_E20_MINI").is_ok_and(|v| v == "1");
    let spec = if mini {
        E20Spec::mini()
    } else {
        E20Spec::full()
    };
    let pool = WorkerPool::from_env();
    println!(
        "E20: sharded incremental controller — {} sites / {} regions, {} arrivals, {} workers\n",
        spec.node_count(),
        spec.regions,
        spec.arrivals,
        pool.workers()
    );

    let (report, mut decision_ns) = run_e20(&spec, &pool);
    let (p50, p99, max) = latency_us(&mut decision_ns);

    let mut t = Table::new("E20 run summary", &["metric", "value"]);
    for (k, v) in [
        ("sites", report.nodes.to_string()),
        ("slots installed", report.slots_total.to_string()),
        ("arrivals", report.arrivals.to_string()),
        ("admitted", report.admitted.to_string()),
        ("rejected at arrival", report.rejected.to_string()),
        ("displaced by faults", report.displaced.to_string()),
        ("revived", report.revived.to_string()),
        ("fault events", report.fault_events.to_string()),
        ("shard re-solves", report.shard_resolves.to_string()),
        ("boundary reruns", report.boundary_reruns.to_string()),
        (
            "differential checks",
            report.differential_checks.to_string(),
        ),
        ("decision p50 µs", format!("{p50:.1}")),
        ("decision p99 µs", format!("{p99:.1}")),
        ("decision max µs", format!("{max:.1}")),
    ] {
        t.row(&[k.to_string(), v]);
    }
    t.print();

    let decisions = report.arrivals + report.fault_batches;
    println!(
        "\n{} decisions; boundary sweep ran on {:.1}% of them (skipped when provably unchanged)",
        decisions,
        100.0 * report.boundary_reruns as f64 / decisions as f64
    );

    assert!(report.differential_checks > 0, "checkpoints must run");
    if !mini {
        // The headline E20 acceptance numbers.
        assert!(report.nodes >= 100, "E20 must run on a >=100-site topology");
        assert!(
            report.admitted >= 100_000,
            "E20 must admit >=1e5 requests, got {}",
            report.admitted
        );
        // Latency bounds only mean something in release builds.
        if !cfg!(debug_assertions) {
            assert!(p99 < 5_000.0, "p99 decision latency {p99:.0}µs >= 5ms");
            assert!(max < 250_000.0, "max decision latency {max:.0}µs >= 250ms");
        }
    }
    dump_json("e20_controller_shard", &report);
}
