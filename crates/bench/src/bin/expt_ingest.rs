//! E21 — the sharded ingest front-end at million-tenant scale.
//!
//! The paper's serving story assumes operators can put photonic compute
//! "in front of" enormous tenant populations; E21 is that front door.
//! 1,000,064 tenants in three classes (64 whales, 50k steady
//! subscribers, 950k long-tail users) offer ≈1.02M req/s against 8
//! transponder slots whose 100 µs engine settle makes them genuinely
//! scarce. Shards parse wire frames zero-copy, admit through bounded
//! per-tenant queues, drain with weighted DRR, batch per WDM class, and
//! dispatch EDF — with a global rebalance migrating hot tenants and
//! re-splitting slot inventory between epochs.
//!
//! Claims checked here, beyond the differential suite in
//! `tests/ingest.rs`:
//!
//! * ≥10⁶ tenants and ≥10⁶ req/s offered over the run;
//! * overload lands entirely on the abusive class: every shed is a
//!   whale bounded-queue rejection, steady/tail shed nothing;
//! * weighted fairness: whale goodput-per-weight stays ≥ steady's
//!   (weight share honored) while whale *completion ratio* stays below
//!   steady's (backpressure bites the class that overdrives);
//! * per-tenant admission state stays bounded by the backlog, not the
//!   population;
//! * the report is byte-deterministic — wall-clock stays out of it.
//!
//! `OFPC_E21_MINI=1` runs the golden-fixture miniature instead (the ci
//! smoke path; debug-build friendly).

use ofpc_bench::ingest::{full_config, mini_config, run_e21};
use ofpc_bench::table::{dump_json, Table};
use ofpc_par::WorkerPool;

fn main() {
    let mini = std::env::var("OFPC_E21_MINI").is_ok_and(|v| v == "1");
    let config = if mini { mini_config() } else { full_config() };
    let pool = WorkerPool::from_env();
    let tenants: u32 = config.classes.iter().map(|c| c.population).sum();
    println!(
        "E21: sharded ingest front-end — {} tenants / {} shards, {} epochs x {} ms, {} workers\n",
        tenants,
        config.shards,
        config.epochs,
        config.epoch_ps / 1_000_000_000,
        pool.workers()
    );

    let report = run_e21(config, &pool);

    let mut t = Table::new("E21 run summary", &["metric", "value"]);
    for (k, v) in [
        ("tenants", report.tenants.to_string()),
        ("shards", report.shards.to_string()),
        ("offered req/s", format!("{:.0}", report.offered_rps)),
        ("frames parsed", report.parsed.to_string()),
        (
            "frames rejected (typed)",
            report.frames.rejected_total.to_string(),
        ),
        ("completed", report.completed.to_string()),
        ("shed", report.shed.to_string()),
        ("unfinished at horizon", report.unfinished.to_string()),
        ("goodput req/s", format!("{:.0}", report.goodput_rps)),
        (
            "distinct active tenants",
            report.distinct_active_tenants.to_string(),
        ),
        (
            "p50 latency µs",
            format!("{:.1}", report.p50_latency_us.unwrap_or(0.0)),
        ),
        (
            "p99 latency µs",
            format!("{:.1}", report.p99_latency_us.unwrap_or(0.0)),
        ),
        ("energy J", format!("{:.4}", report.energy_total_j)),
        ("rebalance passes", report.rebalance.passes.to_string()),
        ("tenant migrations", report.rebalance.migrations.to_string()),
        ("slot moves", report.rebalance.slot_moves.to_string()),
    ] {
        t.row(&[k.to_string(), v]);
    }
    t.print();

    let mut ct = Table::new(
        "E21 per-class fairness",
        &[
            "class",
            "tenants",
            "arrivals",
            "completed",
            "shed",
            "goodput/s",
            "per-weight",
            "p50 µs",
        ],
    );
    for c in &report.classes {
        ct.row(&[
            c.name.clone(),
            c.tenants.to_string(),
            c.arrivals.to_string(),
            c.completed.to_string(),
            (c.shed_queue_full
                + c.shed_expired_queued
                + c.shed_expired_serving
                + c.shed_engine_failed)
                .to_string(),
            format!("{:.0}", c.goodput_rps),
            format!("{:.2}", c.goodput_per_weight),
            format!("{:.1}", c.p50_latency_us.unwrap_or(0.0)),
        ]);
    }
    ct.print();

    let class = |name: &str| {
        report
            .classes
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing class {name}"))
    };
    let whale = class("whale");
    let steady = class("steady");
    let tail = class("tail");
    let completion = |c: &ofpc_ingest::ClassReport| c.completed as f64 / c.arrivals as f64;

    assert!(report.shed > 0, "E21 must be overloaded enough to shed");
    assert!(
        report.frames.rejected_total > 0,
        "corrupt frames must exercise the typed-error path"
    );
    // Backpressure lands on the class that overdrives its queues…
    assert_eq!(
        whale.shed_queue_full, report.shed,
        "all shedding should be whale bounded-queue backpressure"
    );
    assert_eq!(steady.shed_queue_full, 0, "steady class must not shed");
    assert_eq!(tail.shed_queue_full, 0, "tail class must not shed");
    assert!(
        completion(whale) < completion(steady),
        "the abusive class must bear the overload"
    );
    // …while weighted DRR still grants the heavy class its share.
    assert!(
        whale.goodput_per_weight >= steady.goodput_per_weight,
        "whales should retain at least their weight share of goodput"
    );
    // Sparse admission state is bounded by backlog, not population.
    let held: u64 = report
        .shard_reports
        .iter()
        .map(|s| s.active_tenant_state as u64)
        .sum();
    assert!(
        held <= report.unfinished + u64::from(report.shards),
        "admission state ({held}) outgrew the backlog ({})",
        report.unfinished
    );

    if !mini {
        // The headline E21 acceptance numbers.
        assert!(
            report.tenants >= 1_000_000,
            "E21 must front >=1e6 tenants, got {}",
            report.tenants
        );
        assert!(
            report.offered_rps >= 1e6,
            "E21 must offer >=1e6 req/s, got {:.0}",
            report.offered_rps
        );
        assert!(
            report.distinct_active_tenants >= 50_000,
            "traffic should touch a broad slice of the population, got {}",
            report.distinct_active_tenants
        );
        assert!(report.rebalance.migrations > 0, "rebalance never engaged");
    }
    dump_json(
        if mini {
            "e21_ingest_mini"
        } else {
            "e21_ingest"
        },
        &report,
    );
}
