//! Result tables: aligned text output for the terminal plus JSON dumps
//! under `results/` so EXPERIMENTS.md numbers are regenerable.

use serde::Serialize;
use std::path::Path;

/// A simple column-aligned results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Dump any serializable result to `results/<name>.json` (creating the
/// directory), so experiment outputs are machine-readable.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create results/; skipping JSON dump");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        let lines: Vec<&str> = r.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Both data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
