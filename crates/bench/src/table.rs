//! Result tables: aligned text output for the terminal plus JSON dumps
//! under `results/` so EXPERIMENTS.md numbers are regenerable.

use serde::Serialize;
use std::path::Path;

/// A simple column-aligned results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Version of the `results/*.json` report envelope. Bump when the
/// envelope shape (not the payload) changes; payload drift is caught by
/// the golden fixtures instead.
pub const SCHEMA_VERSION: u32 = 1;

/// Wrap a serialized payload in the versioned report envelope:
///
/// ```json
/// {
///   "schema_version": 1,
///   "data": <payload>
/// }
/// ```
///
/// Every line of the payload after the first is indented two spaces so
/// the envelope nests like ordinary pretty-printed JSON. The output is
/// a pure function of the payload — golden fixtures stay
/// byte-deterministic.
pub fn versioned_pretty<T: Serialize>(value: &T) -> String {
    let inner = serde_json::to_string_pretty(value).expect("payload serializes");
    let mut indented = String::with_capacity(inner.len());
    for (i, line) in inner.lines().enumerate() {
        if i > 0 {
            indented.push_str("\n  ");
        }
        indented.push_str(line);
    }
    format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"data\": {indented}\n}}")
}

/// Wrap a Chrome-trace event array in the versioned object format —
/// still loadable by `chrome://tracing` / Perfetto, which accept
/// `{"traceEvents": [...]}` with extra metadata keys.
pub fn versioned_trace(trace_array_json: &str) -> String {
    format!("{{\"schema_version\":{SCHEMA_VERSION},\"traceEvents\":\n{trace_array_json}\n}}")
}

/// Dump any serializable result to `results/<name>.json` (creating the
/// directory) in the versioned envelope, so experiment outputs are
/// machine-readable and schema drift is explicit.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create results/; skipping JSON dump");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, versioned_pretty(value)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        let lines: Vec<&str> = r.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Both data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn versioned_envelope_is_valid_json_with_schema() {
        #[derive(Serialize)]
        struct Payload {
            x: u32,
            name: String,
        }
        let doc = versioned_pretty(&Payload {
            x: 7,
            name: "hi".into(),
        });
        assert!(doc.starts_with("{\n  \"schema_version\": 1,\n  \"data\": {"));
        let v: serde_json::Value = serde_json::from_str(&doc).expect("envelope parses");
        let map = v.as_map().expect("envelope is an object");
        assert!(map.iter().any(|(k, _)| k == "schema_version"));
        assert!(map.iter().any(|(k, _)| k == "data"));
    }

    #[test]
    fn versioned_trace_keeps_event_array() {
        let doc = versioned_trace("[\n  {\"ph\":\"B\"}\n]");
        let v: serde_json::Value = serde_json::from_str(&doc).expect("trace envelope parses");
        let map = v.as_map().expect("object format");
        assert!(map.iter().any(|(k, _)| k == "traceEvents"));
        assert!(map.iter().any(|(k, _)| k == "schema_version"));
    }
}
