//! # ofpc-bench — experiment harnesses and Criterion benches
//!
//! One binary per paper artifact (see DESIGN.md's experiment index) plus
//! Criterion benches over the hot paths. The library part holds shared
//! harness plumbing: result tables, JSON dumps, and the parallel sweep
//! driver.

pub mod golden;
pub mod ingest;
pub mod resil;
pub mod shard;
pub mod table;

pub use table::Table;
