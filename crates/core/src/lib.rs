//! # ofpc-core — on-fiber photonic computing, assembled
//!
//! The paper's proposal as one library: a WAN whose pluggable
//! transponders compute on traffic while it flies. This crate glues the
//! substrates together behind [`OnFiberNetwork`]:
//!
//! * `ofpc-photonics` / `ofpc-engine` — device physics and the P1/P2/P3
//!   primitives (validated at the optical-field level).
//! * `ofpc-transponder` — the Fig.-3/Fig.-4 hardware models.
//! * `ofpc-net` — packets, the photonic compute header, dual-field
//!   routing, and the discrete-event WAN simulator.
//! * `ofpc-controller` — demand DAGs, the integer allocator and its
//!   LP/greedy relaxations, and route-update generation.
//!
//! [`scenario`] builds the paper's Fig.-1 walkthrough; [`protocol`]
//! implements the end-host side of the compute-communication protocol
//! and its staged rollout; [`deployment`] models incremental deployment
//! (the backward-compatibility argument, experiment E9); [`metrics`]
//! aggregates what experiments report.

pub mod deployment;
pub mod distributed;
pub mod metrics;
pub mod protocol;
pub mod scenario;
pub mod topo;

use ofpc_controller::demand::Demand;
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::lp::{round_lp, solve_lp};
use ofpc_controller::options::enumerate_options_filtered;
use ofpc_controller::protection::surviving_slots;
use ofpc_controller::teupdate::{apply_plan, build_plan, ApplyReport, UpdatePlan};
use ofpc_controller::Allocation;
use ofpc_engine::Primitive;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use std::collections::HashMap;

/// Which allocation solver the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Exact branch and bound (node budget bounded).
    Exact { node_budget: u64 },
    /// Greedy most-constrained-first.
    Greedy,
    /// LP relaxation + randomized rounding with the given trials.
    LpRounding { trials: usize },
}

/// The assembled on-fiber photonic computing system.
#[derive(Debug)]
pub struct OnFiberNetwork {
    /// The packet-level WAN simulator.
    pub net: Network,
    /// Transponder slots per site (upgrade state).
    slots: Vec<usize>,
    /// Registered demands.
    demands: Vec<Demand>,
    /// Operation semantics per (demand id, primitive wire id).
    op_specs: HashMap<(u16, u8), OpSpec>,
    /// Analog noise applied to in-flight results.
    pub engine_noise_sigma: f64,
    rng: SimRng,
    /// The last applied update plan (for inspection).
    pub last_plan: Option<UpdatePlan>,
    /// What happened when the last plan was applied: fresh installs,
    /// idempotent skips, and commands that could not be applied.
    pub last_apply: Option<ApplyReport>,
    /// Sites currently marked failed (excluded from allocation until
    /// [`OnFiberNetwork::repair_site`]).
    failed_sites: Vec<NodeId>,
}

impl OnFiberNetwork {
    /// Build over a topology with no compute sites upgraded yet.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let node_count = topo.node_count();
        let mut net = Network::new(topo, rng.derive("net"));
        net.install_shortest_path_routes();
        OnFiberNetwork {
            net,
            slots: vec![0; node_count],
            demands: Vec::new(),
            op_specs: HashMap::new(),
            engine_noise_sigma: 0.0,
            rng,
            last_plan: None,
            last_apply: None,
            failed_sites: Vec::new(),
        }
    }

    /// Attach a telemetry handle: the packet simulator mirrors its
    /// counters onto the registry and emits trace events for link/engine
    /// state flips and engine executions. A disabled handle (the
    /// default) costs one branch per hook.
    pub fn set_telemetry(&mut self, tel: &ofpc_telemetry::Telemetry) {
        self.net.set_telemetry(tel);
    }

    /// Upgrade a site with `count` photonic compute transponders — the
    /// paper's pluggable, backward-compatible deployment step.
    pub fn upgrade_site(&mut self, node: NodeId, count: usize) {
        assert!(
            (node.0 as usize) < self.slots.len(),
            "unknown node {node:?}"
        );
        self.slots[node.0 as usize] += count;
    }

    /// Total upgraded slots across the WAN.
    pub fn total_slots(&self) -> usize {
        self.slots.iter().sum()
    }

    /// Slots per node (the controller's capacity vector).
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// Upgraded compute sites as `(node, slot count)` pairs, in node
    /// order — what a serving runtime schedules onto.
    pub fn compute_sites(&self) -> Vec<(NodeId, usize)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (NodeId(i as u32), n))
            .collect()
    }

    /// Register a single-task compute demand with its operation
    /// semantics. The demand's id doubles as the protocol op id. For
    /// multi-task DAGs use [`OnFiberNetwork::submit_chain_demand`].
    pub fn submit_demand(&mut self, demand: Demand, spec: OpSpec) {
        let chain = demand.dag.linearize().expect("acyclic DAG");
        assert!(
            chain.len() <= 1,
            "multi-task demands need submit_chain_demand (one spec per task)"
        );
        self.submit_chain_demand(demand, vec![spec]);
    }

    /// Register a demand whose DAG has several tasks, with one operation
    /// spec per task (in topological order).
    pub fn submit_chain_demand(&mut self, demand: Demand, specs: Vec<OpSpec>) {
        assert!(
            demand.id.0 <= u16::MAX as u32,
            "demand id must fit the 16-bit op-id field"
        );
        let chain = demand.dag.linearize().expect("acyclic DAG");
        let op_id = demand.id.0 as u16;
        assert!(
            specs.len() >= chain.len(),
            "need one op spec per task ({} tasks, {} specs)",
            chain.len(),
            specs.len()
        );
        for (prim, spec) in chain.iter().zip(&specs) {
            assert_eq!(
                spec.primitive(),
                *prim,
                "op spec order must match the DAG's topological order"
            );
            let key = (op_id, prim.wire_id());
            assert!(
                !self.op_specs.contains_key(&key),
                "duplicate demand id {} for primitive {prim}",
                demand.id.0
            );
            self.op_specs.insert(key, spec.clone());
        }
        if chain.is_empty() {
            // Reserve the id so duplicates are still caught.
            let key = (op_id, 0);
            assert!(
                !self.op_specs.contains_key(&key),
                "duplicate demand id {}",
                demand.id.0
            );
            self.op_specs.insert(key, specs[0].clone());
        }
        self.demands.push(demand);
    }

    pub fn demand_count(&self) -> usize {
        self.demands.len()
    }

    /// Run the controller: enumerate options, solve, build the plan, and
    /// apply it to the network (engine installs + route overrides).
    /// Sites marked failed are excluded from the capacity vector.
    /// Returns the update plan; [`OnFiberNetwork::last_apply`] records
    /// how the installation went.
    pub fn allocate_and_apply(&mut self, solver: Solver) -> &UpdatePlan {
        let slots = surviving_slots(&self.slots, &self.failed_sites);
        self.solve_and_apply(solver, &slots)
    }

    /// Recovery re-run after engine hard-fails: mark `failed` sites out,
    /// flag their engine slots unhealthy (in-flight packets pass through
    /// tagged rather than carrying garbage), reconverge routes around any
    /// downed links, and re-run the allocator over the survivors. The
    /// failed sites stay excluded until [`OnFiberNetwork::repair_site`].
    pub fn reallocate_excluding(&mut self, failed: &[NodeId], solver: Solver) -> &UpdatePlan {
        for &node in failed {
            if !self.failed_sites.contains(&node) {
                self.failed_sites.push(node);
            }
            self.net.set_engine_health(node, false);
        }
        // Routes first (wipes stale compute detours over dead paths),
        // then the plan re-install lays fresh overrides on top.
        self.net.reconverge_routes();
        let slots = surviving_slots(&self.slots, &self.failed_sites);
        self.solve_and_apply(solver, &slots)
    }

    /// Bring a failed site back: clear its exclusion and restore its
    /// engine slots to healthy. The next allocation may use it again.
    pub fn repair_site(&mut self, node: NodeId) {
        self.failed_sites.retain(|&n| n != node);
        self.net.set_engine_health(node, true);
    }

    /// Sites currently excluded from allocation.
    pub fn failed_sites(&self) -> &[NodeId] {
        &self.failed_sites
    }

    fn solve_and_apply(&mut self, solver: Solver, slots: &[usize]) -> &UpdatePlan {
        // Enumerate over the links currently up: placements stranded
        // behind a cut price in their real detour (or drop out entirely
        // when unreachable), so protection switching moves compute onto
        // the surviving paths instead of re-installing the old plan.
        let instance = enumerate_options_filtered(&self.net.topo, slots, &self.demands, 16, &|l| {
            self.net.link_is_up(l)
        });
        let allocation: Allocation = match solver {
            Solver::Exact { node_budget } => solve_exact(&instance, node_budget).allocation,
            Solver::Greedy => solve_greedy(&instance).allocation,
            Solver::LpRounding { trials } => {
                let lp = solve_lp(&instance);
                round_lp(&instance, &lp, trials, &mut self.rng)
            }
        };
        let plan = build_plan(&self.demands, &instance, &allocation);
        let specs = self.op_specs.clone();
        let report = apply_plan(
            &mut self.net,
            &plan,
            &move |op_id, prim| {
                specs
                    .get(&(op_id, prim.wire_id()))
                    .cloned()
                    .unwrap_or_else(|| {
                        panic!("no op spec registered for demand {op_id} primitive {prim}")
                    })
            },
            self.engine_noise_sigma,
        );
        self.last_apply = Some(report);
        self.last_plan = Some(plan);
        self.last_plan.as_ref().expect("just set")
    }

    /// The primitive a demand's first task needs (None for empty DAGs).
    pub fn demand_primitive(&self, idx: usize) -> Option<Primitive> {
        self.demands[idx].dag.linearize()?.first().copied()
    }

    /// Direct access to a registered demand.
    pub fn demand(&self, idx: usize) -> &Demand {
        &self.demands[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_controller::demand::TaskDag;
    use ofpc_net::packet::Packet;
    use ofpc_net::pch::PchHeader;

    const P1: Primitive = Primitive::VectorDotProduct;

    fn fig1_system() -> OnFiberNetwork {
        let mut sys = OnFiberNetwork::new(Topology::fig1(), 7);
        sys.upgrade_site(NodeId(1), 1);
        sys.upgrade_site(NodeId(2), 1);
        sys
    }

    #[test]
    fn upgrade_accounting() {
        let mut sys = fig1_system();
        assert_eq!(sys.total_slots(), 2);
        sys.upgrade_site(NodeId(1), 3);
        assert_eq!(sys.total_slots(), 5);
        assert_eq!(sys.slots(), &[0, 4, 1, 0]);
    }

    #[test]
    fn allocate_apply_and_serve_traffic() {
        let mut sys = fig1_system();
        sys.submit_demand(
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
            OpSpec::Dot {
                weights: vec![0.25; 8],
            },
        );
        let plan = sys.allocate_and_apply(Solver::Exact {
            node_budget: 1_000_000,
        });
        assert!(plan.unsatisfied.is_empty());
        assert_eq!(plan.installs.len(), 1);
        // Drive a compute packet through.
        let pch = PchHeader::request(P1, 1, 8);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            pch,
            Packet::encode_operands(&[0.5; 8]),
        );
        sys.net.inject(0, NodeId(0), p);
        sys.net.run_to_idle();
        assert_eq!(sys.net.stats.delivered_count(), 1);
        assert!(sys.net.stats.delivered[0].computed);
    }

    #[test]
    fn all_three_solvers_serve_a_satisfiable_workload() {
        for solver in [
            Solver::Exact {
                node_budget: 1_000_000,
            },
            Solver::Greedy,
            Solver::LpRounding { trials: 10 },
        ] {
            let mut sys = fig1_system();
            for i in 0..2u32 {
                sys.submit_demand(
                    Demand::new(i, NodeId(0), NodeId(3), TaskDag::single(P1)),
                    OpSpec::Dot {
                        weights: vec![0.5; 4],
                    },
                );
            }
            let plan = sys.allocate_and_apply(solver);
            assert!(
                plan.unsatisfied.is_empty(),
                "{solver:?} left {:?} unsatisfied",
                plan.unsatisfied
            );
        }
    }

    #[test]
    fn oversubscription_reports_unsatisfied() {
        let mut sys = OnFiberNetwork::new(Topology::fig1(), 7);
        sys.upgrade_site(NodeId(1), 1); // one slot only
        for i in 0..3u32 {
            sys.submit_demand(
                Demand::new(i, NodeId(0), NodeId(3), TaskDag::single(P1)),
                OpSpec::Dot { weights: vec![1.0] },
            );
        }
        let plan = sys.allocate_and_apply(Solver::Exact {
            node_budget: 1_000_000,
        });
        assert_eq!(plan.unsatisfied.len(), 2);
        assert_eq!(plan.installs.len(), 1);
    }

    #[test]
    fn reallocation_excludes_failed_site_and_recovers_service() {
        let mut sys = fig1_system();
        sys.submit_demand(
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
            OpSpec::Dot {
                weights: vec![0.25; 8],
            },
        );
        let solver = Solver::Exact {
            node_budget: 1_000_000,
        };
        let first = sys.allocate_and_apply(solver).clone();
        assert!(first.unsatisfied.is_empty());
        let failed_site = first.installs[0].node;
        assert!(sys.last_apply.as_ref().unwrap().fully_applied());

        // Hard-fail the chosen site: the re-run must place the demand on
        // the surviving upgraded site instead.
        let second = sys.reallocate_excluding(&[failed_site], solver).clone();
        assert!(second.unsatisfied.is_empty(), "survivor should absorb it");
        assert_eq!(second.installs.len(), 1);
        let new_site = second.installs[0].node;
        assert_ne!(new_site, failed_site, "must move off the failed site");
        assert_eq!(sys.failed_sites(), &[failed_site]);
        assert!(sys.last_apply.as_ref().unwrap().fully_applied());

        // Traffic still gets computed — by the survivor.
        let pch = PchHeader::request(P1, 1, 8);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            pch,
            Packet::encode_operands(&[0.5; 8]),
        );
        sys.net.inject(0, NodeId(0), p);
        sys.net.run_to_idle();
        assert_eq!(sys.net.stats.delivered_count(), 1);
        let rec = &sys.net.stats.delivered[0];
        assert!(rec.computed, "survivor engine must compute");
        assert_eq!(rec.status, ofpc_net::pch::ResultStatus::Ok);

        // Repair re-admits the site to future allocations.
        sys.repair_site(failed_site);
        assert!(sys.failed_sites().is_empty());
    }

    #[test]
    fn failing_every_site_reports_unsatisfied() {
        let mut sys = fig1_system();
        sys.submit_demand(
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
            OpSpec::Dot { weights: vec![1.0] },
        );
        let solver = Solver::Greedy;
        sys.allocate_and_apply(solver);
        let plan = sys
            .reallocate_excluding(&[NodeId(1), NodeId(2)], solver)
            .clone();
        assert_eq!(plan.unsatisfied, vec![1], "no survivors → unsatisfied");
        assert!(plan.installs.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate demand id")]
    fn duplicate_demand_ids_rejected() {
        let mut sys = fig1_system();
        let d = Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1));
        let spec = OpSpec::Dot { weights: vec![1.0] };
        sys.submit_demand(d.clone(), spec.clone());
        sys.submit_demand(d, spec);
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn mismatched_spec_primitive_rejected() {
        let mut sys = fig1_system();
        let d = Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1));
        sys.submit_demand(d, OpSpec::Nonlinear);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn upgrade_unknown_site_panics() {
        let mut sys = fig1_system();
        sys.upgrade_site(NodeId(99), 1);
    }
}
