//! The paper's Fig.-1 scenario, runnable.
//!
//! "A user at source site A is sending packets to a user at destination
//! site D. Simultaneously, a cell phone at source site A intends to
//! transmit an image, along with its image recognition result, to
//! another cell phone at destination site D. A photonic computing
//! transponder with packet classification capability is located at site
//! B and another ... with image recognition capability is located at
//! site C."
//!
//! [`Fig1Scenario::build`] assembles exactly that: the 4-site topology,
//! a P2 classification engine at B, a P1 image-recognition engine at C,
//! controller allocation, routing overrides, and traffic generators for
//! both applications. Experiment E1 runs it and compares against the
//! cloud baseline.

use crate::{OnFiberNetwork, Solver};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_engine::Primitive;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

/// Demand / op IDs for the two Fig.-1 applications.
pub const OP_CLASSIFY: u16 = 1;
pub const OP_RECOGNIZE: u16 = 2;

/// The assembled Fig.-1 scenario.
#[derive(Debug)]
pub struct Fig1Scenario {
    pub system: OnFiberNetwork,
    pub site_a: NodeId,
    pub site_b: NodeId,
    pub site_c: NodeId,
    pub site_d: NodeId,
    /// The classification pattern installed at B.
    pub classify_pattern: Vec<bool>,
    /// The recognition weights installed at C.
    pub recognize_weights: Vec<f64>,
}

impl Fig1Scenario {
    /// Build the scenario and run controller allocation. Panics if the
    /// controller cannot satisfy both applications (it always can: one
    /// transponder each at B and C).
    pub fn build(seed: u64) -> Self {
        let topo = Topology::fig1();
        let site_a = topo.find_node("A").expect("A exists");
        let site_b = topo.find_node("B").expect("B exists");
        let site_c = topo.find_node("C").expect("C exists");
        let site_d = topo.find_node("D").expect("D exists");
        let mut system = OnFiberNetwork::new(topo, seed);
        system.upgrade_site(site_b, 1);
        system.upgrade_site(site_c, 1);

        // App 1: packet classification (P2) — an 16-bit header pattern.
        let classify_pattern: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        system.submit_demand(
            Demand::new(
                OP_CLASSIFY as u32,
                site_a,
                site_d,
                TaskDag::single(Primitive::PatternMatching),
            ),
            OpSpec::Match {
                pattern: classify_pattern.clone(),
            },
        );
        // App 2: image recognition (P1) — a 64-pixel linear classifier
        // row (the full DNN runs in `ofpc-apps::ml`; the in-network hop
        // executes its dominant layer).
        let mut wrng = SimRng::seed_from_u64(seed ^ 0x5eed);
        let recognize_weights: Vec<f64> = (0..64).map(|_| wrng.uniform_range(-1.0, 1.0)).collect();
        system.submit_demand(
            Demand::new(
                OP_RECOGNIZE as u32,
                site_a,
                site_d,
                TaskDag::single(Primitive::VectorDotProduct),
            ),
            OpSpec::Dot {
                weights: recognize_weights.clone(),
            },
        );
        let plan = system.allocate_and_apply(Solver::Exact {
            node_budget: 1_000_000,
        });
        assert!(
            plan.unsatisfied.is_empty(),
            "Fig. 1 allocation must satisfy both apps"
        );
        Fig1Scenario {
            system,
            site_a,
            site_b,
            site_c,
            site_d,
            classify_pattern,
            recognize_weights,
        }
    }

    /// Inject `n` classification packets and `n` recognition packets
    /// from A to D, starting at `start_ps` with `gap_ps` spacing.
    pub fn inject_traffic(&mut self, n: usize, start_ps: u64, gap_ps: u64, rng: &mut SimRng) {
        let src = Network::node_addr(self.site_a, 1);
        let dst = Network::node_addr(self.site_d, 1);
        let mut t = start_ps;
        for i in 0..n {
            // Classification request: header bits as operands.
            let header_bits: Vec<f64> = self
                .classify_pattern
                .iter()
                .map(|&b| {
                    // Half the packets match the pattern, half don't.
                    let flip = i % 2 == 1 && rng.chance(0.9);
                    if b != flip {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let pch = PchHeader::request(Primitive::PatternMatching, OP_CLASSIFY, 16);
            let p = Packet::compute(
                src,
                dst,
                (i * 2) as u32,
                pch,
                Packet::encode_operands(&header_bits),
            );
            self.system.net.inject(t, self.site_a, p);
            // Recognition request: a synthetic image.
            let image: Vec<f64> = (0..64).map(|_| rng.uniform()).collect();
            let pch = PchHeader::request(Primitive::VectorDotProduct, OP_RECOGNIZE, 64);
            let p = Packet::compute(
                src,
                dst,
                (i * 2 + 1) as u32,
                pch,
                Packet::encode_operands(&image),
            );
            self.system.net.inject(t, self.site_a, p);
            t += gap_ps;
        }
    }

    /// Run to completion and report (delivered, computed) counts.
    pub fn run(&mut self) -> (usize, usize) {
        self.system.net.run_to_idle();
        (
            self.system.net.stats.delivered_count(),
            self.system.net.stats.computed_count(),
        )
    }

    /// Engines' execution counters at B and C.
    pub fn engine_executions(&self) -> (u64, u64) {
        let at = |node| {
            self.system
                .net
                .engines_at(node)
                .iter()
                .map(|s| s.executions)
                .sum()
        };
        (at(self.site_b), at(self.site_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_installs_both_engines() {
        let s = Fig1Scenario::build(11);
        // One engine at B (classification) and one at C (recognition),
        // or the controller may have placed them the other way — but
        // both sites host exactly one engine.
        let b = s.system.net.engines_at(s.site_b).len();
        let c = s.system.net.engines_at(s.site_c).len();
        assert_eq!(b + c, 2, "two engines installed");
        assert!(b >= 1 || c >= 1);
    }

    #[test]
    fn both_apps_compute_in_flight() {
        let mut s = Fig1Scenario::build(11);
        let mut rng = SimRng::seed_from_u64(1);
        s.inject_traffic(10, 0, 1_000_000, &mut rng);
        let (delivered, computed) = s.run();
        assert_eq!(delivered, 20);
        assert_eq!(computed, 20, "every request computed on fiber");
        let (at_b, at_c) = s.engine_executions();
        assert_eq!(at_b + at_c, 20);
        assert!(at_b > 0, "classification engine idle");
        assert!(at_c > 0, "recognition engine idle");
    }

    #[test]
    fn latency_is_single_transit_not_round_trip() {
        // On-fiber latency ≈ one A→D transit (~7.3 ms); a cloud bounce
        // would at least double a leg. Verify delivered latencies sit at
        // transit scale.
        let mut s = Fig1Scenario::build(3);
        let mut rng = SimRng::seed_from_u64(2);
        s.inject_traffic(5, 0, 10_000_000, &mut rng);
        s.run();
        let p99 = s
            .system
            .net
            .stats
            .latency_percentile_ms(0.99)
            .expect("deliveries exist");
        assert!(p99 < 8.0, "p99 {p99} ms exceeds one-transit scale");
        assert!(p99 > 7.0, "p99 {p99} ms below physical propagation");
    }

    #[test]
    fn scenario_is_deterministic() {
        let run = |seed| {
            let mut s = Fig1Scenario::build(seed);
            let mut rng = SimRng::seed_from_u64(5);
            s.inject_traffic(8, 0, 500_000, &mut rng);
            s.run();
            s.system
                .net
                .stats
                .delivered
                .iter()
                .map(|r| (r.packet_id, r.delivered_ps))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
