//! The compute-communication protocol (paper §3), end-host side and
//! control-plane rollout.
//!
//! Three pieces:
//!
//! 1. **End-host tagging** — [`tag_request`] builds a compute packet:
//!    PCH layered over the IP header, operands fixed-point-encoded at the
//!    payload front. [`read_result`] extracts the in-band result at the
//!    destination.
//! 2. **Overhead accounting** — [`protocol_overhead`] reports the extra
//!    bytes the protocol costs per packet (experiment E7).
//! 3. **Staged rollout** — [`staged_rollout`] models the §3 controller
//!    "delivering next-hop updates to all routers": updates land router
//!    by router with a control-plane delay, and the function reports how
//!    many in-flight compute packets miss their engine during
//!    convergence (delivered uncomputed) versus after.

use ofpc_engine::Primitive;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
pub use ofpc_net::pch::ResultStatus;
use ofpc_net::routing::shortest_paths;
use ofpc_net::sim::Network;
use ofpc_net::{Addr, NodeId};

/// Build a tagged compute request.
pub fn tag_request(
    src: Addr,
    dst: Addr,
    packet_id: u32,
    primitive: Primitive,
    op_id: u16,
    operands: &[f64],
) -> Packet {
    assert!(
        operands.len() <= u16::MAX as usize,
        "operand vector exceeds the 16-bit length field"
    );
    let pch = PchHeader::request(primitive, op_id, operands.len() as u16);
    Packet::compute(src, dst, packet_id, pch, Packet::encode_operands(operands))
}

/// Extract the computed result from a delivered packet, if any. Returns
/// `None` for uncomputed packets *and* for results whose status is not
/// [`ResultStatus::Ok`] — a value stamped by an unhealthy engine or past
/// its deadline is garbage, not a result.
pub fn read_result(packet: &Packet) -> Option<f64> {
    packet
        .pch
        .as_ref()
        .filter(|pch| pch.is_computed() && pch.status() == ResultStatus::Ok)
        .map(|pch| pch.result())
}

/// What a receiver learns from a delivered compute packet: the result
/// status and the value (present only when computed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultOutcome {
    pub status: ResultStatus,
    /// The in-band result, if any engine executed the op (regardless of
    /// status — callers deciding to salvage a degraded value see it
    /// here; [`read_result`] is the strict accessor).
    pub value: Option<f64>,
}

/// Full status-aware read of a delivered compute packet. Plain packets
/// (no PCH) report `Ok` with no value.
pub fn read_outcome(packet: &Packet) -> ResultOutcome {
    match packet.pch.as_ref() {
        None => ResultOutcome {
            status: ResultStatus::Ok,
            value: None,
        },
        Some(pch) => ResultOutcome {
            status: pch.status(),
            value: pch.is_computed().then(|| pch.result()),
        },
    }
}

/// Stamp a request as timed out (deadline passed before any engine ran
/// it) — serving layers call this before returning the packet so the
/// receiver never mistakes a stale field for a fresh result.
pub fn mark_timed_out(packet: &mut Packet) {
    if let Some(pch) = packet.pch.as_mut() {
        pch.set_status(ResultStatus::TimedOut);
    }
}

/// Per-packet protocol overhead in bytes for an operand vector of length
/// `n` (PCH bytes; operands replace payload the application would send
/// anyway, so they are not counted as overhead).
pub fn protocol_overhead(n_operands: usize) -> usize {
    let _ = n_operands;
    ofpc_net::pch::PCH_WIRE_BYTES
}

/// Outcome of a staged control-plane rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Packets delivered having been computed.
    pub computed: usize,
    /// Packets delivered uncomputed (sent before their detour route
    /// reached the routers they crossed).
    pub missed: usize,
    /// Time at which the last router was updated, ps.
    pub converged_at_ps: u64,
}

/// Install compute-detour overrides for (`primitive` → `via`) one router
/// at a time, `update_gap_ps` apart, while `traffic` packets flow from
/// `src_node` toward `dst`. Before a router updates, it forwards compute
/// packets on plain routes (possibly past the engine). Reports how many
/// packets computed vs missed — the §3 convergence story quantified.
#[allow(clippy::too_many_arguments)]
pub fn staged_rollout(
    net: &mut Network,
    primitive: Primitive,
    via: NodeId,
    update_gap_ps: u64,
    src_node: NodeId,
    dst: Addr,
    op_id: u16,
    operands: &[f64],
    packets: usize,
    packet_gap_ps: u64,
) -> RolloutReport {
    // Precompute each router's first hop toward `via`.
    let node_count = net.topo.node_count();
    let mut updates: Vec<(NodeId, ofpc_net::topology::LinkId)> = Vec::new();
    for r in 0..node_count {
        let router = NodeId(r as u32);
        if router == via {
            continue;
        }
        let paths = shortest_paths(&net.topo, router);
        if let Some(&(_, Some(first_link))) = paths.get(&via) {
            updates.push((router, first_link));
        }
    }
    // Interleave: inject traffic and apply updates in timestamp order.
    let dst_prefix = {
        // Route override scoped to the destination's /24.
        let o = dst.octets();
        ofpc_net::Prefix::new(Addr::new(o[0], o[1], o[2], 0), 24)
    };
    let mut events: Vec<(u64, Result<Packet, usize>)> = Vec::new();
    for (i, p) in (0..packets)
        .map(|i| {
            let pch = PchHeader::request(primitive, op_id, operands.len() as u16);
            Packet::compute(
                Network::node_addr(src_node, 1),
                dst,
                i as u32,
                pch,
                Packet::encode_operands(operands),
            )
        })
        .enumerate()
    {
        events.push((i as u64 * packet_gap_ps, Ok(p)));
    }
    for (i, _) in updates.iter().enumerate() {
        events.push(((i as u64 + 1) * update_gap_ps, Err(i)));
    }
    events.sort_by_key(|(t, e)| (*t, e.is_ok() as u8));
    let mut converged_at = 0;
    for (t, ev) in events {
        net.run_until(t);
        match ev {
            Ok(packet) => net.inject(t.max(net.now_ps()), src_node, packet),
            Err(idx) => {
                let (router, link) = updates[idx];
                net.routing_table_mut(router)
                    .install_compute_override(dst_prefix, primitive, link);
                converged_at = t;
            }
        }
    }
    net.run_to_idle();
    let computed = net.stats.computed_count();
    let missed = net.stats.delivered_count() - computed;
    RolloutReport {
        computed,
        missed,
        converged_at_ps: converged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_net::sim::OpSpec;
    use ofpc_net::Topology;
    use ofpc_photonics::SimRng;

    const P1: Primitive = Primitive::VectorDotProduct;

    #[test]
    fn tag_and_read_round_trip() {
        let p = tag_request(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 3, 1),
            5,
            P1,
            9,
            &[0.5, 0.25],
        );
        assert!(p.is_compute());
        assert_eq!(read_result(&p), None, "uncomputed request has no result");
        let mut computed = p.clone();
        computed.pch.as_mut().unwrap().mark_computed(1.25);
        assert!((read_result(&computed).unwrap() - 1.25).abs() < 0.01);
    }

    #[test]
    fn result_status_round_trips_through_the_wire() {
        use bytes::BytesMut;
        let src = Addr::new(10, 0, 0, 1);
        let dst = Addr::new(10, 0, 3, 1);
        // Engine-unhealthy pass-through: computed=false, status set.
        let mut p = tag_request(src, dst, 1, P1, 9, &[0.5, 0.25]);
        p.pch
            .as_mut()
            .unwrap()
            .set_status(ResultStatus::EngineUnhealthy);
        // Round-trip the PCH over its wire format, as a router would.
        let mut buf = BytesMut::new();
        p.pch.as_ref().unwrap().write_to(&mut buf);
        let parsed = ofpc_net::pch::PchHeader::read_from(&mut buf.freeze()).unwrap();
        assert_eq!(parsed.status(), ResultStatus::EngineUnhealthy);
        let outcome = read_outcome(&p);
        assert_eq!(outcome.status, ResultStatus::EngineUnhealthy);
        assert_eq!(outcome.value, None);
        assert_eq!(read_result(&p), None);

        // Timed-out request.
        let mut p = tag_request(src, dst, 2, P1, 9, &[1.0]);
        mark_timed_out(&mut p);
        assert_eq!(read_outcome(&p).status, ResultStatus::TimedOut);
        assert_eq!(read_result(&p), None);

        // Healthy compute: Ok status, value visible both ways.
        let mut p = tag_request(src, dst, 3, P1, 9, &[1.0]);
        p.pch.as_mut().unwrap().mark_computed(2.5);
        let outcome = read_outcome(&p);
        assert_eq!(outcome.status, ResultStatus::Ok);
        assert!((outcome.value.unwrap() - 2.5).abs() < 0.01);
        assert!((read_result(&p).unwrap() - 2.5).abs() < 0.01);

        // A computed value stamped non-Ok is salvageable via outcome but
        // hidden from the strict accessor.
        p.pch
            .as_mut()
            .unwrap()
            .set_status(ResultStatus::EngineUnhealthy);
        assert_eq!(read_result(&p), None);
        assert!(read_outcome(&p).value.is_some());
    }

    #[test]
    fn overhead_is_the_pch() {
        assert_eq!(protocol_overhead(0), 8);
        assert_eq!(protocol_overhead(1024), 8);
        // Cross-check against actual wire sizes.
        let plain = Packet::data(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 1, 1),
            0,
            vec![0u8; 64],
        );
        let tagged = tag_request(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 1, 1),
            0,
            P1,
            0,
            &vec![0.5; 64],
        );
        assert_eq!(
            tagged.wire_bytes() - plain.wire_bytes(),
            protocol_overhead(64)
        );
    }

    #[test]
    fn instant_rollout_computes_everything() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let b = NodeId(1);
        net.add_engine(
            b,
            1,
            OpSpec::Dot {
                weights: vec![1.0; 4],
            },
            0.0,
        );
        let report = staged_rollout(
            &mut net,
            P1,
            b,
            1, // effectively instant updates
            NodeId(0),
            Network::node_addr(NodeId(3), 1),
            1,
            &[0.5; 4],
            10,
            1_000_000,
        );
        assert_eq!(report.computed, 10);
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn slow_rollout_misses_early_packets() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let c = NodeId(2);
        net.add_engine(
            c,
            1,
            OpSpec::Dot {
                weights: vec![1.0; 4],
            },
            0.0,
        );
        // Updates land 5 ms apart while packets go every 1 ms: early
        // packets cross un-updated routers. (Shortest A→D may go via B,
        // missing the engine at C entirely.)
        let report = staged_rollout(
            &mut net,
            P1,
            c,
            5_000_000_000,
            NodeId(0),
            Network::node_addr(NodeId(3), 1),
            1,
            &[0.5; 4],
            12,
            1_000_000_000,
        );
        assert!(report.missed > 0, "{report:?}");
        assert!(report.computed > 0, "{report:?}");
        assert_eq!(report.missed + report.computed, 12);
    }

    #[test]
    fn rollout_reports_convergence_time() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let b = NodeId(1);
        net.add_engine(b, 1, OpSpec::Nonlinear, 0.0);
        let gap = 2_000_000u64;
        let report = staged_rollout(
            &mut net,
            Primitive::NonlinearFunction,
            b,
            gap,
            NodeId(0),
            Network::node_addr(NodeId(3), 1),
            1,
            &[0.5; 2],
            1,
            1_000,
        );
        // Three routers (A, C, D) get updates.
        assert_eq!(report.converged_at_ps, 3 * gap);
    }
}
