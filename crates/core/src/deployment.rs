//! Incremental deployment (the backward-compatibility argument, E9).
//!
//! The paper's pitch against new router ASICs is that transponders are
//! *pluggable*: operators can upgrade any fraction of sites and the rest
//! of the network keeps forwarding unchanged. This module quantifies
//! that: pick the upgrade order (by site degree — a natural
//! highest-leverage-first policy — or a given order), sweep the upgraded
//! fraction, and for each point run the controller over a demand set to
//! measure how much compute demand the partially-upgraded WAN satisfies
//! and at what added latency.

use ofpc_controller::demand::Demand;
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::options::enumerate_options;
use ofpc_net::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// One point of the deployment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPoint {
    /// Sites upgraded.
    pub upgraded_sites: usize,
    /// Fraction of sites upgraded.
    pub fraction: f64,
    /// Demands satisfied out of the total.
    pub satisfied: usize,
    pub total_demands: usize,
    /// Mean added latency (ms) across satisfied demands.
    pub mean_added_latency_ms: f64,
}

/// Order sites for upgrade by descending degree (ties by index), the
/// "upgrade the busiest exchange points first" policy.
pub fn upgrade_order_by_degree(topo: &Topology) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..topo.node_count()).map(|n| NodeId(n as u32)).collect();
    order.sort_by_key(|&n| (std::cmp::Reverse(topo.neighbors(n).len()), n.0));
    order
}

/// Sweep upgraded-site counts `0..=n` in the given order, with
/// `slots_per_site` transponders per upgraded site, solving greedily at
/// each point (the sweep is about coverage, not solver optimality).
pub fn deployment_sweep(
    topo: &Topology,
    order: &[NodeId],
    slots_per_site: usize,
    demands: &[Demand],
) -> Vec<DeploymentPoint> {
    assert!(slots_per_site >= 1, "need at least one slot per site");
    assert!(!demands.is_empty(), "need demands to measure coverage");
    let n = topo.node_count();
    let mut points = Vec::with_capacity(order.len() + 1);
    for k in 0..=order.len() {
        let mut slots = vec![0usize; n];
        for &site in &order[..k] {
            slots[site.0 as usize] = slots_per_site;
        }
        let instance = enumerate_options(topo, &slots, demands, 8);
        let sol = solve_greedy(&instance);
        let mut added = Vec::new();
        for (d, choice) in sol.allocation.choices.iter().enumerate() {
            if let Some(o) = choice {
                added.push(instance.options[d][*o].added_latency_ps as f64 / 1e9);
            }
        }
        let satisfied = sol.allocation.satisfied_count();
        points.push(DeploymentPoint {
            upgraded_sites: k,
            fraction: k as f64 / order.len().max(1) as f64,
            satisfied,
            total_demands: demands.len(),
            mean_added_latency_ms: if added.is_empty() {
                0.0
            } else {
                added.iter().sum::<f64>() / added.len() as f64
            },
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_controller::demand::TaskDag;
    use ofpc_engine::Primitive;
    use ofpc_photonics::SimRng;

    fn abilene_demands(n: usize, rng: &mut SimRng) -> Vec<Demand> {
        let topo = Topology::abilene();
        (0..n)
            .map(|i| {
                let src = NodeId(rng.below(topo.node_count()) as u32);
                let mut dst = src;
                while dst == src {
                    dst = NodeId(rng.below(topo.node_count()) as u32);
                }
                Demand::new(
                    i as u32,
                    src,
                    dst,
                    TaskDag::single(Primitive::VectorDotProduct),
                )
            })
            .collect()
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let topo = Topology::abilene();
        let order = upgrade_order_by_degree(&topo);
        assert_eq!(order.len(), 11);
        let first_degree = topo.neighbors(order[0]).len();
        let last_degree = topo.neighbors(order[10]).len();
        assert!(first_degree >= last_degree);
        assert!(first_degree >= 3, "Abilene hubs have degree ≥ 3");
    }

    #[test]
    fn coverage_grows_monotonically_with_deployment() {
        let topo = Topology::abilene();
        let mut rng = SimRng::seed_from_u64(1);
        let demands = abilene_demands(12, &mut rng);
        let order = upgrade_order_by_degree(&topo);
        let points = deployment_sweep(&topo, &order, 2, &demands);
        assert_eq!(points.len(), 12);
        assert_eq!(points[0].satisfied, 0, "no sites → no compute");
        for w in points.windows(2) {
            assert!(
                w[1].satisfied >= w[0].satisfied,
                "coverage regressed: {w:?}"
            );
        }
        let last = points.last().unwrap();
        assert_eq!(
            last.satisfied, 12,
            "full deployment satisfies everything: {last:?}"
        );
    }

    #[test]
    fn partial_deployment_already_covers_most_demands() {
        // The backward-compatibility selling point: upgrading a few hub
        // sites covers a large demand share.
        let topo = Topology::abilene();
        let mut rng = SimRng::seed_from_u64(2);
        let demands = abilene_demands(16, &mut rng);
        let order = upgrade_order_by_degree(&topo);
        // Slots sized so coverage (reachability), not slot capacity, is
        // what the sweep measures.
        let points = deployment_sweep(&topo, &order, 8, &demands);
        let at_3 = &points[3];
        assert!(
            at_3.satisfied as f64 / at_3.total_demands as f64 >= 0.9,
            "3 hub sites should cover ≥90%: {at_3:?}"
        );
    }

    #[test]
    fn added_latency_falls_as_deployment_densifies() {
        let topo = Topology::abilene();
        let mut rng = SimRng::seed_from_u64(3);
        let demands = abilene_demands(16, &mut rng);
        let order = upgrade_order_by_degree(&topo);
        let points = deployment_sweep(&topo, &order, 3, &demands);
        // Compare the first point with full satisfaction against the
        // final point: more sites = shorter detours on average.
        let first_full = points
            .iter()
            .find(|p| p.satisfied == p.total_demands)
            .expect("full coverage reached");
        let last = points.last().unwrap();
        assert!(
            last.mean_added_latency_ms <= first_full.mean_added_latency_ms + 1e-9,
            "densification should not lengthen detours: {first_full:?} vs {last:?}"
        );
    }

    #[test]
    #[should_panic(expected = "demands")]
    fn empty_demand_set_panics() {
        let topo = Topology::fig1();
        let order = upgrade_order_by_degree(&topo);
        deployment_sweep(&topo, &order, 1, &[]);
    }
}
