//! Multi-region WAN topology generation — the 10–100x fig1 instances
//! the sharded controller (ofpc-shard, experiment E20) partitions.
//!
//! The paper's fig1 WAN is a single 4-node region. A continental
//! deployment is better modeled as a set of metro *regions* — dense
//! random-geometric clusters — stitched by a sparse long-haul backbone.
//! That structure is exactly what makes region sharding effective: most
//! demands stay inside one region, and the backbone carries the
//! boundary traffic the shard layer reconciles globally.
//!
//! The generator is deterministic per seed (it draws only from the
//! caller's [`SimRng`]), and returns the region assignment alongside
//! the topology so shard construction never has to re-derive it.

use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

/// Parameters for [`multi_region`].
#[derive(Debug, Clone)]
pub struct MultiRegionSpec {
    /// Number of metro regions (≥ 2).
    pub regions: usize,
    /// Nodes per region (≥ 2).
    pub sites_per_region: usize,
    /// Side of each region's square scatter area, km.
    pub region_side_km: f64,
    /// Geometric-graph connection radius inside a region, km.
    pub region_radius_km: f64,
    /// Long-haul backbone link length between adjacent gateways, km.
    pub backbone_km: f64,
}

impl MultiRegionSpec {
    /// A compact default: metro-scale regions (300 km square, 150 km
    /// radius) on a 900 km backbone ring.
    pub fn new(regions: usize, sites_per_region: usize) -> Self {
        MultiRegionSpec {
            regions,
            sites_per_region,
            region_side_km: 300.0,
            region_radius_km: 150.0,
            backbone_km: 900.0,
        }
    }

    pub fn node_count(&self) -> usize {
        self.regions * self.sites_per_region
    }
}

/// A generated multi-region WAN: the topology plus, for every node,
/// the region it belongs to (`region_of[node.0 as usize]`).
#[derive(Debug, Clone)]
pub struct MultiRegionWan {
    pub topo: Topology,
    pub region_of: Vec<u32>,
}

impl MultiRegionWan {
    /// Nodes of one region, ascending.
    pub fn region_nodes(&self, region: u32) -> Vec<NodeId> {
        self.region_of
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == region)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The gateway (backbone-attached) node of a region: its first node.
    pub fn gateway(&self, region: u32) -> NodeId {
        self.region_nodes(region)[0]
    }
}

/// Generate a multi-region WAN.
///
/// Each region is an independent random-geometric cluster (plus a
/// spanning chain for connectivity, as in
/// [`Topology::random_geometric`]); its first node is the gateway.
/// Gateways are joined by a backbone ring, plus one cross chord for
/// ≥ 4 regions so backbone cuts don't partition the WAN in half.
/// Node ids are region-contiguous: region `r` owns ids
/// `r * sites_per_region .. (r + 1) * sites_per_region`.
pub fn multi_region(spec: &MultiRegionSpec, rng: &mut SimRng) -> MultiRegionWan {
    assert!(spec.regions >= 2, "need at least two regions");
    assert!(spec.sites_per_region >= 2, "need at least two sites/region");
    let mut topo = Topology::new();
    let mut region_of = Vec::with_capacity(spec.node_count());
    for r in 0..spec.regions {
        let base = topo.node_count();
        let pts: Vec<(f64, f64)> = (0..spec.sites_per_region)
            .map(|i| {
                topo.add_node(format!("r{r}s{i}"));
                region_of.push(r as u32);
                (
                    rng.uniform() * spec.region_side_km,
                    rng.uniform() * spec.region_side_km,
                )
            })
            .collect();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
                if d <= spec.region_radius_km {
                    topo.add_link(
                        NodeId((base + i) as u32),
                        NodeId((base + j) as u32),
                        d.max(1.0),
                    );
                }
            }
        }
        for i in 0..pts.len() - 1 {
            let a = NodeId((base + i) as u32);
            let b = NodeId((base + i + 1) as u32);
            let already = topo.neighbors(a).iter().any(|(_, nb)| *nb == b);
            if !already {
                let d = ((pts[i].0 - pts[i + 1].0).powi(2) + (pts[i].1 - pts[i + 1].1).powi(2))
                    .sqrt()
                    .max(1.0);
                topo.add_link(a, b, d);
            }
        }
    }
    // Backbone ring over the gateways (node 0 of each region).
    let gw = |r: usize| NodeId((r * spec.sites_per_region) as u32);
    for r in 0..spec.regions {
        topo.add_link(gw(r), gw((r + 1) % spec.regions), spec.backbone_km);
    }
    // A chord across the ring: one backbone cut never doubles the
    // worst-case gateway distance, and the ring stays 2-cut-tolerant.
    if spec.regions >= 4 {
        topo.add_link(gw(0), gw(spec.regions / 2), spec.backbone_km * 1.5);
    }
    MultiRegionWan { topo, region_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_contiguous_and_connected() {
        let mut rng = SimRng::seed_from_u64(7);
        let wan = multi_region(&MultiRegionSpec::new(5, 8), &mut rng);
        assert_eq!(wan.topo.node_count(), 40);
        assert_eq!(wan.region_of.len(), 40);
        assert!(wan.topo.is_connected());
        for r in 0..5u32 {
            let nodes = wan.region_nodes(r);
            assert_eq!(nodes.len(), 8);
            // Contiguous id block.
            assert_eq!(nodes[0], NodeId(r * 8));
            assert_eq!(nodes[7], NodeId(r * 8 + 7));
            assert_eq!(wan.gateway(r), NodeId(r * 8));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = MultiRegionSpec::new(3, 4);
        let a = multi_region(&spec, &mut SimRng::seed_from_u64(42));
        let b = multi_region(&spec, &mut SimRng::seed_from_u64(42));
        let c = multi_region(&spec, &mut SimRng::seed_from_u64(43));
        assert_eq!(a.topo.link_count(), b.topo.link_count());
        assert_eq!(a.region_of, b.region_of);
        // A different seed scatters differently (links differ with
        // overwhelming probability for these sizes).
        assert_ne!(a.topo.link_count(), c.topo.link_count());
    }

    #[test]
    fn chord_added_for_four_plus_regions() {
        let mut rng = SimRng::seed_from_u64(1);
        let small = multi_region(&MultiRegionSpec::new(3, 3), &mut SimRng::seed_from_u64(1));
        let big = multi_region(&MultiRegionSpec::new(4, 3), &mut rng);
        // ring only (3 links) vs ring + chord (5 links) on the backbone:
        // count links touching two different-region endpoints.
        let backbone = |wan: &MultiRegionWan| {
            wan.topo
                .links
                .iter()
                .filter(|l| wan.region_of[l.a.0 as usize] != wan.region_of[l.b.0 as usize])
                .count()
        };
        assert_eq!(backbone(&small), 3);
        assert_eq!(backbone(&big), 5);
    }
}
