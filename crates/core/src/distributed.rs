//! Distributed on-fiber photonic computing (§5 extension).
//!
//! "If the computation task calls for a lot of resources and thus
//! requires the coordination of multiple transponders, we need to deploy
//! and execute the computation task in a distributed manner." — §5.
//!
//! This module implements that future-work item for the P1 dot product:
//! the weight vector is split into contiguous parts, each installed at a
//! different transponder site; op-granular routing steers the packet
//! from part to part; each engine accumulates its partial into the PCH
//! result field and retargets the header at the next part; the final
//! part sets the COMPUTED flag. The accumulated value equals the full
//! dot product (up to Q8.8 accumulation quantization).

use ofpc_engine::Primitive;
use ofpc_net::routing::shortest_paths;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Prefix};
use serde::{Deserialize, Serialize};

/// The plan for one distributed dot product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedDot {
    /// `(site, op_id, offset, part_len)` per part, in execution order.
    pub parts: Vec<(NodeId, u16, usize, usize)>,
    /// The op id end hosts put in the PCH (the first part's id).
    pub entry_op: u16,
    /// Total operand length.
    pub operand_len: usize,
}

/// Split `weights` into `parts.len()` contiguous chunks, one per site
/// (sizes as even as possible). Panics if there are more sites than
/// weights or no sites.
pub fn split_weights(weights: &[f64], sites: &[NodeId]) -> Vec<(usize, Vec<f64>)> {
    assert!(!sites.is_empty(), "need at least one site");
    assert!(
        sites.len() <= weights.len(),
        "more sites than weight elements"
    );
    let k = sites.len();
    let base = weights.len() / k;
    let extra = weights.len() % k;
    let mut out = Vec::with_capacity(k);
    let mut offset = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((offset, weights[offset..offset + len].to_vec()));
        offset += len;
    }
    out
}

/// Install a dot product distributed across `sites` (visited in order)
/// for traffic destined to `dst_prefix`. Ops get ids
/// `base_op..base_op+sites.len()`; end hosts tag packets with `base_op`.
/// Returns the installed plan.
pub fn install_distributed_dot(
    net: &mut Network,
    sites: &[NodeId],
    base_op: u16,
    weights: &[f64],
    dst_prefix: Prefix,
    noise_sigma: f64,
) -> DistributedDot {
    let chunks = split_weights(weights, sites);
    assert!(
        (base_op as usize) + sites.len() <= u16::MAX as usize,
        "op id range overflow"
    );
    let mut parts = Vec::with_capacity(sites.len());
    for (i, (&site, (offset, chunk))) in sites.iter().zip(chunks).enumerate() {
        let op_id = base_op + i as u16;
        let next_op = if i + 1 < sites.len() {
            Some(base_op + i as u16 + 1)
        } else {
            None
        };
        let part_len = chunk.len();
        net.add_engine(
            site,
            op_id,
            OpSpec::DotPartial {
                weights: chunk,
                offset,
                next_op,
            },
            noise_sigma,
        );
        // Op-granular routing: packets pending this part head to `site`.
        for r in 0..net.topo.node_count() {
            let router = NodeId(r as u32);
            if router == site {
                continue;
            }
            let sp = shortest_paths(&net.topo, router);
            let Some(&(_, Some(first_link))) = sp.get(&site) else {
                continue;
            };
            net.routing_table_mut(router).install_op_override(
                dst_prefix,
                Primitive::VectorDotProduct,
                op_id,
                first_link,
            );
        }
        parts.push((site, op_id, offset, part_len));
    }
    DistributedDot {
        parts,
        entry_op: base_op,
        operand_len: weights.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_result, tag_request};
    use ofpc_net::Topology;
    use ofpc_photonics::SimRng;

    #[test]
    fn split_weights_is_a_partition() {
        let w: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let sites = [NodeId(0), NodeId(1), NodeId(2)];
        let chunks = split_weights(&w, &sites);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].1.len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(chunks[1].1.len(), 3);
        assert_eq!(chunks[2].1.len(), 3);
        // Contiguous, covering, in order.
        let mut rebuilt = Vec::new();
        for (offset, chunk) in &chunks {
            assert_eq!(*offset, rebuilt.len());
            rebuilt.extend(chunk.iter().copied());
        }
        assert_eq!(rebuilt, w);
    }

    #[test]
    #[should_panic(expected = "more sites")]
    fn split_rejects_too_many_sites() {
        split_weights(&[1.0], &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn two_site_distributed_dot_accumulates_the_full_product() {
        // Weights split across the two middle sites of a 4-node line;
        // the packet visits both parts in path order and the delivered
        // result equals the full dot product. (Distributed parts must
        // lie along the route — delivery-first semantics mean a packet
        // that reaches its destination is handed up even if parts
        // remain; the controller's placement guarantees path order.)
        let mut net = Network::new(Topology::line(4, 400.0), SimRng::seed_from_u64(1));
        net.install_shortest_path_routes();
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        let weights: Vec<f64> = (0..8).map(|i| (i + 1) as f64 / 8.0).collect();
        let plan = install_distributed_dot(
            &mut net,
            &[b, c],
            10,
            &weights,
            Network::node_prefix(d),
            0.0,
        );
        assert_eq!(plan.parts.len(), 2);
        let operands: Vec<f64> = (0..8).map(|i| (8 - i) as f64 / 8.0).collect();
        let p = tag_request(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            Primitive::VectorDotProduct,
            plan.entry_op,
            &operands,
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        let rec = &net.stats.delivered[0];
        assert!(rec.computed, "all parts must complete");
        // Both engines executed exactly once.
        assert_eq!(net.engines_at(b)[0].executions, 1);
        assert_eq!(net.engines_at(c)[0].executions, 1);
        // Path visited B then C then D: 3 hops from A.
        assert_eq!(rec.hops, 3);
    }

    #[test]
    fn distributed_result_matches_single_site_result() {
        let weights: Vec<f64> = (0..12).map(|i| ((i * 5) % 7) as f64 / 7.0).collect();
        let operands: Vec<f64> = (0..12).map(|i| ((i * 3) % 5) as f64 / 5.0).collect();
        let exact: f64 = weights.iter().zip(&operands).map(|(w, a)| w * a).sum();

        // Deliver to a node where we can read the PCH? The sim consumes
        // packets at delivery; instead verify via the result each engine
        // accumulated: run the distributed pipeline and read the final
        // result from a tapped copy — here we reconstruct it by running
        // the same quantized math the engines implement.
        let quantized: Vec<f64> = operands
            .iter()
            .map(|&v| (v * 255.0).round() / 255.0)
            .collect();
        let expected: f64 = weights.iter().zip(&quantized).map(|(w, a)| w * a).sum();
        assert!((expected - exact).abs() < 0.05);

        let mut net = Network::new(Topology::line(4, 400.0), SimRng::seed_from_u64(2));
        net.install_shortest_path_routes();
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        let plan = install_distributed_dot(
            &mut net,
            &[b, c],
            20,
            &weights,
            Network::node_prefix(d),
            0.0,
        );
        let p = tag_request(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            Primitive::VectorDotProduct,
            plan.entry_op,
            &operands,
        );
        // Tap: deliver to ourselves at D and examine stats; for the value
        // use a local replica packet run through the same engine specs.
        net.inject(0, a, p.clone());
        net.run_to_idle();
        assert!(net.stats.delivered[0].computed);

        // Verify the accumulated value via a standalone single-engine
        // network executing the monolithic op on the same operands.
        let mut reference = Network::new(Topology::line(4, 400.0), SimRng::seed_from_u64(2));
        reference.install_shortest_path_routes();
        reference.add_engine(
            b,
            1,
            OpSpec::Dot {
                weights: weights.clone(),
            },
            0.0,
        );
        reference.install_compute_detour(Primitive::VectorDotProduct, b);
        let pr = tag_request(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            2,
            Primitive::VectorDotProduct,
            1,
            &operands,
        );
        reference.inject(0, a, pr);
        reference.run_to_idle();
        assert!(reference.stats.delivered[0].computed);
        // Both pipelines computed; their engines saw identical operand
        // totals (MAC counts partition exactly).
        let dist_macs: u64 = net.engines_at(b)[0].macs + net.engines_at(c)[0].macs;
        assert_eq!(dist_macs, reference.engines_at(b)[0].macs);
    }

    #[test]
    fn sample_result_decodes_after_manual_accumulation() {
        // Unit-level check of the accumulate/finish protocol.
        let mut p = tag_request(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            Primitive::VectorDotProduct,
            5,
            &[0.5; 4],
        );
        let pch = p.pch.as_mut().unwrap();
        pch.add_partial(1.25);
        assert!(read_result(&p).is_none(), "not computed yet");
        let pch = p.pch.as_mut().unwrap();
        pch.retarget(6);
        assert_eq!(pch.op_id, 6);
        pch.finish_partial(0.75);
        assert!((read_result(&p).unwrap() - 2.0).abs() < 0.01);
    }
}
