//! Aggregated system metrics for the experiment harnesses.

use ofpc_net::sim::Network;
use serde::{Deserialize, Serialize};

/// One experiment run's summary — what EXPERIMENTS.md tables are built
/// from. All latencies in milliseconds, energies in joules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    pub delivered: usize,
    pub computed: usize,
    pub drops: u64,
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub goodput_bps: f64,
    /// Total in-flight compute energy across all engines.
    pub engine_energy_j: f64,
    /// Total MACs executed by engines.
    pub engine_macs: u64,
}

impl SystemReport {
    /// Collect a report from a finished network simulation.
    pub fn from_network(net: &Network) -> Self {
        let mut engine_energy_j = 0.0;
        let mut engine_macs = 0;
        for n in 0..net.topo.node_count() {
            for slot in net.engines_at(ofpc_net::NodeId(n as u32)) {
                engine_energy_j += slot.energy_j;
                engine_macs += slot.macs;
            }
        }
        SystemReport {
            delivered: net.stats.delivered_count(),
            computed: net.stats.computed_count(),
            drops: net.stats.total_drops(),
            mean_latency_ms: net.stats.mean_latency_ms().unwrap_or(f64::NAN),
            p50_latency_ms: net.stats.latency_percentile_ms(0.5).unwrap_or(f64::NAN),
            p99_latency_ms: net.stats.latency_percentile_ms(0.99).unwrap_or(f64::NAN),
            goodput_bps: net.stats.goodput_bps(),
            engine_energy_j,
            engine_macs,
        }
    }

    /// Fraction of delivered packets that were computed in-flight.
    pub fn compute_coverage(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.computed as f64 / self.delivered as f64
        }
    }

    /// Engine energy per MAC (NaN when no MACs ran).
    pub fn energy_per_mac_j(&self) -> f64 {
        if self.engine_macs == 0 {
            f64::NAN
        } else {
            self.engine_energy_j / self.engine_macs as f64
        }
    }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "delivered {} (computed {}, {:.1}% coverage), drops {}",
            self.delivered,
            self.computed,
            100.0 * self.compute_coverage(),
            self.drops
        )?;
        writeln!(
            f,
            "latency ms: mean {:.3}  p50 {:.3}  p99 {:.3}",
            self.mean_latency_ms, self.p50_latency_ms, self.p99_latency_ms
        )?;
        write!(
            f,
            "engines: {} MACs, {:.3e} J total ({:.3e} J/MAC)",
            self.engine_macs,
            self.engine_energy_j,
            self.energy_per_mac_j()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Fig1Scenario;
    use ofpc_photonics::SimRng;

    #[test]
    fn report_from_fig1_run() {
        let mut s = Fig1Scenario::build(1);
        let mut rng = SimRng::seed_from_u64(1);
        s.inject_traffic(6, 0, 1_000_000, &mut rng);
        s.run();
        let report = SystemReport::from_network(&s.system.net);
        assert_eq!(report.delivered, 12);
        assert_eq!(report.computed, 12);
        assert!((report.compute_coverage() - 1.0).abs() < 1e-12);
        assert!(report.engine_macs > 0);
        assert!(report.engine_energy_j > 0.0);
        // Engine energy per MAC sits at the photonic constant plus the
        // per-op ADC readout amortization.
        let per_mac = report.energy_per_mac_j();
        assert!(per_mac >= ofpc_photonics::energy::constants::PHOTONIC_MAC_J);
        assert!(per_mac < 1e-12, "per-MAC energy {per_mac} too high");
        // Display formats without panicking and mentions coverage.
        let s = format!("{report}");
        assert!(s.contains("coverage"));
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = SystemReport::default();
        assert_eq!(report.compute_coverage(), 0.0);
        assert!(report.energy_per_mac_j().is_nan());
    }
}
