//! Design-point records and non-dominated-set marking.
//!
//! A sweep evaluates one [`DesignPoint`] per (app, converter, core
//! size, wavelength count) tuple. [`mark_pareto`] then flags, per app,
//! the points no other point dominates on the three axes the paper's
//! trade-off story turns on: energy per request (lower better), batch
//! latency (lower better), and end-to-end effective bits (higher
//! better). Everything is pure integer/float comparison in a fixed
//! order — the marking is deterministic and worker-count independent.

use serde::{Deserialize, Serialize};

/// One evaluated point of the design space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Table-1 app name (`"dnn"`, `"correlation"`, `"pattern-match"`).
    pub app: String,
    /// Converter pairing name from the catalog.
    pub converter: String,
    /// Photonic core size (MVM width / pattern scale unit).
    pub core_size: usize,
    /// WDM channels lit for serving.
    pub wavelengths: usize,
    /// Per-request energy across the lowered plan, J.
    pub energy_per_request_j: f64,
    /// Makespan of the request batch over the plan, ps.
    pub latency_ps: u64,
    /// One-time plan-install (weight write) charge, ps.
    pub install_ps: u64,
    /// Weakest photonic stage's predicted effective bits; 16.0 for
    /// all-digital plans (digital is exact at modeled precision).
    pub effective_bits: f64,
    pub photonic_stages: usize,
    pub digital_stages: usize,
    /// Distinct hardware variants the lowerer bound, first-use order.
    pub variants_used: Vec<String>,
    /// Module totals from the form-factor budget (catalog parts swapped
    /// into the Fig.-4 block set).
    pub module_power_w: f64,
    pub module_area_mm2: f64,
    /// Whether the module fits the OSFP envelope.
    pub fits_osfp: bool,
    /// On the per-app Pareto frontier (set by [`mark_pareto`]).
    pub pareto: bool,
}

/// Whether `a` dominates `b`: no worse on all of (energy, latency,
/// bits) and strictly better on at least one. Ties on every axis
/// dominate nothing, so duplicated points both stay on the frontier.
fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    let no_worse = a.energy_per_request_j <= b.energy_per_request_j
        && a.latency_ps <= b.latency_ps
        && a.effective_bits >= b.effective_bits;
    let better = a.energy_per_request_j < b.energy_per_request_j
        || a.latency_ps < b.latency_ps
        || a.effective_bits > b.effective_bits;
    no_worse && better
}

/// Mark each point's `pareto` flag: true iff no other point *of the
/// same app* dominates it. O(n²) over a sweep of dozens of points.
pub fn mark_pareto(points: &mut [DesignPoint]) {
    for i in 0..points.len() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, a)| j != i && a.app == points[i].app && dominates(a, &points[i]));
        points[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(app: &str, energy: f64, latency: u64, bits: f64) -> DesignPoint {
        DesignPoint {
            app: app.to_string(),
            converter: "cv-test".to_string(),
            core_size: 16,
            wavelengths: 4,
            energy_per_request_j: energy,
            latency_ps: latency,
            install_ps: 0,
            effective_bits: bits,
            photonic_stages: 1,
            digital_stages: 0,
            variants_used: vec![],
            module_power_w: 0.0,
            module_area_mm2: 0.0,
            fits_osfp: true,
            pareto: false,
        }
    }

    #[test]
    fn dominated_point_is_off_the_frontier() {
        let mut pts = vec![
            point("dnn", 1.0, 100, 8.0),
            point("dnn", 2.0, 200, 7.0), // worse everywhere
            point("dnn", 0.5, 300, 6.0), // cheaper but slower+coarser
        ];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(!pts[1].pareto);
        assert!(pts[2].pareto);
    }

    #[test]
    fn exact_ties_both_stay() {
        let mut pts = vec![point("dnn", 1.0, 100, 8.0), point("dnn", 1.0, 100, 8.0)];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto && pts[1].pareto);
    }

    #[test]
    fn domination_is_scoped_per_app() {
        let mut pts = vec![
            point("dnn", 1.0, 100, 8.0),
            point("correlation", 2.0, 200, 7.0), // dominated only cross-app
        ];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto && pts[1].pareto);
    }

    #[test]
    fn partial_tie_with_one_strict_win_dominates() {
        let mut pts = vec![
            point("dnn", 1.0, 100, 8.0),
            point("dnn", 1.0, 100, 7.5), // equal cost, strictly coarser
        ];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(!pts[1].pareto);
    }
}
