//! The calibrated component library.
//!
//! Converter entries are transcribed from the published
//! area/power/precision/sample-rate survey tables used by the SCATTER
//! photonic-crossbar simulator (`ScopeX-ASU/SCATTER`,
//! `hardware/photonic_crossbar.py`, `DAC_list`/`ADC_list`; areas in
//! µm², power in mW, rates in GS/s). Each part records that provenance
//! verbatim so a design point can be traced back to its source row.
//! Per-sample energy follows the survey convention: the part's static
//! power amortized over its full-rate sample stream.
//!
//! [`hardware_variant`] is the bridge to the compiler: it builds the
//! transponder config from a converter pairing
//! ([`ComputeTransponderConfig::with_parts`]), derives the serving-layer
//! [`ServiceModel`], and then re-prices the converter-sensitive model
//! fields from the parts themselves — the derived model otherwise
//! clamps cheap ADCs to the repo's default readout energy.

use ofpc_graph::HardwareVariant;
use ofpc_photonics::laser::LaserConfig;
use ofpc_photonics::modulator::MzmConfig;
use ofpc_photonics::parts::{AdcPart, DacPart, HardwarePart, LaserPart, ModulatorPart};
use ofpc_serve::ServiceModel;
use ofpc_transponder::compute::ComputeTransponderConfig;

/// A DAC entry from the survey table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogDac {
    pub name: &'static str,
    pub provenance: &'static str,
    pub bits: u32,
    pub sample_rate_hz: f64,
    pub power_w: f64,
    pub area_mm2: f64,
}

impl HardwarePart for CatalogDac {
    fn part_name(&self) -> &str {
        self.name
    }
    fn provenance(&self) -> &str {
        self.provenance
    }
    fn power_w(&self) -> f64 {
        self.power_w
    }
    fn area_mm2(&self) -> f64 {
        self.area_mm2
    }
}

impl DacPart for CatalogDac {
    fn bits(&self) -> u32 {
        self.bits
    }
    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

/// An ADC entry from the survey table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogAdc {
    pub name: &'static str,
    pub provenance: &'static str,
    pub bits: u32,
    pub sample_rate_hz: f64,
    pub power_w: f64,
    pub area_mm2: f64,
}

impl HardwarePart for CatalogAdc {
    fn part_name(&self) -> &str {
        self.name
    }
    fn provenance(&self) -> &str {
        self.provenance
    }
    fn power_w(&self) -> f64 {
        self.power_w
    }
    fn area_mm2(&self) -> f64 {
        self.area_mm2
    }
}

impl AdcPart for CatalogAdc {
    fn bits(&self) -> u32 {
        self.bits
    }
    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

/// SCATTER `DAC_list[1]`: 12 bit, 14 GS/s, 169 mW, 11000 µm².
pub const DAC_12B_14G: CatalogDac = CatalogDac {
    name: "dac-12b-14g",
    provenance: "SCATTER photonic_crossbar.py DAC_list[1]: 12 b, 14 GS/s, 169 mW, 11000 um^2",
    bits: 12,
    sample_rate_hz: 14e9,
    power_w: 0.169,
    area_mm2: 0.011,
};

/// SCATTER `DAC_list[2]`: 8 bit, 14 GS/s, 50 mW, 11000 µm².
pub const DAC_8B_14G: CatalogDac = CatalogDac {
    name: "dac-8b-14g",
    provenance: "SCATTER photonic_crossbar.py DAC_list[2]: 8 b, 14 GS/s, 50 mW, 11000 um^2",
    bits: 8,
    sample_rate_hz: 14e9,
    power_w: 0.050,
    area_mm2: 0.011,
};

/// SCATTER `DAC_list[3]`: 8 bit, 5 GS/s, 20 mW, 500000 µm².
pub const DAC_8B_5G: CatalogDac = CatalogDac {
    name: "dac-8b-5g",
    provenance: "SCATTER photonic_crossbar.py DAC_list[3]: 8 b, 5 GS/s, 20 mW, 500000 um^2",
    bits: 8,
    sample_rate_hz: 5e9,
    power_w: 0.020,
    area_mm2: 0.5,
};

/// SCATTER `DAC_list[4]`: 8 bit, 1 MS/s, 20 mW, 500000 µm² — a slow
/// control-plane-class part, kept for the sample-rate edge-case tests.
pub const DAC_8B_1M: CatalogDac = CatalogDac {
    name: "dac-8b-1m",
    provenance: "SCATTER photonic_crossbar.py DAC_list[4]: 8 b, 0.001 GS/s, 20 mW, 500000 um^2",
    bits: 8,
    sample_rate_hz: 1e6,
    power_w: 0.020,
    area_mm2: 0.5,
};

/// SCATTER `ADC_list[1]`: 8 bit, 10 GS/s, 14.8 mW, 2850 µm² — the
/// time-domain two-step SAR TDC (ISSCC'22).
pub const ADC_8B_10G: CatalogAdc = CatalogAdc {
    name: "adc-8b-10g",
    provenance: "SCATTER photonic_crossbar.py ADC_list[1] (\"A 10GS/s 8b 25fJ/c-s 2850um2 \
                 Two-Step Time-Domain ADC Using Delay-Tracking Pipelined-SAR TDC with 500fs \
                 Time Step in 14nm CMOS Technology\", ieeexplore 9731625): 8 b, 10 GS/s, \
                 14.8 mW, 2850 um^2",
    bits: 8,
    sample_rate_hz: 10e9,
    power_w: 0.0148,
    area_mm2: 0.00285,
};

/// SCATTER `ADC_list[2]`: 8 bit, 5 GS/s, 7.5 mW, 100000 µm².
pub const ADC_8B_5G: CatalogAdc = CatalogAdc {
    name: "adc-8b-5g",
    provenance: "SCATTER photonic_crossbar.py ADC_list[2]: 8 b, 5 GS/s, 7.5 mW, 100000 um^2",
    bits: 8,
    sample_rate_hz: 5e9,
    power_w: 0.0075,
    area_mm2: 0.1,
};

/// The repo's realistic silicon-photonic MZM as a catalog part (power
/// and area from the form-factor block table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogModulator;

impl HardwarePart for CatalogModulator {
    fn part_name(&self) -> &str {
        "mzm-sipho-40g"
    }
    fn provenance(&self) -> &str {
        "repo realistic default: 40 GHz silicon MZM (modulator::MzmConfig::default), \
         power/area from transponder::energy block(\"tx-mzm\")"
    }
    fn power_w(&self) -> f64 {
        0.8
    }
    fn area_mm2(&self) -> f64 {
        3.0
    }
}

impl ModulatorPart for CatalogModulator {
    fn mzm_config(&self) -> MzmConfig {
        MzmConfig::default()
    }
}

/// The repo's realistic 13 dBm DFB laser as a catalog part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogLaser;

impl HardwarePart for CatalogLaser {
    fn part_name(&self) -> &str {
        "laser-dfb-13dbm"
    }
    fn provenance(&self) -> &str {
        "repo realistic default: 13 dBm DFB (laser::LaserConfig::default), \
         power/area from transponder::energy block(\"laser\")"
    }
    fn power_w(&self) -> f64 {
        1.5
    }
    fn area_mm2(&self) -> f64 {
        2.0
    }
}

impl LaserPart for CatalogLaser {
    fn laser_config(&self) -> LaserConfig {
        LaserConfig::default()
    }
}

/// The swappable converter pairings the sweep explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConverterChoice {
    /// 12-bit 14 GS/s DAC + 10 GS/s time-domain ADC: precision at a
    /// ~3.4× operand-encode energy premium.
    Cv12bFast,
    /// 8-bit 14 GS/s DAC + 10 GS/s ADC: the energy-optimal fast pairing.
    Cv8bFast,
    /// 8-bit 5 GS/s DAC + 5 GS/s ADC: lower static power, slower
    /// readout — the economy corner.
    Cv8bEco,
}

impl ConverterChoice {
    /// Every catalog pairing, in sweep order.
    pub const ALL: [ConverterChoice; 3] = [
        ConverterChoice::Cv12bFast,
        ConverterChoice::Cv8bFast,
        ConverterChoice::Cv8bEco,
    ];

    /// Stable catalog name (doubles as the variant name in lowered
    /// plans, telemetry, and the E17 JSON).
    pub fn name(self) -> &'static str {
        match self {
            ConverterChoice::Cv12bFast => "cv-12b-fast",
            ConverterChoice::Cv8bFast => "cv-8b-fast",
            ConverterChoice::Cv8bEco => "cv-8b-eco",
        }
    }

    pub fn dac(self) -> CatalogDac {
        match self {
            ConverterChoice::Cv12bFast => DAC_12B_14G,
            ConverterChoice::Cv8bFast => DAC_8B_14G,
            ConverterChoice::Cv8bEco => DAC_8B_5G,
        }
    }

    pub fn adc(self) -> CatalogAdc {
        match self {
            ConverterChoice::Cv12bFast | ConverterChoice::Cv8bFast => ADC_8B_10G,
            ConverterChoice::Cv8bEco => ADC_8B_5G,
        }
    }
}

/// Build the [`HardwareVariant`] for a converter pairing at a WDM
/// width: transponder config from the parts, service model from the
/// transponder, then the converter-sensitive fields re-priced from the
/// parts directly (per-sample energies, ADC-rate-limited readout, and a
/// weight-write floor of one DAC conversion per element).
pub fn hardware_variant(choice: ConverterChoice, wdm_channels: usize) -> HardwareVariant {
    let dac = choice.dac();
    let adc = choice.adc();
    let tcfg = ComputeTransponderConfig::with_parts(&dac, &adc, &CatalogModulator, &CatalogLaser);
    let mut model = ServiceModel::from_transponder(&tcfg, wdm_channels);
    model.dac_sample_j = dac.energy_per_sample_j();
    model.adc_result_j = adc.energy_per_sample_j();
    model.readout_per_request_ps = (1e12 / adc.sample_rate_hz()).ceil() as u64 * 8;
    model.reconfig_per_element_ps = model
        .reconfig_per_element_ps
        .max((1e12 / dac.sample_rate_hz()).ceil() as u64);
    HardwareVariant {
        name: choice.name().to_string(),
        dac_bits: f64::from(dac.bits),
        adc_bits: f64::from(adc.bits),
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sample_energy_matches_the_survey_rows() {
        // power / rate, straight from the transcribed table.
        assert!((DacPart::energy_per_sample_j(&DAC_12B_14G) - 0.169 / 14e9).abs() < 1e-24);
        assert!((DacPart::energy_per_sample_j(&DAC_8B_14G) - 0.050 / 14e9).abs() < 1e-24);
        assert!((AdcPart::energy_per_sample_j(&ADC_8B_10G) - 0.0148 / 10e9).abs() < 1e-24);
    }

    #[test]
    fn every_part_carries_provenance() {
        let parts: Vec<&dyn HardwarePart> = vec![
            &DAC_12B_14G,
            &DAC_8B_14G,
            &DAC_8B_5G,
            &DAC_8B_1M,
            &ADC_8B_10G,
            &ADC_8B_5G,
            &CatalogModulator,
            &CatalogLaser,
        ];
        for p in parts {
            assert!(
                !p.provenance().is_empty() && p.power_w() > 0.0 && p.area_mm2() > 0.0,
                "{}",
                p.part_name()
            );
        }
        // The cited ADC row keeps its source identifiable.
        assert!(ADC_8B_10G.provenance().contains("9731625"));
    }

    #[test]
    fn variant_model_prices_converters_from_the_parts() {
        let v = hardware_variant(ConverterChoice::Cv8bFast, 4);
        assert_eq!(v.name, "cv-8b-fast");
        assert_eq!(v.dac_bits, 8.0);
        assert!((v.model.dac_sample_j - 0.050 / 14e9).abs() < 1e-24);
        assert!((v.model.adc_result_j - 0.0148 / 10e9).abs() < 1e-24);
        // 10 GS/s ADC: 100 ps/sample × 8 samples per readout.
        assert_eq!(v.model.readout_per_request_ps, 800);
        assert_eq!(v.model.wdm_channels, 4);
    }

    #[test]
    fn eco_pairing_reads_out_slower_but_draws_less() {
        let fast = hardware_variant(ConverterChoice::Cv8bFast, 4);
        let eco = hardware_variant(ConverterChoice::Cv8bEco, 4);
        assert!(eco.model.readout_per_request_ps > fast.model.readout_per_request_ps);
        let fast_w = fast.model.dac_sample_j * 14e9;
        let eco_w = eco.model.dac_sample_j * 5e9;
        assert!(eco_w < fast_w, "eco {eco_w} W !< fast {fast_w} W");
    }

    #[test]
    fn precision_pairing_costs_more_energy_per_operand() {
        let v12 = hardware_variant(ConverterChoice::Cv12bFast, 4);
        let v8 = hardware_variant(ConverterChoice::Cv8bFast, 4);
        assert!(v12.model.dac_sample_j > 3.0 * v8.model.dac_sample_j);
        assert_eq!(v12.dac_bits, 12.0);
        assert_eq!(v12.adc_bits, v8.adc_bits, "same readout ADC");
    }

    #[test]
    fn slow_control_dac_floors_the_weight_write_rate() {
        // A 1 MS/s part cannot write weights faster than 1 µs/element;
        // the variant's reconfig floor must reflect it.
        let tcfg = ComputeTransponderConfig::with_parts(
            &DAC_8B_1M,
            &ADC_8B_10G,
            &CatalogModulator,
            &CatalogLaser,
        );
        let mut model = ServiceModel::from_transponder(&tcfg, 4);
        model.reconfig_per_element_ps = model
            .reconfig_per_element_ps
            .max((1e12 / DacPart::sample_rate_hz(&DAC_8B_1M)).ceil() as u64);
        assert_eq!(model.reconfig_per_element_ps, 1_000_000);
    }
}
