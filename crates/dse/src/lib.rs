//! # ofpc-dse — component library and design-space exploration
//!
//! The paper's evaluation fixes one transponder design point, but its
//! central claims — energy per inference, latency per request, module
//! form-factor fit — all hinge on which converters, modulator, and
//! laser the engine is built from. This crate makes that choice
//! explicit and searchable:
//!
//! 1. [`catalog`] — calibrated converter parts transcribed from
//!    published area/power/precision/sample-rate tables (each entry
//!    carries its provenance), packaged behind the
//!    `ofpc_photonics::parts` traits so the transponder and serving
//!    models accept them wherever they previously hard-coded numbers.
//!    [`catalog::hardware_variant`] turns a converter pairing into the
//!    [`ofpc_graph::HardwareVariant`] the lowerer binds per stage.
//! 2. [`pareto`] — the design-point record and non-dominated-set
//!    marking over (energy, latency, effective bits), grouped per app.
//! 3. [`sweep`] — the E17 harness core: the cartesian sweep over
//!    app × converter × core size × wavelength count, each point lowered
//!    with its variant and priced through the transponder-derived
//!    service model, run deterministically in parallel on `ofpc-par`
//!    (byte-identical results for any worker count).

pub mod catalog;
pub mod pareto;
pub mod sweep;

pub use catalog::{hardware_variant, CatalogAdc, CatalogDac, ConverterChoice};
pub use pareto::{mark_pareto, DesignPoint};
pub use sweep::{run_sweep, App, SweepSpec};
