//! The E17 sweep core: evaluate the app × converter × core ×
//! wavelength design space and mark the Pareto frontier.
//!
//! Each grid point builds its app graph at the given core size, lowers
//! it with the converter pairing's [`HardwareVariant`](ofpc_graph::lower::HardwareVariant) as the sole
//! candidate (ops the variant's resolution cannot clear fall back to
//! the co-located digital platform — the fallback is *part of the
//! price*), then closes the point with the batch makespan, per-request
//! energy, install charge, end-to-end effective bits, and the
//! form-factor budget of a module built from those parts. Evaluation is
//! closed-form arithmetic over the service model — no event loop — so
//! the whole space prices in milliseconds, and `ofpc-par` keeps the
//! result vector byte-identical for any worker count.

use crate::catalog::{hardware_variant, CatalogLaser, CatalogModulator, ConverterChoice};
use crate::pareto::{mark_pareto, DesignPoint};
use ofpc_apps::digital::ComputeModel;
use ofpc_graph::ir::{correlation_graph, pattern_match_graph};
use ofpc_graph::{dnn_graph, lower, ErrorBudget, LowerConfig, Target, WorkGraph};
use ofpc_par::sweep::run_scenarios;
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_transponder::energy::{check_budget, compute_blocks_with, FormFactor};

/// A Table-1 application family, parameterized by core size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// MLP inference: hidden layers need 3.5 bits, the output layer
    /// 7.2 — the spread that forces per-stage variant escalation.
    Dnn,
    /// Sliding-window correlation detection at 4.0 bits.
    Correlation,
    /// Preamble-style pattern matching at 3.0 bits.
    PatternMatch,
}

impl App {
    pub fn name(self) -> &'static str {
        match self {
            App::Dnn => "dnn",
            App::Correlation => "correlation",
            App::PatternMatch => "pattern-match",
        }
    }

    /// Build the app's work graph at `core` (the MVM width / pattern
    /// scale unit). Graph *structure* is a pure function of `core`;
    /// `seed` only draws the DNN weights, which costing never reads.
    pub fn build(self, core: usize, seed: u64) -> WorkGraph {
        match self {
            App::Dnn => {
                let mut rng = SimRng::seed_from_u64(seed);
                let mlp = ofpc_engine::dnn::Mlp::new_random(
                    &[core, core, core, (core / 2).max(1)],
                    &mut rng,
                );
                dnn_graph(&mlp, 3.5, 7.2)
            }
            App::Correlation => correlation_graph(4 * core, core, 4.0),
            App::PatternMatch => pattern_match_graph(8 * core, 3.0),
        }
    }
}

/// The sweep grid and its fixed evaluation parameters.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub apps: Vec<App>,
    pub converters: Vec<ConverterChoice>,
    pub core_sizes: Vec<usize>,
    pub wavelength_counts: Vec<usize>,
    /// Requests per batch when computing the makespan axis.
    pub requests: usize,
    /// Base seed; per-point seeds are split deterministically.
    pub seed: u64,
}

impl SweepSpec {
    /// The full E17 space: 3 apps × 3 converters × 3 cores × 2
    /// wavelength counts = 54 points.
    pub fn e17() -> Self {
        SweepSpec {
            apps: vec![App::Dnn, App::Correlation, App::PatternMatch],
            converters: ConverterChoice::ALL.to_vec(),
            core_sizes: vec![8, 16, 32],
            wavelength_counts: vec![4, 8],
            requests: 32,
            seed: 17,
        }
    }

    /// The golden-fixture miniature: 2 apps × 3 converters × 2 cores ×
    /// 2 wavelength counts = 24 points at a smaller batch.
    pub fn mini() -> Self {
        SweepSpec {
            apps: vec![App::Dnn, App::Correlation],
            converters: ConverterChoice::ALL.to_vec(),
            core_sizes: vec![8, 16],
            wavelength_counts: vec![4, 8],
            requests: 8,
            seed: 17,
        }
    }

    /// The grid in canonical nested order (apps outermost, wavelengths
    /// innermost) — the order results come back in.
    pub fn grid(&self) -> Vec<(App, ConverterChoice, usize, usize)> {
        let mut g = Vec::new();
        for &app in &self.apps {
            for &conv in &self.converters {
                for &core in &self.core_sizes {
                    for &wl in &self.wavelength_counts {
                        g.push((app, conv, core, wl));
                    }
                }
            }
        }
        g
    }
}

/// Price one design point.
fn evaluate_point(
    app: App,
    conv: ConverterChoice,
    core: usize,
    wl: usize,
    requests: usize,
    seed: u64,
) -> DesignPoint {
    let variant = hardware_variant(conv, wl);
    let graph = app.build(core, seed);
    let cfg = LowerConfig {
        budget: ErrorBudget::realistic(),
        model: variant.model.clone(),
        digital: ComputeModel::edge_soc(),
        variants: vec![variant.clone()],
    };
    let plan = lower(&graph, &cfg).expect("sweep graphs are valid DAGs");

    // Batch makespan: photonic stages stream the batch with weights
    // pinned (install is charged separately); digital stages serialize.
    let mut latency_ps = 0u64;
    for s in &plan.stages {
        match s.class {
            Some(class) => {
                let (ps, _) = variant.model.batch_service(class, requests, Some(class));
                latency_ps += ps;
            }
            None => latency_ps += s.service_ps * requests as u64,
        }
    }

    let blocks = compute_blocks_with(&conv.dac(), &conv.adc(), &CatalogModulator, &CatalogLaser);
    let budget = check_budget(&blocks, FormFactor::Osfp);

    DesignPoint {
        app: app.name().to_string(),
        converter: conv.name().to_string(),
        core_size: core,
        wavelengths: wl,
        energy_per_request_j: plan.energy_per_request_j(),
        latency_ps,
        install_ps: plan.total_reconfig_ps(),
        effective_bits: plan.min_photonic_bits().unwrap_or(16.0),
        photonic_stages: plan.photonic_stage_count(),
        digital_stages: plan
            .stages
            .iter()
            .filter(|s| s.target == Target::Digital)
            .count(),
        variants_used: plan.variants_used(),
        module_power_w: budget.total_power_w,
        module_area_mm2: budget.total_area_mm2,
        fits_osfp: budget.fits,
        pareto: false,
    }
}

/// Run the sweep across `pool` and mark the per-app Pareto frontier.
/// Results come back in [`SweepSpec::grid`] order for every worker
/// count — the byte-identity contract `tests/dse.rs` pins.
pub fn run_sweep(pool: &WorkerPool, spec: &SweepSpec) -> Vec<DesignPoint> {
    let requests = spec.requests;
    let mut points = run_scenarios(
        pool,
        spec.seed,
        spec.grid(),
        |_, seed, (app, conv, core, wl)| evaluate_point(app, conv, core, wl, requests, seed),
    );
    mark_pareto(&mut points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_sweep_covers_its_grid() {
        let pts = run_sweep(&WorkerPool::sequential(), &SweepSpec::mini());
        assert_eq!(pts.len(), 24);
        // Grid order: first point is the first tuple of the nested loops.
        assert_eq!(pts[0].app, "dnn");
        assert_eq!(pts[0].converter, "cv-12b-fast");
        assert_eq!(pts[0].core_size, 8);
        assert_eq!(pts[0].wavelengths, 4);
    }

    #[test]
    fn e17_space_meets_the_acceptance_floor() {
        let spec = SweepSpec::e17();
        assert!(spec.converters.len() >= 3);
        assert!(spec.core_sizes.len() >= 3);
        assert!(spec.wavelength_counts.len() >= 2);
        assert_eq!(spec.grid().len(), 54);
    }

    #[test]
    fn every_app_keeps_a_nonempty_frontier() {
        let pts = run_sweep(&WorkerPool::sequential(), &SweepSpec::mini());
        for app in ["dnn", "correlation"] {
            assert!(
                pts.iter().any(|p| p.app == app && p.pareto),
                "no frontier point for {app}"
            );
        }
    }

    #[test]
    fn more_wavelengths_never_slow_the_batch() {
        let pts = run_sweep(&WorkerPool::sequential(), &SweepSpec::mini());
        for p4 in pts.iter().filter(|p| p.wavelengths == 4) {
            let p8 = pts
                .iter()
                .find(|p| {
                    p.wavelengths == 8
                        && p.app == p4.app
                        && p.converter == p4.converter
                        && p.core_size == p4.core_size
                })
                .expect("paired point");
            assert!(p8.latency_ps <= p4.latency_ps, "{p4:?} vs {p8:?}");
        }
    }

    #[test]
    fn twelve_bit_variant_buys_bits_for_energy_on_dnn() {
        let pts = run_sweep(&WorkerPool::sequential(), &SweepSpec::mini());
        let p12 = pts
            .iter()
            .find(|p| p.app == "dnn" && p.converter == "cv-12b-fast" && p.core_size == 16)
            .unwrap();
        let p8 = pts
            .iter()
            .find(|p| p.app == "dnn" && p.converter == "cv-8b-fast" && p.core_size == 16)
            .unwrap();
        assert!(p12.effective_bits > p8.effective_bits);
        // The 12-bit pairing keeps the whole DNN photonic; the 8-bit
        // pairing cannot clear the 7.2-bit output layer and pays a
        // digital fallback stage instead.
        assert_eq!(p12.variants_used, vec!["cv-12b-fast"]);
        assert_eq!(p12.digital_stages, 0);
        assert!(p8.digital_stages >= 1);
    }
}
