//! Region partition of a WAN topology.
//!
//! A [`RegionMap`] is the static part of sharding: which node belongs
//! to which region. It is built from a plain per-node assignment (as
//! produced by `ofpc_core::topo::multi_region`, or any clustering), so
//! this crate stays independent of how regions were drawn.

use ofpc_net::NodeId;

/// Node → region assignment plus the inverse (region → sorted nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    region_of: Vec<u32>,
    nodes_by_region: Vec<Vec<NodeId>>,
}

impl RegionMap {
    /// Build from a per-node region id vector (`region_of[node]`).
    /// Region ids must be dense: every id in `0..max+1` non-empty.
    pub fn from_assignment(region_of: Vec<u32>) -> Self {
        assert!(!region_of.is_empty(), "empty region assignment");
        let regions = *region_of.iter().max().unwrap() as usize + 1;
        let mut nodes_by_region = vec![Vec::new(); regions];
        for (n, &r) in region_of.iter().enumerate() {
            nodes_by_region[r as usize].push(NodeId(n as u32));
        }
        for (r, nodes) in nodes_by_region.iter().enumerate() {
            assert!(!nodes.is_empty(), "region {r} has no nodes");
        }
        RegionMap {
            region_of,
            nodes_by_region,
        }
    }

    /// Everything in one region — the degenerate (monolithic) map.
    pub fn single(node_count: usize) -> Self {
        RegionMap::from_assignment(vec![0; node_count])
    }

    pub fn region_count(&self) -> usize {
        self.nodes_by_region.len()
    }

    pub fn node_count(&self) -> usize {
        self.region_of.len()
    }

    pub fn region_of(&self, node: NodeId) -> u32 {
        self.region_of[node.0 as usize]
    }

    /// Nodes of a region, ascending by id.
    pub fn nodes(&self, region: u32) -> &[NodeId] {
        &self.nodes_by_region[region as usize]
    }

    /// True iff both endpoints sit in `region` — the link filter for a
    /// shard's intra-region distance matrix.
    pub fn link_in_region(&self, a: NodeId, b: NodeId, region: u32) -> bool {
        self.region_of(a) == region && self.region_of(b) == region
    }

    /// The shard a demand belongs to: `Some(region)` when src and dst
    /// share one, `None` for a cross-region (boundary) demand.
    pub fn demand_region(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        let r = self.region_of(src);
        (self.region_of(dst) == r).then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_round_trips() {
        let map = RegionMap::from_assignment(vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(map.region_count(), 3);
        assert_eq!(map.node_count(), 6);
        assert_eq!(map.nodes(1), &[NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(map.region_of(NodeId(5)), 2);
    }

    #[test]
    fn demand_classification() {
        let map = RegionMap::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(map.demand_region(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(map.demand_region(NodeId(2), NodeId(3)), Some(1));
        assert_eq!(map.demand_region(NodeId(1), NodeId(2)), None);
        assert!(map.link_in_region(NodeId(2), NodeId(3), 1));
        assert!(!map.link_in_region(NodeId(1), NodeId(2), 0));
    }

    #[test]
    fn single_region_is_monolithic() {
        let map = RegionMap::single(4);
        assert_eq!(map.region_count(), 1);
        assert_eq!(map.demand_region(NodeId(0), NodeId(3)), Some(0));
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn sparse_region_ids_rejected() {
        RegionMap::from_assignment(vec![0, 2]);
    }
}
