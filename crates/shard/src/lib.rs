//! # ofpc-shard — region-sharded incremental allocation
//!
//! The monolithic controller (ofpc-controller) re-solves the whole WAN
//! on every change; E6 shows that wall hit well before 100 sites. This
//! crate scales the §3 control loop to 10–100x-fig1 topologies by
//! exploiting their structure: a multi-region WAN (see
//! `ofpc_core::topo`) keeps most demands inside one metro region, so
//! the allocation problem decomposes into per-region *shards* plus a
//! thin cross-region *boundary* layer.
//!
//! Three ideas, one correctness contract:
//!
//! * **Sharding** ([`region`]) — each region solves its local demands
//!   against its own capacity, on its own cached distance matrix
//!   (routes restricted to intra-region links). Shards touch disjoint
//!   node sets, so they solve in parallel on the deterministic
//!   ofpc-par pool with no coordination.
//! * **Incrementality** ([`incremental`]) — events (arrive / depart /
//!   link cut / site fail and their repairs) mark only the affected
//!   shards dirty, and within a shard only the suffix of the id-ordered
//!   greedy that can have changed. Caches (distance matrices, option
//!   lists) invalidate on exactly the events that change their inputs.
//! * **Boundary reconciliation** — cross-region demands allocate from
//!   the *residual* capacity after every local pass, in one sequential
//!   id-ordered sweep. Locals have strict priority; the boundary sweep
//!   reruns only when some local placement actually moved (or the
//!   global graph changed), and is skipped when provably identical.
//!
//! The contract, enforced by `tests/shard.rs` differentially and by a
//! 10k-event churn property test: after **every** event, the
//! incremental state is byte-identical to a from-scratch
//! [`ShardedController::full_resolve`] — and identical across 1, 2, and
//! 8 workers. Incrementality is a pure optimization, never a semantic.

pub mod incremental;
pub mod region;

pub use incremental::{EventOutcome, ShardEvent, ShardedController};
pub use region::RegionMap;
