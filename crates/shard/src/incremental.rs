//! The sharded incremental controller.
//!
//! ## Allocation model
//!
//! Demands are **id-ordered**: demand `i`'s placement depends only on
//! demands with smaller ids (first-fit over its cost-sorted option
//! list, like [`ofpc_controller::greedy::solve_greedy_ordered`]). That
//! discipline is what makes incrementality provable — an arrival (the
//! highest id so far) is a pure append, and a departure invalidates
//! only the id-suffix after it.
//!
//! A demand whose src and dst share a region is **local**: its options
//! route over intra-region links only and place on in-region compute
//! sites, so each region's locals form an independent subproblem over
//! a disjoint node set — solved in parallel on the ofpc-par pool.
//! Cross-region demands are **boundary**: they route over the full
//! up-graph, place anywhere, and allocate from the *residual* capacity
//! after the local passes, in one sequential id-ordered sweep (locals
//! have strict priority).
//!
//! ## Caches and their invalidation
//!
//! | cache | recomputed when |
//! |---|---|
//! | shard distance matrix | an intra-region link of that shard flips |
//! | shard compute-site set | a site of that shard flips |
//! | global distance matrix | any link flips |
//! | global compute-site set | any site flips |
//! | a demand's option list | its matrix or site set was recomputed |
//!
//! `Full` shard work recomputes matrix, sites, options *and* all local
//! placements unconditionally, so the incremental state after any event
//! batch is definitionally equal to a from-scratch [`ShardedController::full_resolve`]
//! — the property `tests/shard.rs` checks differentially at every step.

use std::collections::{BTreeMap, BTreeSet};

use ofpc_controller::{options_from_matrix, AllocOption, Demand};
use ofpc_net::routing::{distance_matrix, shortest_paths_filtered};
use ofpc_net::{LinkId, NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_telemetry::{track, Telemetry};

use crate::region::RegionMap;

type Matrix = Vec<Vec<Option<u64>>>;

/// A state-change event the controller re-plans around.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardEvent {
    /// A new demand arrives. Ids must be strictly increasing across the
    /// controller's lifetime (the id-ordered discipline needs arrivals
    /// to be appends).
    Arrive(Demand),
    /// A live demand leaves and releases its slots.
    Depart(u32),
    CutLink(LinkId),
    RepairLink(LinkId),
    FailSite(NodeId),
    RepairSite(NodeId),
}

/// What one `apply_batch` did, as a diff of demand placements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventOutcome {
    /// Arrivals in this batch that got a placement.
    pub admitted: Vec<u32>,
    /// Arrivals explicitly rejected (tracked, retried on later events).
    pub rejected: Vec<u32>,
    /// Pre-existing demands that lost their placement (Some → None).
    pub displaced: Vec<u32>,
    /// Pre-existing demands moved to a different placement.
    pub replanned: Vec<u32>,
    /// Previously rejected demands that now fit (None → Some).
    pub revived: Vec<u32>,
    /// Shards that re-solved (region ids, ascending).
    pub resolved_shards: Vec<u32>,
    /// Whether the boundary reconciliation sweep reran.
    pub boundary_rerun: bool,
}

/// Per-shard re-plan scope, merged across a batch (`Full` wins; two
/// suffixes merge to the smaller start id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Work {
    /// Re-place demands with id ≥ the given id; caches stay valid.
    From(u32),
    /// Recompute matrix, sites, options, and all placements.
    Full,
}

fn merge_work(a: Option<Work>, b: Work) -> Work {
    match (a, b) {
        (None, w) => w,
        (Some(Work::Full), _) | (_, Work::Full) => Work::Full,
        (Some(Work::From(x)), Work::From(y)) => Work::From(x.min(y)),
    }
}

#[derive(Debug, Clone)]
struct DemandEntry {
    demand: Demand,
    /// Cost-sorted candidate placements (cache; see module table).
    options: Vec<AllocOption>,
    /// Chosen option index, or `None` when rejected.
    choice: Option<usize>,
    /// `Some(region)` for a local demand, `None` for boundary.
    shard: Option<u32>,
}

impl DemandEntry {
    fn placement(&self) -> Option<&[NodeId]> {
        self.choice.map(|o| self.options[o].placement.as_slice())
    }
}

#[derive(Debug, Clone, Default)]
struct Shard {
    /// Intra-region distance matrix: rows populated for region nodes
    /// only, routes restricted to up links with both endpoints inside.
    dist: Option<Matrix>,
    /// In-region compute sites that are up and have slots installed.
    sites: Vec<NodeId>,
}

/// Dirty-set accumulated by events, drained by the settle pass.
#[derive(Debug, Clone, Default)]
struct DirtySet {
    shards: BTreeMap<u32, Work>,
    /// Re-enumerate every boundary option list and rerun the sweep.
    boundary_full: bool,
    /// Rerun the boundary sweep from this id (placed departures and
    /// arrivals); subsumed by `boundary_full`.
    boundary_from: Option<u32>,
    global_dist: bool,
    global_sites: bool,
}

impl DirtySet {
    fn is_clean(&self) -> bool {
        self.shards.is_empty()
            && !self.boundary_full
            && self.boundary_from.is_none()
            && !self.global_dist
            && !self.global_sites
    }
}

/// Result one worker returns for one dirty shard.
struct ShardResult {
    region: u32,
    dist: Option<Matrix>,
    sites: Option<Vec<NodeId>>,
    options: Vec<(u32, Vec<AllocOption>)>,
    choices: Vec<(u32, Option<usize>)>,
}

/// The sharded incremental controller (see module docs).
#[derive(Debug, Clone)]
pub struct ShardedController {
    topo: Topology,
    regions: RegionMap,
    /// Installed slots per node (heartbeat-free capacity, as from
    /// [`ofpc_controller::TransponderInventory::total_vector`]).
    capacity: Vec<usize>,
    link_up: Vec<bool>,
    site_up: Vec<bool>,
    max_options: usize,
    demands: BTreeMap<u32, DemandEntry>,
    shards: Vec<Shard>,
    global_dist: Option<Matrix>,
    global_sites: Vec<NodeId>,
    dirty: DirtySet,
    /// Smallest id the next arrival may carry.
    next_id_min: u32,
    pool: WorkerPool,
    tel: Telemetry,
    /// Decision sequence number, the time axis of SHARD-track spans.
    seq: u64,
}

impl ShardedController {
    pub fn new(
        topo: Topology,
        regions: RegionMap,
        capacity: Vec<usize>,
        max_options: usize,
    ) -> Self {
        assert_eq!(regions.node_count(), topo.node_count());
        assert_eq!(capacity.len(), topo.node_count());
        let n = topo.node_count();
        let links = topo.link_count();
        let shard_count = regions.region_count();
        let mut ctl = ShardedController {
            topo,
            regions,
            capacity,
            link_up: vec![true; links],
            site_up: vec![true; n],
            max_options,
            demands: BTreeMap::new(),
            shards: vec![Shard::default(); shard_count],
            global_dist: None,
            global_sites: Vec::new(),
            dirty: DirtySet::default(),
            next_id_min: 0,
            pool: WorkerPool::sequential(),
            tel: Telemetry::disabled(),
            seq: 0,
        };
        for r in 0..shard_count as u32 {
            ctl.shards[r as usize].sites = ctl.shard_sites(r);
        }
        ctl.global_sites = ctl.up_sites();
        ctl
    }

    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self
    }

    // ----- read-side accessors ------------------------------------------

    /// Current placement of every live demand (None = rejected).
    pub fn placements(&self) -> BTreeMap<u32, Option<Vec<NodeId>>> {
        self.demands
            .iter()
            .map(|(&id, e)| (id, e.placement().map(|p| p.to_vec())))
            .collect()
    }

    pub fn live_count(&self) -> usize {
        self.demands.len()
    }

    /// Live demands in id order (for TE-plan generation and audits).
    pub fn live_demands(&self) -> Vec<Demand> {
        self.demands.values().map(|e| e.demand.clone()).collect()
    }

    pub fn satisfied_count(&self) -> usize {
        self.demands.values().filter(|e| e.choice.is_some()).count()
    }

    /// Same packing as [`ofpc_controller::score`]: satisfied demands
    /// dominate, cheaper placements break ties.
    pub fn objective(&self) -> f64 {
        let mut score = 0.0;
        for e in self.demands.values() {
            if let Some(o) = e.choice {
                score += 1e9 - e.options[o].cost;
            }
        }
        score
    }

    /// True for a cross-region demand.
    pub fn is_boundary(&self, id: u32) -> Option<bool> {
        self.demands.get(&id).map(|e| e.shard.is_none())
    }

    pub fn region_map(&self) -> &RegionMap {
        &self.regions
    }

    /// Shards currently marked dirty (0 after every `apply_batch`).
    pub fn dirty_shard_count(&self) -> usize {
        self.dirty.shards.len()
    }

    // ----- internal pure helpers ----------------------------------------

    fn eff_capacity(&self) -> Vec<usize> {
        (0..self.capacity.len())
            .map(|n| if self.site_up[n] { self.capacity[n] } else { 0 })
            .collect()
    }

    fn shard_sites(&self, region: u32) -> Vec<NodeId> {
        self.regions
            .nodes(region)
            .iter()
            .copied()
            .filter(|n| self.site_up[n.0 as usize] && self.capacity[n.0 as usize] > 0)
            .collect()
    }

    fn up_sites(&self) -> Vec<NodeId> {
        (0..self.capacity.len())
            .filter(|&n| self.site_up[n] && self.capacity[n] > 0)
            .map(|n| NodeId(n as u32))
            .collect()
    }

    /// Local slot usage per node, from current local placements.
    fn local_used(&self) -> Vec<usize> {
        let mut used = vec![0usize; self.capacity.len()];
        for e in self.demands.values() {
            if e.shard.is_some() {
                if let Some(p) = e.placement() {
                    for n in p {
                        used[n.0 as usize] += 1;
                    }
                }
            }
        }
        used
    }

    /// Ids of one shard's local demands, ascending.
    fn local_ids(&self, region: u32) -> Vec<u32> {
        self.demands
            .iter()
            .filter(|(_, e)| e.shard == Some(region))
            .map(|(&id, _)| id)
            .collect()
    }

    fn boundary_ids(&self) -> Vec<u32> {
        self.demands
            .iter()
            .filter(|(_, e)| e.shard.is_none())
            .map(|(&id, _)| id)
            .collect()
    }

    // ----- event intake -------------------------------------------------

    /// Apply one event; equivalent to a singleton [`Self::apply_batch`].
    pub fn apply(&mut self, event: ShardEvent) -> EventOutcome {
        self.apply_batch(vec![event])
    }

    /// Apply a batch of events, then settle: re-solve exactly the dirty
    /// shards (in parallel) and reconcile the boundary sweep. Batching
    /// lets a correlated fault burst dirty several shards and pay one
    /// parallel settle instead of many sequential ones.
    pub fn apply_batch(&mut self, events: Vec<ShardEvent>) -> EventOutcome {
        let before: BTreeMap<u32, Option<Vec<NodeId>>> = self.placements();
        let pre_local_used = self.local_used();
        let mut arrivals: Vec<u32> = Vec::new();

        for event in events {
            match event {
                ShardEvent::Arrive(demand) => {
                    let id = demand.id.0;
                    assert!(
                        id >= self.next_id_min,
                        "arrival ids must be strictly increasing (got {id}, expected >= {})",
                        self.next_id_min
                    );
                    self.next_id_min = id + 1;
                    let shard = self.regions.demand_region(demand.src, demand.dst);
                    self.demands.insert(
                        id,
                        DemandEntry {
                            demand,
                            options: Vec::new(), // enumerated at settle
                            choice: None,
                            shard,
                        },
                    );
                    arrivals.push(id);
                    match shard {
                        Some(r) => {
                            let w = merge_work(self.dirty.shards.get(&r).copied(), Work::From(id));
                            self.dirty.shards.insert(r, w);
                        }
                        None => {
                            self.dirty.boundary_from =
                                Some(self.dirty.boundary_from.map_or(id, |x| x.min(id)));
                        }
                    }
                }
                ShardEvent::Depart(id) => {
                    let entry = self
                        .demands
                        .remove(&id)
                        .unwrap_or_else(|| panic!("departure of unknown demand {id}"));
                    // An unplaced demand consumed nothing; removing it
                    // cannot change any other id-ordered decision.
                    if entry.choice.is_none() {
                        continue;
                    }
                    match entry.shard {
                        Some(r) => {
                            let w = merge_work(self.dirty.shards.get(&r).copied(), Work::From(id));
                            self.dirty.shards.insert(r, w);
                        }
                        None => {
                            self.dirty.boundary_from =
                                Some(self.dirty.boundary_from.map_or(id, |x| x.min(id)));
                        }
                    }
                }
                ShardEvent::CutLink(l) => self.flip_link(l, false),
                ShardEvent::RepairLink(l) => self.flip_link(l, true),
                ShardEvent::FailSite(n) => self.flip_site(n, false),
                ShardEvent::RepairSite(n) => self.flip_site(n, true),
            }
        }

        let (resolved_shards, boundary_rerun) = self.settle(&arrivals, &pre_local_used);
        self.diff_outcome(&before, &arrivals, resolved_shards, boundary_rerun)
    }

    fn flip_link(&mut self, l: LinkId, up: bool) {
        if self.link_up[l.0 as usize] == up {
            return; // no-op flip
        }
        self.link_up[l.0 as usize] = up;
        let link = &self.topo.links[l.0 as usize];
        let (ra, rb) = (
            self.regions.region_of(link.a),
            self.regions.region_of(link.b),
        );
        if ra == rb {
            self.dirty.shards.insert(ra, Work::Full);
        }
        // Any link flip can reroute cross-region paths.
        self.dirty.global_dist = true;
        self.dirty.boundary_full = true;
    }

    fn flip_site(&mut self, n: NodeId, up: bool) {
        if self.site_up[n.0 as usize] == up {
            return;
        }
        self.site_up[n.0 as usize] = up;
        self.dirty
            .shards
            .insert(self.regions.region_of(n), Work::Full);
        self.dirty.global_sites = true;
        self.dirty.boundary_full = true;
    }

    /// Recompute every cache and every placement from scratch. The
    /// incremental path must land on exactly this state after any
    /// event batch — the differential tests' ground truth.
    pub fn full_resolve(&mut self) {
        for r in 0..self.regions.region_count() as u32 {
            self.dirty.shards.insert(r, Work::Full);
        }
        self.dirty.boundary_full = true;
        self.dirty.global_dist = true;
        self.dirty.global_sites = true;
        let pre_local_used = self.local_used();
        self.settle(&[], &pre_local_used);
    }

    // ----- the settle pass ----------------------------------------------

    /// Drain the dirty set: parallel per-shard local re-solves, then the
    /// sequential boundary reconciliation. Returns (resolved shard ids,
    /// whether the boundary sweep reran).
    fn settle(&mut self, arrivals: &[u32], pre_local_used: &[usize]) -> (Vec<u32>, bool) {
        let eff_cap = self.eff_capacity();
        let new_ids: BTreeSet<u32> = arrivals.iter().copied().collect();

        // Phase 1: dirty shards in parallel. Workers read shared state
        // and return replacement caches + choices; merging is ordered.
        let tasks: Vec<(u32, Work, Vec<u32>)> = self
            .dirty
            .shards
            .iter()
            .map(|(&r, &w)| (r, w, self.local_ids(r)))
            .collect();
        let resolved_shards: Vec<u32> = tasks.iter().map(|t| t.0).collect();
        let results: Vec<ShardResult> = {
            let this = &*self;
            let eff_cap = &eff_cap;
            let new_ids = &new_ids;
            this.pool
                .scatter_gather("shard_settle", tasks, move |_, (region, work, ids)| {
                    this.solve_shard(region, work, &ids, new_ids, eff_cap)
                })
        };
        for res in results {
            let shard = &mut self.shards[res.region as usize];
            if let Some(dist) = res.dist {
                shard.dist = Some(dist);
            }
            if let Some(sites) = res.sites {
                shard.sites = sites;
            }
            for (id, options) in res.options {
                self.demands.get_mut(&id).unwrap().options = options;
            }
            for (id, choice) in res.choices {
                self.demands.get_mut(&id).unwrap().choice = choice;
            }
        }
        self.dirty.shards.clear();

        // Phase 2: boundary reconciliation. The sweep's inputs are the
        // residual capacity vector and the boundary option lists; rerun
        // iff either could have changed, else append new arrivals.
        let post_local_used = self.local_used();
        let boundary_ids = self.boundary_ids();
        let residual_changed = post_local_used != *pre_local_used;
        let boundary_full = self.dirty.boundary_full;
        let boundary_from = self.dirty.boundary_from;
        let rerun_full = boundary_full || residual_changed;
        // Refresh global caches regardless of whether the sweep runs —
        // a later settle may consult them without another flip event.
        if self.dirty.global_sites {
            self.global_sites = self.up_sites();
            self.dirty.global_sites = false;
        }
        if self.dirty.global_dist {
            self.global_dist = None;
            self.dirty.global_dist = false;
        }
        self.dirty.boundary_full = false;
        self.dirty.boundary_from = None;
        let run = if !boundary_ids.is_empty() && (rerun_full || boundary_from.is_some()) {
            if self.global_dist.is_none() {
                let up = self.link_up.clone();
                self.global_dist = Some(distance_matrix(&self.topo, &|l: LinkId| up[l.0 as usize]));
            }
            let dist = self.global_dist.as_ref().unwrap();
            let mut fresh: Vec<(u32, Vec<AllocOption>)> = Vec::new();
            for &id in &boundary_ids {
                let e = &self.demands[&id];
                if boundary_full || new_ids.contains(&id) {
                    fresh.push((
                        id,
                        options_from_matrix(&e.demand, dist, &self.global_sites, self.max_options),
                    ));
                }
            }
            for (id, options) in fresh {
                self.demands.get_mut(&id).unwrap().options = options;
            }
            let from = if rerun_full { None } else { boundary_from };
            let mut used = post_local_used.clone();
            let seq: Vec<(u32, &[AllocOption], Option<usize>)> = boundary_ids
                .iter()
                .map(|&id| {
                    let e = &self.demands[&id];
                    (id, e.options.as_slice(), e.choice)
                })
                .collect();
            let choices = place_suffix(&seq, from, &eff_cap, &mut used);
            for (id, choice) in choices {
                self.demands.get_mut(&id).unwrap().choice = choice;
            }
            true
        } else {
            false
        };
        debug_assert!(self.dirty.is_clean());

        self.emit_spans(&resolved_shards, run);
        (resolved_shards, run)
    }

    /// One shard's settle work — a pure function of shared state, safe
    /// to run on any worker.
    fn solve_shard(
        &self,
        region: u32,
        work: Work,
        ids: &[u32],
        new_ids: &BTreeSet<u32>,
        eff_cap: &[usize],
    ) -> ShardResult {
        let shard = &self.shards[region as usize];
        let full = work == Work::Full;
        let need_matrix = full || shard.dist.is_none();
        let dist = if need_matrix {
            Some(self.shard_matrix(region))
        } else {
            None
        };
        let dist_ref = dist.as_ref().or(shard.dist.as_ref()).unwrap();
        let sites = if full {
            Some(self.shard_sites(region))
        } else {
            None
        };
        let sites_ref = sites.as_deref().unwrap_or(&shard.sites);

        // Option lists: everything on Full, arrivals always.
        let mut options: Vec<(u32, Vec<AllocOption>)> = Vec::new();
        for &id in ids {
            if full || new_ids.contains(&id) {
                let e = &self.demands[&id];
                options.push((
                    id,
                    options_from_matrix(&e.demand, dist_ref, sites_ref, self.max_options),
                ));
            }
        }
        let fresh: BTreeMap<u32, &[AllocOption]> =
            options.iter().map(|(id, o)| (*id, o.as_slice())).collect();
        let seq: Vec<(u32, &[AllocOption], Option<usize>)> = ids
            .iter()
            .map(|&id| {
                let e = &self.demands[&id];
                let opts = fresh.get(&id).copied().unwrap_or(e.options.as_slice());
                (id, opts, e.choice)
            })
            .collect();
        let from = match work {
            Work::Full => None,
            Work::From(id) => Some(id),
        };
        let mut used = vec![0usize; eff_cap.len()];
        let choices = place_suffix(&seq, from, eff_cap, &mut used);
        ShardResult {
            region,
            dist,
            sites,
            options,
            choices,
        }
    }

    /// Intra-region distance matrix: rows for region nodes, routes over
    /// up links with both endpoints inside the region.
    fn shard_matrix(&self, region: u32) -> Matrix {
        let v = self.topo.node_count();
        let mut dist = vec![vec![None; v]; v];
        let link_ok = |l: LinkId| {
            let link = &self.topo.links[l.0 as usize];
            self.link_up[l.0 as usize] && self.regions.link_in_region(link.a, link.b, region)
        };
        for &n in self.regions.nodes(region) {
            for (m, (d, _)) in shortest_paths_filtered(&self.topo, n, &link_ok) {
                dist[n.0 as usize][m.0 as usize] = Some(d);
            }
        }
        dist
    }

    fn emit_spans(&mut self, resolved: &[u32], boundary_rerun: bool) {
        if !self.tel.is_enabled() {
            return;
        }
        for &r in resolved {
            self.tel.span(
                track::SHARD,
                u64::from(r),
                "shard",
                &format!("replan r{r}"),
                self.seq,
                self.seq + 1,
            );
            self.seq += 1;
        }
        if boundary_rerun {
            self.tel.instant(
                track::SHARD,
                u64::from(self.regions.region_count() as u32),
                "shard",
                "boundary_reconcile",
                self.seq,
                Vec::new(),
            );
            self.seq += 1;
        }
    }

    fn diff_outcome(
        &self,
        before: &BTreeMap<u32, Option<Vec<NodeId>>>,
        arrivals: &[u32],
        resolved_shards: Vec<u32>,
        boundary_rerun: bool,
    ) -> EventOutcome {
        let mut out = EventOutcome {
            resolved_shards,
            boundary_rerun,
            ..EventOutcome::default()
        };
        let new_ids: BTreeSet<u32> = arrivals.iter().copied().collect();
        for (&id, entry) in &self.demands {
            let now = entry.placement();
            if new_ids.contains(&id) {
                if now.is_some() {
                    out.admitted.push(id);
                } else {
                    out.rejected.push(id);
                }
                continue;
            }
            match (before.get(&id).and_then(|p| p.as_deref()), now) {
                (Some(_), None) => out.displaced.push(id),
                (None, Some(_)) => out.revived.push(id),
                (Some(a), Some(b)) if a != b => out.replanned.push(id),
                _ => {}
            }
        }
        out
    }

    // ----- invariant checking -------------------------------------------

    /// Structural invariants the churn property test leans on. Returns
    /// the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut used = vec![0usize; self.capacity.len()];
        for (&id, entry) in &self.demands {
            if let Some(p) = entry.placement() {
                for node in p {
                    let n = node.0 as usize;
                    if !self.site_up[n] {
                        return Err(format!("demand {id} holds a slot on failed site {n}"));
                    }
                    used[n] += 1;
                    if used[n] > self.capacity[n] {
                        return Err(format!("slot double-booked on node {n}"));
                    }
                }
            }
        }
        if !self.dirty.is_clean() {
            return Err("dirty set not cleared after settle".to_string());
        }
        Ok(())
    }
}

/// Id-ordered first-fit over `seq` (ascending by id). Entries before
/// `from` keep their choice and only charge usage; the rest re-place
/// greedily against `cap − used`. `from = None` re-places everything.
fn place_suffix(
    seq: &[(u32, &[AllocOption], Option<usize>)],
    from: Option<u32>,
    cap: &[usize],
    used: &mut [usize],
) -> Vec<(u32, Option<usize>)> {
    let mut out = Vec::with_capacity(seq.len());
    for &(id, options, prev) in seq {
        if from.is_some_and(|f| id < f) {
            if let Some(o) = prev {
                for n in &options[o].placement {
                    used[n.0 as usize] += 1;
                }
            }
            out.push((id, prev));
            continue;
        }
        let mut chosen = None;
        for (o, option) in options.iter().enumerate() {
            if try_place(&option.placement, cap, used) {
                chosen = Some(o);
                break;
            }
        }
        out.push((id, chosen));
    }
    out
}

/// Check a placement against residual capacity (with per-node
/// multiplicity — chains may revisit a site) and commit it if it fits.
fn try_place(placement: &[NodeId], cap: &[usize], used: &mut [usize]) -> bool {
    let mut need: BTreeMap<usize, usize> = BTreeMap::new();
    for n in placement {
        *need.entry(n.0 as usize).or_insert(0) += 1;
    }
    if need.iter().any(|(&n, &k)| used[n] + k > cap[n]) {
        return false;
    }
    for (&n, &k) in &need {
        used[n] += k;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_controller::TaskDag;
    use ofpc_engine::Primitive;

    fn demand(id: u32, src: u32, dst: u32) -> Demand {
        Demand::new(
            id,
            NodeId(src),
            NodeId(dst),
            TaskDag::single(Primitive::VectorDotProduct),
        )
    }

    /// Two 3-node regions joined 2–3; compute sites at 1 and 4.
    fn two_region_ctl() -> ShardedController {
        let topo = Topology::line(6, 100.0);
        let regions = RegionMap::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let capacity = vec![0, 2, 0, 0, 2, 0];
        ShardedController::new(topo, regions, capacity, 8)
    }

    #[test]
    fn local_arrival_places_in_region() {
        let mut ctl = two_region_ctl();
        let out = ctl.apply(ShardEvent::Arrive(demand(0, 0, 2)));
        assert_eq!(out.admitted, vec![0]);
        assert_eq!(out.resolved_shards, vec![0]);
        assert!(!out.boundary_rerun);
        assert_eq!(
            ctl.placements().get(&0).unwrap().as_deref(),
            Some(&[NodeId(1)][..])
        );
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn boundary_arrival_uses_residual_capacity() {
        let mut ctl = two_region_ctl();
        ctl.apply(ShardEvent::Arrive(demand(0, 0, 2)));
        let out = ctl.apply(ShardEvent::Arrive(demand(1, 0, 5)));
        assert_eq!(out.admitted, vec![1]);
        assert!(out.boundary_rerun);
        assert_eq!(ctl.is_boundary(1), Some(true));
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn departure_revives_rejected_demand() {
        let mut ctl = two_region_ctl();
        // Fill region 0's two slots, then oversubscribe.
        ctl.apply(ShardEvent::Arrive(demand(0, 0, 2)));
        ctl.apply(ShardEvent::Arrive(demand(1, 0, 2)));
        let out = ctl.apply(ShardEvent::Arrive(demand(2, 0, 2)));
        assert_eq!(out.rejected, vec![2]);
        let out = ctl.apply(ShardEvent::Depart(0));
        assert_eq!(out.revived, vec![2]);
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn site_failure_displaces_and_repair_revives() {
        let mut ctl = two_region_ctl();
        ctl.apply(ShardEvent::Arrive(demand(0, 3, 5)));
        let out = ctl.apply(ShardEvent::FailSite(NodeId(4)));
        assert_eq!(out.displaced, vec![0]);
        ctl.check_invariants().unwrap();
        let out = ctl.apply(ShardEvent::RepairSite(NodeId(4)));
        assert_eq!(out.revived, vec![0]);
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn incremental_matches_full_resolve() {
        let mut ctl = two_region_ctl();
        let events = vec![
            ShardEvent::Arrive(demand(0, 0, 2)),
            ShardEvent::Arrive(demand(1, 0, 5)),
            ShardEvent::Arrive(demand(2, 3, 5)),
            ShardEvent::CutLink(LinkId(1)),
            ShardEvent::Arrive(demand(3, 1, 2)),
            ShardEvent::Depart(1),
            ShardEvent::RepairLink(LinkId(1)),
        ];
        for ev in events {
            ctl.apply(ev);
            let mut scratch = ctl.clone();
            scratch.full_resolve();
            assert_eq!(ctl.placements(), scratch.placements());
            ctl.check_invariants().unwrap();
        }
    }

    #[test]
    fn batch_equals_event_at_a_time_state() {
        let events = vec![
            ShardEvent::Arrive(demand(0, 0, 2)),
            ShardEvent::Arrive(demand(1, 3, 5)),
            ShardEvent::CutLink(LinkId(4)),
            ShardEvent::Arrive(demand(2, 0, 4)),
        ];
        let mut batched = two_region_ctl();
        batched.apply_batch(events.clone());
        let mut seq = two_region_ctl();
        for ev in events {
            seq.apply(ev);
        }
        assert_eq!(batched.placements(), seq.placements());
    }

    #[test]
    fn worker_count_does_not_change_placements() {
        let events: Vec<ShardEvent> = (0..12)
            .map(|i| ShardEvent::Arrive(demand(i, (i % 3) * 3 % 6, (i % 3) * 3 % 6 + 2)))
            .collect();
        let run = |workers: usize| {
            let mut ctl = two_region_ctl().with_pool(WorkerPool::new(workers));
            for ev in events.clone() {
                ctl.apply(ev);
            }
            ctl.placements()
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_arrival_panics() {
        let mut ctl = two_region_ctl();
        ctl.apply(ShardEvent::Arrive(demand(5, 0, 2)));
        ctl.apply(ShardEvent::Arrive(demand(3, 0, 2)));
    }
}
