//! Transponder inventory and status tracking.
//!
//! §3: the controller must "continuously track the status of all the
//! photonic compute transponders".
//! The inventory holds, per site, the installed transponder count, what
//! each slot currently runs (primitive, op id, config version), and a
//! last-heard heartbeat so stale devices age out of allocations.

use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Status of one transponder slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotStatus {
    /// Powered and transit-only.
    Idle,
    /// Serving an operation.
    Active {
        primitive: Primitive,
        op_id: u16,
        version: u64,
    },
    /// Mid-reconfiguration.
    Reconfiguring { version: u64 },
}

/// One transponder slot record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    pub status: SlotStatus,
    /// Last heartbeat time, ps.
    pub last_heard_ps: u64,
}

/// The controller's device inventory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransponderInventory {
    slots: HashMap<NodeId, Vec<SlotRecord>>,
    /// Heartbeat staleness threshold, ps.
    pub stale_after_ps: u64,
}

impl TransponderInventory {
    pub fn new(stale_after_ps: u64) -> Self {
        TransponderInventory {
            slots: HashMap::new(),
            stale_after_ps,
        }
    }

    /// Register `count` transponders at `node` (idle, heard now).
    pub fn register(&mut self, node: NodeId, count: usize, now_ps: u64) {
        let entry = self.slots.entry(node).or_default();
        for _ in 0..count {
            entry.push(SlotRecord {
                status: SlotStatus::Idle,
                last_heard_ps: now_ps,
            });
        }
    }

    /// Record a heartbeat with the slot's self-reported status.
    pub fn heartbeat(&mut self, node: NodeId, slot: usize, status: SlotStatus, now_ps: u64) {
        let records = self
            .slots
            .get_mut(&node)
            .unwrap_or_else(|| panic!("heartbeat from unregistered node {node:?}"));
        assert!(slot < records.len(), "heartbeat from unknown slot {slot}");
        records[slot] = SlotRecord {
            status,
            last_heard_ps: now_ps,
        };
    }

    /// Total registered slots at a node.
    pub fn total_at(&self, node: NodeId) -> usize {
        self.slots.get(&node).map_or(0, |v| v.len())
    }

    /// Slots usable for new allocations at `now_ps`: idle and fresh.
    pub fn available_at(&self, node: NodeId, now_ps: u64) -> usize {
        self.slots.get(&node).map_or(0, |v| {
            v.iter()
                .filter(|r| {
                    matches!(r.status, SlotStatus::Idle)
                        && now_ps.saturating_sub(r.last_heard_ps) <= self.stale_after_ps
                })
                .count()
        })
    }

    /// The `node_slots` vector the option enumerator consumes (available
    /// slots per node over `node_count` nodes).
    pub fn availability_vector(&self, node_count: usize, now_ps: u64) -> Vec<usize> {
        (0..node_count)
            .map(|n| self.available_at(NodeId(n as u32), now_ps))
            .collect()
    }

    /// Installed slots per node over `node_count` nodes, heartbeat
    /// state ignored — the *capacity* vector a sharded controller
    /// partitions by region (availability is then tracked by its own
    /// slot accounting rather than per-heartbeat freshness).
    pub fn total_vector(&self, node_count: usize) -> Vec<usize> {
        (0..node_count)
            .map(|n| self.total_at(NodeId(n as u32)))
            .collect()
    }

    /// Every active (primitive, op_id) across the WAN — what's currently
    /// loaded where.
    pub fn active_ops(&self) -> Vec<(NodeId, Primitive, u16)> {
        let mut out = Vec::new();
        for (&node, records) in &self.slots {
            for r in records {
                if let SlotStatus::Active {
                    primitive, op_id, ..
                } = r.status
                {
                    out.push((node, primitive, op_id));
                }
            }
        }
        out.sort_by_key(|&(n, p, o)| (n, p, o));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: Primitive = Primitive::VectorDotProduct;

    #[test]
    fn register_and_count() {
        let mut inv = TransponderInventory::new(1_000_000);
        inv.register(NodeId(1), 3, 0);
        assert_eq!(inv.total_at(NodeId(1)), 3);
        assert_eq!(inv.available_at(NodeId(1), 0), 3);
        assert_eq!(inv.total_at(NodeId(2)), 0);
    }

    #[test]
    fn active_slots_are_not_available() {
        let mut inv = TransponderInventory::new(1_000_000);
        inv.register(NodeId(1), 2, 0);
        inv.heartbeat(
            NodeId(1),
            0,
            SlotStatus::Active {
                primitive: P1,
                op_id: 5,
                version: 1,
            },
            10,
        );
        assert_eq!(inv.available_at(NodeId(1), 10), 1);
        assert_eq!(inv.active_ops(), vec![(NodeId(1), P1, 5)]);
    }

    #[test]
    fn stale_slots_age_out() {
        let mut inv = TransponderInventory::new(100);
        inv.register(NodeId(0), 1, 0);
        assert_eq!(inv.available_at(NodeId(0), 100), 1);
        assert_eq!(inv.available_at(NodeId(0), 101), 0);
        // A heartbeat refreshes it.
        inv.heartbeat(NodeId(0), 0, SlotStatus::Idle, 150);
        assert_eq!(inv.available_at(NodeId(0), 200), 1);
    }

    #[test]
    fn availability_vector_layout() {
        let mut inv = TransponderInventory::new(1_000);
        inv.register(NodeId(1), 2, 0);
        inv.register(NodeId(3), 1, 0);
        assert_eq!(inv.availability_vector(4, 0), vec![0, 2, 0, 1]);
    }

    #[test]
    fn total_vector_ignores_heartbeat_state() {
        let mut inv = TransponderInventory::new(100);
        inv.register(NodeId(1), 2, 0);
        inv.register(NodeId(3), 1, 0);
        // Stale and active slots still count toward installed capacity.
        inv.heartbeat(
            NodeId(1),
            0,
            SlotStatus::Active {
                primitive: P1,
                op_id: 1,
                version: 1,
            },
            0,
        );
        assert_eq!(inv.total_vector(4), vec![0, 2, 0, 1]);
        assert_eq!(inv.availability_vector(4, 500), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn heartbeat_from_unknown_node_panics() {
        let mut inv = TransponderInventory::new(1_000);
        inv.heartbeat(NodeId(9), 0, SlotStatus::Idle, 0);
    }

    #[test]
    #[should_panic(expected = "unknown slot")]
    fn heartbeat_from_unknown_slot_panics() {
        let mut inv = TransponderInventory::new(1_000);
        inv.register(NodeId(0), 1, 0);
        inv.heartbeat(NodeId(0), 5, SlotStatus::Idle, 0);
    }

    #[test]
    fn reconfiguring_slots_are_unavailable() {
        let mut inv = TransponderInventory::new(1_000);
        inv.register(NodeId(0), 1, 0);
        inv.heartbeat(NodeId(0), 0, SlotStatus::Reconfiguring { version: 2 }, 5);
        assert_eq!(inv.available_at(NodeId(0), 5), 0);
    }
}
