//! Protection switching: precomputed disjoint backup paths,
//! failure-aware slot exclusion, and time-to-recovery accounting.
//!
//! The §3 controller "monitors the network" — this module is what it
//! does when monitoring reports a failure. Ahead of time it precomputes,
//! per protected (src, dst) pair, a primary path and a link-disjoint
//! backup ([`disjoint_pair`]); on a fiber cut the backup is known
//! immediately, without a route computation on the critical path. For
//! engine-site failures, [`surviving_slots`] masks the failed sites out
//! of the slot inventory so the allocator re-runs over survivors only.
//!
//! Recovery time is modeled as three sequential stages —
//! loss-of-light/watchdog **detection**, allocator **re-run**, and the
//! staged per-router **install** of the new `UpdatePlan` (same model as
//! `ofpc_core::protocol::staged_rollout`) — accounted by
//! [`RecoveryParams::timeline`]. The bound in
//! [`RecoveryParams::ttr_bound_ps`] is what experiment E13 checks p99
//! time-to-recovery against.

use ofpc_net::routing::{k_disjoint_paths, k_disjoint_paths_filtered, RoutedPath};
use ofpc_net::{LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A protected (src, dst) pair: the primary path and, when the topology
/// allows one, a link-disjoint backup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedPair {
    pub src: NodeId,
    pub dst: NodeId,
    pub primary_nodes: Vec<NodeId>,
    pub primary_links: Vec<LinkId>,
    /// Link-disjoint backup path, if the topology provides one.
    pub backup_nodes: Option<Vec<NodeId>>,
    pub backup_links: Option<Vec<LinkId>>,
}

/// How a protected pair can actually be protected, given what the
/// topology offers. The serving layers use this to pick a redundancy
/// strategy instead of silently running unprotected when
/// `backup_links` is `None` (tree topologies, degree-1 sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtectionMode {
    /// ≥ 2 link-disjoint paths exist: redundant copies ride different
    /// fibers and any single cut is survivable.
    DisjointMultipath,
    /// Only one path exists: redundant copies must serialize on the
    /// same fibers — engine flaps are survivable, fiber cuts are not.
    SerializedSamePath,
    /// The destination is unreachable outright.
    Unprotected,
}

impl ProtectedPair {
    /// Whether a cut of `link` takes down the primary path.
    pub fn primary_uses(&self, link: LinkId) -> bool {
        self.primary_links.contains(&link)
    }

    /// The strongest protection the topology supports for this pair —
    /// the graceful-degradation classification consumers must act on
    /// (never treat `backup_links: None` as "run unprotected").
    pub fn protection_mode(&self) -> ProtectionMode {
        if self.backup_links.is_some() {
            ProtectionMode::DisjointMultipath
        } else {
            ProtectionMode::SerializedSamePath
        }
    }

    /// The path to use given a set of downed links: primary if intact,
    /// else the backup if *it* is intact, else `None` (recovery falls
    /// back to a full reroute).
    pub fn surviving_path(&self, down: &[LinkId]) -> Option<&[NodeId]> {
        if !self.primary_links.iter().any(|l| down.contains(l)) {
            return Some(&self.primary_nodes);
        }
        match (&self.backup_nodes, &self.backup_links) {
            (Some(nodes), Some(links)) if !links.iter().any(|l| down.contains(l)) => Some(nodes),
            _ => None,
        }
    }
}

/// A (src, dst) pair protected across up to `k` pairwise link-disjoint
/// paths — the k-path generalization of [`ProtectedPair`], used by the
/// proactive multipath layer (`ofpc-resil`) to pin redundant copies of
/// one request to different fibers *before* any fault occurs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedPaths {
    pub src: NodeId,
    pub dst: NodeId,
    /// Pairwise link-disjoint paths, delay-shortest first. Non-empty.
    pub paths: Vec<RoutedPath>,
}

impl ProtectedPaths {
    /// Paths whose links all survive the given downed set, shortest
    /// first (the proactive analogue of `surviving_path`).
    pub fn surviving(&self, down: &[LinkId]) -> Vec<&RoutedPath> {
        self.paths.iter().filter(|p| !p.uses_any(down)).collect()
    }

    /// Link-disjoint path diversity (1 = no redundancy possible).
    pub fn diversity(&self) -> usize {
        self.paths.len()
    }

    /// The protection classification consumers branch on.
    pub fn protection_mode(&self) -> ProtectionMode {
        if self.paths.len() >= 2 {
            ProtectionMode::DisjointMultipath
        } else {
            ProtectionMode::SerializedSamePath
        }
    }
}

/// Precompute up to `k ≥ 1` pairwise link-disjoint paths for
/// (src, dst), shortest first. Returns `None` when `dst` is
/// unreachable.
pub fn protected_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Option<ProtectedPaths> {
    assert!(k >= 1, "need at least one path");
    let paths = k_disjoint_paths(topo, src, dst, k);
    if paths.is_empty() {
        return None;
    }
    Some(ProtectedPaths { src, dst, paths })
}

/// [`protected_paths`] over the links accepted by `link_ok` — the
/// replanning entry point once some fibers are already down.
pub fn protected_paths_filtered(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> Option<ProtectedPaths> {
    assert!(k >= 1, "need at least one path");
    let paths = k_disjoint_paths_filtered(topo, src, dst, k, link_ok);
    if paths.is_empty() {
        return None;
    }
    Some(ProtectedPaths { src, dst, paths })
}

/// Precompute a primary path and link-disjoint backup for (src, dst):
/// primary = delay-shortest path; backup = the next link-disjoint path
/// ([`k_disjoint_paths`] with k = 2). Returns `None` when no path
/// exists at all; `backup_*` are `None` when the pair is not
/// 2-link-connected.
pub fn disjoint_pair(topo: &Topology, src: NodeId, dst: NodeId) -> Option<ProtectedPair> {
    let protected = protected_paths(topo, src, dst, 2)?;
    let mut it = protected.paths.into_iter();
    let primary = it.next().expect("protected_paths is non-empty");
    let backup = it.next();
    Some(ProtectedPair {
        src,
        dst,
        primary_nodes: primary.nodes,
        primary_links: primary.links,
        backup_nodes: backup.as_ref().map(|p| p.nodes.clone()),
        backup_links: backup.map(|p| p.links),
    })
}

/// Precompute protected pairs for many (src, dst) tuples (skipping
/// unreachable ones).
pub fn precompute_protection(topo: &Topology, pairs: &[(NodeId, NodeId)]) -> Vec<ProtectedPair> {
    pairs
        .iter()
        .filter_map(|&(s, d)| disjoint_pair(topo, s, d))
        .collect()
}

/// Slot inventory with failed sites excluded: the allocator input for
/// the re-run after an engine hard-fail (a failed site contributes zero
/// usable transponders until repaired).
pub fn surviving_slots(slots: &[usize], failed: &[NodeId]) -> Vec<usize> {
    slots
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if failed.iter().any(|n| n.0 as usize == i) {
                0
            } else {
                s
            }
        })
        .collect()
}

/// Recovery-stage durations (all picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Fault → detection: loss-of-light at the photodetector or the
    /// watchdog's debounced trip. Default 50 µs (SONET-class LOS
    /// detection is tens of microseconds).
    pub detection_ps: u64,
    /// Detection → new allocation: the controller's solver re-run over
    /// surviving sites. Default 1 ms.
    pub realloc_ps: u64,
    /// Per-router staged install gap for the new plan (§3's "next-hop
    /// updates to all routers", delivered one router at a time).
    /// Default 200 µs per router.
    pub per_router_install_ps: u64,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            detection_ps: 50_000_000,           // 50 µs
            realloc_ps: 1_000_000_000,          // 1 ms
            per_router_install_ps: 200_000_000, // 200 µs
        }
    }
}

/// When each recovery stage completed for one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryTimeline {
    pub fault_at_ps: u64,
    pub detected_at_ps: u64,
    pub reallocated_at_ps: u64,
    /// Last router updated — service is restored from here.
    pub installed_at_ps: u64,
}

impl RecoveryTimeline {
    /// Time to recovery: fault to full re-install.
    pub fn ttr_ps(&self) -> u64 {
        self.installed_at_ps - self.fault_at_ps
    }

    /// The three sequential recovery stages as `(name, start, end)`
    /// picosecond intervals — the shape telemetry traces and reports
    /// consume without re-deriving stage boundaries.
    pub fn stages(&self) -> [(&'static str, u64, u64); 3] {
        [
            ("recovery.detect", self.fault_at_ps, self.detected_at_ps),
            (
                "recovery.realloc",
                self.detected_at_ps,
                self.reallocated_at_ps,
            ),
            (
                "recovery.install",
                self.reallocated_at_ps,
                self.installed_at_ps,
            ),
        ]
    }
}

impl RecoveryParams {
    /// Build the timeline for a fault at `fault_at_ps` whose re-install
    /// touches `routers_updated` routers.
    pub fn timeline(&self, fault_at_ps: u64, routers_updated: usize) -> RecoveryTimeline {
        let detected_at_ps = fault_at_ps + self.detection_ps;
        let reallocated_at_ps = detected_at_ps + self.realloc_ps;
        let installed_at_ps =
            reallocated_at_ps + routers_updated as u64 * self.per_router_install_ps;
        RecoveryTimeline {
            fault_at_ps,
            detected_at_ps,
            reallocated_at_ps,
            installed_at_ps,
        }
    }

    /// Upper bound on TTR for a network of `routers` routers — every
    /// recovery must complete within detection + realloc + full staged
    /// install. E13 asserts measured p99 TTR against this.
    pub fn ttr_bound_ps(&self, routers: usize) -> u64 {
        self.detection_ps + self.realloc_ps + routers as u64 * self.per_router_install_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_a_d_has_disjoint_protection() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let pair = disjoint_pair(&t, a, d).unwrap();
        assert_eq!(pair.primary_nodes.len(), 3);
        let backup = pair.backup_nodes.as_ref().expect("fig1 is 2-connected A→D");
        assert_eq!(backup.len(), 3);
        // Truly link-disjoint.
        let bl = pair.backup_links.as_ref().unwrap();
        assert!(bl.iter().all(|l| !pair.primary_links.contains(l)));
        // Middle hops differ (B vs C).
        assert_ne!(pair.primary_nodes[1], backup[1]);
    }

    #[test]
    fn surviving_path_switches_on_cut() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let pair = disjoint_pair(&t, a, d).unwrap();
        // Intact: primary.
        assert_eq!(pair.surviving_path(&[]), Some(&pair.primary_nodes[..]));
        // Cut the primary's first link: backup takes over.
        let cut = pair.primary_links[0];
        assert!(pair.primary_uses(cut));
        let surviving = pair.surviving_path(&[cut]).expect("backup survives");
        assert_eq!(surviving, &pair.backup_nodes.as_ref().unwrap()[..]);
        // Cut both paths: nothing precomputed survives.
        let mut down = pair.primary_links.clone();
        down.extend(pair.backup_links.as_ref().unwrap());
        assert_eq!(pair.surviving_path(&down), None);
    }

    #[test]
    fn line_topology_has_no_backup() {
        let t = Topology::line(3, 100.0);
        let pair = disjoint_pair(&t, NodeId(0), NodeId(2)).unwrap();
        assert!(pair.backup_nodes.is_none());
        assert_eq!(pair.surviving_path(&[pair.primary_links[0]]), None);
    }

    #[test]
    fn protection_mode_classifies_tree_topologies() {
        // A tree (star) offers no disjoint backup anywhere: the
        // classification must say "serialize on the same path", never
        // silently pretend the pair is protected — and a 2-connected
        // pair must classify as disjoint multipath.
        let mut t = Topology::new();
        let hub = t.add_node("hub");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(hub, a, 10.0);
        t.add_link(hub, b, 10.0);
        let pair = disjoint_pair(&t, a, b).unwrap();
        assert!(pair.backup_links.is_none());
        assert_eq!(pair.protection_mode(), ProtectionMode::SerializedSamePath);
        let paths = protected_paths(&t, a, b, 3).unwrap();
        assert_eq!(paths.diversity(), 1);
        assert_eq!(paths.protection_mode(), ProtectionMode::SerializedSamePath);

        let fig1 = Topology::fig1();
        let fa = fig1.find_node("A").unwrap();
        let fd = fig1.find_node("D").unwrap();
        let pair = disjoint_pair(&fig1, fa, fd).unwrap();
        assert_eq!(pair.protection_mode(), ProtectionMode::DisjointMultipath);
    }

    #[test]
    fn protected_paths_survive_single_cuts() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let p = protected_paths(&t, a, d, 4).unwrap();
        assert_eq!(p.diversity(), 2);
        assert_eq!(p.protection_mode(), ProtectionMode::DisjointMultipath);
        // Any single-link cut leaves at least one path standing.
        for path in &p.paths {
            for &cut in &path.links {
                assert_eq!(p.surviving(&[cut]).len(), 1);
            }
        }
        // Cut one link from each path: nothing survives.
        let down = [p.paths[0].links[0], p.paths[1].links[0]];
        assert!(p.surviving(&down).is_empty());
        // Unreachable pair: no protection at all.
        let mut iso = Topology::new();
        let x = iso.add_node("x");
        let y = iso.add_node("y");
        assert!(protected_paths(&iso, x, y, 2).is_none());
    }

    #[test]
    fn filtered_protection_replans_around_downed_fibers() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let full = protected_paths(&t, a, d, 2).unwrap();
        let down = full.paths[0].links.clone();
        let ok = |l| !down.contains(&l);
        let re = protected_paths_filtered(&t, a, d, 2, &ok).unwrap();
        assert_eq!(re.diversity(), 1, "one fiber route left after the cut");
        assert!(re.paths[0].links.iter().all(|&l| ok(l)));
    }

    #[test]
    fn surviving_slots_masks_failed_sites() {
        let slots = vec![2, 3, 1, 4];
        let out = surviving_slots(&slots, &[NodeId(1), NodeId(3)]);
        assert_eq!(out, vec![2, 0, 1, 0]);
        assert_eq!(surviving_slots(&slots, &[]), slots);
    }

    #[test]
    fn timeline_accounts_stage_by_stage() {
        let p = RecoveryParams {
            detection_ps: 10,
            realloc_ps: 100,
            per_router_install_ps: 5,
        };
        let t = p.timeline(1_000, 4);
        assert_eq!(t.detected_at_ps, 1_010);
        assert_eq!(t.reallocated_at_ps, 1_110);
        assert_eq!(t.installed_at_ps, 1_130);
        assert_eq!(t.ttr_ps(), 130);
        assert!(t.ttr_ps() <= p.ttr_bound_ps(4));
        // Bound is tight at full-network installs.
        assert_eq!(p.ttr_bound_ps(4), 130);
    }

    #[test]
    fn precompute_skips_unreachable_pairs() {
        let mut t = Topology::new();
        let x = t.add_node("x");
        let y = t.add_node("y");
        let z = t.add_node("z");
        t.add_link(x, y, 10.0);
        let pairs = precompute_protection(&t, &[(x, y), (x, z)]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].dst, y);
    }
}
