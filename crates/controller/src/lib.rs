//! # ofpc-controller — the centralized controller
//!
//! The paper's §3 controller: it "continuously track\[s\] the status of all
//! photonic compute transponders and dynamically reconfigure\[s\] them",
//! solving an optimization whose inputs are "photonic computing task
//! dependency graphs (e.g., a computation DAG) and network topology",
//! whose constraints are "the number of transponders at each node", and
//! whose objective is "to satisfy as many compute demands as possible
//! while minimizing the resource utilization of transponders".
//!
//! Module map:
//!
//! * [`demand`] — compute demands with task DAGs, linearized to placement
//!   chains.
//! * [`inventory`] — live transponder status tracking (slots, versions).
//! * [`options`] — candidate enumeration: placement tuples over
//!   compute-capable sites, costed by added latency and slots.
//! * [`ilp`] — exact branch-and-bound over the integer allocation (this
//!   is the §5 scalability wall, measured by experiment E6).
//! * [`lp`] — a dense-tableau simplex solving the LP relaxation, plus
//!   randomized rounding with greedy repair.
//! * [`greedy`] — the cheap baseline allocator.
//! * [`teupdate`] — turning an allocation into per-router dual-field
//!   route updates (§3's "next-hop updates to all routers").
//! * [`protection`] — failure recovery: precomputed link-disjoint backup
//!   paths, failed-site exclusion for allocator re-runs, and
//!   time-to-recovery accounting.

pub mod demand;
pub mod greedy;
pub mod ilp;
pub mod inventory;
pub mod lp;
pub mod options;
pub mod protection;
pub mod teupdate;

pub use demand::{Demand, DemandId, TaskDag};
pub use ilp::solve_exact;
pub use inventory::TransponderInventory;
pub use options::{
    enumerate_options, enumerate_options_filtered, options_from_matrix, AllocOption,
    ProblemInstance,
};
pub use protection::{
    disjoint_pair, protected_paths, protected_paths_filtered, surviving_slots, ProtectedPair,
    ProtectedPaths, ProtectionMode, RecoveryParams, RecoveryTimeline,
};
pub use teupdate::{build_plan_from_placements, ApplyError, ApplyReport, FailedCmd};

/// An allocation: for each demand (by index), the chosen option index
/// into its option list, or `None` if unsatisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    pub choices: Vec<Option<usize>>,
}

impl Allocation {
    pub fn satisfied_count(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }
}

/// Objective value of an allocation: lexicographic (satisfied demands
/// maximized, then total cost minimized), packed into a single
/// comparable score. Cost is bounded per option, so the packing is safe.
pub fn score(instance: &ProblemInstance, alloc: &Allocation) -> f64 {
    let mut satisfied = 0usize;
    let mut cost = 0.0f64;
    for (d, choice) in alloc.choices.iter().enumerate() {
        if let Some(o) = choice {
            satisfied += 1;
            cost += instance.options[d][*o].cost;
        }
    }
    satisfied as f64 * 1e9 - cost
}

/// Validate an allocation against per-node slot capacities.
pub fn is_feasible(instance: &ProblemInstance, alloc: &Allocation) -> bool {
    let mut used = vec![0usize; instance.node_slots.len()];
    for (d, choice) in alloc.choices.iter().enumerate() {
        if let Some(o) = choice {
            for &node in &instance.options[d][*o].placement {
                used[node.0 as usize] += 1;
                if used[node.0 as usize] > instance.node_slots[node.0 as usize] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_net::NodeId;

    fn tiny_instance() -> ProblemInstance {
        // Two demands, one compute site with one slot: only one can win.
        ProblemInstance {
            node_slots: vec![0, 1, 0],
            options: vec![
                vec![AllocOption {
                    placement: vec![NodeId(1)],
                    cost: 1.0,
                    added_latency_ps: 0,
                }],
                vec![AllocOption {
                    placement: vec![NodeId(1)],
                    cost: 2.0,
                    added_latency_ps: 0,
                }],
            ],
        }
    }

    #[test]
    fn feasibility_checks_capacity() {
        let inst = tiny_instance();
        let both = Allocation {
            choices: vec![Some(0), Some(0)],
        };
        assert!(!is_feasible(&inst, &both));
        let one = Allocation {
            choices: vec![Some(0), None],
        };
        assert!(is_feasible(&inst, &one));
        let none = Allocation {
            choices: vec![None, None],
        };
        assert!(is_feasible(&inst, &none));
    }

    #[test]
    fn score_prefers_more_satisfied_then_cheaper() {
        let inst = tiny_instance();
        let a = Allocation {
            choices: vec![Some(0), None],
        };
        let b = Allocation {
            choices: vec![None, Some(0)],
        };
        let none = Allocation {
            choices: vec![None, None],
        };
        assert!(score(&inst, &a) > score(&inst, &none));
        // Same satisfied count: cheaper option wins.
        assert!(score(&inst, &a) > score(&inst, &b));
    }
}
