//! Greedy allocation baseline.
//!
//! The scalable fallback the paper's §5 implies: demands sorted by how
//! constrained they are (fewest options first), each taking its cheapest
//! still-feasible option. Linear in total options; no optimality
//! guarantee — experiment E6 measures its gap against the exact solver.

use crate::options::ProblemInstance;
use crate::Allocation;

/// Greedy allocation report.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedySolution {
    pub allocation: Allocation,
    pub score: f64,
}

/// Run the greedy allocator.
pub fn solve_greedy(instance: &ProblemInstance) -> GreedySolution {
    let n = instance.demand_count();
    let mut order: Vec<usize> = (0..n).collect();
    // Most-constrained demand first; ties by index for determinism.
    order.sort_by_key(|&d| (instance.options[d].len(), d));
    let mut used = vec![0usize; instance.node_slots.len()];
    let mut choices = vec![None; n];
    for d in order {
        for (o, option) in instance.options[d].iter().enumerate() {
            let mut need = std::collections::HashMap::new();
            for &node in &option.placement {
                *need.entry(node.0 as usize).or_insert(0usize) += 1;
            }
            let fits = need
                .iter()
                .all(|(&node, &k)| used[node] + k <= instance.node_slots[node]);
            if fits {
                for (&node, &k) in &need {
                    used[node] += k;
                }
                choices[d] = Some(o);
                break;
            }
        }
    }
    let allocation = Allocation { choices };
    let score = crate::score(instance, &allocation);
    GreedySolution { allocation, score }
}

/// Greedy allocation in **demand order** (index order, not
/// most-constrained-first). This is the discipline the sharded
/// incremental controller uses: because demand `i`'s decision depends
/// only on demands `< i`, a new arrival (which always carries the
/// highest id) is a pure O(options) append, and a departure re-runs
/// only the suffix after the departed demand — neither requires
/// touching earlier decisions. The price is losing the
/// most-constrained-first heuristic; E20 bounds the resulting quality
/// gap against [`solve_greedy`] and the exact solver.
pub fn solve_greedy_ordered(instance: &ProblemInstance) -> GreedySolution {
    let mut used = vec![0usize; instance.node_slots.len()];
    let mut choices = vec![None; instance.demand_count()];
    for (d, options) in instance.options.iter().enumerate() {
        for (o, option) in options.iter().enumerate() {
            let mut need = std::collections::HashMap::new();
            for &node in &option.placement {
                *need.entry(node.0 as usize).or_insert(0usize) += 1;
            }
            let fits = need
                .iter()
                .all(|(&node, &k)| used[node] + k <= instance.node_slots[node]);
            if fits {
                for (&node, &k) in &need {
                    used[node] += k;
                }
                choices[d] = Some(o);
                break;
            }
        }
    }
    let allocation = Allocation { choices };
    let score = crate::score(instance, &allocation);
    GreedySolution { allocation, score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::solve_exact;
    use crate::is_feasible;
    use crate::options::AllocOption;
    use ofpc_net::NodeId;
    use ofpc_photonics::SimRng;

    fn opt(nodes: &[u32], cost: f64) -> AllocOption {
        AllocOption {
            placement: nodes.iter().map(|&n| NodeId(n)).collect(),
            cost,
            added_latency_ps: 0,
        }
    }

    #[test]
    fn satisfies_when_uncontended() {
        let inst = ProblemInstance {
            node_slots: vec![4],
            options: vec![vec![opt(&[0], 1.0)]; 4],
        };
        let sol = solve_greedy(&inst);
        assert_eq!(sol.allocation.satisfied_count(), 4);
        assert!(is_feasible(&inst, &sol.allocation));
    }

    #[test]
    fn most_constrained_first_avoids_starvation() {
        // Demand 0 has two choices, demand 1 only one. Greedy must serve
        // demand 1 first so both fit.
        let inst = ProblemInstance {
            node_slots: vec![1, 1],
            options: vec![vec![opt(&[0], 1.0), opt(&[1], 2.0)], vec![opt(&[0], 1.0)]],
        };
        let sol = solve_greedy(&inst);
        assert_eq!(sol.allocation.satisfied_count(), 2);
    }

    #[test]
    fn greedy_is_never_better_than_exact() {
        let mut rng = SimRng::seed_from_u64(7);
        for trial in 0..20 {
            let nodes = 4;
            let slots = vec![2usize; nodes];
            let demands = 6;
            let options: Vec<Vec<AllocOption>> = (0..demands)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let k = 1 + rng.below(2);
                            let placement: Vec<u32> =
                                (0..k).map(|_| rng.below(nodes) as u32).collect();
                            opt(&placement, 0.5 + rng.uniform() * 3.0)
                        })
                        .collect()
                })
                .collect();
            let mut options = options;
            for opts in &mut options {
                opts.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
            }
            let inst = ProblemInstance {
                node_slots: slots,
                options,
            };
            let greedy = solve_greedy(&inst);
            let exact = solve_exact(&inst, 10_000_000);
            assert!(
                exact.score >= greedy.score - 1e-9,
                "trial {trial}: exact {} < greedy {}",
                exact.score,
                greedy.score
            );
            assert!(is_feasible(&inst, &greedy.allocation));
        }
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // The canonical trap: both demands have equal option counts, so
        // order falls back to index. Demand 0 grabs node 0 (its cheap
        // option), starving demand 1 which *only* fits on node 0 among
        // remaining capacity. Exact search satisfies both.
        let inst = ProblemInstance {
            node_slots: vec![1, 1],
            options: vec![
                vec![opt(&[0], 1.0), opt(&[1], 1.5)],
                vec![opt(&[0], 1.0), opt(&[0], 1.2)],
            ],
        };
        let greedy = solve_greedy(&inst);
        let exact = solve_exact(&inst, 1_000_000);
        assert_eq!(exact.allocation.satisfied_count(), 2);
        assert!(greedy.allocation.satisfied_count() <= 2);
        assert!(exact.score >= greedy.score);
    }

    #[test]
    fn ordered_greedy_is_prefix_stable() {
        // The property the incremental controller leans on: solving a
        // prefix of the demand list yields exactly the prefix of the
        // full solution, so appending a demand never disturbs earlier
        // choices.
        let mut rng = SimRng::seed_from_u64(11);
        let nodes = 3;
        let options: Vec<Vec<AllocOption>> = (0..8)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        let placement = vec![rng.below(nodes) as u32];
                        opt(&placement, 0.5 + rng.uniform())
                    })
                    .collect()
            })
            .collect();
        let full = ProblemInstance {
            node_slots: vec![2; nodes],
            options: options.clone(),
        };
        let full_sol = solve_greedy_ordered(&full);
        for k in 0..=options.len() {
            let prefix = ProblemInstance {
                node_slots: vec![2; nodes],
                options: options[..k].to_vec(),
            };
            let prefix_sol = solve_greedy_ordered(&prefix);
            assert_eq!(
                prefix_sol.allocation.choices,
                full_sol.allocation.choices[..k],
                "prefix {k} diverged"
            );
        }
        assert!(is_feasible(&full, &full_sol.allocation));
    }

    #[test]
    fn ordered_greedy_can_trail_most_constrained_first() {
        // Demand 0 has two choices, demand 1 only one: id order lets
        // demand 0 starve demand 1, which most-constrained-first avoids.
        let inst = ProblemInstance {
            node_slots: vec![1, 1],
            options: vec![vec![opt(&[0], 1.0), opt(&[1], 2.0)], vec![opt(&[0], 1.0)]],
        };
        assert_eq!(solve_greedy(&inst).allocation.satisfied_count(), 2);
        // Id order: demand 0 grabs node 0 (its cheap option), starving
        // demand 1 — the quality gap E20 measures and bounds.
        let ordered = solve_greedy_ordered(&inst);
        assert_eq!(ordered.allocation.satisfied_count(), 1);
        assert!(is_feasible(&inst, &ordered.allocation));
    }

    #[test]
    fn empty_instance() {
        let inst = ProblemInstance {
            node_slots: vec![],
            options: vec![],
        };
        let sol = solve_greedy(&inst);
        assert_eq!(sol.allocation.satisfied_count(), 0);
    }
}
