//! Candidate enumeration: from demands to integer-program options.
//!
//! Each demand's DAG is linearized to a task chain `t₁ … tₖ`; a candidate
//! allocation *option* assigns every task to a compute-capable site, and
//! the packet path is the concatenation of delay-shortest legs
//! `src → v₁ → … → vₖ → dst`. Option cost combines the *added latency*
//! of that detour over the direct path with the number of transponder
//! slots consumed — the paper's twin objectives (satisfy demands, spend
//! few transponders).

use crate::demand::Demand;
use ofpc_net::routing::distance_matrix;
use ofpc_net::{LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One candidate way to serve a demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocOption {
    /// Task-to-node assignment, in chain order.
    pub placement: Vec<NodeId>,
    /// Scalar cost (milliseconds of added latency + slot penalty).
    pub cost: f64,
    /// Added latency of the detour vs the direct path, ps.
    pub added_latency_ps: u64,
}

/// A fully-enumerated allocation problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// Transponder slots available at each node (indexed by NodeId).
    pub node_slots: Vec<usize>,
    /// Options per demand (same order as the demand list passed in).
    pub options: Vec<Vec<AllocOption>>,
}

impl ProblemInstance {
    pub fn demand_count(&self) -> usize {
        self.options.len()
    }

    pub fn total_options(&self) -> usize {
        self.options.iter().map(|o| o.len()).sum()
    }
}

/// Weight of one consumed slot in the cost term, expressed in
/// milliseconds of equivalent latency (cost units).
pub const SLOT_COST_MS: f64 = 0.5;

/// Enumerate options for `demands` over `topo`, where `node_slots[n]` is
/// the number of compute transponders at node `n`. Options per demand
/// are capped at `max_options_per_demand`, keeping the cheapest.
///
/// Demands whose DAG is cyclic, or whose endpoints are disconnected, get
/// an empty option list (they can never be satisfied).
pub fn enumerate_options(
    topo: &Topology,
    node_slots: &[usize],
    demands: &[Demand],
    max_options_per_demand: usize,
) -> ProblemInstance {
    enumerate_options_filtered(topo, node_slots, demands, max_options_per_demand, &|_| true)
}

/// [`enumerate_options`] restricted to links accepted by `link_ok` — the
/// fault-recovery variant. Detour legs and direct baselines are both
/// measured over the surviving links only, so a placement stranded
/// behind a cut fiber prices in its real (possibly unreachable) detour
/// instead of the nominal one, and the solver moves compute onto sites
/// the post-fault paths actually visit.
pub fn enumerate_options_filtered(
    topo: &Topology,
    node_slots: &[usize],
    demands: &[Demand],
    max_options_per_demand: usize,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> ProblemInstance {
    assert_eq!(
        node_slots.len(),
        topo.node_count(),
        "node_slots must cover every node"
    );
    assert!(max_options_per_demand >= 1, "need at least one option slot");
    let dist = distance_matrix(topo, link_ok);
    let compute_sites: Vec<NodeId> = (0..node_slots.len())
        .filter(|&n| node_slots[n] > 0)
        .map(|n| NodeId(n as u32))
        .collect();
    let mut options = Vec::with_capacity(demands.len());
    for demand in demands {
        options.push(options_from_matrix(
            demand,
            &dist,
            &compute_sites,
            max_options_per_demand,
        ));
    }
    ProblemInstance {
        node_slots: node_slots.to_vec(),
        options,
    }
}

/// Enumerate the candidate options for one demand from a precomputed
/// distance matrix (`dist[u][v]` = delay-shortest u→v distance in ps
/// over whatever link set the matrix was built from, `None` if
/// unreachable). This is the kernel [`enumerate_options_filtered`] runs
/// per demand; the sharded controller calls it directly so each shard
/// can reuse its cached region-local matrix instead of re-running
/// Dijkstra over the whole WAN on every request arrival. The returned
/// list is cost-sorted (stable: ties keep DFS emission order) and
/// capped at `cap`, so the bytes are a pure function of the inputs.
pub fn options_from_matrix(
    demand: &Demand,
    dist: &[Vec<Option<u64>>],
    compute_sites: &[NodeId],
    cap: usize,
) -> Vec<AllocOption> {
    let Some(chain) = demand.dag.linearize() else {
        return Vec::new(); // cyclic DAG
    };
    let k = chain.len();
    let s = demand.src.0 as usize;
    let t = demand.dst.0 as usize;
    let Some(direct) = dist[s][t] else {
        return Vec::new(); // disconnected endpoints
    };
    if k == 0 {
        // Nothing to place: the direct path serves it at zero cost.
        return vec![AllocOption {
            placement: vec![],
            cost: 0.0,
            added_latency_ps: 0,
        }];
    }
    // Enumerate placement tuples over compute sites (k-fold product),
    // depth-first, pruning unreachable legs.
    let mut out: Vec<AllocOption> = Vec::new();
    let mut stack: Vec<(Vec<NodeId>, u64)> = vec![(Vec::new(), 0)];
    while let Some((placement, latency_so_far)) = stack.pop() {
        let from = placement.last().map(|n| n.0 as usize).unwrap_or(s);
        if placement.len() == k {
            let Some(tail) = dist[from][t] else { continue };
            let total = latency_so_far + tail;
            let added = total.saturating_sub(direct);
            out.push(AllocOption {
                placement,
                cost: added as f64 / 1e9 + k as f64 * SLOT_COST_MS,
                added_latency_ps: added,
            });
            continue;
        }
        for &site in compute_sites {
            let Some(leg) = dist[from][site.0 as usize] else {
                continue;
            };
            let mut next = placement.clone();
            next.push(site);
            stack.push((next, latency_so_far + leg));
        }
    }
    out.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    out.truncate(cap);
    out
}

/// Aggregate slot demand of an option (per node), used by solvers.
pub fn slots_used(option: &AllocOption) -> HashMap<NodeId, usize> {
    let mut used = HashMap::new();
    for &node in &option.placement {
        *used.entry(node).or_insert(0) += 1;
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::TaskDag;
    use ofpc_engine::Primitive;

    fn fig1() -> (Topology, Vec<usize>) {
        let topo = Topology::fig1();
        // B and C each have 2 transponders.
        (topo, vec![0, 2, 2, 0])
    }

    fn p1_demand(id: u32, src: u32, dst: u32) -> Demand {
        Demand::new(
            id,
            NodeId(src),
            NodeId(dst),
            TaskDag::single(Primitive::VectorDotProduct),
        )
    }

    #[test]
    fn single_task_options_cover_both_sites() {
        let (topo, slots) = fig1();
        let demands = vec![p1_demand(0, 0, 3)]; // A → D
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        assert_eq!(inst.options[0].len(), 2);
        let sites: Vec<u32> = inst.options[0].iter().map(|o| o.placement[0].0).collect();
        assert!(sites.contains(&1) && sites.contains(&2));
        // Both B and C lie on equal-length A→D paths: essentially zero
        // added latency (±1 ps of per-leg integer rounding).
        for o in &inst.options[0] {
            assert!(o.added_latency_ps <= 2, "added {}", o.added_latency_ps);
        }
    }

    #[test]
    fn off_path_detour_has_positive_added_latency() {
        let (topo, slots) = fig1();
        // A → B directly is 800 km; going via C first adds real fiber.
        let demands = vec![p1_demand(0, 0, 1)];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let via_b = inst.options[0]
            .iter()
            .find(|o| o.placement[0] == NodeId(1))
            .unwrap();
        let via_c = inst.options[0]
            .iter()
            .find(|o| o.placement[0] == NodeId(2))
            .unwrap();
        assert_eq!(via_b.added_latency_ps, 0);
        assert!(via_c.added_latency_ps > 0);
        assert!(via_c.cost > via_b.cost);
    }

    #[test]
    fn chain_demand_enumerates_tuples() {
        let (topo, slots) = fig1();
        let dag = TaskDag::chain(vec![
            Primitive::VectorDotProduct,
            Primitive::NonlinearFunction,
        ]);
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), dag)];
        let inst = enumerate_options(&topo, &slots, &demands, 100);
        // 2 sites × 2 sites = 4 tuples.
        assert_eq!(inst.options[0].len(), 4);
        // Every option consumes 2 slots worth of cost.
        for o in &inst.options[0] {
            assert_eq!(o.placement.len(), 2);
            assert!(o.cost >= 2.0 * SLOT_COST_MS);
        }
    }

    #[test]
    fn option_cap_keeps_cheapest() {
        let (topo, slots) = fig1();
        let dag = TaskDag::chain(vec![
            Primitive::VectorDotProduct,
            Primitive::NonlinearFunction,
        ]);
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), dag)];
        let all = enumerate_options(&topo, &slots, &demands, 100);
        let capped = enumerate_options(&topo, &slots, &demands, 2);
        assert_eq!(capped.options[0].len(), 2);
        let min_cost = all.options[0]
            .iter()
            .map(|o| o.cost)
            .fold(f64::MAX, f64::min);
        assert_eq!(capped.options[0][0].cost, min_cost);
    }

    #[test]
    fn cut_link_reprices_the_stranded_site() {
        let (topo, slots) = fig1();
        let demands = vec![p1_demand(0, 0, 3)]; // A → D
                                                // Cut A–B (the first link incident to A toward B).
        let a = topo.find_node("A").unwrap();
        let b = topo.find_node("B").unwrap();
        let cut = topo
            .neighbors(a)
            .into_iter()
            .find(|&(_, n)| n == b)
            .map(|(l, _)| l)
            .unwrap();
        let inst = enumerate_options_filtered(&topo, &slots, &demands, 10, &|l| l != cut);
        let via_b = inst.options[0]
            .iter()
            .find(|o| o.placement[0] == NodeId(1))
            .unwrap();
        let via_c = inst.options[0]
            .iter()
            .find(|o| o.placement[0] == NodeId(2))
            .unwrap();
        // C sits on the surviving A→C→D path: zero added latency. B is
        // now a dead-end detour (A→C→D→B→D) and must price that in.
        assert_eq!(via_c.added_latency_ps, 0);
        assert!(via_b.added_latency_ps > 0);
        assert!(via_c.cost < via_b.cost);
    }

    #[test]
    fn fully_severed_endpoints_lose_all_options() {
        let (topo, slots) = fig1();
        let demands = vec![p1_demand(0, 0, 3)];
        let inst = enumerate_options_filtered(&topo, &slots, &demands, 10, &|_| false);
        assert!(inst.options[0].is_empty(), "no surviving links, no plan");
    }

    #[test]
    fn no_compute_sites_means_no_options() {
        let topo = Topology::fig1();
        let demands = vec![p1_demand(0, 0, 3)];
        let inst = enumerate_options(&topo, &[0, 0, 0, 0], &demands, 10);
        assert!(inst.options[0].is_empty());
    }

    #[test]
    fn empty_dag_gets_free_option() {
        let (topo, slots) = fig1();
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), TaskDag::chain(vec![]))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        assert_eq!(inst.options[0].len(), 1);
        assert_eq!(inst.options[0][0].cost, 0.0);
    }

    #[test]
    fn disconnected_demand_has_no_options() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let _c = topo.add_node("c");
        topo.add_link(a, b, 10.0);
        let demands = vec![p1_demand(0, 0, 2)]; // c is isolated
        let inst = enumerate_options(&topo, &[1, 1, 1], &demands, 10);
        assert!(inst.options[0].is_empty());
    }

    #[test]
    fn options_from_matrix_agrees_with_full_enumeration() {
        // The public kernel must reproduce exactly what the full
        // enumerator emits when given the same matrix — the sharded
        // controller's cached-matrix path rides on this equality.
        let (topo, slots) = fig1();
        let dag = TaskDag::chain(vec![
            Primitive::VectorDotProduct,
            Primitive::NonlinearFunction,
        ]);
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), dag)];
        let inst = enumerate_options(&topo, &slots, &demands, 3);
        let dist = distance_matrix(&topo, &|_| true);
        let sites = vec![NodeId(1), NodeId(2)];
        let direct = options_from_matrix(&demands[0], &dist, &sites, 3);
        assert_eq!(inst.options[0], direct);
    }

    #[test]
    fn slots_used_counts_repeats() {
        let opt = AllocOption {
            placement: vec![NodeId(1), NodeId(1), NodeId(2)],
            cost: 0.0,
            added_latency_ps: 0,
        };
        let used = slots_used(&opt);
        assert_eq!(used[&NodeId(1)], 2);
        assert_eq!(used[&NodeId(2)], 1);
    }
}
