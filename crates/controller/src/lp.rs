//! LP relaxation + randomized rounding.
//!
//! The scalable middle ground between `greedy` and the exact solver: the
//! integer program relaxes to a packing LP —
//!
//! ```text
//!   max  Σ (BIG − cost_{d,o}) · x_{d,o}
//!   s.t. Σ_o x_{d,o} ≤ 1                  (one option per demand)
//!        Σ_{d,o} uses(n, d,o) · x ≤ cap_n  (transponder slots per node)
//!        x ≥ 0
//! ```
//!
//! solved by a dense-tableau primal simplex (the slack basis is feasible
//! because this is a pure packing problem), then rounded: sample each
//! demand's option from its fractional mass, greedily repairing capacity
//! violations. The LP optimum also upper-bounds the ILP score, which is
//! how experiment E6 reports optimality gaps without running the exact
//! solver to completion.

use crate::options::ProblemInstance;
use crate::{score, Allocation};
use ofpc_photonics::SimRng;

/// The score weight of satisfying one demand (must dwarf any cost).
const BIG: f64 = 1e9;

/// A solved LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Fractional assignment per demand per option.
    pub fractional: Vec<Vec<f64>>,
    /// LP objective value — an upper bound on any integer allocation's
    /// score.
    pub upper_bound: f64,
    /// Simplex pivots performed.
    pub pivots: u64,
}

/// Solve the LP relaxation with a dense simplex.
#[allow(clippy::needless_range_loop)] // tableau pivoting reads clearest with indices
pub fn solve_lp(instance: &ProblemInstance) -> LpSolution {
    // Variable layout: x_{d,o} flattened.
    let mut var_of: Vec<(usize, usize)> = Vec::new();
    for (d, opts) in instance.options.iter().enumerate() {
        for o in 0..opts.len() {
            var_of.push((d, o));
        }
    }
    let nv = var_of.len();
    if nv == 0 {
        return LpSolution {
            fractional: instance
                .options
                .iter()
                .map(|o| vec![0.0; o.len()])
                .collect(),
            upper_bound: 0.0,
            pivots: 0,
        };
    }
    // Constraints: one per demand with options, one per node with finite
    // capacity actually referenced.
    let n_demands = instance.demand_count();
    let n_nodes = instance.node_slots.len();
    let m = n_demands + n_nodes;
    // Tableau: rows 0..m constraints, last row objective.
    // Columns: nv vars + m slacks + 1 rhs.
    let cols = nv + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m + 1];
    for (j, &(d, o)) in var_of.iter().enumerate() {
        // Demand row.
        t[d][j] = 1.0;
        // Node rows.
        for &node in &instance.options[d][o].placement {
            t[n_demands + node.0 as usize][j] += 1.0;
        }
        // Objective (maximize): z row holds −c.
        t[m][j] = -(BIG - instance.options[d][o].cost);
    }
    for i in 0..m {
        t[i][nv + i] = 1.0; // slack
        t[i][cols - 1] = if i < n_demands {
            1.0
        } else {
            instance.node_slots[i - n_demands] as f64
        };
    }
    // Basis tracking: which variable is basic in each row.
    let mut basis: Vec<usize> = (0..m).map(|i| nv + i).collect();
    let mut pivots = 0u64;
    let max_pivots = 10_000 + 50 * (nv as u64 + m as u64);
    loop {
        // Entering column: most negative objective coefficient
        // (Dantzig); switch to Bland's rule near the pivot cap to
        // guarantee termination.
        let blands = pivots > max_pivots / 2;
        let mut enter = None;
        let mut best = -1e-9;
        for j in 0..nv + m {
            let c = t[m][j];
            if c < best {
                if blands {
                    enter = Some(j);
                    break;
                }
                best = c;
                enter = Some(j);
            }
        }
        let Some(enter) = enter else { break };
        // Ratio test.
        let mut leave = None;
        let mut best_ratio = f64::MAX;
        for i in 0..m {
            if t[i][enter] > 1e-9 {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leave.is_none_or(|l: usize| basis[l] > basis[i]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            break; // unbounded — cannot happen in a packing LP, bail safely
        };
        // Pivot.
        let pivot = t[leave][enter];
        for v in &mut t[leave] {
            *v /= pivot;
        }
        for i in 0..=m {
            if i != leave && t[i][enter].abs() > 1e-12 {
                let factor = t[i][enter];
                for j in 0..cols {
                    t[i][j] -= factor * t[leave][j];
                }
            }
        }
        basis[leave] = enter;
        pivots += 1;
        if pivots >= max_pivots {
            break;
        }
    }
    // Read out the solution.
    let mut x = vec![0.0f64; nv];
    for (i, &b) in basis.iter().enumerate() {
        if b < nv {
            x[b] = t[i][cols - 1].max(0.0);
        }
    }
    let mut fractional: Vec<Vec<f64>> = instance
        .options
        .iter()
        .map(|opts| vec![0.0; opts.len()])
        .collect();
    for (j, &(d, o)) in var_of.iter().enumerate() {
        fractional[d][o] = x[j].clamp(0.0, 1.0);
    }
    let upper_bound = var_of
        .iter()
        .enumerate()
        .map(|(j, &(d, o))| x[j] * (BIG - instance.options[d][o].cost))
        .sum();
    LpSolution {
        fractional,
        upper_bound,
        pivots,
    }
}

/// Round an LP solution to a feasible integer allocation: sample each
/// demand's option from its fractional mass, repair infeasibility by
/// falling back to the cheapest feasible option, repeat `trials` times,
/// keep the best.
pub fn round_lp(
    instance: &ProblemInstance,
    lp: &LpSolution,
    trials: usize,
    rng: &mut SimRng,
) -> Allocation {
    assert!(trials >= 1, "need at least one rounding trial");
    let n = instance.demand_count();
    let mut best = Allocation {
        choices: vec![None; n],
    };
    let mut best_score = score(instance, &best);
    for _ in 0..trials {
        let mut used = vec![0usize; instance.node_slots.len()];
        let mut choices = vec![None; n];
        // Demand order randomized per trial.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for &d in &order {
            // Sample from the fractional distribution.
            let u = rng.uniform();
            let mut acc = 0.0;
            let mut sampled = None;
            for (o, &f) in lp.fractional[d].iter().enumerate() {
                acc += f;
                if u < acc {
                    sampled = Some(o);
                    break;
                }
            }
            // Try the sampled option, then every option cheapest-first.
            let mut candidates: Vec<usize> = Vec::new();
            if let Some(s) = sampled {
                candidates.push(s);
            }
            candidates.extend(0..instance.options[d].len());
            for o in candidates {
                let option = &instance.options[d][o];
                let mut need = std::collections::HashMap::new();
                for &node in &option.placement {
                    *need.entry(node.0 as usize).or_insert(0usize) += 1;
                }
                let fits = need
                    .iter()
                    .all(|(&node, &k)| used[node] + k <= instance.node_slots[node]);
                if fits {
                    for (&node, &k) in &need {
                        used[node] += k;
                    }
                    choices[d] = Some(o);
                    break;
                }
            }
        }
        let alloc = Allocation { choices };
        let s = score(instance, &alloc);
        if s > best_score {
            best_score = s;
            best = alloc;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::solve_exact;
    use crate::is_feasible;
    use crate::options::AllocOption;
    use ofpc_net::NodeId;

    fn opt(nodes: &[u32], cost: f64) -> AllocOption {
        AllocOption {
            placement: nodes.iter().map(|&n| NodeId(n)).collect(),
            cost,
            added_latency_ps: 0,
        }
    }

    #[test]
    fn lp_matches_ilp_on_integral_instance() {
        let inst = ProblemInstance {
            node_slots: vec![2],
            options: vec![vec![opt(&[0], 1.0)], vec![opt(&[0], 2.0)]],
        };
        let lp = solve_lp(&inst);
        let exact = solve_exact(&inst, 1_000_000);
        // Uncontended packing LP has an integral optimum.
        assert!(
            (lp.upper_bound - exact.score).abs() < 1.0,
            "lp {} ilp {}",
            lp.upper_bound,
            exact.score
        );
        // Fractional solution saturates both demands.
        assert!((lp.fractional[0][0] - 1.0).abs() < 1e-6);
        assert!((lp.fractional[1][0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lp_upper_bounds_ilp_under_contention() {
        // One slot, two demands: ILP satisfies 1; LP can split 0.5/0.5
        // and reach ~1 satisfied worth of objective as well.
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![vec![opt(&[0], 1.0)], vec![opt(&[0], 1.0)]],
        };
        let lp = solve_lp(&inst);
        let exact = solve_exact(&inst, 1_000_000);
        assert!(lp.upper_bound >= exact.score - 1e-6);
        // Total fractional mass on the node cannot exceed capacity.
        let mass: f64 = lp.fractional.iter().flatten().sum();
        assert!(mass <= 1.0 + 1e-6, "mass {mass}");
    }

    #[test]
    fn rounding_is_feasible_and_close_to_exact() {
        let mut rng = SimRng::seed_from_u64(3);
        let inst = ProblemInstance {
            node_slots: vec![2, 1, 1],
            options: vec![
                vec![opt(&[0], 1.0), opt(&[1], 1.5)],
                vec![opt(&[0], 1.0), opt(&[2], 2.0)],
                vec![opt(&[1], 1.0), opt(&[0], 1.2)],
                vec![opt(&[2], 1.0)],
            ],
        };
        let lp = solve_lp(&inst);
        let rounded = round_lp(&inst, &lp, 20, &mut rng);
        assert!(is_feasible(&inst, &rounded));
        let exact = solve_exact(&inst, 10_000_000);
        // All four fit; rounding with repair should find that too.
        assert_eq!(exact.allocation.satisfied_count(), 4);
        assert_eq!(rounded.satisfied_count(), 4);
    }

    #[test]
    fn lp_chain_demands_respect_node_caps() {
        let inst = ProblemInstance {
            node_slots: vec![1, 2],
            options: vec![
                vec![opt(&[0, 1], 2.0)],
                vec![opt(&[1], 1.0)],
                vec![opt(&[0], 1.0)],
            ],
        };
        let lp = solve_lp(&inst);
        // Node 0 mass: x0 + x2 ≤ 1.
        let node0 = lp.fractional[0][0] + lp.fractional[2][0];
        assert!(node0 <= 1.0 + 1e-6, "node0 mass {node0}");
        // Node 1 mass: x0 + x1 ≤ 2.
        let node1 = lp.fractional[0][0] + lp.fractional[1][0];
        assert!(node1 <= 2.0 + 1e-6);
    }

    #[test]
    fn empty_instance_is_zero() {
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![],
        };
        let lp = solve_lp(&inst);
        assert_eq!(lp.upper_bound, 0.0);
        assert_eq!(lp.pivots, 0);
    }

    #[test]
    fn demand_with_no_options_gets_zero_mass() {
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![vec![], vec![opt(&[0], 1.0)]],
        };
        let lp = solve_lp(&inst);
        assert!(lp.fractional[0].is_empty());
        assert!((lp.fractional[1][0] - 1.0).abs() < 1e-6);
        let mut rng = SimRng::seed_from_u64(0);
        let rounded = round_lp(&inst, &lp, 5, &mut rng);
        assert_eq!(rounded.choices[0], None);
        assert_eq!(rounded.choices[1], Some(0));
    }

    #[test]
    fn lp_scales_beyond_exact_comfort() {
        // 60 demands × 4 options over 12 nodes: trivial for the LP.
        let mut rng = SimRng::seed_from_u64(9);
        let options: Vec<Vec<AllocOption>> = (0..60)
            .map(|_| {
                let mut opts: Vec<AllocOption> = (0..4)
                    .map(|_| opt(&[rng.below(12) as u32], 0.5 + rng.uniform()))
                    .collect();
                opts.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
                opts
            })
            .collect();
        let inst = ProblemInstance {
            node_slots: vec![3; 12],
            options,
        };
        let lp = solve_lp(&inst);
        assert!(lp.upper_bound > 0.0);
        let mut rng2 = SimRng::seed_from_u64(10);
        let rounded = round_lp(&inst, &lp, 10, &mut rng2);
        assert!(is_feasible(&inst, &rounded));
        // Capacity is 36 slots for 60 single-slot demands: at most 36
        // can be satisfied, and a decent rounding gets close.
        assert!(rounded.satisfied_count() <= 36);
        assert!(
            rounded.satisfied_count() >= 30,
            "{}",
            rounded.satisfied_count()
        );
    }
}
