//! Exact integer allocation by branch and bound.
//!
//! The paper's §5: "The optimization formulation is fundamentally an
//! integer problem because it needs to decide which photonic computing
//! transponder to use." This module solves that integer problem exactly:
//! depth-first branch and bound over per-demand option choices with
//! per-node slot capacities, pruning on an optimistic bound (every
//! remaining demand satisfiable at its cheapest option, capacities
//! ignored). Exponential in the worst case — which is the point:
//! experiment E6 measures exactly where this wall is, motivating the LP
//! and greedy fallbacks.

use crate::options::ProblemInstance;
use crate::{score, Allocation};

/// Solver report: the best allocation plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    pub allocation: Allocation,
    pub score: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes_expanded: u64,
    /// True if the search finished; false if it hit `node_budget` and the
    /// result is best-effort.
    pub proven_optimal: bool,
}

/// Solve the allocation exactly (up to `node_budget` search nodes).
pub fn solve_exact(instance: &ProblemInstance, node_budget: u64) -> ExactSolution {
    let n = instance.demand_count();
    let mut state = Search {
        instance,
        used: vec![0; instance.node_slots.len()],
        choices: vec![None; n],
        best: Allocation {
            choices: vec![None; n],
        },
        best_score: 0.0,
        nodes: 0,
        budget: node_budget,
        // Cheapest option cost per demand, for the optimistic bound.
        min_cost: instance
            .options
            .iter()
            .map(|opts| opts.iter().map(|o| o.cost).fold(f64::MAX, f64::min))
            .collect(),
    };
    state.best_score = score(instance, &state.best);
    state.dfs(0, 0, 0.0);
    let proven = state.nodes < node_budget;
    ExactSolution {
        score: state.best_score,
        allocation: state.best,
        nodes_expanded: state.nodes,
        proven_optimal: proven,
    }
}

struct Search<'a> {
    instance: &'a ProblemInstance,
    used: Vec<usize>,
    choices: Vec<Option<usize>>,
    best: Allocation,
    best_score: f64,
    nodes: u64,
    budget: u64,
    min_cost: Vec<f64>,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, satisfied: usize, cost: f64) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        let n = self.instance.demand_count();
        if depth == n {
            let s = satisfied as f64 * 1e9 - cost;
            if s > self.best_score {
                self.best_score = s;
                self.best = Allocation {
                    choices: self.choices.clone(),
                };
            }
            return;
        }
        // Optimistic bound: all remaining demands satisfied at their
        // cheapest option (capacity ignored).
        let mut bound = (satisfied + (n - depth)) as f64 * 1e9 - cost;
        for d in depth..n {
            if self.min_cost[d].is_finite() && self.min_cost[d] != f64::MAX {
                bound -= self.min_cost[d];
            } else {
                bound -= 1e9; // demand with no options can never be served
            }
        }
        if bound <= self.best_score {
            return;
        }
        // Branch: try each feasible option (cheapest first — the option
        // lists are pre-sorted), then the "skip" branch.
        for o in 0..self.instance.options[depth].len() {
            let option = &self.instance.options[depth][o];
            if self.fits(option) {
                self.apply(option, 1);
                self.choices[depth] = Some(o);
                self.dfs(depth + 1, satisfied + 1, cost + option.cost);
                self.choices[depth] = None;
                self.apply(option, -1);
            }
        }
        self.dfs(depth + 1, satisfied, cost);
    }

    fn fits(&self, option: &crate::options::AllocOption) -> bool {
        let mut need = std::collections::HashMap::new();
        for &node in &option.placement {
            *need.entry(node.0 as usize).or_insert(0usize) += 1;
        }
        need.iter()
            .all(|(&n, &k)| self.used[n] + k <= self.instance.node_slots[n])
    }

    fn apply(&mut self, option: &crate::options::AllocOption, sign: i64) {
        for &node in &option.placement {
            let slot = &mut self.used[node.0 as usize];
            *slot = (*slot as i64 + sign) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_feasible;
    use crate::options::AllocOption;
    use ofpc_net::NodeId;

    fn opt(nodes: &[u32], cost: f64) -> AllocOption {
        AllocOption {
            placement: nodes.iter().map(|&n| NodeId(n)).collect(),
            cost,
            added_latency_ps: 0,
        }
    }

    #[test]
    fn satisfies_all_when_capacity_allows() {
        let inst = ProblemInstance {
            node_slots: vec![2],
            options: vec![vec![opt(&[0], 1.0)], vec![opt(&[0], 1.0)]],
        };
        let sol = solve_exact(&inst, 1_000_000);
        assert_eq!(sol.allocation.satisfied_count(), 2);
        assert!(sol.proven_optimal);
        assert!(is_feasible(&inst, &sol.allocation));
    }

    #[test]
    fn contention_picks_the_cheaper_demand_set() {
        // One slot, two demands; the solver must satisfy exactly one,
        // choosing the cheaper option overall.
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![vec![opt(&[0], 5.0)], vec![opt(&[0], 1.0)]],
        };
        let sol = solve_exact(&inst, 1_000_000);
        assert_eq!(sol.allocation.satisfied_count(), 1);
        assert_eq!(sol.allocation.choices[1], Some(0));
        assert_eq!(sol.allocation.choices[0], None);
    }

    #[test]
    fn prefers_alternate_sites_to_skipping() {
        // Demand 0 can use node 0 or node 1; demand 1 only node 0.
        // Optimal: d0 → node 1, d1 → node 0 (both satisfied).
        let inst = ProblemInstance {
            node_slots: vec![1, 1],
            options: vec![vec![opt(&[0], 1.0), opt(&[1], 2.0)], vec![opt(&[0], 1.0)]],
        };
        let sol = solve_exact(&inst, 1_000_000);
        assert_eq!(sol.allocation.satisfied_count(), 2);
        assert_eq!(sol.allocation.choices[0], Some(1));
        assert_eq!(sol.allocation.choices[1], Some(0));
    }

    #[test]
    fn chain_demands_consume_multiple_slots() {
        let inst = ProblemInstance {
            node_slots: vec![1, 1],
            options: vec![
                vec![opt(&[0, 1], 2.0)], // needs both nodes
                vec![opt(&[1], 1.0)],
            ],
        };
        let sol = solve_exact(&inst, 1_000_000);
        // Either the chain or the single — not both (node 1 conflict).
        assert_eq!(sol.allocation.satisfied_count(), 1);
        assert!(is_feasible(&inst, &sol.allocation));
    }

    #[test]
    fn unservable_demand_is_skipped() {
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![vec![], vec![opt(&[0], 1.0)]],
        };
        let sol = solve_exact(&inst, 1_000_000);
        assert_eq!(sol.allocation.choices[0], None);
        assert_eq!(sol.allocation.choices[1], Some(0));
        assert!(sol.proven_optimal);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        // A larger instance with a tiny budget still returns something
        // feasible, just not proven optimal.
        let inst = ProblemInstance {
            node_slots: vec![3; 6],
            options: (0..12)
                .map(|d| {
                    (0..6)
                        .map(|n| opt(&[n as u32], 1.0 + d as f64 * 0.1))
                        .collect()
                })
                .collect(),
        };
        let sol = solve_exact(&inst, 50);
        assert!(!sol.proven_optimal);
        assert!(is_feasible(&inst, &sol.allocation));
        let full = solve_exact(&inst, 10_000_000);
        assert!(full.score >= sol.score);
    }

    #[test]
    fn empty_instance_is_trivial() {
        let inst = ProblemInstance {
            node_slots: vec![1],
            options: vec![],
        };
        let sol = solve_exact(&inst, 100);
        assert_eq!(sol.allocation.satisfied_count(), 0);
        assert!(sol.proven_optimal);
    }
}
