//! From allocation to route updates.
//!
//! §3: the controller "serves as the vantage point from which to collect
//! and combine the information from both IP routing and photonic compute
//! routing, subsequently delivering next-hop updates to all routers."
//! This module turns a solved [`Allocation`] into (a) per-site engine
//! installations and (b) the dual-field routing overrides that steer each
//! demand's compute packets through its assigned transponder chain, then
//! applies them to a [`Network`].

use crate::demand::Demand;
use crate::options::ProblemInstance;
use crate::Allocation;
use ofpc_engine::Primitive;
use ofpc_net::routing::shortest_paths;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Prefix};
use serde::{Deserialize, Serialize};

/// One engine installation command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstallCmd {
    pub node: NodeId,
    pub primitive: Primitive,
    pub op_id: u16,
}

/// One routing override command: at `router`, compute packets matching
/// (`dst_prefix`, `primitive`) take the first hop toward `via`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOverrideCmd {
    pub router: NodeId,
    pub dst_prefix: Prefix,
    pub primitive: Primitive,
    pub via: NodeId,
}

/// The full update set produced from one allocation round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdatePlan {
    pub installs: Vec<InstallCmd>,
    pub overrides: Vec<RouteOverrideCmd>,
    /// Demands that could not be satisfied this round.
    pub unsatisfied: Vec<u32>,
}

/// Build the update plan for `demands` under `allocation`.
///
/// Op IDs are the demand IDs (one installed operation instance per
/// satisfied demand — the natural granularity, since each demand's
/// weights/pattern differ). For multi-task chains, only the first task's
/// placement gets routing overrides toward it; subsequent tasks are
/// reached because the packet *continues* from the previous site (the
/// sim re-evaluates pending primitives hop by hop).
pub fn build_plan(
    demands: &[Demand],
    instance: &ProblemInstance,
    allocation: &Allocation,
) -> UpdatePlan {
    assert_eq!(demands.len(), allocation.choices.len(), "shape mismatch");
    let mut plan = UpdatePlan::default();
    for (d, choice) in allocation.choices.iter().enumerate() {
        let demand = &demands[d];
        let Some(o) = choice else {
            plan.unsatisfied.push(demand.id.0);
            continue;
        };
        let option = &instance.options[d][*o];
        let chain = demand
            .dag
            .linearize()
            .expect("satisfied demand must have an acyclic DAG");
        assert_eq!(chain.len(), option.placement.len(), "placement shape");
        for (task, (&primitive, &node)) in chain.iter().zip(&option.placement).enumerate() {
            plan.installs.push(InstallCmd {
                node,
                primitive,
                op_id: demand.id.0 as u16,
            });
            // Route overrides steer toward the task's site from
            // everywhere (scoped to the demand's destination prefix).
            let _ = task;
            plan.overrides.push(RouteOverrideCmd {
                router: node, // marker: resolved per-router in apply()
                dst_prefix: Network::node_prefix(demand.dst),
                primitive,
                via: node,
            });
        }
    }
    plan
}

/// Apply an update plan to a simulated network: install engine slots and
/// per-router dual-field overrides. `op_specs` supplies the semantics
/// for each installed op id (weights/pattern).
pub fn apply_plan(
    net: &mut Network,
    plan: &UpdatePlan,
    op_specs: &dyn Fn(u16, Primitive) -> OpSpec,
    noise_sigma: f64,
) {
    for install in &plan.installs {
        let spec = op_specs(install.op_id, install.primitive);
        assert_eq!(
            spec.primitive(),
            install.primitive,
            "op spec primitive mismatch for op {}",
            install.op_id
        );
        net.add_engine(install.node, install.op_id, spec, noise_sigma);
    }
    // Install overrides: at every router, pending packets for
    // (dst_prefix, primitive) head toward `via` along shortest paths.
    for ov in &plan.overrides {
        let node_count = net.topo.node_count();
        for r in 0..node_count {
            let router = NodeId(r as u32);
            if router == ov.via {
                continue;
            }
            let paths = shortest_paths(&net.topo, router);
            let Some(&(_, Some(first_link))) = paths.get(&ov.via) else {
                continue;
            };
            net.routing_table_mut(router).install_compute_override(
                ov.dst_prefix,
                ov.primitive,
                first_link,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::TaskDag;
    use crate::ilp::solve_exact;
    use crate::options::enumerate_options;
    use ofpc_net::packet::Packet;
    use ofpc_net::pch::PchHeader;
    use ofpc_net::Topology;
    use ofpc_photonics::SimRng;

    const P1: Primitive = Primitive::VectorDotProduct;

    #[test]
    fn plan_contains_installs_and_overrides() {
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), TaskDag::single(P1))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.overrides.len(), 1);
        assert!(plan.unsatisfied.is_empty());
        assert_eq!(plan.installs[0].op_id, 0);
    }

    #[test]
    fn unsatisfied_demands_are_reported() {
        let topo = Topology::fig1();
        let slots = vec![0, 1, 0, 0]; // one slot only
        let demands = vec![
            Demand::new(0, NodeId(0), NodeId(3), TaskDag::single(P1)),
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
        ];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.unsatisfied.len(), 1);
    }

    #[test]
    fn end_to_end_controller_drives_the_sim() {
        // Full loop: enumerate → solve → plan → apply → traffic computes.
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![Demand::new(7, NodeId(0), NodeId(3), TaskDag::single(P1))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);

        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        apply_plan(
            &mut net,
            &plan,
            &|_op, _prim| OpSpec::Dot {
                weights: vec![0.5; 4],
            },
            0.0,
        );
        let pch = PchHeader::request(P1, 7, 4);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            pch,
            Packet::encode_operands(&[1.0; 4]),
        );
        net.inject(0, NodeId(0), p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(net.stats.delivered[0].computed, "packet was never computed");
    }

    #[test]
    #[should_panic(expected = "primitive mismatch")]
    fn apply_rejects_wrong_spec() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        let plan = UpdatePlan {
            installs: vec![InstallCmd {
                node: NodeId(1),
                primitive: P1,
                op_id: 0,
            }],
            overrides: vec![],
            unsatisfied: vec![],
        };
        apply_plan(&mut net, &plan, &|_, _| OpSpec::Nonlinear, 0.0);
    }
}
