//! From allocation to route updates.
//!
//! §3: the controller "serves as the vantage point from which to collect
//! and combine the information from both IP routing and photonic compute
//! routing, subsequently delivering next-hop updates to all routers."
//! This module turns a solved [`Allocation`] into (a) per-site engine
//! installations and (b) the dual-field routing overrides that steer each
//! demand's compute packets through its assigned transponder chain, then
//! applies them to a [`Network`].

use crate::demand::Demand;
use crate::options::ProblemInstance;
use crate::Allocation;
use ofpc_engine::Primitive;
use ofpc_net::routing::shortest_paths_filtered;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{LinkId, NodeId, Prefix};
use serde::{Deserialize, Serialize};

/// One engine installation command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstallCmd {
    pub node: NodeId,
    pub primitive: Primitive,
    pub op_id: u16,
}

/// One routing override command: at `router`, compute packets matching
/// (`dst_prefix`, `primitive`) take the first hop toward `via`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOverrideCmd {
    pub router: NodeId,
    pub dst_prefix: Prefix,
    pub primitive: Primitive,
    pub via: NodeId,
}

/// The full update set produced from one allocation round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdatePlan {
    pub installs: Vec<InstallCmd>,
    pub overrides: Vec<RouteOverrideCmd>,
    /// Demands that could not be satisfied this round.
    pub unsatisfied: Vec<u32>,
}

/// Build the update plan for `demands` under `allocation`.
///
/// Op IDs are the demand IDs (one installed operation instance per
/// satisfied demand — the natural granularity, since each demand's
/// weights/pattern differ). For multi-task chains, only the first task's
/// placement gets routing overrides toward it; subsequent tasks are
/// reached because the packet *continues* from the previous site (the
/// sim re-evaluates pending primitives hop by hop).
pub fn build_plan(
    demands: &[Demand],
    instance: &ProblemInstance,
    allocation: &Allocation,
) -> UpdatePlan {
    assert_eq!(demands.len(), allocation.choices.len(), "shape mismatch");
    let placements: Vec<Option<&[NodeId]>> = allocation
        .choices
        .iter()
        .enumerate()
        .map(|(d, choice)| choice.map(|o| instance.options[d][o].placement.as_slice()))
        .collect();
    plan_from_placements(demands, &placements)
}

/// Build the update plan directly from per-demand placement chains —
/// the sharded controller's path, where the allocation state is the
/// placement itself rather than an index into a retained
/// [`ProblemInstance`]. `placements[d]` is demand `d`'s task-site chain
/// (`None` = unsatisfied); semantics match [`build_plan`] exactly.
pub fn build_plan_from_placements(
    demands: &[Demand],
    placements: &[Option<Vec<NodeId>>],
) -> UpdatePlan {
    assert_eq!(demands.len(), placements.len(), "shape mismatch");
    let refs: Vec<Option<&[NodeId]>> = placements
        .iter()
        .map(|p| p.as_ref().map(|v| v.as_slice()))
        .collect();
    plan_from_placements(demands, &refs)
}

fn plan_from_placements(demands: &[Demand], placements: &[Option<&[NodeId]>]) -> UpdatePlan {
    let mut plan = UpdatePlan::default();
    for (demand, placement) in demands.iter().zip(placements) {
        let Some(placement) = placement else {
            plan.unsatisfied.push(demand.id.0);
            continue;
        };
        let chain = demand
            .dag
            .linearize()
            .expect("satisfied demand must have an acyclic DAG");
        assert_eq!(chain.len(), placement.len(), "placement shape");
        for (&primitive, &node) in chain.iter().zip(placement.iter()) {
            plan.installs.push(InstallCmd {
                node,
                primitive,
                op_id: demand.id.0 as u16,
            });
            // Route overrides steer toward the task's site from
            // everywhere (scoped to the demand's destination prefix).
            plan.overrides.push(RouteOverrideCmd {
                router: node, // marker: resolved per-router in apply()
                dst_prefix: Network::node_prefix(demand.dst),
                primitive,
                via: node,
            });
        }
    }
    plan
}

/// Why a plan command could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApplyError {
    /// The command's target node does not exist in the topology.
    NodeMissing(NodeId),
    /// No router can reach the override's `via` over the surviving
    /// links, so the override landed nowhere.
    ViaUnreachable(NodeId),
}

/// One command that failed to apply, with the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailedCmd {
    Install(InstallCmd, ApplyError),
    Override(RouteOverrideCmd, ApplyError),
}

/// What [`apply_plan`] actually did — the controller inspects this
/// instead of assuming every command landed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ApplyReport {
    /// Engine slots newly installed.
    pub installed: usize,
    /// Installs skipped because an identical slot (same node, op id,
    /// spec) already exists — re-applying a plan is a no-op, not a
    /// duplicate.
    pub skipped_installs: usize,
    /// Override commands that landed on at least one router.
    pub overrides_installed: usize,
    /// Commands that could not be applied, with reasons.
    pub failed: Vec<FailedCmd>,
}

impl ApplyReport {
    /// True when every command either applied or was already in place.
    pub fn fully_applied(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Apply an update plan to a simulated network: install engine slots and
/// per-router dual-field overrides. `op_specs` supplies the semantics
/// for each installed op id (weights/pattern).
///
/// Idempotent: an install whose exact slot (node, op id, spec) already
/// exists is skipped, so re-applying a plan — e.g. the staged re-install
/// after protection switching — never duplicates engines. Commands that
/// cannot be applied (missing node, `via` unreachable over surviving
/// links) are returned in [`ApplyReport::failed`] rather than silently
/// dropped. Override path computation avoids downed links.
pub fn apply_plan(
    net: &mut Network,
    plan: &UpdatePlan,
    op_specs: &dyn Fn(u16, Primitive) -> OpSpec,
    noise_sigma: f64,
) -> ApplyReport {
    let mut report = ApplyReport::default();
    let node_count = net.topo.node_count();
    for install in &plan.installs {
        if install.node.0 as usize >= node_count {
            report.failed.push(FailedCmd::Install(
                install.clone(),
                ApplyError::NodeMissing(install.node),
            ));
            continue;
        }
        let spec = op_specs(install.op_id, install.primitive);
        assert_eq!(
            spec.primitive(),
            install.primitive,
            "op spec primitive mismatch for op {}",
            install.op_id
        );
        let already = net
            .engines_at(install.node)
            .iter()
            .any(|s| s.op_id == install.op_id && s.spec == spec);
        if already {
            report.skipped_installs += 1;
            continue;
        }
        net.add_engine(install.node, install.op_id, spec, noise_sigma);
        report.installed += 1;
    }
    // Install overrides: at every router, pending packets for
    // (dst_prefix, primitive) head toward `via` along shortest paths
    // over the links still up.
    for ov in &plan.overrides {
        if ov.via.0 as usize >= node_count {
            report.failed.push(FailedCmd::Override(
                ov.clone(),
                ApplyError::NodeMissing(ov.via),
            ));
            continue;
        }
        let link_ok = |l: LinkId| net.link_is_up(l);
        let mut first_links = Vec::with_capacity(node_count);
        for r in 0..node_count {
            let router = NodeId(r as u32);
            if router == ov.via {
                continue;
            }
            let paths = shortest_paths_filtered(&net.topo, router, &link_ok);
            if let Some(&(_, Some(first_link))) = paths.get(&ov.via) {
                first_links.push((router, first_link));
            }
        }
        if first_links.is_empty() && node_count > 1 {
            report.failed.push(FailedCmd::Override(
                ov.clone(),
                ApplyError::ViaUnreachable(ov.via),
            ));
            continue;
        }
        for (router, first_link) in first_links {
            net.routing_table_mut(router).install_compute_override(
                ov.dst_prefix,
                ov.primitive,
                first_link,
            );
        }
        report.overrides_installed += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::TaskDag;
    use crate::ilp::solve_exact;
    use crate::options::enumerate_options;
    use ofpc_net::packet::Packet;
    use ofpc_net::pch::PchHeader;
    use ofpc_net::Topology;
    use ofpc_photonics::SimRng;

    const P1: Primitive = Primitive::VectorDotProduct;

    #[test]
    fn plan_contains_installs_and_overrides() {
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![Demand::new(0, NodeId(0), NodeId(3), TaskDag::single(P1))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.overrides.len(), 1);
        assert!(plan.unsatisfied.is_empty());
        assert_eq!(plan.installs[0].op_id, 0);
    }

    #[test]
    fn plan_from_placements_matches_instance_path() {
        // The sharded controller hands placements straight to the
        // planner; the commands must be identical to the option-indexed
        // path for the same allocation.
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![
            Demand::new(0, NodeId(0), NodeId(3), TaskDag::single(P1)),
            Demand::new(1, NodeId(0), NodeId(1), TaskDag::single(P1)),
        ];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let via_instance = build_plan(&demands, &inst, &sol.allocation);
        let placements: Vec<Option<Vec<NodeId>>> = sol
            .allocation
            .choices
            .iter()
            .enumerate()
            .map(|(d, c)| c.map(|o| inst.options[d][o].placement.clone()))
            .collect();
        let direct = build_plan_from_placements(&demands, &placements);
        assert_eq!(via_instance, direct);
        // And an explicit rejection surfaces in `unsatisfied`.
        let rejected = build_plan_from_placements(&demands, &vec![None; 2]);
        assert_eq!(rejected.unsatisfied, vec![0, 1]);
        assert!(rejected.installs.is_empty());
    }

    #[test]
    fn unsatisfied_demands_are_reported() {
        let topo = Topology::fig1();
        let slots = vec![0, 1, 0, 0]; // one slot only
        let demands = vec![
            Demand::new(0, NodeId(0), NodeId(3), TaskDag::single(P1)),
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
        ];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);
        assert_eq!(plan.installs.len(), 1);
        assert_eq!(plan.unsatisfied.len(), 1);
    }

    #[test]
    fn end_to_end_controller_drives_the_sim() {
        // Full loop: enumerate → solve → plan → apply → traffic computes.
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![Demand::new(7, NodeId(0), NodeId(3), TaskDag::single(P1))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);

        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        apply_plan(
            &mut net,
            &plan,
            &|_op, _prim| OpSpec::Dot {
                weights: vec![0.5; 4],
            },
            0.0,
        );
        let pch = PchHeader::request(P1, 7, 4);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            pch,
            Packet::encode_operands(&[1.0; 4]),
        );
        net.inject(0, NodeId(0), p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(net.stats.delivered[0].computed, "packet was never computed");
    }

    #[test]
    fn apply_is_idempotent() {
        let topo = Topology::fig1();
        let slots = vec![0, 1, 1, 0];
        let demands = vec![Demand::new(3, NodeId(0), NodeId(3), TaskDag::single(P1))];
        let inst = enumerate_options(&topo, &slots, &demands, 10);
        let sol = solve_exact(&inst, 1_000_000);
        let plan = build_plan(&demands, &inst, &sol.allocation);

        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let specs = |_op: u16, _p: Primitive| OpSpec::Dot {
            weights: vec![1.0; 4],
        };
        let first = apply_plan(&mut net, &plan, &specs, 0.0);
        assert_eq!(first.installed, 1);
        assert_eq!(first.skipped_installs, 0);
        assert!(first.fully_applied());
        let engines_before: usize = (0..4).map(|n| net.engines_at(NodeId(n)).len()).sum();

        // Re-applying the same plan changes nothing and reports skips.
        let second = apply_plan(&mut net, &plan, &specs, 0.0);
        assert_eq!(second.installed, 0);
        assert_eq!(second.skipped_installs, 1);
        assert!(second.fully_applied());
        let engines_after: usize = (0..4).map(|n| net.engines_at(NodeId(n)).len()).sum();
        assert_eq!(engines_before, engines_after, "no duplicate slots");
    }

    #[test]
    fn apply_reports_unappliable_commands() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let plan = UpdatePlan {
            installs: vec![InstallCmd {
                node: NodeId(99), // no such node
                primitive: P1,
                op_id: 0,
            }],
            overrides: vec![RouteOverrideCmd {
                router: NodeId(42),
                dst_prefix: Network::node_prefix(NodeId(3)),
                primitive: P1,
                via: NodeId(42), // no such node either
            }],
            unsatisfied: vec![],
        };
        let report = apply_plan(
            &mut net,
            &plan,
            &|_, _| OpSpec::Dot { weights: vec![1.0] },
            0.0,
        );
        assert!(!report.fully_applied());
        assert_eq!(report.installed, 0);
        assert_eq!(report.overrides_installed, 0);
        assert_eq!(report.failed.len(), 2);
        assert!(matches!(
            report.failed[0],
            FailedCmd::Install(_, ApplyError::NodeMissing(NodeId(99)))
        ));
        assert!(matches!(
            report.failed[1],
            FailedCmd::Override(_, ApplyError::NodeMissing(NodeId(42)))
        ));
    }

    #[test]
    fn apply_reports_via_unreachable_over_cut_links() {
        // Isolate node B by cutting all its links: an override via B
        // cannot land anywhere and must be reported, not dropped.
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        let b = net.topo.find_node("B").unwrap();
        let b_links: Vec<ofpc_net::LinkId> =
            net.topo.neighbors(b).into_iter().map(|(l, _)| l).collect();
        for l in b_links {
            net.set_link_up(l, false);
        }
        let plan = UpdatePlan {
            installs: vec![],
            overrides: vec![RouteOverrideCmd {
                router: b,
                dst_prefix: Network::node_prefix(NodeId(3)),
                primitive: P1,
                via: b,
            }],
            unsatisfied: vec![],
        };
        let report = apply_plan(&mut net, &plan, &|_, _| OpSpec::Nonlinear, 0.0);
        assert_eq!(report.overrides_installed, 0);
        assert!(matches!(
            report.failed[..],
            [FailedCmd::Override(_, ApplyError::ViaUnreachable(v))] if v == b
        ));
    }

    #[test]
    #[should_panic(expected = "primitive mismatch")]
    fn apply_rejects_wrong_spec() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        let plan = UpdatePlan {
            installs: vec![InstallCmd {
                node: NodeId(1),
                primitive: P1,
                op_id: 0,
            }],
            overrides: vec![],
            unsatisfied: vec![],
        };
        apply_plan(&mut net, &plan, &|_, _| OpSpec::Nonlinear, 0.0);
    }
}
