//! Compute demands and task DAGs.
//!
//! The controller's optimization input (§3): "user demands in terms of
//! photonic computing task dependency graphs (e.g., a computation DAG)".
//! A [`TaskDag`] is a set of primitive tasks with dependency edges; the
//! placement machinery consumes its topological linearization, because
//! tasks placed along a single packet path execute in path order.

use ofpc_engine::Primitive;
use ofpc_net::NodeId;
use serde::{Deserialize, Serialize};

/// Demand identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DemandId(pub u32);

/// A computation DAG: nodes are primitive tasks, edges are dependencies
/// (`from` must execute before `to`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDag {
    pub tasks: Vec<Primitive>,
    pub edges: Vec<(usize, usize)>,
}

impl TaskDag {
    /// A linear chain of tasks.
    pub fn chain(tasks: Vec<Primitive>) -> Self {
        let edges = (1..tasks.len()).map(|i| (i - 1, i)).collect();
        TaskDag { tasks, edges }
    }

    /// A single-task DAG.
    pub fn single(task: Primitive) -> Self {
        TaskDag {
            tasks: vec![task],
            edges: vec![],
        }
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Topological order of task indices, or `None` if the graph has a
    /// cycle (an invalid demand).
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for &(from, to) in &self.edges {
            assert!(from < n && to < n, "edge references unknown task");
            indegree[to] += 1;
        }
        // Kahn's algorithm with smallest-index-first tie-break for
        // determinism.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            for &(from, to) in &self.edges {
                if from == next {
                    indegree[to] -= 1;
                    if indegree[to] == 0 {
                        let pos = ready.partition_point(|&x| x < to);
                        ready.insert(pos, to);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None // cycle
        }
    }

    /// The primitive sequence in topological order (the placement chain).
    pub fn linearize(&self) -> Option<Vec<Primitive>> {
        Some(
            self.topo_order()?
                .into_iter()
                .map(|i| self.tasks[i])
                .collect(),
        )
    }
}

/// A user's compute demand: traffic from `src` to `dst` that needs the
/// DAG's tasks executed in-network along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    pub id: DemandId,
    pub src: NodeId,
    pub dst: NodeId,
    pub dag: TaskDag,
    /// Offered rate, requests/s (for utilization accounting).
    pub rate_rps: f64,
}

impl Demand {
    pub fn new(id: u32, src: NodeId, dst: NodeId, dag: TaskDag) -> Self {
        Demand {
            id: DemandId(id),
            src,
            dst,
            dag,
            rate_rps: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: Primitive = Primitive::VectorDotProduct;
    const P2: Primitive = Primitive::PatternMatching;
    const P3: Primitive = Primitive::NonlinearFunction;

    #[test]
    fn chain_linearizes_in_order() {
        let dag = TaskDag::chain(vec![P1, P3, P2]);
        assert_eq!(dag.linearize().unwrap(), vec![P1, P3, P2]);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn diamond_dag_respects_dependencies() {
        // 0 → {1, 2} → 3 (a DNN layer: dot products fan out, nonlinear
        // joins).
        let dag = TaskDag {
            tasks: vec![P1, P2, P1, P3],
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        };
        let order = dag.topo_order().unwrap();
        let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_is_rejected() {
        let dag = TaskDag {
            tasks: vec![P1, P2],
            edges: vec![(0, 1), (1, 0)],
        };
        assert_eq!(dag.topo_order(), None);
        assert_eq!(dag.linearize(), None);
    }

    #[test]
    fn topo_order_is_deterministic() {
        let dag = TaskDag {
            tasks: vec![P1, P1, P1],
            edges: vec![],
        };
        // Independent tasks: smallest index first.
        assert_eq!(dag.topo_order().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(TaskDag::single(P2).linearize().unwrap(), vec![P2]);
        let empty = TaskDag::chain(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.topo_order().unwrap(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn bad_edge_panics() {
        let dag = TaskDag {
            tasks: vec![P1],
            edges: vec![(0, 5)],
        };
        dag.topo_order();
    }
}
