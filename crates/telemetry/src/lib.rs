//! # ofpc-telemetry — the observability layer
//!
//! One handle, three facilities:
//!
//! * a [`MetricsRegistry`] of typed counters, gauges, and log-linear
//!   histograms (p50/p99/p999), labeled by tenant/site/link/stage, with
//!   Prometheus-text and JSON exporters;
//! * sim-time **tracing spans** recording enter/exit in virtual
//!   picoseconds, so one request's life — admission → queue → batch →
//!   fiber → engine → result — reconstructs as a trace tree, dumpable
//!   in Chrome `trace_event` JSON;
//! * **profiling hooks** in the hot paths (net-sim event loop,
//!   transponder TX/RX, engine MVM, serve dispatch) behind the
//!   zero-cost-when-disabled [`Telemetry`] handle.
//!
//! ## The handle
//!
//! [`Telemetry`] is a cheap `Clone` wrapper around
//! `Option<Arc<…>>`. [`Telemetry::disabled`] (also `Default`) carries
//! `None`: every operation is one branch on the option and no
//! allocation, so threading a disabled handle through the serve/net hot
//! paths leaves benches unaffected. [`Telemetry::enabled`] carries the
//! registry plus a trace buffer. Subsystems either take the handle and
//! emit through it, or pre-register typed handles ([`Counter`],
//! [`Histogram`], …) at setup time — those are lock-free atomics on the
//! sample path, and their no-op variants are likewise a single branch.
//!
//! Everything exported is deterministic: series are sorted by
//! `(name, labels)`, trace events by `(pid, tid, ts)` with stable
//! emission order, so a seeded run reproduces its trace and snapshot
//! byte-for-byte.

pub mod registry;
pub mod trace;

pub use registry::{
    labels, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Labels,
    MetricsRegistry, MetricsSnapshot,
};
pub use trace::{chrome_trace_json, track, validate_balanced, Phase, TraceBuffer, TraceEvent};

use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    trace: Mutex<TraceBuffer>,
}

/// The one handle the rest of the stack carries. Disabled by default;
/// every emit site guards on the inner `Option`, so the disabled cost
/// is a branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// A disconnected handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle with a fresh registry and trace buffer. Clones
    /// share both.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                trace: Mutex::new(TraceBuffer::new()),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // -- metrics ----------------------------------------------------------

    /// Register (or look up) a counter; a no-op handle when disabled.
    pub fn counter(&self, name: &str, labels: &Labels) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name, labels),
            None => Counter::noop(),
        }
    }

    /// Register (or look up) a gauge; a no-op handle when disabled.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name, labels),
            None => Gauge::noop(),
        }
    }

    /// Register (or look up) a histogram; a no-op handle when disabled.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, labels),
            None => Histogram::noop(),
        }
    }

    /// Deterministic snapshot of every registered series (empty when
    /// disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Prometheus text exposition (empty when disabled).
    pub fn prometheus_text(&self) -> String {
        match &self.inner {
            Some(i) => i.registry.prometheus_text(),
            None => String::new(),
        }
    }

    /// JSON form of [`Telemetry::snapshot`].
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }

    // -- tracing ----------------------------------------------------------

    /// Emit a complete `[start_ps, end_ps]` span as a `B`/`E` pair.
    #[inline]
    pub fn span(&self, pid: u32, tid: u64, cat: &str, name: &str, start_ps: u64, end_ps: u64) {
        if let Some(i) = &self.inner {
            i.trace
                .lock()
                .unwrap()
                .span(pid, tid, cat, name, start_ps, end_ps);
        }
    }

    /// [`Telemetry::span`] with `key=value` annotations on the begin
    /// event.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn span_args(
        &self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        start_ps: u64,
        end_ps: u64,
        args: Vec<(String, String)>,
    ) {
        if let Some(i) = &self.inner {
            i.trace
                .lock()
                .unwrap()
                .span_args(pid, tid, cat, name, start_ps, end_ps, args);
        }
    }

    /// Open a span whose end is emitted separately (see
    /// [`TraceBuffer::begin`] for the ordering contract).
    #[inline]
    pub fn begin(
        &self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_ps: u64,
        args: Vec<(String, String)>,
    ) {
        if let Some(i) = &self.inner {
            i.trace
                .lock()
                .unwrap()
                .begin(pid, tid, cat, name, ts_ps, args);
        }
    }

    /// Close the most recent open span of `name` on the track.
    #[inline]
    pub fn end(&self, pid: u32, tid: u64, cat: &str, name: &str, ts_ps: u64) {
        if let Some(i) = &self.inner {
            i.trace.lock().unwrap().end(pid, tid, cat, name, ts_ps);
        }
    }

    /// Emit an instant event (faults, sheds, state flips).
    #[inline]
    pub fn instant(
        &self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_ps: u64,
        args: Vec<(String, String)>,
    ) {
        if let Some(i) = &self.inner {
            i.trace
                .lock()
                .unwrap()
                .instant(pid, tid, cat, name, ts_ps, args);
        }
    }

    /// Number of buffered trace events.
    pub fn trace_len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.trace.lock().unwrap().len())
    }

    /// Export-ordered copy of the trace buffer (empty when disabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.trace.lock().unwrap().sorted_events())
    }

    /// Chrome-trace JSON dump of [`Telemetry::trace_events`].
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.trace_events())
    }
}

/// Emit a sim-time span through a [`Telemetry`] handle:
///
/// ```
/// use ofpc_telemetry::{span, track, Telemetry};
/// let tel = Telemetry::enabled();
/// span!(tel, track::SITES, 65, "tx.dac", 1_000, 2_000);
/// span!(tel, track::SITES, 65, "serve.batch", 2_000, 9_000; "size" => "4");
/// assert_eq!(tel.trace_len(), 4);
/// ```
#[macro_export]
macro_rules! span {
    ($tel:expr, $pid:expr, $tid:expr, $name:expr, $start:expr, $end:expr) => {
        $tel.span($pid, $tid, "span", $name, $start, $end)
    };
    ($tel:expr, $pid:expr, $tid:expr, $name:expr, $start:expr, $end:expr; $($k:expr => $v:expr),+) => {
        $tel.span_args(
            $pid,
            $tid,
            "span",
            $name,
            $start,
            $end,
            vec![$(($k.to_string(), $v.to_string())),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("x_total", &Labels::new()).inc();
        tel.span(track::REQUESTS, 1, "serve", "request", 0, 10);
        assert_eq!(tel.trace_len(), 0);
        assert_eq!(tel.snapshot(), MetricsSnapshot::default());
        assert_eq!(tel.prometheus_text(), "");
        assert_eq!(tel.chrome_trace_json(), "[\n]");
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let c = tel.counter("x_total", &Labels::new());
        let tel2 = tel.clone();
        tel2.counter("x_total", &Labels::new()).add(5);
        c.inc();
        assert_eq!(tel.snapshot().counter("x_total", &Labels::new()), Some(6));
        span!(tel2, track::NET, 3, "tx.dac", 100, 200);
        assert_eq!(tel.trace_len(), 2);
        assert!(validate_balanced(&tel.trace_events()).is_ok());
    }

    #[test]
    fn span_macro_with_args_annotates_begin_event() {
        let tel = Telemetry::enabled();
        span!(tel, track::SITES, 9, "serve.batch", 10, 20; "size" => 4, "tenant" => 1);
        let evs = tel.trace_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].args.len(), 2);
        assert!(evs[1].args.is_empty());
    }
}
