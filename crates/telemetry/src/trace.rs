//! Sim-time tracing: begin/end spans and instant events recorded in
//! **virtual** picoseconds, dumped in Chrome Trace Event Format
//! (`chrome://tracing` / Perfetto "JSON Array Format").
//!
//! Because the simulator computes an event's end time rather than
//! waiting for it, spans are not RAII drop-guards: callers emit a
//! `B`/`E` pair explicitly (usually via [`TraceBuffer::span`], which
//! pushes both at once from known start/end timestamps). Events carry a
//! `(pid, tid)` track: `pid` groups a subsystem (requests, sites, net,
//! recovery), `tid` an entity within it (request id, `node*64+slot`,
//! link id). The dump sorts by `(pid, tid, ts)` — stably, so same-tick
//! begin/end pairs keep emission order — which makes per-track `B`/`E`
//! nesting validatable ([`validate_balanced`]) and the file
//! byte-deterministic for a deterministic run.

use serde::Serialize;
use std::fmt::Write as _;

/// Track groups (`pid` in the Chrome trace).
pub mod track {
    /// Per-request lifecycle spans (`tid` = request id).
    pub const REQUESTS: u32 = 1;
    /// Per-engine-slot service spans (`tid` = node·64 + slot).
    pub const SITES: u32 = 2;
    /// Network / link / engine-health events (`tid` = link or node id).
    pub const NET: u32 = 3;
    /// Recovery-stage spans (`tid` = fault sequence number).
    pub const RECOVERY: u32 = 4;
    /// Parallel-pool task attribution (`tid` = worker index; timestamps
    /// are task-slot ordinals, not picoseconds).
    pub const PAR: u32 = 5;
    /// Compiled-graph stage execution spans (`tid` = request index).
    pub const GRAPH: u32 = 6;
    /// Design-space-exploration decisions: lowering's hardware-variant
    /// bindings and sweep-point evaluations (`tid` = stage or point
    /// index).
    pub const DSE: u32 = 7;
    /// Resilience decisions: redundancy-set lifecycle, duplicate
    /// cancellation, parity reconstruction, and protection-fallback
    /// warnings (`tid` = redundancy set id).
    pub const RESIL: u32 = 8;
    /// Sharded-controller solves: per-shard re-plan spans and boundary
    /// reconciliation instants (`tid` = shard/region id; timestamps are
    /// decision sequence numbers, not picoseconds — emitted post-solve
    /// in shard order, so the trace never depends on worker count).
    pub const SHARD: u32 = 9;
    /// Ingest front-end: per-shard epoch spans and rebalance instants
    /// (`tid` = ingest shard id; ps timestamps, emitted by the
    /// sequential driver after each epoch gather in shard order, so the
    /// trace never depends on worker count).
    pub const INGEST: u32 = 10;
}

/// Event phase: duration begin/end or instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Phase {
    B,
    E,
    I,
}

impl Phase {
    fn ph(self) -> char {
        match self {
            Phase::B => 'B',
            Phase::E => 'E',
            Phase::I => 'i',
        }
    }
}

/// One trace event in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    pub name: String,
    pub cat: String,
    pub phase: Phase,
    pub ts_ps: u64,
    pub pid: u32,
    pub tid: u64,
    /// Free-form `key=value` annotations (serialized into `args`).
    pub args: Vec<(String, String)>,
}

/// Append-only event buffer behind the `Telemetry` handle's mutex.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Emit a complete `[start_ps, end_ps]` span as a `B`/`E` pair.
    pub fn span(&mut self, pid: u32, tid: u64, cat: &str, name: &str, start_ps: u64, end_ps: u64) {
        self.span_args(pid, tid, cat, name, start_ps, end_ps, Vec::new());
    }

    /// [`TraceBuffer::span`] with annotations attached to the `B` event.
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &mut self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        start_ps: u64,
        end_ps: u64,
        args: Vec<(String, String)>,
    ) {
        let end_ps = end_ps.max(start_ps);
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::B,
            ts_ps: start_ps,
            pid,
            tid,
            args,
        });
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::E,
            ts_ps: end_ps,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Open a span. The matching [`TraceBuffer::end`] must be emitted
    /// after every child event that shares its end timestamp, so
    /// same-tick ties sort child-closes before the parent's close.
    pub fn begin(
        &mut self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_ps: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::B,
            ts_ps,
            pid,
            tid,
            args,
        });
    }

    /// Close the most recent open span of `name` on the track.
    pub fn end(&mut self, pid: u32, tid: u64, cat: &str, name: &str, ts_ps: u64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::E,
            ts_ps,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Emit an instant event.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_ps: u64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::I,
            ts_ps,
            pid,
            tid,
            args,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sorted for export: by `(pid, tid, ts)`, stable so that
    /// zero-length spans keep their `B` before their `E`.
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|a| (a.pid, a.tid, a.ts_ps));
        evs
    }
}

/// Render events as a Chrome-trace JSON array (`ts` in microseconds,
/// fractional; `chrome://tracing` and Perfetto load this directly).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        let ts_us = ev.ts_ps as f64 / 1e6;
        let mut args = String::new();
        for (j, (k, v)) in ev.args.iter().enumerate() {
            if j > 0 {
                args.push(',');
            }
            let mut key = String::new();
            serde::escape_json(k, &mut key);
            let mut val = String::new();
            serde::escape_json(v, &mut val);
            let _ = write!(args, "\"{key}\":\"{val}\"");
        }
        let mut name = String::new();
        serde::escape_json(&ev.name, &mut name);
        let mut cat = String::new();
        serde::escape_json(&ev.cat, &mut cat);
        let _ = write!(
            out,
            "  {{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
            ev.phase.ph(),
            serde::format_f64(ts_us),
            ev.pid,
            ev.tid,
        );
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Check that every track's `B`/`E` events nest properly (a stack
/// discipline: each `E` closes the most recent open `B` of the same
/// name, and nothing is left open). Returns the number of complete
/// spans, or a description of the first violation.
///
/// Expects events in export order ([`TraceBuffer::sorted_events`]).
pub fn validate_balanced(events: &[TraceEvent]) -> Result<usize, String> {
    let mut spans = 0usize;
    let mut stack: Vec<(&str, u32, u64)> = Vec::new();
    let mut cur: Option<(u32, u64)> = None;
    for ev in events {
        let track = (ev.pid, ev.tid);
        if cur != Some(track) {
            if let Some((name, pid, tid)) = stack.first() {
                return Err(format!("span '{name}' left open on track ({pid},{tid})"));
            }
            stack.clear();
            cur = Some(track);
        }
        match ev.phase {
            Phase::B => stack.push((&ev.name, ev.pid, ev.tid)),
            Phase::E => match stack.pop() {
                Some((name, _, _)) if name == ev.name => spans += 1,
                Some((name, _, _)) => {
                    return Err(format!(
                        "end '{}' does not match open span '{name}' on track ({},{}) at {} ps",
                        ev.name, ev.pid, ev.tid, ev.ts_ps
                    ));
                }
                None => {
                    return Err(format!(
                        "end '{}' with no open span on track ({},{}) at {} ps",
                        ev.name, ev.pid, ev.tid, ev.ts_ps
                    ));
                }
            },
            Phase::I => {}
        }
    }
    if let Some((name, pid, tid)) = stack.first() {
        return Err(format!("span '{name}' left open on track ({pid},{tid})"));
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_pairs_balance() {
        let mut buf = TraceBuffer::new();
        buf.span(track::REQUESTS, 7, "serve", "request", 100, 900);
        buf.span(track::REQUESTS, 7, "serve", "serve.queue", 100, 300);
        buf.span(track::REQUESTS, 7, "serve", "engine.mvm", 300, 800);
        buf.instant(track::NET, 1, "fault", "link.down", 500, Vec::new());
        let evs = buf.sorted_events();
        assert_eq!(validate_balanced(&evs), Ok(3));
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let mut buf = TraceBuffer::new();
        buf.push(TraceEvent {
            name: "a".into(),
            cat: "c".into(),
            phase: Phase::B,
            ts_ps: 0,
            pid: 1,
            tid: 1,
            args: Vec::new(),
        });
        buf.push(TraceEvent {
            name: "b".into(),
            cat: "c".into(),
            phase: Phase::E,
            ts_ps: 5,
            pid: 1,
            tid: 1,
            args: Vec::new(),
        });
        assert!(validate_balanced(&buf.sorted_events()).is_err());
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let mut buf = TraceBuffer::new();
        buf.push(TraceEvent {
            name: "a".into(),
            cat: "c".into(),
            phase: Phase::B,
            ts_ps: 0,
            pid: 1,
            tid: 1,
            args: Vec::new(),
        });
        assert!(validate_balanced(&buf.sorted_events()).is_err());
    }

    #[test]
    fn chrome_json_is_a_valid_array_with_us_timestamps() {
        let mut buf = TraceBuffer::new();
        buf.span_args(
            track::SITES,
            65,
            "serve",
            "engine.batch",
            2_000_000,
            3_500_000,
            vec![("size".into(), "4".into())],
        );
        let json = chrome_trace_json(&buf.sorted_events());
        let v = serde_json::from_str::<serde_json::Value>(&json).expect("parses");
        let arr = v.as_seq().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(arr[0].get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(arr[1].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(arr[1].get("ts").unwrap().as_f64(), Some(3.5));
        assert_eq!(
            arr[0].get("args").unwrap().get("size").unwrap().as_str(),
            Some("4")
        );
    }

    #[test]
    fn zero_length_span_keeps_b_before_e() {
        let mut buf = TraceBuffer::new();
        buf.span(track::REQUESTS, 1, "serve", "serve.queue", 50, 50);
        let evs = buf.sorted_events();
        assert_eq!(evs[0].phase, Phase::B);
        assert_eq!(evs[1].phase, Phase::E);
        assert_eq!(validate_balanced(&evs), Ok(1));
    }
}
