//! The metrics registry: typed counters, gauges, and log-linear
//! histograms, labeled by arbitrary `key=value` pairs (tenant, site,
//! link, stage, …), with deterministic Prometheus-text and JSON export.
//!
//! Handles are cheap to clone and lock-free on the hot path: a
//! [`Counter`] is an `Arc<AtomicU64>` bumped with a relaxed fetch-add,
//! a [`Gauge`] stores `f64` bits in an `AtomicU64`, and a [`Histogram`]
//! indexes a fixed table of atomic buckets. The registry's mutex is
//! taken only at registration and export time, never per-sample. A
//! no-op handle ([`Counter::noop`] etc.) is a `None` and compiles down
//! to a single branch — that is what a disabled
//! [`Telemetry`](crate::Telemetry) hands out.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sorted `key=value` label pairs identifying one series of a metric.
pub type Labels = Vec<(String, String)>;

/// Build a sorted label set from `(key, value)` pairs.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    let mut v: Labels = pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Labels,
}

// ---------------------------------------------------------------------------
// Counter

/// Monotone `u64` counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disconnected counter: every operation is a no-op.
    pub fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Gauge

/// An `f64` gauge (set/add), stored as bits in an `AtomicU64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disconnected gauge: every operation is a no-op.
    pub fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `dv` (compare-and-swap loop; fine for the sim's contention
    /// levels, which are effectively zero).
    #[inline]
    pub fn add(&self, dv: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + dv).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

// ---------------------------------------------------------------------------
// Histogram

/// Sub-buckets per octave: 16 → worst-case relative quantization error
/// of a bucket midpoint is 1/32 ≈ 3.1%.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values 0..SUB get exact unit buckets; each octave above contributes
/// SUB buckets up to the top bit of `u64`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Map a value to its log-linear bucket. Exact below `SUB`; above, the
/// top `SUB_BITS+1` significant bits select the bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - SUB_BITS as usize + 1;
    let sub = ((v >> (msb - SUB_BITS as usize)) - SUB as u64) as usize;
    octave * SUB + sub
}

/// Inclusive-exclusive `[lo, hi)` value range covered by a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64 + 1);
    }
    let octave = idx / SUB;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (octave - 1);
    let lo = (SUB as u64 + sub) << (octave - 1);
    (lo, lo.saturating_add(width))
}

/// Representative value reported for a bucket: its midpoint.
fn bucket_mid(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    lo + (hi - lo) / 2
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum kept as f64 bits (a u64 sum of picosecond latencies can
    /// overflow over long runs).
    sum_bits: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v as f64).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Nearest-rank percentile over the bucketed distribution; returns
    /// the matched bucket's midpoint (0 when empty).
    fn percentile(&self, p: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_mid(idx);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    fn snapshot(&self, name: &str, labels: &Labels) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            labels: labels.clone(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(50.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
        }
    }
}

/// Log-linear histogram of `u64` samples (latencies in ps, batch
/// sizes, …) with approximate p50/p99/p999. Worst-case quantization
/// error of a reported percentile is ±3.2% of the true value.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disconnected histogram: every operation is a no-op.
    pub fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Approximate percentile (`p` in percent, e.g. `99.9`).
    pub fn percentile(&self, p: f64) -> u64 {
        self.0.as_ref().map_or(0, |h| h.percentile(p))
    }
}

// ---------------------------------------------------------------------------
// Snapshots

/// Point-in-time value of one counter series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub labels: Labels,
    pub value: u64,
}

/// Point-in-time value of one gauge series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub labels: Labels,
    pub value: f64,
}

/// Point-in-time summary of one histogram series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub labels: Labels,
    pub count: u64,
    pub sum: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
}

/// Deterministic (sorted by name, then labels) registry snapshot —
/// the JSON exporter serializes exactly this.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter series, if present.
    pub fn counter(&self, name: &str, labels: &Labels) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && &c.labels == labels)
            .map(|c| c.value)
    }

    /// Value of a gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && &g.labels == labels)
            .map(|g| g.value)
    }

    /// Summary of a histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && &h.labels == labels)
    }
}

// ---------------------------------------------------------------------------
// Registry

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    gauges: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    histograms: BTreeMap<SeriesKey, Arc<HistogramCore>>,
}

/// The series store. Registration (cold path) takes a mutex and dedups
/// by `(name, labels)` — registering the same series twice returns a
/// handle to the same cell. Sampling through a handle never locks.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &str, labels: &Labels) -> Counter {
        let key = SeriesKey {
            name: name.to_string(),
            labels: labels.clone(),
        };
        let mut inner = self.inner.lock().unwrap();
        let cell = inner
            .counters
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Gauge {
        let key = SeriesKey {
            name: name.to_string(),
            labels: labels.clone(),
        };
        let mut inner = self.inner.lock().unwrap();
        let cell = inner
            .gauges
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Histogram {
        let key = SeriesKey {
            name: name.to_string(),
            labels: labels.clone(),
        };
        let mut inner = self.inner.lock().unwrap();
        let cell = inner
            .histograms
            .entry(key)
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram(Some(Arc::clone(cell)))
    }

    /// Deterministic point-in-time snapshot of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| CounterSnapshot {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: c.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| GaugeSnapshot {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: f64::from_bits(g.load(Ordering::Relaxed)),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| h.snapshot(&k.name, &k.labels))
                .collect(),
        }
    }

    /// Prometheus text exposition of every series (sorted, hence
    /// byte-deterministic for a deterministic run). Histograms emit
    /// cumulative `_bucket{le=...}` lines for non-empty buckets plus
    /// `+Inf`, `_sum`, and `_count`.
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_type: Option<(String, String)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_ref().map(|(n, k)| (n.as_str(), k.as_str())) != Some((name, kind)) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = Some((name.to_string(), kind.to_string()));
            }
        };
        for (k, c) in &inner.counters {
            type_line(&mut out, &k.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                k.name,
                label_text(&k.labels),
                c.load(Ordering::Relaxed)
            ));
        }
        for (k, g) in &inner.gauges {
            type_line(&mut out, &k.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                k.name,
                label_text(&k.labels),
                f64::from_bits(g.load(Ordering::Relaxed))
            ));
        }
        for (k, h) in &inner.histograms {
            type_line(&mut out, &k.name, "histogram");
            let mut cum = 0u64;
            for (idx, b) in h.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                cum += n;
                let (_, hi) = bucket_bounds(idx);
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    k.name,
                    label_text_with(&k.labels, "le", &hi.to_string()),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                k.name,
                label_text_with(&k.labels, "le", "+Inf"),
                h.count.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                k.name,
                label_text(&k.labels),
                f64::from_bits(h.sum_bits.load(Ordering::Relaxed))
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                k.name,
                label_text(&k.labels),
                h.count.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

fn label_text(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

fn label_text_with(labels: &Labels, extra_k: &str, extra_v: &str) -> String {
    let mut all = labels.clone();
    all.push((extra_k.to_string(), extra_v.to_string()));
    all.sort();
    label_text(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "jump at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "{v} outside [{lo},{hi}) idx {idx}");
            prev = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo2, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, lo2, "gap between bucket {idx} and {}", idx + 1);
        }
    }

    #[test]
    fn histogram_percentiles_are_close_to_exact() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &labels(&[("tenant", "0")]));
        let mut exact: Vec<u64> = (0..10_000).map(|i| 1_000 + 37 * i).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for p in [50.0, 99.0, 99.9] {
            let rank = ((p / 100.0 * exact.len() as f64).ceil() as usize).max(1);
            let truth = exact[rank - 1] as f64;
            let approx = h.percentile(p) as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.04, "p{p}: approx {approx} vs exact {truth}");
        }
    }

    #[test]
    fn registry_dedups_series_and_snapshot_is_sorted() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &labels(&[("t", "1")]));
        let b = reg.counter("x_total", &labels(&[("t", "1")]));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series shares the cell");
        reg.counter("a_total", &Labels::new()).inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a_total", "x_total"]);
        assert_eq!(snap.counter("x_total", &labels(&[("t", "1")])), Some(3));
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.add(1.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.record(5);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn prometheus_text_has_type_lines_and_inf_bucket() {
        let reg = MetricsRegistry::new();
        reg.counter("req_total", &labels(&[("tenant", "0")])).inc();
        reg.gauge("load", &Labels::new()).set(0.5);
        let h = reg.histogram("lat_ps", &Labels::new());
        h.record(10);
        h.record(1_000);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{tenant=\"0\"} 1"));
        assert!(text.contains("# TYPE load gauge"));
        assert!(text.contains("# TYPE lat_ps histogram"));
        assert!(text.contains("lat_ps_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ps_count 2"));
    }
}
