//! Fault plans: deterministic schedules of timed fault events.
//!
//! A [`FaultPlan`] is data, not behavior — the same plan injected into
//! the same seeded network yields the same packet-level timeline, which
//! is what makes fault scenarios replayable (the workspace replay tests
//! pin this). Plans are built by hand for targeted scenarios (cut *this*
//! fiber at *this* time) or generated from MTBF/MTTR statistics with a
//! seeded RNG for availability sweeps.

use ofpc_net::{LinkId, NodeId, Topology};
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// One kind of fault (or repair) the substrate can suffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fiber cut: the link drops, queued and in-flight packets are lost
    /// as loss-of-light.
    FiberCut { link: LinkId },
    /// The cut fiber is spliced (or the flap ends): link restored.
    LinkRestore { link: LinkId },
    /// Every engine slot at the site hard-fails; packets pass through
    /// tagged `EngineUnhealthy` instead of carrying garbage results.
    EngineFail { node: NodeId },
    /// The failed site is repaired.
    EngineRepair { node: NodeId },
    /// Analog noise at the site steps to `sigma` — one rung of a slow
    /// drift ramp (EDFA gain wander, laser droop, PD degradation).
    NoiseStep { node: NodeId, sigma: f64 },
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at_ps: u64,
    pub kind: FaultKind,
}

/// A schedule of fault events, kept sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

/// Mean-time-between-failures statistics for random plan generation.
/// All times in picoseconds of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MtbfSpec {
    /// Mean time between fiber cuts, per link (exponential inter-fault
    /// times). `None` disables link faults.
    pub link_mtbf_ps: Option<u64>,
    /// Mean time between engine hard-fails, per compute site. `None`
    /// disables engine faults.
    pub engine_mtbf_ps: Option<u64>,
    /// Mean time to repair, applied to both fault classes.
    pub mttr_ps: u64,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add one event, keeping the schedule time-sorted (stable: events
    /// at the same instant keep insertion order).
    pub fn push(&mut self, ev: FaultEvent) {
        let idx = self.events.partition_point(|e| e.at_ps <= ev.at_ps);
        self.events.insert(idx, ev);
    }

    /// Cut `link` at `at_ps`, permanently.
    pub fn cut(mut self, at_ps: u64, link: LinkId) -> Self {
        self.push(FaultEvent {
            at_ps,
            kind: FaultKind::FiberCut { link },
        });
        self
    }

    /// Flap `link`: down at `at_ps`, back up `down_ps` later.
    pub fn flap(mut self, at_ps: u64, link: LinkId, down_ps: u64) -> Self {
        self.push(FaultEvent {
            at_ps,
            kind: FaultKind::FiberCut { link },
        });
        self.push(FaultEvent {
            at_ps: at_ps + down_ps,
            kind: FaultKind::LinkRestore { link },
        });
        self
    }

    /// Hard-fail the engines at `node` at `at_ps`, permanently.
    pub fn engine_fail(mut self, at_ps: u64, node: NodeId) -> Self {
        self.push(FaultEvent {
            at_ps,
            kind: FaultKind::EngineFail { node },
        });
        self
    }

    /// Hard-fail then repair the engines at `node`.
    pub fn engine_outage(mut self, at_ps: u64, node: NodeId, down_ps: u64) -> Self {
        self.push(FaultEvent {
            at_ps,
            kind: FaultKind::EngineFail { node },
        });
        self.push(FaultEvent {
            at_ps: at_ps + down_ps,
            kind: FaultKind::EngineRepair { node },
        });
        self
    }

    /// A staircase noise ramp at `node`: `steps` rungs starting at
    /// `start_ps`, spaced `step_ps`, with sigma given per rung — how a
    /// slow analog drift enters the packet simulator.
    pub fn noise_ramp(mut self, node: NodeId, start_ps: u64, step_ps: u64, sigmas: &[f64]) -> Self {
        for (i, &sigma) in sigmas.iter().enumerate() {
            self.push(FaultEvent {
                at_ps: start_ps + i as u64 * step_ps,
                kind: FaultKind::NoiseStep { node, sigma },
            });
        }
        self
    }

    /// Link up/down transitions as `(at_ps, link, up)` tuples, time
    /// order preserved — the topology-level view a controller (rather
    /// than the packet simulator) consumes: the sharded allocator maps
    /// these to shard-local re-plans on cut and repair.
    pub fn link_events(&self) -> Vec<(u64, LinkId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::FiberCut { link } => Some((e.at_ps, link, false)),
                FaultKind::LinkRestore { link } => Some((e.at_ps, link, true)),
                _ => None,
            })
            .collect()
    }

    /// Engine-site up/down transitions as `(at_ps, node, up)` tuples,
    /// time order preserved — the compute-capacity view: a site going
    /// down must shed its live allocations (shard-local re-plan), a
    /// repair returns its slots to the pool.
    pub fn engine_events(&self) -> Vec<(u64, NodeId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::EngineFail { node } => Some((e.at_ps, node, false)),
                FaultKind::EngineRepair { node } => Some((e.at_ps, node, true)),
                _ => None,
            })
            .collect()
    }

    /// Generate a random plan over `[0, horizon_ps)` from MTBF/MTTR
    /// statistics: every link and every listed compute site runs an
    /// independent fail/repair renewal process with exponential
    /// inter-fault times. Deterministic for a given RNG state.
    pub fn random(
        topo: &Topology,
        sites: &[NodeId],
        horizon_ps: u64,
        spec: MtbfSpec,
        rng: &mut SimRng,
    ) -> Self {
        let mut plan = FaultPlan::new();
        let draw = |rng: &mut SimRng, mean_ps: u64| -> u64 {
            rng.exponential(1.0 / mean_ps as f64).round() as u64
        };
        if let Some(mtbf) = spec.link_mtbf_ps {
            for link_idx in 0..topo.link_count() {
                let link = LinkId(link_idx as u32);
                let mut t = draw(rng, mtbf);
                while t < horizon_ps {
                    plan.push(FaultEvent {
                        at_ps: t,
                        kind: FaultKind::FiberCut { link },
                    });
                    let up = t.saturating_add(spec.mttr_ps);
                    plan.push(FaultEvent {
                        at_ps: up,
                        kind: FaultKind::LinkRestore { link },
                    });
                    t = up.saturating_add(draw(rng, mtbf));
                }
            }
        }
        if let Some(mtbf) = spec.engine_mtbf_ps {
            for &node in sites {
                let mut t = draw(rng, mtbf);
                while t < horizon_ps {
                    plan.push(FaultEvent {
                        at_ps: t,
                        kind: FaultKind::EngineFail { node },
                    });
                    let up = t.saturating_add(spec.mttr_ps);
                    plan.push(FaultEvent {
                        at_ps: up,
                        kind: FaultKind::EngineRepair { node },
                    });
                    t = up.saturating_add(draw(rng, mtbf));
                }
            }
        }
        plan
    }

    /// Events in `[from_ps, to_ps)`.
    pub fn window(&self, from_ps: u64, to_ps: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.at_ps >= from_ps && e.at_ps < to_ps)
    }

    /// Count of hard faults (cuts + engine fails; repairs and noise
    /// steps excluded).
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::FiberCut { .. } | FaultKind::EngineFail { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order() {
        let plan = FaultPlan::new()
            .cut(500, LinkId(1))
            .engine_fail(100, NodeId(2))
            .flap(300, LinkId(0), 50);
        let times: Vec<u64> = plan.events.iter().map(|e| e.at_ps).collect();
        assert_eq!(times, vec![100, 300, 350, 500]);
    }

    #[test]
    fn typed_event_views_split_by_kind() {
        let plan = FaultPlan::new()
            .flap(300, LinkId(0), 50)
            .engine_outage(100, NodeId(2), 400)
            .noise_ramp(NodeId(1), 200, 100, &[0.01]);
        assert_eq!(
            plan.link_events(),
            vec![(300, LinkId(0), false), (350, LinkId(0), true)]
        );
        assert_eq!(
            plan.engine_events(),
            vec![(100, NodeId(2), false), (500, NodeId(2), true)]
        );
    }

    #[test]
    fn flap_and_outage_pair_fail_with_repair() {
        let plan =
            FaultPlan::new()
                .flap(1_000, LinkId(3), 200)
                .engine_outage(2_000, NodeId(1), 500);
        assert_eq!(plan.events.len(), 4);
        assert_eq!(plan.fault_count(), 2);
        assert_eq!(
            plan.events[1].kind,
            FaultKind::LinkRestore { link: LinkId(3) }
        );
        assert_eq!(plan.events[1].at_ps, 1_200);
        assert_eq!(
            plan.events[3].kind,
            FaultKind::EngineRepair { node: NodeId(1) }
        );
    }

    #[test]
    fn noise_ramp_is_a_staircase() {
        let plan = FaultPlan::new().noise_ramp(NodeId(0), 100, 10, &[0.01, 0.02, 0.03]);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[2].at_ps, 120);
        assert!(matches!(plan.events[2].kind, FaultKind::NoiseStep { sigma, .. } if sigma == 0.03));
    }

    #[test]
    fn random_plan_is_deterministic_and_scales_with_mtbf() {
        let topo = Topology::fig1();
        let sites = [NodeId(1), NodeId(2)];
        let spec_short = MtbfSpec {
            link_mtbf_ps: Some(1_000_000),
            engine_mtbf_ps: Some(1_000_000),
            mttr_ps: 100_000,
        };
        let horizon = 100_000_000;
        let mut rng_a = SimRng::seed_from_u64(9);
        let mut rng_b = SimRng::seed_from_u64(9);
        let a = FaultPlan::random(&topo, &sites, horizon, spec_short, &mut rng_a);
        let b = FaultPlan::random(&topo, &sites, horizon, spec_short, &mut rng_b);
        assert_eq!(a, b, "same seed, same plan");
        assert!(a.fault_count() > 0);
        // Longer MTBF ⇒ fewer faults.
        let spec_long = MtbfSpec {
            link_mtbf_ps: Some(50_000_000),
            engine_mtbf_ps: Some(50_000_000),
            mttr_ps: 100_000,
        };
        let mut rng_c = SimRng::seed_from_u64(9);
        let c = FaultPlan::random(&topo, &sites, horizon, spec_long, &mut rng_c);
        assert!(
            c.fault_count() < a.fault_count(),
            "long {} vs short {}",
            c.fault_count(),
            a.fault_count()
        );
        // Times sorted and inside the repair-extended horizon.
        assert!(a.events.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
    }

    #[test]
    fn window_filters_by_time() {
        let plan = FaultPlan::new().cut(10, LinkId(0)).cut(20, LinkId(1));
        assert_eq!(plan.window(0, 15).count(), 1);
        assert_eq!(plan.window(0, 25).count(), 2);
        assert_eq!(plan.window(15, 18).count(), 0);
    }
}
