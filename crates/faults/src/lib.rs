//! # ofpc-faults — fault injection and failure recovery
//!
//! The robustness question the paper leaves open: computing *in* the
//! network means inheriting the network's failure modes. A WAN loses
//! fibers to backhoes, amplifiers drift, lasers droop, photodetectors
//! degrade — and unlike a datacenter accelerator, a photonic engine
//! spliced into a live route cannot simply be rebooted out of the data
//! path. This crate closes the loop the §3 controller sketches
//! ("continuously track the status of all photonic compute
//! transponders"): inject faults, detect them, and recover.
//!
//! * [`plan`] — [`plan::FaultPlan`]: a deterministic, seedable schedule
//!   of timed fault events (fiber cuts, link flaps, engine hard-fails,
//!   analog noise steps), including Poisson MTBF/MTTR generation.
//! * [`mod@inject`] — threads a plan into `ofpc-net`'s discrete-event
//!   simulator as scheduled events, so faults interleave with packets
//!   in one deterministic timeline.
//! * [`drift`] — slow analog failure models (EDFA gain drift, laser
//!   power droop, photodetector responsivity degradation) mapped to the
//!   observables the `ofpc-transponder` watchdog consumes.
//! * [`orchestrator`] — the recovery loop: reconverge routes, re-run the
//!   allocator excluding failed sites, re-install the plan, and account
//!   time-to-recovery ([`ofpc_controller::RecoveryTimeline`]) and
//!   availability.
//! * [`storm`] — seeded fault *storms*: bursts of correlated fiber cuts
//!   with engine fails and analog drift riding along, the adversarial
//!   input the proactive multipath layer (`ofpc-resil`) is gated
//!   against.

pub mod drift;
pub mod inject;
pub mod orchestrator;
pub mod plan;
pub mod storm;

pub use drift::{EdfaGainDrift, LaserDroop, PdDegradation};
pub use inject::inject;
pub use orchestrator::{trace_recovery, AvailabilityLedger, Orchestrator, RecoveryOutcome};
pub use plan::{FaultEvent, FaultKind, FaultPlan, MtbfSpec};
pub use storm::{generate_storm, StormSpec};
