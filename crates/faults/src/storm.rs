//! Fault storms: seeded bursts of *correlated* failures.
//!
//! The MTBF/MTTR generator in [`crate::plan`] models independent
//! renewal processes — realistic for steady-state availability, but the
//! events that actually take serving systems down are correlated:
//! a backhoe severs a conduit carrying several fibers, a power sag
//! flaps every engine in a hut, an amplifier chain drifts as a unit.
//! A [`StormSpec`] generates exactly that shape: `bursts` clusters of
//! fiber cuts (each burst draws `cuts_per_burst` distinct links, spread
//! over a short `burst_jitter_ps` window), optional engine hard-fails
//! riding the same bursts, and a slow analog drift ramp underneath.
//!
//! Storms are plain [`FaultPlan`]s: injectable into the packet
//! simulator via [`crate::inject()`], convertible to serve-level events,
//! and byte-identically replayable — the E18 harness runs the *same*
//! storm against unprotected, replica, and parity configurations.

use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use ofpc_net::{LinkId, NodeId};
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// Shape of one seeded fault storm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormSpec {
    /// Number of correlated-cut bursts over the horizon.
    pub bursts: usize,
    /// Fiber cuts per burst (distinct links, ≤ the link population).
    pub cuts_per_burst: usize,
    /// Spread of cut instants within one burst, ps (0 = simultaneous).
    pub burst_jitter_ps: u64,
    /// Time from each cut to its splice (link restore), ps.
    pub cut_down_ps: u64,
    /// Engine hard-fails per burst (distinct sites; 0 disables).
    pub engines_per_burst: usize,
    /// Time from each engine fail to its repair, ps.
    pub engine_down_ps: u64,
    /// Analog drift underneath the storm: per-site noise-sigma rungs
    /// stepped evenly across the horizon (empty disables).
    pub drift_sigmas: Vec<f64>,
}

impl StormSpec {
    /// A storm sized for serving-scale (µs–ms) horizons: repeated
    /// two-cut bursts with brief outages and a mild drift ramp.
    pub fn serving_default() -> Self {
        StormSpec {
            bursts: 4,
            cuts_per_burst: 2,
            burst_jitter_ps: 60_000_000, // 60 µs spread within a burst
            cut_down_ps: 150_000_000,    // 150 µs to splice
            engines_per_burst: 1,
            engine_down_ps: 100_000_000, // 100 µs to reboot
            drift_sigmas: vec![0.002, 0.005, 0.01],
        }
    }
}

/// Generate a seeded fault storm over `[0, horizon_ps)`: bursts are
/// evenly spaced, and within each burst the affected links/sites and
/// their jittered instants are drawn from `rng`. Deterministic for a
/// given RNG state; the returned plan is time-sorted like any other.
pub fn generate_storm(
    links: &[LinkId],
    sites: &[NodeId],
    horizon_ps: u64,
    spec: &StormSpec,
    rng: &mut SimRng,
) -> FaultPlan {
    assert!(!links.is_empty(), "storm needs a link population");
    assert!(spec.bursts >= 1, "storm needs at least one burst");
    let mut plan = FaultPlan::new();
    let spacing = horizon_ps / (spec.bursts as u64 + 1);
    for b in 0..spec.bursts {
        let burst_at = spacing * (b as u64 + 1);
        // Draw distinct links for this burst's correlated cuts.
        let mut pool: Vec<LinkId> = links.to_vec();
        let cuts = spec.cuts_per_burst.min(pool.len());
        for _ in 0..cuts {
            let idx = rng.below(pool.len());
            let link = pool.swap_remove(idx);
            let jitter = if spec.burst_jitter_ps > 0 {
                (rng.uniform() * spec.burst_jitter_ps as f64) as u64
            } else {
                0
            };
            let at_ps = burst_at + jitter;
            plan.push(FaultEvent {
                at_ps,
                kind: FaultKind::FiberCut { link },
            });
            plan.push(FaultEvent {
                at_ps: at_ps.saturating_add(spec.cut_down_ps),
                kind: FaultKind::LinkRestore { link },
            });
        }
        // Engine hard-fails riding the same burst.
        let mut site_pool: Vec<NodeId> = sites.to_vec();
        let fails = spec.engines_per_burst.min(site_pool.len());
        for _ in 0..fails {
            let idx = rng.below(site_pool.len());
            let node = site_pool.swap_remove(idx);
            let jitter = if spec.burst_jitter_ps > 0 {
                (rng.uniform() * spec.burst_jitter_ps as f64) as u64
            } else {
                0
            };
            let at_ps = burst_at + jitter;
            plan.push(FaultEvent {
                at_ps,
                kind: FaultKind::EngineFail { node },
            });
            plan.push(FaultEvent {
                at_ps: at_ps.saturating_add(spec.engine_down_ps),
                kind: FaultKind::EngineRepair { node },
            });
        }
    }
    // Slow drift underneath: every site steps through the sigma ramp.
    if !spec.drift_sigmas.is_empty() {
        let step = horizon_ps / (spec.drift_sigmas.len() as u64 + 1);
        for &node in sites {
            for (i, &sigma) in spec.drift_sigmas.iter().enumerate() {
                plan.push(FaultEvent {
                    at_ps: step * (i as u64 + 1),
                    kind: FaultKind::NoiseStep { node, sigma },
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> (Vec<LinkId>, Vec<NodeId>) {
        (
            (0..6).map(LinkId).collect(),
            vec![NodeId(1), NodeId(2), NodeId(3)],
        )
    }

    #[test]
    fn storm_is_deterministic_and_time_sorted() {
        let (links, sites) = pop();
        let build = || {
            let mut rng = SimRng::seed_from_u64(99);
            generate_storm(
                &links,
                &sites,
                1_000_000_000,
                &StormSpec::serving_default(),
                &mut rng,
            )
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.events.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
    }

    #[test]
    fn bursts_cut_distinct_links_and_restore_each() {
        let (links, sites) = pop();
        let mut rng = SimRng::seed_from_u64(7);
        let spec = StormSpec {
            bursts: 3,
            cuts_per_burst: 2,
            burst_jitter_ps: 1_000,
            cut_down_ps: 50_000,
            engines_per_burst: 1,
            engine_down_ps: 40_000,
            drift_sigmas: vec![0.01],
        };
        let plan = generate_storm(&links, &sites, 10_000_000, &spec, &mut rng);
        let cuts: Vec<LinkId> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::FiberCut { link } => Some(link),
                _ => None,
            })
            .collect();
        let restores = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkRestore { .. }))
            .count();
        assert_eq!(cuts.len(), 6, "3 bursts × 2 cuts");
        assert_eq!(restores, 6, "every cut is spliced");
        // Within each burst the two cut links differ.
        for burst in cuts.chunks(2) {
            assert_ne!(burst[0], burst[1]);
        }
        // Engine fails and drift ride along.
        assert_eq!(
            plan.events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::EngineFail { .. }))
                .count(),
            3
        );
        assert_eq!(
            plan.events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::NoiseStep { .. }))
                .count(),
            3,
            "one rung per site"
        );
        assert_eq!(plan.fault_count(), 9);
    }

    #[test]
    fn oversized_burst_clamps_to_population() {
        let mut rng = SimRng::seed_from_u64(3);
        let spec = StormSpec {
            bursts: 1,
            cuts_per_burst: 99,
            burst_jitter_ps: 0,
            cut_down_ps: 10,
            engines_per_burst: 99,
            engine_down_ps: 10,
            drift_sigmas: Vec::new(),
        };
        let plan = generate_storm(
            &[LinkId(0), LinkId(1)],
            &[NodeId(5)],
            1_000,
            &spec,
            &mut rng,
        );
        assert_eq!(plan.fault_count(), 3, "2 links + 1 site");
    }
}
