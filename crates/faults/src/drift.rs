//! Slow analog failure models and their watchdog observables.
//!
//! Hard faults (cuts, hard-fails) are step functions; the sneaky
//! failures are ramps. An EDFA's gain wanders with temperature and pump
//! aging, a DFB laser's output droops over years of operation, a
//! photodetector's responsivity degrades with accumulated optical dose.
//! All three show up at the receive path as a slowly *falling Q-factor*
//! or *falling power* — exactly what [`ofpc_transponder::EngineWatchdog`]
//! monitors. These models produce those trajectories; [`detect_step`]
//! replays one against a watchdog to find when detection fires, and
//! [`sigma_ramp`] converts a drift into the engine-noise staircase the
//! packet simulator understands.

use ofpc_transponder::ber::q_to_ber;
use ofpc_transponder::{EngineWatchdog, Health};
use serde::{Deserialize, Serialize};

/// EDFA gain drift: receive Q-factor falls linearly from `q0` as the
/// amplifier wanders off its operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdfaGainDrift {
    /// Healthy operating Q-factor.
    pub q0: f64,
    /// Q lost per second of drift.
    pub dq_per_s: f64,
}

impl EdfaGainDrift {
    pub fn q_at(&self, t_s: f64) -> f64 {
        (self.q0 - self.dq_per_s * t_s).max(0.0)
    }

    pub fn ber_at(&self, t_s: f64) -> f64 {
        q_to_ber(self.q_at(t_s))
    }

    /// Analog result-noise sigma implied by the drifted SNR: noise scales
    /// with `q0 / q(t)` from the calibrated `sigma0` (an engine tuned at
    /// `q0` sees its effective noise grow as the optical SNR falls).
    pub fn sigma_at(&self, sigma0: f64, t_s: f64) -> f64 {
        let q = self.q_at(t_s);
        if q <= 0.0 {
            // No usable signal: saturate well past any trip threshold.
            return sigma0 * 1e3;
        }
        sigma0 * (self.q0 / q)
    }
}

/// Laser power droop: output decays exponentially toward dark with time
/// constant `tau_s` (pump degradation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserDroop {
    /// Healthy emitted power, W.
    pub p0_w: f64,
    /// Decay time constant, s.
    pub tau_s: f64,
}

impl LaserDroop {
    pub fn power_at(&self, t_s: f64) -> f64 {
        self.p0_w * (-t_s / self.tau_s).exp()
    }

    /// When the drooping power crosses `floor_w` (loss-of-light at the
    /// far photodetector), seconds. `None` if it never does.
    pub fn time_to_floor_s(&self, floor_w: f64) -> Option<f64> {
        if floor_w <= 0.0 || floor_w >= self.p0_w {
            return if floor_w >= self.p0_w {
                Some(0.0)
            } else {
                None
            };
        }
        Some(self.tau_s * (self.p0_w / floor_w).ln())
    }
}

/// Photodetector responsivity degradation: linear fractional loss per
/// second of operation. Received *electrical* signal scales with
/// responsivity, so this behaves like a power fade at the decision gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdDegradation {
    /// Healthy responsivity, A/W.
    pub r0_a_per_w: f64,
    /// Fraction of responsivity lost per second.
    pub loss_frac_per_s: f64,
}

impl PdDegradation {
    pub fn responsivity_at(&self, t_s: f64) -> f64 {
        self.r0_a_per_w * (1.0 - self.loss_frac_per_s * t_s).max(0.0)
    }

    /// Effective received power seen through the degraded detector.
    pub fn effective_power_w(&self, incident_w: f64, t_s: f64) -> f64 {
        incident_w * self.responsivity_at(t_s) / self.r0_a_per_w
    }
}

/// Sample a drift's sigma trajectory into the `sigmas` staircase a
/// [`crate::plan::FaultPlan::noise_ramp`] schedules: `steps` rungs at
/// `step_s` spacing starting from t = `step_s`.
pub fn sigma_ramp(drift: &EdfaGainDrift, sigma0: f64, step_s: f64, steps: usize) -> Vec<f64> {
    (1..=steps)
        .map(|i| drift.sigma_at(sigma0, i as f64 * step_s))
        .collect()
}

/// Replay a Q-factor drift against a watchdog sampled every `step_s`:
/// returns the sample index at which the engine stops being usable
/// (`None` if it survives all `steps` samples). This is the detection
/// half of the drift MTTR story: faster drift ⇒ earlier trip.
pub fn detect_step(
    watchdog: &mut EngineWatchdog,
    drift: &EdfaGainDrift,
    step_s: f64,
    steps: usize,
) -> Option<usize> {
    for i in 0..steps {
        let h = watchdog.observe_q(drift.q_at(i as f64 * step_s));
        if !h.usable() {
            return Some(i);
        }
    }
    None
}

/// Replay a power droop against a watchdog: index where loss-of-light
/// fires, `None` if the power stays above the floor throughout.
pub fn detect_loss_of_light(
    watchdog: &mut EngineWatchdog,
    droop: &LaserDroop,
    step_s: f64,
    steps: usize,
) -> Option<usize> {
    (0..steps)
        .find(|&i| watchdog.observe_power(droop.power_at(i as f64 * step_s)) == Health::LossOfLight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_transponder::WatchdogConfig;

    #[test]
    fn gain_drift_monotone_down_in_q_up_in_ber() {
        let d = EdfaGainDrift {
            q0: 7.0,
            dq_per_s: 0.5,
        };
        assert!(d.q_at(2.0) < d.q_at(1.0));
        assert!(d.ber_at(2.0) > d.ber_at(1.0));
        assert_eq!(d.q_at(100.0), 0.0, "clamped at zero");
        assert!(d.sigma_at(0.01, 4.0) > 0.01);
        assert!(d.sigma_at(0.01, 100.0) > 1.0, "dead SNR saturates sigma");
    }

    #[test]
    fn faster_drift_trips_the_watchdog_earlier() {
        let slow = EdfaGainDrift {
            q0: 7.5,
            dq_per_s: 0.05,
        };
        let fast = EdfaGainDrift {
            q0: 7.5,
            dq_per_s: 0.2,
        };
        let mut w_slow = EngineWatchdog::new(WatchdogConfig::default());
        let mut w_fast = EngineWatchdog::new(WatchdogConfig::default());
        let t_slow = detect_step(&mut w_slow, &slow, 1.0, 200).expect("slow drift still trips");
        let t_fast = detect_step(&mut w_fast, &fast, 1.0, 200).expect("fast drift trips");
        assert!(
            t_fast < t_slow,
            "fast {t_fast} must be detected before slow {t_slow}"
        );
    }

    #[test]
    fn droop_crossing_the_alarm_bound_exactly_is_not_yet_a_violation() {
        // Pin the trip threshold to the BER the droop reaches at sample
        // k: that sample sits *exactly on* the bound, and the strict
        // `ber > ber_trip` test means violations only start at k+1, so
        // the debounced trip lands at k + trip_after.
        let drift = EdfaGainDrift {
            q0: 7.0,
            dq_per_s: 0.1,
        };
        let step_s = 1.0;
        let k = 20;
        let cfg = WatchdogConfig {
            ber_trip: drift.ber_at(k as f64 * step_s),
            ..WatchdogConfig::default()
        };
        let mut w = EngineWatchdog::new(cfg);
        let at = detect_step(&mut w, &drift, step_s, 200).expect("ramp must trip");
        assert_eq!(
            at,
            k + cfg.trip_after as usize,
            "at-bound sample k={k} must not count toward the debounce run"
        );
        // Replaying sample k alone against a fresh watchdog: usable.
        let mut fresh = EngineWatchdog::new(cfg);
        for _ in 0..cfg.trip_after * 4 {
            assert!(fresh.observe_q(drift.q_at(k as f64 * step_s)).usable());
        }
        assert_eq!(fresh.trips, 0);
    }

    #[test]
    fn recovered_drift_does_not_flap_the_watchdog() {
        // Gain droop trips the watchdog; the EDFA is re-pumped (Q back to
        // healthy) but wobbles briefly past the bound once more before
        // settling. Hysteresis holds the engine out until the clean run
        // completes — health never oscillates.
        let cfg = WatchdogConfig::default();
        let drift = EdfaGainDrift {
            q0: 7.5,
            dq_per_s: 0.25,
        };
        let mut w = EngineWatchdog::new(cfg);
        detect_step(&mut w, &drift, 1.0, 200).expect("drift trips");
        let mut transitions = 0;
        let mut last_usable = false;
        // clear_after-1 clean samples, one wobble, then a clean run.
        for _ in 0..cfg.clear_after - 1 {
            w.observe_q(7.5);
        }
        w.observe_q(2.0);
        for _ in 0..cfg.clear_after * 2 {
            let usable = w.observe_q(7.5).usable();
            if usable != last_usable {
                transitions += 1;
            }
            last_usable = usable;
        }
        assert!(last_usable, "sustained clean run must re-arm");
        assert_eq!(
            transitions, 1,
            "exactly one unusable→usable transition: no flapping"
        );
        assert_eq!(w.trips, 1);
    }

    #[test]
    fn droop_crosses_the_floor_when_it_should() {
        let droop = LaserDroop {
            p0_w: 1e-3,
            tau_s: 10.0,
        };
        let t = droop.time_to_floor_s(1e-6).expect("decays through floor");
        assert!((droop.power_at(t) - 1e-6).abs() / 1e-6 < 1e-9);
        assert_eq!(droop.time_to_floor_s(2e-3), Some(0.0), "already below");
        assert_eq!(droop.time_to_floor_s(0.0), None, "never reaches zero");
        let mut w = EngineWatchdog::new(WatchdogConfig::default());
        let idx = detect_loss_of_light(&mut w, &droop, 10.0, 20).expect("LOS fires");
        assert!(idx > 0, "not dark at t=0");
    }

    #[test]
    fn pd_degradation_fades_effective_power() {
        let pd = PdDegradation {
            r0_a_per_w: 0.8,
            loss_frac_per_s: 0.01,
        };
        assert!((pd.effective_power_w(1e-3, 0.0) - 1e-3).abs() < 1e-15);
        assert!(pd.effective_power_w(1e-3, 50.0) < 1e-3);
        assert_eq!(pd.responsivity_at(200.0), 0.0, "clamped dead");
    }

    #[test]
    fn sigma_ramp_is_monotone_for_falling_q() {
        let d = EdfaGainDrift {
            q0: 7.0,
            dq_per_s: 0.3,
        };
        let ramp = sigma_ramp(&d, 0.01, 1.0, 10);
        assert_eq!(ramp.len(), 10);
        assert!(ramp.windows(2).all(|w| w[1] > w[0]));
    }
}
