//! Threading a [`FaultPlan`] into the discrete-event network simulator.
//!
//! Faults become ordinary simulator events: a cut schedules
//! `LinkState(down)`, a repair schedules `LinkState(up)`, engine fails
//! and noise steps map likewise. Because they ride the same seeded event
//! queue as the packets, a given (seed, plan) pair replays to an
//! identical packet-level history — fault scenarios are as deterministic
//! as fault-free ones.

use crate::plan::{FaultKind, FaultPlan};
use ofpc_net::sim::Network;

/// Schedule every event of `plan` into `net`. Call before (or between)
/// `run_to_idle` drives; events already in the past of the simulator
/// clock still execute in seq order at the current instant.
pub fn inject(plan: &FaultPlan, net: &mut Network) {
    for ev in &plan.events {
        match ev.kind {
            FaultKind::FiberCut { link } => net.schedule_link_down(ev.at_ps, link),
            FaultKind::LinkRestore { link } => net.schedule_link_up(ev.at_ps, link),
            FaultKind::EngineFail { node } => net.schedule_engine_health(ev.at_ps, node, false),
            FaultKind::EngineRepair { node } => net.schedule_engine_health(ev.at_ps, node, true),
            FaultKind::NoiseStep { node, sigma } => {
                net.schedule_engine_noise(ev.at_ps, node, sigma)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use ofpc_net::packet::Packet;
    use ofpc_net::stats::DropReason;
    use ofpc_net::{LinkId, NodeId, Topology};
    use ofpc_photonics::SimRng;

    fn line_net() -> Network {
        let topo = Topology::line(3, 50.0);
        let mut net = Network::new(topo, SimRng::seed_from_u64(3));
        net.install_shortest_path_routes();
        net
    }

    fn plain(net: &Network, src: u32, dst: u32) -> Packet {
        let _ = net;
        Packet::data(
            Network::node_addr(NodeId(src), 1),
            Network::node_addr(NodeId(dst), 1),
            1,
            vec![0u8; 64],
        )
    }

    #[test]
    fn injected_cut_fires_at_its_scheduled_time() {
        let mut net = line_net();
        let plan = FaultPlan::new().cut(1_000, LinkId(0));
        inject(&plan, &mut net);
        // Packet injected after the cut time never crosses link 0.
        let p = plain(&net, 0, 2);
        net.inject(2_000, NodeId(0), p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 0);
        assert_eq!(net.stats.drop_count(DropReason::LinkDown), 1);
        assert!(!net.link_is_up(LinkId(0)));
    }

    #[test]
    fn injected_flap_recovers() {
        let mut net = line_net();
        let plan = FaultPlan::new().flap(1_000, LinkId(0), 500_000_000);
        inject(&plan, &mut net);
        let p = plain(&net, 0, 2);
        // Injected well after the restore: delivered normally.
        net.inject(600_000_000, NodeId(0), p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(net.link_is_up(LinkId(0)));
        assert!(net.stats.conservation_holds(net.in_flight_count()));
    }

    #[test]
    fn injected_noise_step_raises_sigma() {
        let mut net = line_net();
        net.add_engine(
            NodeId(1),
            1,
            ofpc_net::sim::OpSpec::Dot {
                weights: vec![1.0; 4],
            },
            0.0,
        );
        let plan = FaultPlan::new().noise_ramp(NodeId(1), 1_000, 1_000, &[0.05, 0.25]);
        inject(&plan, &mut net);
        net.run_to_idle();
        let sigma = net.engines_at(NodeId(1))[0].noise_sigma;
        assert!((sigma - 0.25).abs() < 1e-12, "final rung wins: {sigma}");
    }
}
