//! The recovery loop: detection → protection switching → re-allocation
//! → staged re-install, with time-to-recovery and availability
//! accounting.
//!
//! This is the controller's fault-handling half, composed from pieces
//! the other crates provide: `ofpc-net` reconverges routes around downed
//! links, `ofpc-core` re-runs the allocator with failed sites excluded
//! ([`ofpc_core::OnFiberNetwork::reallocate_excluding`]), and
//! `ofpc-controller`'s [`RecoveryParams`] prices the detection /
//! re-allocation / staged-install stages into a
//! [`RecoveryTimeline`]. The [`AvailabilityLedger`] folds the resulting
//! outage windows into the availability number experiment E13 sweeps
//! against MTBF.

use ofpc_controller::teupdate::UpdatePlan;
use ofpc_controller::{RecoveryParams, RecoveryTimeline};
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_net::NodeId;
use ofpc_telemetry::{labels, track, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What one recovery pass did and how long it took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    pub timeline: RecoveryTimeline,
    /// Distinct routers the re-install touched (staged, one at a time).
    pub routers_updated: usize,
    /// Engine installs in the new plan.
    pub installs: usize,
    /// Demands the post-fault allocation could not satisfy.
    pub unsatisfied: usize,
    /// Whether every command of the new plan applied cleanly.
    pub fully_applied: bool,
}

/// The recovery driver: owns the stage-duration model and the solver
/// choice, operates on an [`OnFiberNetwork`].
#[derive(Debug, Clone, Copy)]
pub struct Orchestrator {
    pub recovery: RecoveryParams,
    pub solver: Solver,
}

/// Distinct routers an update plan touches (install sites + override
/// routers) — the staged-install count that sets the last recovery
/// stage's duration.
pub fn routers_touched(plan: &UpdatePlan) -> usize {
    let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
    for i in &plan.installs {
        nodes.insert(i.node);
    }
    for o in &plan.overrides {
        nodes.insert(o.router);
    }
    nodes.len()
}

impl Orchestrator {
    pub fn new(recovery: RecoveryParams, solver: Solver) -> Self {
        Orchestrator { recovery, solver }
    }

    /// Recover from a fiber cut first noticed (loss of light) at
    /// `fault_at_ps`: reconverge routing around the downed links, re-run
    /// the allocator (surviving sites only — none failed here, but
    /// placements may need to move off severed paths), and re-install.
    pub fn recover_from_cut(&self, sys: &mut OnFiberNetwork, fault_at_ps: u64) -> RecoveryOutcome {
        sys.net.reconverge_routes();
        let plan = sys.allocate_and_apply(self.solver).clone();
        self.outcome(sys, &plan, fault_at_ps)
    }

    /// Recover from engine hard-fails at `failed` sites detected at
    /// `fault_at_ps`: mark the sites out, re-run the allocator over the
    /// survivors, re-install.
    pub fn recover_from_engine_fail(
        &self,
        sys: &mut OnFiberNetwork,
        failed: &[NodeId],
        fault_at_ps: u64,
    ) -> RecoveryOutcome {
        let plan = sys.reallocate_excluding(failed, self.solver).clone();
        self.outcome(sys, &plan, fault_at_ps)
    }

    fn outcome(
        &self,
        sys: &OnFiberNetwork,
        plan: &UpdatePlan,
        fault_at_ps: u64,
    ) -> RecoveryOutcome {
        let routers = routers_touched(plan);
        RecoveryOutcome {
            timeline: self.recovery.timeline(fault_at_ps, routers),
            routers_updated: routers,
            installs: plan.installs.len(),
            unsatisfied: plan.unsatisfied.len(),
            fully_applied: sys.last_apply.as_ref().is_some_and(|r| r.fully_applied()),
        }
    }
}

/// Emit one recovery pass as structured trace events on
/// [`track::RECOVERY`] and bump the `recoveries_total{kind}` counter.
///
/// Each recovery gets its own trace lane (`tid = fault_at_ps`, unique in
/// a deterministic schedule), carrying an instant `fault.<kind>` marker
/// at the fault instant, one span per [`RecoveryTimeline::stages`] stage,
/// and a closing `recovery.complete` instant with the outcome counts.
/// [`Orchestrator`] stays `Copy`; callers thread the handle explicitly.
pub fn trace_recovery(tel: &Telemetry, kind: &str, outcome: &RecoveryOutcome) {
    tel.counter("recoveries_total", &labels(&[("kind", kind)]))
        .inc();
    if !tel.is_enabled() {
        return;
    }
    let tl = &outcome.timeline;
    let tid = tl.fault_at_ps;
    tel.instant(
        track::RECOVERY,
        tid,
        "fault",
        &format!("fault.{kind}"),
        tl.fault_at_ps,
        vec![("kind".into(), kind.into())],
    );
    for (name, start, end) in tl.stages() {
        tel.span(track::RECOVERY, tid, "recovery", name, start, end);
    }
    tel.instant(
        track::RECOVERY,
        tid,
        "fault",
        "recovery.complete",
        tl.installed_at_ps,
        vec![
            ("kind".into(), kind.into()),
            (
                "routers_updated".into(),
                outcome.routers_updated.to_string(),
            ),
            ("installs".into(), outcome.installs.to_string()),
            ("unsatisfied".into(), outcome.unsatisfied.to_string()),
            ("fully_applied".into(), outcome.fully_applied.to_string()),
            ("ttr_ps".into(), tl.ttr_ps().to_string()),
        ],
    );
}

/// Downtime bookkeeping over a fixed horizon: outage windows are
/// recorded as they happen (overlaps and duplicates welcome), merged at
/// read time, and folded into an availability fraction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityLedger {
    pub horizon_ps: u64,
    outages: Vec<(u64, u64)>,
}

impl AvailabilityLedger {
    pub fn new(horizon_ps: u64) -> Self {
        assert!(horizon_ps > 0, "horizon must be positive");
        AvailabilityLedger {
            horizon_ps,
            outages: Vec::new(),
        }
    }

    /// Record an outage `[start_ps, end_ps)`, clamped to the horizon.
    pub fn record(&mut self, start_ps: u64, end_ps: u64) {
        let start = start_ps.min(self.horizon_ps);
        let end = end_ps.min(self.horizon_ps);
        if end > start {
            self.outages.push((start, end));
        }
    }

    /// Record the outage implied by one recovery: fault to full
    /// re-install.
    pub fn record_recovery(&mut self, t: &RecoveryTimeline) {
        self.record(t.fault_at_ps, t.installed_at_ps);
    }

    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }

    /// Total downtime with overlapping windows merged, ps.
    pub fn downtime_ps(&self) -> u64 {
        let mut sorted = self.outages.clone();
        sorted.sort_unstable();
        let mut total = 0;
        let mut cur: Option<(u64, u64)> = None;
        for (s, e) in sorted {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Fraction of the horizon the substrate was up.
    pub fn availability(&self) -> f64 {
        1.0 - self.downtime_ps() as f64 / self.horizon_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_controller::demand::{Demand, TaskDag};
    use ofpc_engine::Primitive;
    use ofpc_net::packet::Packet;
    use ofpc_net::pch::PchHeader;
    use ofpc_net::sim::{Network, OpSpec};
    use ofpc_net::Topology;

    const P1: Primitive = Primitive::VectorDotProduct;

    fn fig1_system() -> OnFiberNetwork {
        let mut sys = OnFiberNetwork::new(Topology::fig1(), 7);
        sys.upgrade_site(NodeId(1), 1);
        sys.upgrade_site(NodeId(2), 1);
        sys.submit_demand(
            Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
            OpSpec::Dot {
                weights: vec![0.25; 8],
            },
        );
        sys
    }

    fn orch() -> Orchestrator {
        Orchestrator::new(
            RecoveryParams::default(),
            Solver::Exact {
                node_budget: 1_000_000,
            },
        )
    }

    fn drive_packet(sys: &mut OnFiberNetwork, at_ps: u64) {
        let pch = PchHeader::request(P1, 1, 8);
        let p = Packet::compute(
            Network::node_addr(NodeId(0), 1),
            Network::node_addr(NodeId(3), 1),
            1,
            pch,
            Packet::encode_operands(&[0.5; 8]),
        );
        sys.net.inject(at_ps, NodeId(0), p);
        sys.net.run_to_idle();
    }

    #[test]
    fn cut_recovery_restores_computed_delivery_within_bound() {
        let mut sys = fig1_system();
        let o = orch();
        sys.allocate_and_apply(o.solver);
        // Cut the first link on A's side of the primary path.
        let a = sys.net.topo.find_node("A").unwrap();
        let (cut_link, _) = sys.net.topo.neighbors(a)[0];
        sys.net.set_link_up(cut_link, false);

        let fault_at = 1_000_000;
        let out = o.recover_from_cut(&mut sys, fault_at);
        assert!(out.fully_applied, "re-install must apply cleanly");
        assert_eq!(out.unsatisfied, 0);
        assert!(out.routers_updated >= 1);
        let bound = o.recovery.ttr_bound_ps(sys.net.topo.node_count());
        assert!(
            out.timeline.ttr_ps() <= bound,
            "ttr {} exceeds bound {bound}",
            out.timeline.ttr_ps()
        );
        // Service restored: traffic injected after recovery computes.
        drive_packet(&mut sys, out.timeline.installed_at_ps);
        assert_eq!(sys.net.stats.delivered_count(), 1);
        assert!(sys.net.stats.delivered[0].computed);
    }

    #[test]
    fn engine_fail_recovery_moves_compute_to_survivor() {
        let mut sys = fig1_system();
        let o = orch();
        let first = sys.allocate_and_apply(o.solver).clone();
        let failed = first.installs[0].node;
        let out = o.recover_from_engine_fail(&mut sys, &[failed], 500_000);
        assert_eq!(out.unsatisfied, 0, "survivor absorbs the demand");
        assert_eq!(out.installs, 1);
        assert!(out.fully_applied);
        let moved = sys.last_plan.as_ref().unwrap().installs[0].node;
        assert_ne!(moved, failed);
        drive_packet(&mut sys, out.timeline.installed_at_ps);
        assert_eq!(sys.net.stats.delivered_count(), 1);
        assert!(sys.net.stats.delivered[0].computed);
    }

    #[test]
    fn ledger_merges_overlapping_outages() {
        let mut l = AvailabilityLedger::new(1_000);
        l.record(100, 300);
        l.record(200, 400); // overlaps the first
        l.record(400, 450); // touches: still one merged window
        l.record(900, 2_000); // clamped at the horizon
        assert_eq!(l.outage_count(), 4);
        assert_eq!(l.downtime_ps(), (450 - 100) + (1_000 - 900));
        assert!((l.availability() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_fully_available() {
        let l = AvailabilityLedger::new(1_000);
        assert_eq!(l.downtime_ps(), 0);
        assert_eq!(l.availability(), 1.0);
    }
}
