//! The global rebalancer: the one sequential moment between epochs.
//!
//! Shards run their epochs embarrassingly parallel; here the driver —
//! single-threaded, after an ordered gather — looks across all of them
//! and corrects skew two ways:
//!
//! 1. **Tenant migration**: the hottest tenants of the most-loaded shard
//!    (by this epoch's arrivals) move to the least-loaded shard. Their
//!    queued requests travel with them (`SparseAdmission::remove_tenant`
//!    → `adopt`), so no work is lost; requests already dispatched stay
//!    and complete on the old shard.
//! 2. **Slot re-split**: every physical site's transponder slots are
//!    re-divided between the shard-local schedulers in proportion to
//!    epoch load (largest-remainder, ties by shard id), applied through
//!    `Scheduler::resize_site` so in-flight batches are never torn.
//!
//! Everything here is a deterministic function of gathered shard state,
//! which is why running shards on 1, 2, or 8 workers cannot change the
//! outcome.

use crate::shard::ShardState;
use ofpc_serve::SiteSpec;
use serde::Serialize;

/// Rebalance policy knobs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RebalanceConfig {
    /// Rebalance after every Nth epoch (0 disables rebalancing).
    pub every_epochs: u32,
    /// Max tenants migrated per rebalance.
    pub max_migrations: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            every_epochs: 1,
            max_migrations: 8,
        }
    }
}

/// What one rebalance pass did (accumulated into the report).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RebalanceOutcome {
    pub migrations: u64,
    /// Total |Δslots| across shards and sites.
    pub slot_moves: u64,
}

/// Largest-remainder apportionment of `slots` across `loads` (ties by
/// index). Guarantees the shares sum exactly to `slots`.
pub(crate) fn apportion(slots: usize, loads: &[u64]) -> Vec<usize> {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        // No signal: spread evenly, remainder to the low indices.
        let n = loads.len().max(1);
        return (0..loads.len())
            .map(|i| slots / n + usize::from(i < slots % n))
            .collect();
    }
    let mut base = Vec::with_capacity(loads.len());
    let mut rems: Vec<(u64, usize)> = Vec::with_capacity(loads.len());
    let mut used = 0usize;
    for (i, &l) in loads.iter().enumerate() {
        let num = l as u128 * slots as u128;
        let q = (num / total as u128) as usize;
        let r = (num % total as u128) as u64;
        base.push(q);
        used += q;
        rems.push((r, i));
    }
    // Largest remainder first; ties broken by shard id for determinism.
    rems.sort_by_key(|&(r, i)| (std::cmp::Reverse(r), i));
    for &(_, i) in rems.iter().take(slots - used) {
        base[i] += 1;
    }
    base
}

/// One full rebalance pass over gathered shard state.
pub(crate) fn rebalance(
    shards: &mut [ShardState],
    sites: &[SiteSpec],
    config: RebalanceConfig,
    mut on_migrate: impl FnMut(u32, u32),
) -> RebalanceOutcome {
    let mut outcome = RebalanceOutcome::default();
    if shards.len() < 2 {
        return outcome;
    }
    let loads: Vec<u64> = shards.iter().map(|s| s.epoch_arrivals + 1).collect();

    // -- tenant migration: hottest of the busiest → the least loaded --
    let src = (0..shards.len())
        .max_by_key(|&i| (loads[i], std::cmp::Reverse(i)))
        .expect("non-empty");
    let dst = (0..shards.len())
        .min_by_key(|&i| (loads[i], i))
        .expect("non-empty");
    if src != dst && loads[src] > loads[dst] {
        let hot = shards[src].hottest_this_epoch(config.max_migrations);
        for (tenant, _heat) in hot {
            let queued = shards[src].evict_tenant(tenant);
            shards[dst].adopt_tenant(tenant, queued);
            on_migrate(tenant, dst as u32);
            outcome.migrations += 1;
        }
    }

    // -- slot re-split, per physical site, proportional to load --
    let grants = split_slots(sites, &loads);
    for (site_idx, site) in sites.iter().enumerate() {
        for (shard_idx, shard) in shards.iter_mut().enumerate() {
            let before = shard.slots_at();
            shard.set_site_slots(site.node, grants[site_idx][shard_idx]);
            outcome.slot_moves += before.abs_diff(shard.slots_at()) as u64;
        }
    }
    outcome
}

/// Apportion every site's slots across shards in proportion to load,
/// then guarantee each shard ends with ≥1 slot *somewhere*: a shard
/// with tenants but no slots anywhere would strand its queues until the
/// next rebalance. Requires Σ site slots ≥ shard count.
pub(crate) fn split_slots(sites: &[SiteSpec], loads: &[u64]) -> Vec<Vec<usize>> {
    let shards = loads.len();
    let total_slots: usize = sites.iter().map(|s| s.slots).sum();
    assert!(
        total_slots >= shards,
        "need at least one transponder slot per shard ({total_slots} slots, {shards} shards)"
    );
    let mut grants: Vec<Vec<usize>> = sites.iter().map(|s| apportion(s.slots, loads)).collect();
    loop {
        let totals: Vec<usize> = (0..shards)
            .map(|i| grants.iter().map(|g| g[i]).sum())
            .collect();
        let Some(poor) = (0..shards).find(|&i| totals[i] == 0) else {
            break;
        };
        // Donate from the richest shard (ties: lowest id), at the site
        // where it holds the most (ties: lowest site index).
        let rich = (0..shards)
            .max_by_key(|&i| (totals[i], std::cmp::Reverse(i)))
            .expect("non-empty");
        let site = (0..grants.len())
            .max_by_key(|&s| (grants[s][rich], std::cmp::Reverse(s)))
            .expect("non-empty");
        grants[site][rich] -= 1;
        grants[site][poor] += 1;
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportionment_conserves_and_follows_load() {
        let grant = apportion(10, &[700, 200, 100]);
        assert_eq!(grant.iter().sum::<usize>(), 10);
        assert_eq!(grant, vec![7, 2, 1]);

        let grant = apportion(4, &[1, 1, 1]);
        assert_eq!(grant.iter().sum::<usize>(), 4);
        // Remainder goes to the lowest ids, deterministically.
        assert_eq!(grant, vec![2, 1, 1]);

        let grant = apportion(5, &[0, 0]);
        assert_eq!(grant, vec![3, 2]);
    }

    #[test]
    fn extreme_skew_still_sums() {
        let grant = apportion(3, &[1_000_000, 1, 1, 1]);
        assert_eq!(grant.iter().sum::<usize>(), 3);
        assert!(grant[0] >= 2);
    }

    #[test]
    fn split_slots_never_leaves_a_shard_slotless() {
        use ofpc_net::NodeId;
        // 8 shards over 5+3 slots: naive per-site apportionment under
        // heavy skew would starve the cold shards entirely.
        let sites = vec![
            SiteSpec {
                node: NodeId(1),
                slots: 5,
                access_ps: 25_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 3,
                access_ps: 100_000,
            },
        ];
        let loads = [1_000_000, 1, 1, 1, 1, 1, 1, 1];
        let grants = split_slots(&sites, &loads);
        let mut site_totals = vec![0usize; sites.len()];
        for shard in 0..loads.len() {
            let total: usize = grants.iter().map(|g| g[shard]).sum();
            assert!(total >= 1, "shard {shard} left slotless: {grants:?}");
            for (s, g) in grants.iter().enumerate() {
                site_totals[s] += g[shard];
            }
        }
        for (s, site) in sites.iter().enumerate() {
            assert_eq!(site_totals[s], site.slots, "site inventory not conserved");
        }
        // The hot shard still holds the largest share.
        let hot: usize = grants.iter().map(|g| g[0]).sum();
        assert!(hot >= 1 && hot <= sites.iter().map(|s| s.slots).sum::<usize>() - 7);
    }
}
