//! # ofpc-ingest — a sharded, deterministic million-tenant front-end
//!
//! `ofpc-serve` answers how to serve multi-tenant photonic compute; this
//! crate answers how to *front* it at population scale. A million
//! tenants cannot each own an arrival process, a queue allocation, and a
//! metrics vector — so the ingest path is built from three ideas:
//!
//! 1. **Tenants by class, state by backlog** ([`tenant::TenantClass`],
//!    `ofpc_serve::SparseAdmission`): tenants are contiguous id blocks
//!    over a handful of behavioral templates, and per-tenant state
//!    exists only while a tenant has work queued.
//! 2. **Shards as owned values** ([`shard::ShardState`]): tenants are
//!    hash-partitioned into shards; each shard runs its own event loop
//!    (aggregate-Poisson arrivals, zero-copy PCH frame parsing, bounded
//!    admission with DRR fair drain, WDM batching, EDF dispatch) with no
//!    shared state. Epochs run through
//!    `ofpc_par::WorkerPool::scatter_gather`, whose ordered gather makes
//!    the whole run **byte-identical at any worker count**.
//! 3. **A sequential rebalance barrier** ([`rebalance`]): between
//!    epochs the driver migrates hot tenants (queued work travels with
//!    them) and re-splits each site's transponder slots between shard
//!    schedulers in proportion to measured load.
//!
//! The report ([`IngestReport`]) carries per-class fairness, typed
//! frame-rejection counts, and conservation (`parsed = completed + shed
//! + unfinished`), all pinned by golden fixtures.

pub mod rebalance;
pub mod shard;
pub mod tenant;

pub use rebalance::{RebalanceConfig, RebalanceOutcome};
pub use shard::FrameStats;
pub use tenant::{TenantClass, TenantDirectory};

use ofpc_par::WorkerPool;
use ofpc_serve::{BatchPolicy, ServiceModel, SiteSpec};
use ofpc_telemetry::{track, Telemetry};
use serde::Serialize;
use shard::{ClassStats, ShardState};

/// Everything that defines one ingest run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    pub seed: u64,
    pub shards: u32,
    pub classes: Vec<TenantClass>,
    /// Physical compute sites whose slots the shards divide.
    pub sites: Vec<SiteSpec>,
    pub model: ServiceModel,
    pub batch: BatchPolicy,
    /// Epoch length, ps. One epoch = one parallel step between
    /// rebalance barriers.
    pub epoch_ps: u64,
    pub epochs: u32,
    pub rebalance: RebalanceConfig,
    /// Corrupt every Nth synthesized frame (0 = never) to keep the
    /// typed-error path hot.
    pub corrupt_every: u64,
    /// Max requests pulled from admission per pump round.
    pub drain_quantum: usize,
}

/// Per-class slice of the final report.
#[derive(Debug, Clone, Serialize)]
pub struct ClassReport {
    pub name: String,
    pub tenants: u32,
    pub weight: u32,
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    pub goodput_rps: f64,
    /// Completed goodput per unit of DRR weight×population — equal
    /// values across saturated classes is what "fair" means here.
    pub goodput_per_weight: f64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub mean_batch_size: f64,
    pub energy_j: f64,
    pub joules_per_request: f64,
}

/// Per-shard slice of the final report.
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    pub shard: u32,
    pub completed: u64,
    pub slots: usize,
    /// Tenants holding admission state at the horizon — the memory
    /// bound the sparse design is about.
    pub active_tenant_state: usize,
    pub migrations_in: u64,
    pub migrations_out: u64,
}

/// Frame-parser tallies (typed rejections, never panics).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FrameReport {
    pub parsed: u64,
    pub rejected_truncated: u64,
    pub rejected_bad_proto: u64,
    pub rejected_not_compute: u64,
    pub rejected_bad_primitive: u64,
    pub rejected_operand_overrun: u64,
    pub rejected_total: u64,
}

#[derive(Debug, Clone, Copy, Serialize)]
pub struct RebalanceReport {
    pub passes: u64,
    pub migrations: u64,
    pub slot_moves: u64,
    /// Tenants living away from their hash home at the horizon.
    pub displaced: u64,
}

/// The deterministic run summary (serialized into golden fixtures).
#[derive(Debug, Clone, Serialize)]
pub struct IngestReport {
    pub shards: u32,
    pub tenants: u32,
    pub horizon_ps: u64,
    pub epochs: u32,
    pub offered_rps: f64,
    pub parsed: u64,
    pub completed: u64,
    pub shed: u64,
    pub unfinished: u64,
    pub goodput_rps: f64,
    /// Distinct tenants that sent ≥1 admitted request.
    pub distinct_active_tenants: u64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub energy_total_j: f64,
    pub frames: FrameReport,
    pub rebalance: RebalanceReport,
    pub classes: Vec<ClassReport>,
    pub shard_reports: Vec<ShardReport>,
}

/// The driver: owns the shards between epochs, runs the epoch fan-out,
/// and applies the rebalance barrier.
pub struct IngestFrontEnd {
    config: IngestConfig,
    directory: TenantDirectory,
    shards: Vec<ShardState>,
    tel: Telemetry,
    rebalance_totals: RebalanceOutcome,
    rebalance_passes: u64,
}

impl IngestFrontEnd {
    pub fn new(config: IngestConfig) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.epochs >= 1 && config.epoch_ps > 0, "empty horizon");
        assert!(!config.sites.is_empty(), "need at least one compute site");
        let directory = TenantDirectory::new(&config.classes, config.shards);
        let total = directory.total_tenants();

        // Partition the universe: member lists per shard per class.
        // Tenant ids ascend, so each list comes out sorted.
        let mut members: Vec<Vec<Vec<u32>>> =
            vec![vec![Vec::new(); config.classes.len()]; config.shards as usize];
        for t in 0..total {
            let s = directory.home_shard(t) as usize;
            members[s][directory.class_of(t)].push(t);
        }

        // Initial slot split: equal shares (no load signal yet), with
        // the same ≥1-slot-per-shard guarantee the rebalancer applies.
        let even_loads = vec![1u64; config.shards as usize];
        let grants = rebalance::split_slots(&config.sites, &even_loads);
        let shards: Vec<ShardState> = members
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                let mut s = ShardState::new(
                    i as u32,
                    ofpc_par::split_seed(config.seed, i as u64),
                    config.classes.clone(),
                    m,
                    total,
                    config.model.clone(),
                    &config.sites,
                    config.batch,
                    config.corrupt_every,
                    config.drain_quantum,
                );
                for (site_idx, site) in config.sites.iter().enumerate() {
                    s.set_site_slots(site.node, grants[site_idx][i]);
                }
                s
            })
            .collect();

        IngestFrontEnd {
            config,
            directory,
            shards,
            tel: Telemetry::disabled(),
            rebalance_totals: RebalanceOutcome::default(),
            rebalance_passes: 0,
        }
    }

    /// Mirror epoch spans and rebalance instants onto the `INGEST`
    /// trace track. Emission happens post-gather in shard order, so an
    /// attached telemetry handle never perturbs determinism.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self
    }

    pub fn directory(&self) -> &TenantDirectory {
        &self.directory
    }

    /// Run all epochs on `pool` and produce the report. The report is a
    /// pure function of the config — worker count only changes how fast
    /// it arrives.
    pub fn run(mut self, pool: &WorkerPool) -> IngestReport {
        let epochs = self.config.epochs;
        for epoch in 0..epochs {
            let start_ps = u64::from(epoch) * self.config.epoch_ps;
            let end_ps = start_ps + self.config.epoch_ps;
            let shards = std::mem::take(&mut self.shards);
            self.shards = pool.scatter_gather("ingest-epoch", shards, |_i, mut s| {
                s.run_until(end_ps);
                s
            });
            for s in &self.shards {
                self.tel.span(
                    track::INGEST,
                    u64::from(s.id),
                    "ingest",
                    "epoch",
                    start_ps,
                    end_ps,
                );
            }
            let due = self.config.rebalance.every_epochs > 0
                && (epoch + 1) % self.config.rebalance.every_epochs == 0
                && epoch + 1 < epochs;
            if due {
                let directory = &mut self.directory;
                let outcome = rebalance::rebalance(
                    &mut self.shards,
                    &self.config.sites,
                    self.config.rebalance,
                    |tenant, to| directory.migrate(tenant, to),
                );
                self.rebalance_totals.migrations += outcome.migrations;
                self.rebalance_totals.slot_moves += outcome.slot_moves;
                self.rebalance_passes += 1;
                self.tel
                    .instant(track::INGEST, 0, "ingest", "rebalance", end_ps, Vec::new());
            }
            for s in &mut self.shards {
                s.end_epoch();
            }
        }
        self.report()
    }

    fn report(&self) -> IngestReport {
        let horizon_ps = u64::from(self.config.epochs) * self.config.epoch_ps;
        let duration_s = horizon_ps as f64 * 1e-12;

        // Per-class aggregation across shards, in shard order.
        let mut class_stats = vec![ClassStats::default(); self.config.classes.len()];
        let mut frames = FrameStats::default();
        let mut unfinished = 0u64;
        for s in &self.shards {
            for (acc, part) in class_stats.iter_mut().zip(s.stats.iter()) {
                acc.merge(part);
            }
            frames.merge(&s.frames);
            unfinished += s.unfinished();
        }

        let parsed: u64 = class_stats.iter().map(|c| c.arrivals).sum();
        let completed: u64 = class_stats.iter().map(|c| c.completed).sum();
        let shed: u64 = class_stats.iter().map(|c| c.shed_total()).sum();
        assert_eq!(
            parsed,
            completed + shed + unfinished,
            "request conservation violated"
        );

        // Distinct active tenants: OR the shard bitmaps (shard order).
        let words = self.shards.first().map_or(0, |s| s.active_bitmap.len());
        let mut distinct = 0u64;
        for w in 0..words {
            let mut or = 0u64;
            for s in &self.shards {
                or |= s.active_bitmap[w];
            }
            distinct += u64::from(or.count_ones());
        }

        let mut all_lat = shard::LatHist::default();
        for c in &class_stats {
            all_lat.merge(&c.lat);
        }

        let classes: Vec<ClassReport> = self
            .config
            .classes
            .iter()
            .zip(class_stats.iter())
            .map(|(c, s)| {
                let goodput = s.completed as f64 / duration_s;
                ClassReport {
                    name: c.name.clone(),
                    tenants: c.population,
                    weight: c.weight,
                    arrivals: s.arrivals,
                    completed: s.completed,
                    shed_queue_full: s.shed_queue_full,
                    shed_expired_queued: s.shed_expired_queued,
                    shed_expired_serving: s.shed_expired_serving,
                    shed_engine_failed: s.shed_engine_failed,
                    goodput_rps: goodput,
                    goodput_per_weight: goodput / (f64::from(c.weight) * f64::from(c.population)),
                    p50_latency_us: s.lat.percentile(0.50).map(|v| v as f64 / 1e6),
                    p99_latency_us: s.lat.percentile(0.99).map(|v| v as f64 / 1e6),
                    mean_batch_size: if s.completed > 0 {
                        s.batch_size_sum as f64 / s.completed as f64
                    } else {
                        0.0
                    },
                    energy_j: s.energy_j,
                    joules_per_request: if s.completed > 0 {
                        s.energy_j / s.completed as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        let shard_reports: Vec<ShardReport> = self
            .shards
            .iter()
            .map(|s| ShardReport {
                shard: s.id,
                completed: s.stats.iter().map(|c| c.completed).sum(),
                slots: s.slots_at(),
                active_tenant_state: s.active_tenant_state(),
                migrations_in: s.migrations_in,
                migrations_out: s.migrations_out,
            })
            .collect();

        IngestReport {
            shards: self.config.shards,
            tenants: self.directory.total_tenants(),
            horizon_ps,
            epochs: self.config.epochs,
            offered_rps: parsed as f64 / duration_s,
            parsed,
            completed,
            shed,
            unfinished,
            goodput_rps: completed as f64 / duration_s,
            distinct_active_tenants: distinct,
            p50_latency_us: all_lat.percentile(0.50).map(|v| v as f64 / 1e6),
            p99_latency_us: all_lat.percentile(0.99).map(|v| v as f64 / 1e6),
            energy_total_j: class_stats.iter().map(|c| c.energy_j).sum(),
            frames: FrameReport {
                parsed: frames.parsed,
                rejected_truncated: frames.rejected_truncated,
                rejected_bad_proto: frames.rejected_bad_proto,
                rejected_not_compute: frames.rejected_not_compute,
                rejected_bad_primitive: frames.rejected_bad_primitive,
                rejected_operand_overrun: frames.rejected_operand_overrun,
                rejected_total: frames.rejected_total(),
            },
            rebalance: RebalanceReport {
                passes: self.rebalance_passes,
                migrations: self.rebalance_totals.migrations,
                slot_moves: self.rebalance_totals.slot_moves,
                displaced: self.directory.displaced() as u64,
            },
            classes,
            shard_reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_engine::Primitive;
    use ofpc_net::NodeId;

    fn model() -> ServiceModel {
        ServiceModel {
            line_rate_bps: 100e9,
            wdm_channels: 4,
            engine_settle_ps: 10_000,
            reconfig_fixed_ps: 2_000_000,
            reconfig_per_element_ps: 10_000,
            readout_per_request_ps: 800,
            laser_w: 0.05,
            dac_sample_j: 1e-12,
            mac_j: 1e-14,
            adc_result_j: 1e-12,
        }
    }

    fn config(shards: u32) -> IngestConfig {
        IngestConfig {
            seed: 2121,
            shards,
            classes: vec![
                TenantClass {
                    name: "heavy".into(),
                    population: 8,
                    weight: 4,
                    queue_capacity: 64,
                    mean_rate_rps: 20_000.0,
                    primitive: Primitive::VectorDotProduct,
                    operand_len: 256,
                    deadline_ps: 50_000_000,
                },
                TenantClass {
                    name: "tail".into(),
                    population: 2_000,
                    weight: 1,
                    queue_capacity: 8,
                    mean_rate_rps: 50.0,
                    primitive: Primitive::PatternMatching,
                    operand_len: 64,
                    deadline_ps: 80_000_000,
                },
            ],
            sites: vec![
                SiteSpec {
                    node: NodeId(1),
                    slots: 8,
                    access_ps: 50_000,
                },
                SiteSpec {
                    node: NodeId(2),
                    slots: 4,
                    access_ps: 150_000,
                },
            ],
            model: model(),
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ps: 5_000_000,
            },
            epoch_ps: 200_000_000,
            epochs: 3,
            rebalance: RebalanceConfig::default(),
            corrupt_every: 7,
            drain_quantum: 64,
        }
    }

    fn run_json(workers: usize) -> String {
        let pool = if workers <= 1 {
            WorkerPool::sequential()
        } else {
            WorkerPool::new(workers)
        };
        let report = IngestFrontEnd::new(config(4)).run(&pool);
        serde_json::to_string_pretty(&report).expect("report serializes")
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let one = run_json(1);
        assert_eq!(one, run_json(2));
        assert_eq!(one, run_json(8));
    }

    #[test]
    fn conservation_holds_and_corruption_is_typed() {
        let report = IngestFrontEnd::new(config(4)).run(&WorkerPool::sequential());
        // report() asserts parsed == completed + shed + unfinished.
        assert!(report.parsed > 0, "no traffic generated");
        assert!(report.completed > 0, "nothing served");
        assert!(
            report.frames.rejected_total > 0,
            "corrupt_every should exercise the typed-error path"
        );
        assert_eq!(
            report.frames.rejected_total,
            report.frames.rejected_truncated
                + report.frames.rejected_bad_proto
                + report.frames.rejected_not_compute
                + report.frames.rejected_bad_primitive
                + report.frames.rejected_operand_overrun
        );
        assert!(report.distinct_active_tenants > 0);
        // The memory bound: state held is for backlogged tenants only,
        // a sliver of the 2008-tenant universe.
        let held: usize = report
            .shard_reports
            .iter()
            .map(|s| s.active_tenant_state)
            .sum();
        assert!(
            held as u64 <= report.unfinished + report.shards as u64,
            "admission state ({held}) outgrew the backlog ({})",
            report.unfinished
        );
    }

    #[test]
    fn rebalance_migrates_and_conserves_slots() {
        let report = IngestFrontEnd::new(config(4)).run(&WorkerPool::sequential());
        assert_eq!(report.rebalance.passes, 2, "one pass between each epoch");
        assert!(report.rebalance.migrations > 0, "skew never corrected");
        let total_slots: usize = report.shard_reports.iter().map(|s| s.slots).sum();
        assert_eq!(total_slots, 12, "slot re-split must conserve inventory");
        let migrations_in: u64 = report.shard_reports.iter().map(|s| s.migrations_in).sum();
        let migrations_out: u64 = report.shard_reports.iter().map(|s| s.migrations_out).sum();
        assert_eq!(migrations_in, report.rebalance.migrations);
        assert_eq!(migrations_out, report.rebalance.migrations);
        // A tenant can migrate back home (override dropped), so the
        // displaced set is bounded by — not equal to — the move count.
        assert!(report.rebalance.displaced <= report.rebalance.migrations);
    }

    #[test]
    fn single_shard_run_needs_no_rebalance() {
        let mut c = config(1);
        c.epochs = 2;
        let report = IngestFrontEnd::new(c).run(&WorkerPool::sequential());
        assert_eq!(report.rebalance.migrations, 0);
        assert_eq!(report.shard_reports.len(), 1);
        assert_eq!(report.shard_reports[0].slots, 12);
    }
}
