//! One ingest shard: a self-contained, deterministic event loop over a
//! partition of the tenant universe.
//!
//! A shard owns everything its tenants touch — arrival sampling, frame
//! parsing, sparse admission, batching, and a private EDF scheduler over
//! the transponder slots the rebalancer has granted it — so an epoch of
//! shard time runs with **no shared state**: the driver moves whole
//! [`ShardState`] values through `ofpc_par::WorkerPool::scatter_gather`
//! and gets them back in shard order, which is what makes the report
//! byte-identical at any worker count.
//!
//! Arrivals are sampled from one aggregate Poisson process per shard
//! (rate = Σ members × class rate) rather than a process per tenant: the
//! arrival stream of a million mostly-idle tenants is statistically the
//! thinned superposition, and the aggregate keeps per-tenant cost at
//! zero until a request actually lands. Each arrival synthesizes a real
//! wire frame and parses it through the zero-copy
//! [`ofpc_net::PchFrame`] view — the hot path exercises the exact bytes
//! a deployment would see, and malformed frames surface as typed
//! counts, never panics.

use crate::tenant::TenantClass;
use bytes::Bytes;
use ofpc_net::{Addr, FrameError, NodeId, Packet, PchFrame, PchHeader};
use ofpc_photonics::SimRng;
use ofpc_serve::{
    BatchPolicy, Batcher, ComputeRequest, Dispatch, EventQueue, RequestId, Scheduler, ServiceModel,
    ShedReason, SiteSpec, SparseAdmission, TenantId, TenantShape,
};
use std::collections::BTreeMap;

/// Shard-local events. Variant order is the same-tick tie-break seed
/// only through push order (the queue is FIFO within a tick), so the
/// derive exists purely to satisfy the queue's `Ord` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Next aggregate-Poisson arrival on this shard.
    Arrival,
    /// A batch timeout may be due.
    BatchTick,
    /// A transponder slot's busy window ended; try dispatching again.
    SlotFree { node: NodeId, slot: usize },
    /// A dispatched batch's results reach the requesters.
    Deliver { seq: u64 },
}

/// Compact log-linear latency histogram (same bucket scheme as the
/// telemetry registry: exact below 16, then 16 sub-buckets per octave,
/// ≤ ±3.2% on percentiles). A shard serves unbounded request counts, so
/// per-sample storage is not an option.
#[derive(Debug, Clone)]
pub(crate) struct LatHist {
    buckets: Box<[u64]>,
    count: u64,
}

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
const HIST_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - SUB_BITS as usize + 1;
    let sub = ((v >> (msb - SUB_BITS as usize)) - SUB as u64) as usize;
    octave * SUB + sub
}

fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = idx / SUB;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (octave - 1);
    ((SUB as u64 + sub) << (octave - 1)) + width / 2
}

impl Default for LatHist {
    fn default() -> Self {
        LatHist {
            buckets: vec![0; HIST_BUCKETS].into_boxed_slice(),
            count: 0,
        }
    }
}

impl LatHist {
    pub(crate) fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
    }

    pub(crate) fn merge(&mut self, other: &LatHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Nearest-rank percentile as a bucket midpoint.
    pub(crate) fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bucket_mid(idx));
            }
        }
        None
    }
}

/// Per-class aggregates on one shard. Memory is O(classes), however
/// many requests flow.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClassStats {
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    pub energy_j: f64,
    pub batch_size_sum: u64,
    pub lat: LatHist,
}

impl ClassStats {
    pub(crate) fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_expired_queued
            + self.shed_expired_serving
            + self.shed_engine_failed
    }

    pub(crate) fn merge(&mut self, other: &ClassStats) {
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_expired_queued += other.shed_expired_queued;
        self.shed_expired_serving += other.shed_expired_serving;
        self.shed_engine_failed += other.shed_engine_failed;
        self.energy_j += other.energy_j;
        self.batch_size_sum += other.batch_size_sum;
        self.lat.merge(&other.lat);
    }
}

/// Typed tallies of frames the parser refused. The ingest path must
/// never panic on wire bytes; every rejection lands here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    pub parsed: u64,
    pub rejected_truncated: u64,
    pub rejected_bad_proto: u64,
    pub rejected_not_compute: u64,
    pub rejected_bad_primitive: u64,
    pub rejected_operand_overrun: u64,
}

impl FrameStats {
    pub fn rejected_total(&self) -> u64 {
        self.rejected_truncated
            + self.rejected_bad_proto
            + self.rejected_not_compute
            + self.rejected_bad_primitive
            + self.rejected_operand_overrun
    }

    fn count(&mut self, err: &FrameError) {
        match err {
            FrameError::Truncated { .. } => self.rejected_truncated += 1,
            FrameError::BadProto(_) => self.rejected_bad_proto += 1,
            FrameError::NotCompute => self.rejected_not_compute += 1,
            FrameError::BadPrimitive(_) => self.rejected_bad_primitive += 1,
            FrameError::OperandOverrun { .. } => self.rejected_operand_overrun += 1,
        }
    }

    pub(crate) fn merge(&mut self, o: &FrameStats) {
        self.parsed += o.parsed;
        self.rejected_truncated += o.rejected_truncated;
        self.rejected_bad_proto += o.rejected_bad_proto;
        self.rejected_not_compute += o.rejected_not_compute;
        self.rejected_bad_primitive += o.rejected_bad_primitive;
        self.rejected_operand_overrun += o.rejected_operand_overrun;
    }
}

/// A dispatched batch awaiting its delivery event.
#[derive(Debug, Clone)]
struct Flight {
    requests: Vec<ComputeRequest>,
    energy_j: f64,
    batch_size: u32,
}

/// The moving parts of one shard. Owned, `Send`, and mutated only by
/// the worker running its epoch — message passing by value, no locks.
#[derive(Debug)]
pub struct ShardState {
    pub(crate) id: u32,
    now_ps: u64,
    rng: SimRng,
    classes: Vec<TenantClass>,
    /// Class-block prefix sums (mirror of the directory's layout).
    class_start: Vec<u32>,
    /// Member tenant ids per class, sorted — the sampling universe.
    members: Vec<Vec<u32>>,
    /// Prebuilt operand payload per class (`Bytes` clones are
    /// refcounted, so every synthesized frame shares one allocation).
    payloads: Vec<Bytes>,
    admission: SparseAdmission,
    batcher: Batcher,
    scheduler: Scheduler,
    events: EventQueue<Ev>,
    /// Earliest armed batch-timeout tick (dedup guard).
    armed_tick: Option<u64>,
    in_flight: BTreeMap<u64, Flight>,
    next_flight: u64,
    req_counter: u64,
    /// Synthesize-then-corrupt every Nth frame (0 = never): keeps the
    /// typed-error path continuously exercised in the same run.
    corrupt_every: u64,
    frames_seen: u64,
    /// Max requests pulled from admission per pump round.
    drain_quantum: usize,
    pub(crate) stats: Vec<ClassStats>,
    pub(crate) frames: FrameStats,
    /// Bitmap over the whole tenant universe: ever admitted here.
    pub(crate) active_bitmap: Vec<u64>,
    /// Arrivals this epoch (rebalance load signal; driver clears).
    pub(crate) epoch_arrivals: u64,
    /// Per-tenant arrivals this epoch — only tenants that actually
    /// arrived, so the map is bounded by epoch traffic, not population.
    pub(crate) epoch_heat: BTreeMap<u32, u32>,
    /// Migrations applied to this shard (in, out) over the run.
    pub(crate) migrations_in: u64,
    pub(crate) migrations_out: u64,
}

impl ShardState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u32,
        seed: u64,
        classes: Vec<TenantClass>,
        members: Vec<Vec<u32>>,
        total_tenants: u32,
        model: ServiceModel,
        sites: &[SiteSpec],
        batch: BatchPolicy,
        corrupt_every: u64,
        drain_quantum: usize,
    ) -> Self {
        assert_eq!(members.len(), classes.len());
        let mut class_start = Vec::with_capacity(classes.len() + 1);
        let mut acc = 0u32;
        class_start.push(0);
        for c in &classes {
            acc += c.population;
            class_start.push(acc);
        }
        let payloads: Vec<Bytes> = classes
            .iter()
            .map(|c| {
                Bytes::from(
                    (0..c.operand_len as usize)
                        .map(|i| (i % 251) as u8)
                        .collect::<Vec<u8>>(),
                )
            })
            .collect();
        // The scheduler insists every site starts with ≥1 slot; the
        // driver resizes to the real (possibly zero) grant right after.
        let seed_sites: Vec<SiteSpec> = sites.iter().map(|s| SiteSpec { slots: 1, ..*s }).collect();
        let stats = vec![ClassStats::default(); classes.len()];
        let mut shard = ShardState {
            id,
            now_ps: 0,
            rng: SimRng::seed_from_u64(seed),
            classes,
            class_start,
            members,
            payloads,
            admission: SparseAdmission::default(),
            batcher: Batcher::new(batch),
            scheduler: Scheduler::new(model, seed_sites),
            events: EventQueue::new(),
            armed_tick: None,
            in_flight: BTreeMap::new(),
            next_flight: 0,
            req_counter: 0,
            corrupt_every,
            frames_seen: 0,
            drain_quantum: drain_quantum.max(1),
            stats,
            frames: FrameStats::default(),
            active_bitmap: vec![0u64; (total_tenants as usize).div_ceil(64)],
            epoch_arrivals: 0,
            epoch_heat: BTreeMap::new(),
            migrations_in: 0,
            migrations_out: 0,
        };
        shard.schedule_next_arrival();
        shard
    }

    fn class_of(&self, tenant: u32) -> usize {
        self.class_start.partition_point(|&s| s <= tenant) - 1
    }

    fn shape_of(&self, class: usize) -> TenantShape {
        TenantShape {
            capacity: self.classes[class].queue_capacity,
            weight: self.classes[class].weight,
        }
    }

    /// Aggregate arrival rate of this shard, requests per picosecond.
    fn rate_per_ps(&self) -> f64 {
        let per_sec: f64 = self
            .classes
            .iter()
            .zip(&self.members)
            .map(|(c, m)| c.mean_rate_rps * m.len() as f64)
            .sum();
        per_sec * 1e-12
    }

    fn schedule_next_arrival(&mut self) {
        let rate = self.rate_per_ps();
        if rate <= 0.0 {
            return; // an empty shard generates nothing
        }
        let gap = self.rng.exponential(rate).ceil() as u64;
        self.events.push(self.now_ps + gap.max(1), Ev::Arrival);
    }

    /// Run the shard forward until `end_ps` (exclusive). Events at or
    /// beyond the boundary stay queued for the next epoch, which is
    /// what lets the driver interleave a global rebalance between
    /// epochs without tearing any in-progress event.
    pub(crate) fn run_until(&mut self, end_ps: u64) {
        while let Some(t) = self.events.peek_time() {
            if t >= end_ps {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked above");
            self.now_ps = t;
            self.on_event(ev);
        }
        self.now_ps = end_ps;
    }

    fn on_event(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => {
                self.spawn_arrival();
                self.schedule_next_arrival();
                self.pump();
            }
            Ev::BatchTick => {
                if self.armed_tick == Some(self.now_ps) {
                    self.armed_tick = None;
                }
                self.batcher.flush_timeouts(self.now_ps);
                self.pump();
            }
            Ev::SlotFree { node, slot } => {
                self.scheduler.release(node, slot, self.now_ps);
                self.pump();
            }
            Ev::Deliver { seq } => self.settle(seq),
        }
    }

    /// Sample which tenant fires, synthesize its wire frame, and admit
    /// it through the zero-copy parser.
    fn spawn_arrival(&mut self) {
        // Class by rate share, then a uniform member of the class.
        let total: f64 = self
            .classes
            .iter()
            .zip(&self.members)
            .map(|(c, m)| c.mean_rate_rps * m.len() as f64)
            .sum();
        if total <= 0.0 {
            return;
        }
        let mut pick = self.rng.uniform() * total;
        let mut class = self.classes.len() - 1;
        for (i, (c, m)) in self.classes.iter().zip(&self.members).enumerate() {
            let w = c.mean_rate_rps * m.len() as f64;
            if pick < w {
                class = i;
                break;
            }
            pick -= w;
        }
        if self.members[class].is_empty() {
            return; // all members migrated away between samples
        }
        let member = self.rng.below(self.members[class].len());
        let tenant = self.members[class][member];

        self.frames_seen += 1;
        let wire = self.synthesize_frame(tenant, class);
        match PchFrame::parse(wire) {
            Ok(frame) => {
                self.frames.parsed += 1;
                self.stats[class].arrivals += 1;
                self.epoch_arrivals += 1;
                *self.epoch_heat.entry(tenant).or_insert(0) += 1;
                self.active_bitmap[tenant as usize / 64] |= 1 << (tenant % 64);
                let deadline = self.now_ps + self.classes[class].deadline_ps;
                let req = ComputeRequest {
                    id: RequestId((u64::from(self.id) << 40) | self.req_counter),
                    tenant: TenantId(tenant),
                    // Shape comes from the parsed view, not the class
                    // table: the admitted request is exactly what the
                    // wire said.
                    primitive: frame.primitive(),
                    operand_len: u32::from(frame.operand_len()),
                    arrival_ps: self.now_ps,
                    deadline_ps: deadline,
                };
                self.req_counter += 1;
                self.admission.offer(req, self.shape_of(class));
            }
            Err(e) => self.frames.count(&e),
        }
    }

    /// Build the tenant's request as real wire bytes, optionally
    /// corrupted on a fixed cadence.
    fn synthesize_frame(&mut self, tenant: u32, class: usize) -> Bytes {
        let c = &self.classes[class];
        let pch = PchHeader {
            primitive: c.primitive,
            flags: 0,
            op_id: (self.req_counter % u64::from(u16::MAX)) as u16,
            result_q88: 0,
            operand_len: c.operand_len,
        };
        let pkt = Packet::compute(
            Addr(tenant),
            Addr::new(10, 0, 0, 1),
            self.req_counter as u32,
            pch,
            self.payloads[class].clone(),
        );
        let wire = pkt.to_wire();
        if self.corrupt_every == 0 || !self.frames_seen.is_multiple_of(self.corrupt_every) {
            return wire;
        }
        // Deterministic damage, cycling through the failure families.
        let mut raw = wire.to_vec();
        match (self.frames_seen / self.corrupt_every) % 3 {
            0 => raw.truncate((self.frames_seen % wire.len() as u64) as usize),
            1 => raw[15] = 0x7F, // unknown protocol
            2 => {
                // Operand count beyond the payload (big-endian u16 at
                // the PCH tail).
                let claim = (self.payloads[class].len() + 1) as u16;
                raw[22] = (claim >> 8) as u8;
                raw[23] = (claim & 0xFF) as u8;
            }
            _ => unreachable!(),
        }
        Bytes::from(raw)
    }

    /// Move admitted work as far toward the fiber as capacity allows:
    /// admission → batcher → scheduler, repeating while dispatches land.
    fn pump(&mut self) {
        let now = self.now_ps;
        self.admission.expire_stale(now);
        loop {
            let idle = self.scheduler.idle_slots(now);
            let budget = (idle * self.batcher.policy().max_batch).min(self.drain_quantum);
            if budget > 0 {
                for req in self.admission.drain_fair(budget, now) {
                    self.batcher.push(req, now);
                }
            }
            self.batcher.flush_timeouts(now);
            for b in self.batcher.take_closed() {
                self.scheduler.enqueue(b);
            }
            let dispatches = self.scheduler.try_dispatch(now);
            if dispatches.is_empty() {
                break;
            }
            for d in dispatches {
                self.on_dispatch(d);
            }
        }
        self.arm_tick();
        for (req, reason) in self.admission.take_shed() {
            self.record_shed(&req, reason);
        }
    }

    fn on_dispatch(&mut self, d: Dispatch) {
        for (req, reason) in d.shed {
            self.record_shed(&req, reason);
        }
        if d.batch.is_empty() {
            return;
        }
        // Wake the pump when dispatching to this slot becomes useful
        // again; without it a lull in arrivals would strand ready work.
        self.events.push(
            d.free_ps.max(self.now_ps + 1),
            Ev::SlotFree {
                node: d.node,
                slot: d.slot,
            },
        );
        let seq = self.next_flight;
        self.next_flight += 1;
        let n = d.batch.len() as u32;
        self.in_flight.insert(
            seq,
            Flight {
                requests: d.batch.requests,
                energy_j: d.energy.total_j(),
                batch_size: n,
            },
        );
        self.events
            .push(d.delivered_ps.max(self.now_ps + 1), Ev::Deliver { seq });
    }

    fn settle(&mut self, seq: u64) {
        let flight = self.in_flight.remove(&seq).expect("unknown flight");
        let per_req = flight.energy_j / flight.requests.len() as f64;
        for req in &flight.requests {
            let class = self.class_of(req.tenant.0);
            let s = &mut self.stats[class];
            s.completed += 1;
            s.energy_j += per_req;
            s.batch_size_sum += u64::from(flight.batch_size);
            s.lat.record(self.now_ps.saturating_sub(req.arrival_ps));
        }
        self.pump();
    }

    fn record_shed(&mut self, req: &ComputeRequest, reason: ShedReason) {
        let class = self.class_of(req.tenant.0);
        let s = &mut self.stats[class];
        match reason {
            ShedReason::QueueFull => s.shed_queue_full += 1,
            ShedReason::DeadlineExpiredQueued => s.shed_expired_queued += 1,
            ShedReason::DeadlineExpiredServing => s.shed_expired_serving += 1,
            ShedReason::EngineFailed => s.shed_engine_failed += 1,
        }
    }

    fn arm_tick(&mut self) {
        if let Some(t) = self.batcher.next_timeout_ps() {
            let due = t.max(self.now_ps + 1);
            if self.armed_tick.is_none_or(|a| due < a) {
                self.events.push(due, Ev::BatchTick);
                self.armed_tick = Some(due);
            }
        }
    }

    // ---- rebalance seams (driver-side, between epochs) -----------------

    /// Outbound migration: forget the tenant and hand back its queue.
    pub(crate) fn evict_tenant(&mut self, tenant: u32) -> Vec<ComputeRequest> {
        let class = self.class_of(tenant);
        if let Ok(pos) = self.members[class].binary_search(&tenant) {
            self.members[class].remove(pos);
        }
        self.migrations_out += 1;
        self.admission.remove_tenant(TenantId(tenant))
    }

    /// Inbound migration: adopt the tenant and its queued work.
    pub(crate) fn adopt_tenant(&mut self, tenant: u32, queued: Vec<ComputeRequest>) {
        let class = self.class_of(tenant);
        if let Err(pos) = self.members[class].binary_search(&tenant) {
            self.members[class].insert(pos, tenant);
        }
        self.migrations_in += 1;
        let shape = self.shape_of(class);
        self.admission.adopt(queued, shape);
    }

    /// Slot re-split: the rebalancer's grant for one physical site.
    pub(crate) fn set_site_slots(&mut self, node: NodeId, slots: usize) {
        self.scheduler.resize_site(node, slots, self.now_ps);
    }

    pub(crate) fn slots_at(&self) -> usize {
        self.scheduler.total_slots()
    }

    /// Requests the shard still holds (admission + open batches +
    /// ready batches + in flight) — the conservation remainder.
    pub(crate) fn unfinished(&self) -> u64 {
        (self.admission.queued()
            + self.batcher.open_len()
            + self.scheduler.backlog_requests()
            + self
                .in_flight
                .values()
                .map(|f| f.requests.len())
                .sum::<usize>()) as u64
    }

    pub(crate) fn active_tenant_state(&self) -> usize {
        self.admission.active_tenants()
    }

    /// Hot tenants this epoch by arrival count (desc), ties by id.
    pub(crate) fn hottest_this_epoch(&self, limit: usize) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.epoch_heat.iter().map(|(&t, &n)| (t, n)).collect();
        v.sort_by_key(|&(t, n)| (std::cmp::Reverse(n), t));
        v.truncate(limit);
        v
    }

    pub(crate) fn end_epoch(&mut self) {
        self.epoch_arrivals = 0;
        self.epoch_heat.clear();
    }
}
