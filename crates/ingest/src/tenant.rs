//! The tenant universe: who exists, how they behave, and where they live.
//!
//! A million tenants cannot each carry an arrival-process object, a
//! queue allocation, and a metrics collector — the front-end would spend
//! all its memory on idle users. Instead tenants are described
//! *by class*: a handful of [`TenantClass`] templates, each with a
//! population count, laid out as contiguous id blocks. Everything a
//! tenant needs (rate, weight, queue bound, request shape, deadline) is
//! a class lookup; per-tenant state materializes only while the tenant
//! has work queued (see `ofpc_serve::SparseAdmission`).
//!
//! Placement is a pure hash of the tenant id ([`TenantDirectory::home_shard`]),
//! so any component can route a tenant without consulting a map. The
//! exception is the small set of tenants the global rebalancer has
//! migrated off their home shard; those live in an override table that
//! is bounded by the rebalancer's migration budget, not by the
//! population.

use ofpc_engine::Primitive;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A behavioral template shared by a block of tenants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantClass {
    pub name: String,
    /// How many tenants instantiate this class.
    pub population: u32,
    /// DRR weight of each member tenant.
    pub weight: u32,
    /// Per-tenant admission queue bound.
    pub queue_capacity: usize,
    /// Mean request rate per tenant, req/s (Poisson).
    pub mean_rate_rps: f64,
    /// Request shape: photonic primitive and operand element count.
    pub primitive: Primitive,
    pub operand_len: u16,
    /// Relative deadline granted to each request, ps.
    pub deadline_ps: u64,
}

/// SplitMix64 finalizer: the tenant-placement hash. Chosen over a plain
/// modulus so consecutive tenant ids (which share a class block) spread
/// across shards instead of striping.
#[inline]
pub(crate) fn place_hash(tenant: u32) -> u64 {
    let mut z = (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Id-space layout and shard placement for the whole tenant universe.
///
/// Tenant ids are assigned in class order: class `c` owns the half-open
/// block `[class_start[c], class_start[c + 1])`. The directory is O(classes
/// + migrated tenants) in memory regardless of population.
#[derive(Debug, Clone)]
pub struct TenantDirectory {
    /// Prefix sums of class populations; `class_start[classes.len()]`
    /// is the total tenant count.
    class_start: Vec<u32>,
    shards: u32,
    /// Tenants the rebalancer moved off their hash-home shard.
    overrides: BTreeMap<u32, u32>,
}

impl TenantDirectory {
    pub fn new(classes: &[TenantClass], shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(!classes.is_empty(), "need at least one tenant class");
        let mut class_start = Vec::with_capacity(classes.len() + 1);
        let mut acc: u32 = 0;
        class_start.push(0);
        for c in classes {
            assert!(c.population > 0, "class {} has no tenants", c.name);
            acc = acc
                .checked_add(c.population)
                .expect("tenant population overflows u32");
            class_start.push(acc);
        }
        TenantDirectory {
            class_start,
            shards,
            overrides: BTreeMap::new(),
        }
    }

    pub fn total_tenants(&self) -> u32 {
        *self.class_start.last().expect("non-empty prefix sums")
    }

    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Which class block a tenant id falls in.
    pub fn class_of(&self, tenant: u32) -> usize {
        debug_assert!(
            tenant < self.total_tenants(),
            "tenant {tenant} out of range"
        );
        // partition_point gives the first start > tenant; the block
        // before it owns the id.
        self.class_start.partition_point(|&s| s <= tenant) - 1
    }

    /// Hash-home shard, ignoring migrations.
    pub fn home_shard(&self, tenant: u32) -> u32 {
        (place_hash(tenant) % u64::from(self.shards)) as u32
    }

    /// Current owning shard (override-aware).
    pub fn shard_of(&self, tenant: u32) -> u32 {
        self.overrides
            .get(&tenant)
            .copied()
            .unwrap_or_else(|| self.home_shard(tenant))
    }

    /// Record a migration. Moving a tenant back to its home shard drops
    /// the override, so the table stays bounded by the *displaced* set.
    pub fn migrate(&mut self, tenant: u32, to: u32) {
        assert!(to < self.shards, "migration to unknown shard {to}");
        if to == self.home_shard(tenant) {
            self.overrides.remove(&tenant);
        } else {
            self.overrides.insert(tenant, to);
        }
    }

    /// Tenants currently living away from their hash home.
    pub fn displaced(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<TenantClass> {
        vec![
            TenantClass {
                name: "heavy".into(),
                population: 3,
                weight: 4,
                queue_capacity: 64,
                mean_rate_rps: 1000.0,
                primitive: Primitive::VectorDotProduct,
                operand_len: 256,
                deadline_ps: 50_000_000,
            },
            TenantClass {
                name: "tail".into(),
                population: 100,
                weight: 1,
                queue_capacity: 8,
                mean_rate_rps: 2.0,
                primitive: Primitive::PatternMatching,
                operand_len: 64,
                deadline_ps: 80_000_000,
            },
        ]
    }

    #[test]
    fn class_blocks_are_contiguous() {
        let d = TenantDirectory::new(&classes(), 4);
        assert_eq!(d.total_tenants(), 103);
        assert_eq!(d.class_of(0), 0);
        assert_eq!(d.class_of(2), 0);
        assert_eq!(d.class_of(3), 1);
        assert_eq!(d.class_of(102), 1);
    }

    #[test]
    fn placement_is_stable_and_spread() {
        let d = TenantDirectory::new(&classes(), 4);
        let mut per_shard = [0usize; 4];
        for t in 0..d.total_tenants() {
            assert_eq!(d.home_shard(t), d.home_shard(t));
            per_shard[d.home_shard(t) as usize] += 1;
        }
        // 103 tenants over 4 shards: the hash should not leave any
        // shard starved or hoarding.
        for &n in &per_shard {
            assert!((10..=50).contains(&n), "skewed placement: {per_shard:?}");
        }
    }

    #[test]
    fn overrides_track_only_displaced_tenants() {
        let mut d = TenantDirectory::new(&classes(), 4);
        let t = 7;
        let home = d.home_shard(t);
        let away = (home + 1) % 4;
        d.migrate(t, away);
        assert_eq!(d.shard_of(t), away);
        assert_eq!(d.displaced(), 1);
        d.migrate(t, home);
        assert_eq!(d.shard_of(t), home);
        assert_eq!(d.displaced(), 0, "returning home clears the override");
    }
}
