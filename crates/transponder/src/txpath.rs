//! Transmit path (Fig. 3, top): DSP bits → DAC → modulator → fiber.
//!
//! On-off keying at one sample per bit — deliberately the simplest line
//! code that exercises every device on the path. Energy is charged per
//! stage: DSP per bit, DAC per sample, modulator drive per symbol, laser
//! wall-plug over the block duration.

use ofpc_photonics::converter::{ConverterConfig, Dac};
use ofpc_photonics::energy::{constants, EnergyLedger};
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::signal::{AnalogWaveform, OpticalField};
use ofpc_photonics::SimRng;
use ofpc_telemetry::{Counter, Telemetry};

/// Transmit-path configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TxConfig {
    pub laser: LaserConfig,
    pub mzm: MzmConfig,
    pub dac: ConverterConfig,
    /// Line rate, bits (symbols) per second.
    pub line_rate_bps: f64,
    /// DSP energy per transmitted bit, J.
    pub dsp_energy_per_bit_j: f64,
}

impl TxConfig {
    /// Ideal noiseless path.
    pub fn ideal() -> Self {
        TxConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            mzm: MzmConfig::ideal(),
            dac: ConverterConfig::ideal(8),
            line_rate_bps: 32e9,
            dsp_energy_per_bit_j: 0.0,
        }
    }

    /// Realistic commodity transponder TX.
    pub fn realistic() -> Self {
        TxConfig {
            laser: LaserConfig::default(),
            mzm: MzmConfig::default(),
            dac: ConverterConfig {
                energy_per_sample_j: constants::DAC_SAMPLE_J,
                ..ConverterConfig::default()
            },
            line_rate_bps: 32e9,
            dsp_energy_per_bit_j: constants::DSP_BIT_J,
        }
    }
}

/// The transmit path of a transponder.
#[derive(Debug, Clone)]
pub struct TxPath {
    pub config: TxConfig,
    laser: Laser,
    mzm: MachZehnderModulator,
    dac: Dac,
    pub bits_sent: u64,
    tel_blocks: Counter,
    tel_bits: Counter,
}

impl TxPath {
    pub fn new(config: TxConfig, rng: &mut SimRng) -> Self {
        TxPath {
            laser: Laser::new(config.laser.clone(), rng.derive("tx-laser")),
            mzm: MachZehnderModulator::new(config.mzm.clone()),
            dac: Dac::new(config.dac.clone(), rng.derive("tx-dac")),
            config,
            bits_sent: 0,
            tel_blocks: Counter::noop(),
            tel_bits: Counter::noop(),
        }
    }

    /// Profiling hook: count transmitted blocks/bits on the registry
    /// (`transponder_tx_*` series).
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel_blocks = tel.counter("transponder_tx_blocks_total", &Vec::new());
        self.tel_bits = tel.counter("transponder_tx_bits_total", &Vec::new());
    }

    /// Modulate a bit sequence onto light, one sample per bit (OOK).
    pub fn transmit(&mut self, bits: &[bool]) -> OpticalField {
        assert!(!bits.is_empty(), "cannot transmit zero bits");
        let n = bits.len();
        let light = self.laser.emit(n, self.config.line_rate_bps);
        // Bits go through the DAC as full-scale / zero codes.
        let codes: Vec<u64> = bits
            .iter()
            .map(|&b| if b { self.dac.levels() - 1 } else { 0 })
            .collect();
        let _wave = self.dac.convert(&codes, self.config.line_rate_bps);
        let drive = AnalogWaveform::new(
            bits.iter()
                .map(|&b| self.mzm.drive_for_transmission(if b { 1.0 } else { 0.0 }))
                .collect(),
            self.config.line_rate_bps,
        );
        let out = self.mzm.modulate(&light, &drive);
        self.bits_sent += n as u64;
        self.tel_blocks.inc();
        self.tel_bits.add(n as u64);
        out
    }

    /// Mean launch power of a '1' symbol, W (after modulator loss).
    pub fn one_level_w(&self) -> f64 {
        let t = {
            let v = self.mzm.drive_for_transmission(1.0);
            self.mzm.power_transmission(v)
        };
        self.laser.power_w() * t
    }

    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let secs = self.bits_sent as f64 / self.config.line_rate_bps;
        ledger.add("tx-laser", self.laser.config.wall_plug_w * secs);
        ledger.add("tx-mzm", self.mzm.energy_consumed_j());
        ledger.add("tx-dac", self.dac.energy_consumed_j());
        ledger.add(
            "tx-dsp",
            self.bits_sent as f64 * self.config.dsp_energy_per_bit_j,
        );
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_carry_power_zeros_are_dark() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let field = tx.transmit(&[true, false, true, true, false]);
        assert!(field.power_at(0) > 1e-4);
        assert!(field.power_at(1) < 1e-12);
        assert!(field.power_at(4) < 1e-12);
        assert_eq!(tx.bits_sent, 5);
    }

    #[test]
    fn one_level_matches_emitted_power() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let field = tx.transmit(&[true]);
        assert!((field.power_at(0) - tx.one_level_w()).abs() / tx.one_level_w() < 1e-9);
    }

    #[test]
    fn realistic_tx_charges_every_stage() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut tx = TxPath::new(TxConfig::realistic(), &mut rng);
        tx.transmit(&vec![true; 1000]);
        let ledger = tx.energy_ledger();
        for stage in ["tx-laser", "tx-mzm", "tx-dac", "tx-dsp"] {
            assert!(ledger.get(stage) > 0.0, "stage {stage} uncharged");
        }
    }

    #[test]
    #[should_panic(expected = "zero bits")]
    fn rejects_empty_transmission() {
        let mut rng = SimRng::seed_from_u64(0);
        TxPath::new(TxConfig::ideal(), &mut rng).transmit(&[]);
    }
}
