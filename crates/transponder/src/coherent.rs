//! Coherent QPSK transponder path.
//!
//! Deployed WAN transponders are coherent (the 100G/800G systems of
//! Roberts et al. that Fig. 3 is drawn from): an IQ modulator writes two
//! bits per symbol as the field's quadrant, and a coherent receiver
//! recovers both quadratures — doubling spectral efficiency over the OOK
//! path in [`crate::txpath`]/[`crate::rxpath`] and gaining LO-powered
//! sensitivity. Carrier/phase recovery is assumed ideal (it is the DSP
//! ASIC's job in hardware and orthogonal to the on-fiber computing
//! story; the fiber model's deterministic carrier phase is inverted
//! exactly).

use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::iq::{CoherentReceiver, CoherentRxConfig, IqModulator};
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::MzmConfig;
use ofpc_photonics::signal::{AnalogWaveform, OpticalField};
use ofpc_photonics::SimRng;

/// QPSK amplitude per rail (unit-energy symbols).
const RAIL: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Map a bit pair to a Gray-coded QPSK symbol `(i, q)`.
pub fn qpsk_map(b0: bool, b1: bool) -> (f64, f64) {
    (if b0 { RAIL } else { -RAIL }, if b1 { RAIL } else { -RAIL })
}

/// Slice received quadratures back to a bit pair.
pub fn qpsk_slice(i: f64, q: f64) -> (bool, bool) {
    (i > 0.0, q > 0.0)
}

/// Coherent transmit path: laser → IQ modulator.
#[derive(Debug)]
pub struct CoherentTx {
    laser: Laser,
    iq: IqModulator,
    pub symbol_rate_hz: f64,
    pub bits_sent: u64,
}

impl CoherentTx {
    pub fn new(laser: LaserConfig, mzm: MzmConfig, symbol_rate_hz: f64, rng: &mut SimRng) -> Self {
        CoherentTx {
            laser: Laser::new(laser, rng.derive("coh-tx-laser")),
            iq: IqModulator::new(mzm),
            symbol_rate_hz,
            bits_sent: 0,
        }
    }

    pub fn ideal(rng: &mut SimRng) -> Self {
        CoherentTx::new(
            LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            MzmConfig::ideal(),
            32e9,
            rng,
        )
    }

    /// Line rate, bits/s: two bits per symbol.
    pub fn line_rate_bps(&self) -> f64 {
        2.0 * self.symbol_rate_hz
    }

    /// Transmit a bit sequence (padded to an even count with a zero).
    pub fn transmit(&mut self, bits: &[bool]) -> OpticalField {
        assert!(!bits.is_empty(), "cannot transmit zero bits");
        let mut padded = bits.to_vec();
        if padded.len() % 2 == 1 {
            padded.push(false);
        }
        let n_sym = padded.len() / 2;
        let carrier = self.laser.emit(n_sym, self.symbol_rate_hz);
        let mut di = Vec::with_capacity(n_sym);
        let mut dq = Vec::with_capacity(n_sym);
        for pair in padded.chunks(2) {
            let (i, q) = qpsk_map(pair[0], pair[1]);
            di.push(self.iq.drive_for_amplitude(i));
            dq.push(self.iq.drive_for_amplitude(q));
        }
        let out = self.iq.modulate(
            &carrier,
            &AnalogWaveform::new(di, self.symbol_rate_hz),
            &AnalogWaveform::new(dq, self.symbol_rate_hz),
        );
        self.bits_sent += bits.len() as u64;
        out
    }

    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let secs = self.bits_sent as f64 / self.line_rate_bps();
        ledger.add("coh-tx-laser", self.laser.config.wall_plug_w * secs);
        ledger.add("coh-tx-iq", self.iq.energy_consumed_j());
        ledger
    }
}

/// Coherent receive path: 90° hybrid + balanced detection + slicing.
#[derive(Debug)]
pub struct CoherentRx {
    rx: CoherentReceiver,
    pub bits_received: u64,
}

impl CoherentRx {
    pub fn new(config: CoherentRxConfig, rng: &mut SimRng) -> Self {
        CoherentRx {
            rx: CoherentReceiver::new(config, rng),
            bits_received: 0,
        }
    }

    pub fn ideal(rng: &mut SimRng) -> Self {
        let _ = rng;
        CoherentRx {
            rx: CoherentReceiver::ideal(),
            bits_received: 0,
        }
    }

    /// Detect and slice a QPSK field back to bits (2 per symbol).
    /// `carrier_phase` is the accumulated fiber carrier phase the DSP's
    /// carrier recovery has estimated (exact in this model: pass
    /// the span's known rotation, or 0 for back-to-back).
    pub fn receive(&mut self, field: &OpticalField, carrier_phase: f64) -> Vec<bool> {
        // Ideal carrier recovery: derotate before detection.
        let mut derotated = field.clone();
        derotated.rotate_phase(-carrier_phase);
        let (i, q) = self.rx.detect(&derotated);
        let mut bits = Vec::with_capacity(2 * field.len());
        for k in 0..field.len() {
            let (b0, b1) = qpsk_slice(i.samples[k], q.samples[k]);
            bits.push(b0);
            bits.push(b1);
        }
        self.bits_received += bits.len() as u64;
        bits
    }
}

/// The carrier phase a fiber span imparts (what DSP carrier recovery
/// estimates; exact in this deterministic model).
pub fn span_carrier_phase(span: &ofpc_photonics::fiber::FiberSpan, wavelength_m: f64) -> f64 {
    (std::f64::consts::TAU * span.length_km * 1e3 / wavelength_m) % std::f64::consts::TAU
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_photonics::fiber::FiberSpan;

    #[test]
    fn qpsk_constellation_is_gray_coded() {
        // Adjacent quadrants differ in exactly one bit.
        let symbols = [(false, false), (false, true), (true, true), (true, false)];
        for w in symbols.windows(2) {
            let d = (w[0].0 != w[1].0) as u32 + (w[0].1 != w[1].1) as u32;
            assert_eq!(d, 1);
        }
        // Map/slice round trip.
        for &(b0, b1) in &symbols {
            let (i, q) = qpsk_map(b0, b1);
            assert_eq!(qpsk_slice(i, q), (b0, b1));
            assert!((i * i + q * q - 1.0).abs() < 1e-12, "unit energy");
        }
    }

    #[test]
    fn back_to_back_loopback() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut rx = CoherentRx::ideal(&mut rng);
        let bits: Vec<bool> = (0..128).map(|i| i % 3 == 0).collect();
        let field = tx.transmit(&bits);
        assert_eq!(field.len(), 64, "2 bits per symbol");
        let got = rx.receive(&field, 0.0);
        assert_eq!(got, bits);
    }

    #[test]
    fn odd_bit_counts_pad() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut rx = CoherentRx::ideal(&mut rng);
        let bits = vec![true, false, true];
        let got = rx.receive(&tx.transmit(&bits), 0.0);
        assert_eq!(&got[..3], &bits[..]);
        assert!(!got[3], "pad bit is zero");
    }

    #[test]
    fn survives_a_long_span_with_carrier_recovery() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut rx = CoherentRx::ideal(&mut rng);
        let span = FiberSpan::compensated(80.0);
        let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 5 < 2).collect();
        let field = span.propagate(&tx.transmit(&bits));
        let phase = span_carrier_phase(&span, field.wavelength_m);
        let got = rx.receive(&field, phase);
        assert_eq!(got, bits);
    }

    #[test]
    fn without_carrier_recovery_the_constellation_spins() {
        // The same span decoded with zero phase estimate garbles bits —
        // demonstrating why the DSP's carrier recovery is load-bearing.
        let mut rng = SimRng::seed_from_u64(3);
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut rx = CoherentRx::ideal(&mut rng);
        // Pick a span whose carrier phase is near 45°(mod 90°) so the
        // uncorrected constellation lands between decision boundaries.
        let mut span = FiberSpan::compensated(80.0);
        let wl = ofpc_photonics::units::C_BAND_WAVELENGTH_M;
        let mut best_km = span.length_km;
        let mut best_err = f64::MAX;
        for delta in 0..200 {
            let km = 80.0 + delta as f64 * 1e-10; // sub-wavelength trims
            let ph = (std::f64::consts::TAU * km * 1e3 / wl) % std::f64::consts::FRAC_PI_2;
            let err = (ph - std::f64::consts::FRAC_PI_4).abs();
            if err < best_err {
                best_err = err;
                best_km = km;
            }
        }
        span.length_km = best_km;
        let bits: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let field = span.propagate(&tx.transmit(&bits));
        let got = rx.receive(&field, 0.0);
        let errors = got.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(
            errors > 20,
            "expected gross errors without recovery, got {errors}"
        );
    }

    #[test]
    fn coherent_beats_ook_at_low_power() {
        // At −40 dBm received power with thermal-noise-limited PDs, the
        // 13 dBm LO lifts the coherent signal above the floor while
        // direct detection drowns.
        let mut rng = SimRng::seed_from_u64(4);
        let bits: Vec<bool> = (0..400).map(|i| (i * 13) % 7 < 3).collect();

        // Coherent with noisy PDs.
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut cfg = CoherentRxConfig::ideal();
        cfg.pd = ofpc_photonics::photodetector::PhotodetectorConfig::default();
        let mut rx = CoherentRx::new(cfg, &mut rng);
        let mut field = tx.transmit(&bits);
        field.attenuate_db(53.0); // 13 dBm launch → −40 dBm received
        let got = rx.receive(&field, 0.0);
        let coherent_errors = got.iter().zip(&bits).filter(|(a, b)| a != b).count();

        // Direct detection (OOK path) at the same received power.
        let mut ook_tx = crate::txpath::TxPath::new(crate::txpath::TxConfig::ideal(), &mut rng);
        let mut ook_rx = crate::rxpath::RxPath::new(
            crate::rxpath::RxConfig {
                pd: ofpc_photonics::photodetector::PhotodetectorConfig::default(),
                ..crate::rxpath::RxConfig::ideal()
            },
            &mut rng,
        );
        ook_rx.calibrate_for_one_level(
            ook_tx.one_level_w() * ofpc_photonics::units::db_to_linear(-53.0),
        );
        let mut ook_field = ook_tx.transmit(&bits);
        ook_field.attenuate_db(53.0);
        let ook_got = ook_rx.receive(&ook_field);
        let ook_errors = ook_got.iter().zip(&bits).filter(|(a, b)| a != b).count();

        assert!(
            coherent_errors < ook_errors / 3,
            "coherent {coherent_errors} errors vs OOK {ook_errors}"
        );
        // The residual coherent errors are the LO shot-noise limit
        // (Q ≈ 2 at this power) — physically expected, not a bug.
        assert!(
            coherent_errors < 40,
            "coherent error rate should stay below 10% ({coherent_errors}/400)"
        );
    }

    #[test]
    fn spectral_efficiency_is_double() {
        let mut rng = SimRng::seed_from_u64(5);
        let tx = CoherentTx::ideal(&mut rng);
        assert_eq!(tx.line_rate_bps(), 64e9); // 32 GBd × 2 bits
    }
}
