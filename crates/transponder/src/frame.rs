//! Line framing.
//!
//! The minimal frame structure the photonic engine needs to operate on
//! the optical signal (Fig. 4): a fixed optical **preamble** the engine's
//! pattern-matching front end locks onto, a one-byte compute-op tag, a
//! length field, the payload, and a reserved **result field** the engine
//! writes its output into. The paper's compute-communication protocol
//! rides above this at the packet layer (`ofpc-net`); this frame is the
//! physical-layer container.
//!
//! Layout, MSB-first on the line:
//!
//! ```text
//! [ preamble 16 bits | op 8 | payload_len 16 | result 32 | payload 8·len | crc 16 ]
//! ```

use bytes::{BufMut, Bytes, BytesMut};

/// The fixed 16-bit optical preamble (alternating-rich pattern with good
/// autocorrelation for the photonic matcher): `0xB7E1`.
pub const PREAMBLE: u16 = 0xB7E1;

/// Preamble as a bit vector (MSB first).
pub fn preamble_bits() -> Vec<bool> {
    (0..16).rev().map(|i| (PREAMBLE >> i) & 1 == 1).collect()
}

/// Number of header+trailer overhead bits per frame.
pub const OVERHEAD_BITS: usize = 16 + 8 + 16 + 32 + 16;

/// A physical-layer frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Compute-op tag: 0 = plain transit; non-zero selects the loaded
    /// photonic operation (mirrors the primitive wire ID).
    pub op: u8,
    /// Result field the photonic engine fills in (4 bytes, fixed point).
    pub result: [u8; 4],
    /// Payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// A plain data frame with no compute request.
    pub fn data(payload: impl Into<Bytes>) -> Self {
        Frame {
            op: 0,
            result: [0; 4],
            payload: payload.into(),
        }
    }

    /// A compute frame tagged for operation `op`.
    pub fn compute(op: u8, payload: impl Into<Bytes>) -> Self {
        assert!(op != 0, "compute frames need a non-zero op tag");
        Frame {
            op,
            result: [0; 4],
            payload: payload.into(),
        }
    }

    /// Whether this frame requests photonic computation.
    pub fn is_compute(&self) -> bool {
        self.op != 0
    }

    /// Total bits on the line for this frame.
    pub fn line_bits(&self) -> usize {
        OVERHEAD_BITS + self.payload.len() * 8
    }

    /// CRC-16/CCITT over op, length, result, and payload.
    pub fn crc(&self) -> u16 {
        let mut bytes = BytesMut::new();
        bytes.put_u8(self.op);
        bytes.put_u16(self.payload.len() as u16);
        bytes.put_slice(&self.result);
        bytes.put_slice(&self.payload);
        crc16(&bytes)
    }

    /// Serialize to line bits (MSB first), preamble included.
    pub fn to_bits(&self) -> Vec<bool> {
        assert!(
            self.payload.len() <= u16::MAX as usize,
            "payload exceeds the 16-bit length field"
        );
        let mut bits = preamble_bits();
        push_byte(&mut bits, self.op);
        push_u16(&mut bits, self.payload.len() as u16);
        for b in self.result {
            push_byte(&mut bits, b);
        }
        for &b in self.payload.iter() {
            push_byte(&mut bits, b);
        }
        push_u16(&mut bits, self.crc());
        bits
    }

    /// Parse a frame from line bits starting at the preamble. Returns the
    /// frame and the number of bits consumed, or a [`FrameError`].
    pub fn from_bits(bits: &[bool]) -> Result<(Frame, usize), FrameError> {
        if bits.len() < OVERHEAD_BITS {
            return Err(FrameError::Truncated);
        }
        let pre = read_u16(&bits[0..16]);
        if pre != PREAMBLE {
            return Err(FrameError::BadPreamble(pre));
        }
        let op = read_byte(&bits[16..24]);
        let len = read_u16(&bits[24..40]) as usize;
        let need = OVERHEAD_BITS + len * 8;
        if bits.len() < need {
            return Err(FrameError::Truncated);
        }
        let mut result = [0u8; 4];
        for (i, r) in result.iter_mut().enumerate() {
            *r = read_byte(&bits[40 + i * 8..48 + i * 8]);
        }
        let payload: Vec<u8> = (0..len)
            .map(|i| read_byte(&bits[72 + i * 8..80 + i * 8]))
            .collect();
        let crc_read = read_u16(&bits[72 + len * 8..88 + len * 8]);
        let frame = Frame {
            op,
            result,
            payload: Bytes::from(payload),
        };
        if frame.crc() != crc_read {
            return Err(FrameError::BadCrc {
                expected: frame.crc(),
                got: crc_read,
            });
        }
        Ok((frame, need))
    }

    /// Locate the preamble in a bit stream (exact match), returning the
    /// offset of its first bit.
    pub fn find_preamble(bits: &[bool]) -> Option<usize> {
        let pre = preamble_bits();
        if bits.len() < pre.len() {
            return None;
        }
        (0..=bits.len() - pre.len()).find(|&off| bits[off..off + pre.len()] == pre[..])
    }
}

/// Frame parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bits for a complete frame.
    Truncated,
    /// The first 16 bits are not the preamble.
    BadPreamble(u16),
    /// CRC mismatch (bit errors on the line).
    BadCrc { expected: u16, got: u16 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadPreamble(p) => write!(f, "bad preamble {p:#06x}"),
            FrameError::BadCrc { expected, got } => {
                write!(f, "CRC mismatch: computed {expected:#06x}, read {got:#06x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn push_byte(bits: &mut Vec<bool>, b: u8) {
    for i in (0..8).rev() {
        bits.push((b >> i) & 1 == 1);
    }
}

fn push_u16(bits: &mut Vec<bool>, v: u16) {
    push_byte(bits, (v >> 8) as u8);
    push_byte(bits, (v & 0xff) as u8);
}

fn read_byte(bits: &[bool]) -> u8 {
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8)
}

fn read_u16(bits: &[bool]) -> u16 {
    bits.iter().fold(0u16, |acc, &b| (acc << 1) | b as u16)
}

/// CRC-16/CCITT-FALSE.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_data_frame() {
        let f = Frame::data(&b"hello optical world"[..]);
        let bits = f.to_bits();
        assert_eq!(bits.len(), f.line_bits());
        let (parsed, consumed) = Frame::from_bits(&bits).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(consumed, bits.len());
    }

    #[test]
    fn bits_round_trip_compute_frame_with_result() {
        let mut f = Frame::compute(2, &[1u8, 2, 3, 4][..]);
        f.result = [0xDE, 0xAD, 0xBE, 0xEF];
        let bits = f.to_bits();
        let (parsed, _) = Frame::from_bits(&bits).unwrap();
        assert_eq!(parsed.result, [0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(parsed.op, 2);
        assert!(parsed.is_compute());
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = Frame::data(&b""[..]);
        let (parsed, consumed) = Frame::from_bits(&f.to_bits()).unwrap();
        assert_eq!(parsed.payload.len(), 0);
        assert_eq!(consumed, OVERHEAD_BITS);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let f = Frame::data(&b"payload"[..]);
        let mut bits = f.to_bits();
        let flip = 72 + 3; // inside payload
        bits[flip] = !bits[flip];
        match Frame::from_bits(&bits) {
            Err(FrameError::BadCrc { .. }) => {}
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_preamble_is_rejected() {
        let f = Frame::data(&b"x"[..]);
        let mut bits = f.to_bits();
        bits[0] = !bits[0];
        assert!(matches!(
            Frame::from_bits(&bits),
            Err(FrameError::BadPreamble(_))
        ));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let f = Frame::data(&b"abcdef"[..]);
        let bits = f.to_bits();
        assert_eq!(Frame::from_bits(&bits[..40]), Err(FrameError::Truncated));
        assert_eq!(
            Frame::from_bits(&bits[..bits.len() - 8]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn find_preamble_locates_offset_frames() {
        let f = Frame::data(&b"zz"[..]);
        let mut stream = vec![false, true, false];
        stream.extend(f.to_bits());
        assert_eq!(Frame::find_preamble(&stream), Some(3));
        let (parsed, _) = Frame::from_bits(&stream[3..]).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn find_preamble_none_in_noise() {
        // A stream of zeros contains no preamble.
        assert_eq!(Frame::find_preamble(&[false; 64]), None);
        assert_eq!(Frame::find_preamble(&[]), None);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn compute_frame_rejects_zero_op() {
        Frame::compute(0, &b"x"[..]);
    }

    #[test]
    fn line_bits_counts_overhead() {
        let f = Frame::data(&b"1234"[..]);
        assert_eq!(f.line_bits(), OVERHEAD_BITS + 32);
    }
}
