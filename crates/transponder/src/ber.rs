//! Bit-error-rate estimation.
//!
//! Link-quality math for the transponder paths: Q-factor from the
//! received 0/1 current statistics, the standard `BER = ½·erfc(Q/√2)`
//! mapping, and a Monte-Carlo BER measurement harness used by experiment
//! E3 to show the photonic engine does not degrade the through-path.

use crate::commodity::CommodityTransponder;
use ofpc_photonics::fiber::FiberSpan;
use ofpc_photonics::SimRng;

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; max absolute error ~1.5e-7, ample for BER curves).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc_pos = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - erfc_pos
    } else {
        erfc_pos
    }
}

/// BER for a given Q-factor: `½·erfc(Q/√2)`.
pub fn q_to_ber(q: f64) -> f64 {
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

/// Q-factor from level statistics: `Q = (μ₁ − μ₀) / (σ₁ + σ₀)`.
pub fn q_factor(mean_one: f64, mean_zero: f64, sigma_one: f64, sigma_zero: f64) -> f64 {
    let denom = sigma_one + sigma_zero;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        (mean_one - mean_zero) / denom
    }
}

/// Result of a Monte-Carlo BER run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BerReport {
    pub bits_tested: u64,
    pub bit_errors: u64,
    pub ber: f64,
}

/// Measure BER by sending random bits from `a` to `b` over `span`.
pub fn measure_ber(
    a: &mut CommodityTransponder,
    b: &mut CommodityTransponder,
    span: &FiberSpan,
    n_bits: usize,
    rng: &mut SimRng,
) -> BerReport {
    assert!(n_bits > 0, "need at least one bit");
    let bits: Vec<bool> = (0..n_bits).map(|_| rng.chance(0.5)).collect();
    let field = a.tx.transmit(&bits);
    let received = span.propagate(&field);
    let got = b.rx.receive(&received);
    let errors = bits.iter().zip(&got).filter(|(x, y)| x != y).count() as u64;
    BerReport {
        bits_tested: n_bits as u64,
        bit_errors: errors,
        ber: errors as f64 / n_bits as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rxpath::RxConfig;
    use crate::txpath::TxConfig;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-11);
    }

    #[test]
    fn q_to_ber_benchmarks() {
        // Q = 6 ⇒ BER ≈ 1e-9; Q = 7 ⇒ ≈ 1.3e-12 (textbook pairs).
        let b6 = q_to_ber(6.0);
        assert!(b6 > 5e-10 && b6 < 2e-9, "BER(6) = {b6}");
        let b7 = q_to_ber(7.0);
        assert!(b7 < 1e-11, "BER(7) = {b7}");
    }

    #[test]
    fn q_factor_edge_cases() {
        assert_eq!(q_factor(1.0, 0.0, 0.0, 0.0), f64::INFINITY);
        assert!((q_factor(1.0, 0.0, 0.1, 0.1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clean_short_link_is_error_free() {
        let mut rng = SimRng::seed_from_u64(0);
        let span = FiberSpan::smf(10.0);
        let mut a = CommodityTransponder::ideal(&mut rng);
        let mut b = CommodityTransponder::new(TxConfig::ideal(), RxConfig::ideal(), &mut rng);
        b.rx.calibrate_for_one_level(
            a.tx.one_level_w() * ofpc_photonics::units::db_to_linear(-span.total_loss_db()),
        );
        let report = measure_ber(&mut a, &mut b, &span, 2_000, &mut rng);
        assert_eq!(report.bit_errors, 0, "{report:?}");
    }

    #[test]
    fn noisy_long_link_has_errors() {
        let mut rng = SimRng::seed_from_u64(1);
        // 120 km unamplified with realistic receiver noise: 24 dB of loss
        // pushes the signal toward the thermal floor.
        let span = FiberSpan::smf(120.0);
        let mut a = CommodityTransponder::realistic(0.0, &mut rng);
        let mut b = CommodityTransponder::realistic(span.total_loss_db(), &mut rng);
        let report = measure_ber(&mut a, &mut b, &span, 5_000, &mut rng);
        assert!(report.ber > 0.0, "expected a noisy link, got {report:?}");
        assert!(
            report.ber < 0.5,
            "link should not be pure noise: {report:?}"
        );
    }

    #[test]
    fn ber_monotone_in_distance() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut bers = Vec::new();
        for km in [60.0, 100.0, 140.0] {
            let span = FiberSpan::smf(km);
            let mut a = CommodityTransponder::realistic(0.0, &mut rng);
            let mut b = CommodityTransponder::realistic(span.total_loss_db(), &mut rng);
            let report = measure_ber(&mut a, &mut b, &span, 4_000, &mut rng);
            bers.push(report.ber);
        }
        assert!(
            bers[2] >= bers[0],
            "BER should not improve with distance: {bers:?}"
        );
    }
}
