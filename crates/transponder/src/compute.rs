//! The photonic compute transponder of Fig. 4.
//!
//! The receive path is augmented with a **photonic engine** that operates
//! on the incoming light before the conventional photodetector:
//!
//! 1. An *optical preamble detector* (the P2 pattern-matching front end)
//!    locks onto new frames.
//! 2. The frame's digital header is sliced by a monitor photodiode — OOK
//!    slicing is a 1-bit analog comparison, not a full-rate ADC.
//! 3. For compute frames, the **operand segment** that follows the header
//!    is *amplitude-encoded*: each symbol's intensity is one operand
//!    element, exactly how delocalized photonic deep-learning systems
//!    ship data today. The engine consumes those samples directly —
//!    a weight modulator and an integrating photodetector for P1, the
//!    interference matcher for P2, the electro-optic activation for P3 —
//!    with **no per-element DAC/ADC conversion** (the §2.2 saving).
//! 4. The result lands in the frame's reserved result field and the frame
//!    is regenerated onto the next span.
//!
//! The conventional alternative (commodity transponder + electronic or
//! photonic accelerator) pays full O-E-O plus per-element conversions;
//! experiment E3 measures both ledgers.

use crate::frame::{Frame, FrameError};
use crate::rxpath::{RxConfig, RxPath};
use crate::txpath::{TxConfig, TxPath};
use ofpc_engine::matcher::{MatcherConfig, PatternMatcher};
use ofpc_engine::nonlinear::{NonlinearConfig, NonlinearUnit};
use ofpc_engine::Primitive;
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::{AnalogWaveform, OpticalField};
use ofpc_photonics::simd::KernelBackend;
use ofpc_photonics::SimRng;
use ofpc_telemetry::{Counter, Telemetry};

/// The operation loaded into a transponder's photonic engine. The
/// centralized controller installs these (§3); the op's wire tag must
/// match the frame's `op` byte for the engine to fire.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ComputeOp {
    /// P1: dot product of the operand segment with stored weights
    /// (signed, in `[-1, 1]`).
    DotProduct { weights: Vec<f64> },
    /// P2: match the operand segment (as bits) against a stored pattern.
    PatternMatch { pattern: Vec<bool> },
    /// P3: apply the nonlinear activation element-wise to the operand
    /// segment and re-emit it.
    Nonlinear { len: usize },
}

impl ComputeOp {
    /// The primitive class this op needs.
    pub fn primitive(&self) -> Primitive {
        match self {
            ComputeOp::DotProduct { .. } => Primitive::VectorDotProduct,
            ComputeOp::PatternMatch { .. } => Primitive::PatternMatching,
            ComputeOp::Nonlinear { .. } => Primitive::NonlinearFunction,
        }
    }

    /// Wire tag carried in the frame's `op` byte.
    pub fn wire_tag(&self) -> u8 {
        self.primitive().wire_id()
    }

    /// Number of operand symbols that follow the frame header.
    pub fn operand_len(&self) -> usize {
        match self {
            ComputeOp::DotProduct { weights } => weights.len(),
            ComputeOp::PatternMatch { pattern } => pattern.len(),
            ComputeOp::Nonlinear { len } => *len,
        }
    }
}

/// The outcome of running a compute operation on a frame.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ComputeResult {
    /// P1 dot-product value.
    Dot(f64),
    /// P2 match outcome.
    Match { matched: bool, distance: f64 },
    /// P3: number of elements transformed (the transformed segment rides
    /// the regenerated output field).
    Nonlinear { elements: usize },
}

/// Everything `process` returns for one incoming field.
#[derive(Debug)]
pub struct ProcessOutcome {
    /// The frame, with the result field filled in when computation ran.
    pub frame: Frame,
    /// The regenerated optical output for the next span.
    pub output: OpticalField,
    /// The computation result, if the engine fired.
    pub computed: Option<ComputeResult>,
    /// Processing latency added at this node, seconds.
    pub added_latency_s: f64,
}

/// Encode a signed result value as 4 fixed-point bytes (Q16.16,
/// big-endian) for the frame's result field.
pub fn encode_result(value: f64) -> [u8; 4] {
    let fixed = (value * 65536.0)
        .round()
        .clamp(i32::MIN as f64, i32::MAX as f64) as i32;
    fixed.to_be_bytes()
}

/// Decode a Q16.16 result field.
pub fn decode_result(bytes: [u8; 4]) -> f64 {
    i32::from_be_bytes(bytes) as f64 / 65536.0
}

/// Configuration for the photonic compute transponder.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ComputeTransponderConfig {
    pub tx: TxConfig,
    pub rx: RxConfig,
    /// Weight modulator for the P1 path.
    pub weight_mzm: MzmConfig,
    /// Integrating photodetector for the engine readout.
    pub engine_pd: PhotodetectorConfig,
    /// Monitor photodiode for header slicing.
    pub monitor_pd: PhotodetectorConfig,
    /// Matcher hardware for preamble detection and the P2 op.
    pub matcher: MatcherConfig,
    /// P3 activation hardware.
    pub nonlinear: NonlinearConfig,
    /// Single result-readout ADC energy, J.
    pub result_adc_energy_j: f64,
    /// Fixed engine pipeline latency, seconds (analog settling).
    pub engine_latency_s: f64,
    /// Kernel implementation for the P1 engine pass. `Scalar` (the
    /// default, and what configs written before this field existed
    /// deserialize to) is the byte-stable reference; `Vectorized` runs
    /// the fused power-domain block kernel — same physics and energy
    /// accounting, own noise stream (DESIGN.md §12).
    #[serde(default)]
    pub backend: KernelBackend,
}

impl ComputeTransponderConfig {
    pub fn ideal() -> Self {
        ComputeTransponderConfig {
            tx: TxConfig::ideal(),
            rx: RxConfig::ideal(),
            weight_mzm: MzmConfig::ideal(),
            engine_pd: PhotodetectorConfig::ideal(),
            monitor_pd: PhotodetectorConfig::ideal(),
            matcher: MatcherConfig::ideal(),
            nonlinear: NonlinearConfig::ideal(),
            result_adc_energy_j: 0.0,
            engine_latency_s: 5e-9,
            backend: KernelBackend::Scalar,
        }
    }

    pub fn realistic() -> Self {
        ComputeTransponderConfig {
            tx: TxConfig::realistic(),
            rx: RxConfig::realistic(),
            weight_mzm: MzmConfig::default(),
            engine_pd: PhotodetectorConfig::default(),
            monitor_pd: PhotodetectorConfig::default(),
            matcher: MatcherConfig::realistic(),
            nonlinear: NonlinearConfig::ideal(),
            result_adc_energy_j: ofpc_photonics::energy::constants::ADC_SAMPLE_J,
            engine_latency_s: 5e-9,
            backend: KernelBackend::Scalar,
        }
    }

    /// The realistic transponder with its converter, modulator, and
    /// laser blocks swapped for calibrated catalog parts (the
    /// `ofpc-dse` component library). The operand DAC drives both the
    /// TX path and the line rate — the serial line cannot outrun the
    /// DAC at one 8-bit symbol per conversion — and the modulator part
    /// serves as both the TX MZM and the P1 weight arm.
    pub fn with_parts(
        dac: &dyn ofpc_photonics::parts::DacPart,
        adc: &dyn ofpc_photonics::parts::AdcPart,
        modulator: &dyn ofpc_photonics::parts::ModulatorPart,
        laser: &dyn ofpc_photonics::parts::LaserPart,
    ) -> Self {
        let mut cfg = ComputeTransponderConfig::realistic();
        cfg.tx.laser = laser.laser_config();
        cfg.tx.mzm = modulator.mzm_config();
        cfg.tx.dac = dac.converter_config();
        cfg.tx.line_rate_bps = cfg.tx.line_rate_bps.min(dac.sample_rate_hz() * 8.0);
        cfg.rx.adc = adc.converter_config();
        cfg.weight_mzm = modulator.mzm_config();
        cfg.result_adc_energy_j = adc.energy_per_sample_j();
        cfg
    }
}

/// A photonic compute transponder (Fig. 4).
#[derive(Debug)]
pub struct PhotonicComputeTransponder {
    pub config: ComputeTransponderConfig,
    pub tx: TxPath,
    /// Conventional receive path (used when the frame terminates here).
    pub rx: RxPath,
    weight_mzm: MachZehnderModulator,
    engine_pd: Photodetector,
    monitor_pd: Photodetector,
    preamble_matcher: PatternMatcher,
    nonlinear: NonlinearUnit,
    /// The loaded operation (installed by the controller).
    loaded_op: Option<ComputeOp>,
    /// Calibrated engine unit current (per unit operand×weight), A.
    engine_unit_a: Option<f64>,
    /// Expected received '1'-level power, W (from the link budget).
    one_level_w: Option<f64>,
    /// Monitor slicing threshold, A.
    monitor_threshold_a: Option<f64>,
    pub frames_processed: u64,
    pub computations_run: u64,
    pub result_readouts: u64,
    tel_frames: Counter,
    tel_computations: Counter,
    tel_readouts: Counter,
}

impl PhotonicComputeTransponder {
    pub fn new(config: ComputeTransponderConfig, rng: &mut SimRng) -> Self {
        let tx = TxPath::new(config.tx.clone(), rng);
        let rx = RxPath::new(config.rx.clone(), rng);
        let mut matcher = PatternMatcher::new(config.matcher.clone(), rng);
        matcher.calibrate(64);
        let mut nonlinear = NonlinearUnit::new(config.nonlinear.clone(), rng);
        nonlinear.calibrate();
        PhotonicComputeTransponder {
            tx,
            rx,
            weight_mzm: MachZehnderModulator::new(config.weight_mzm.clone()),
            engine_pd: Photodetector::new(config.engine_pd.clone(), rng.derive("engine-pd")),
            monitor_pd: Photodetector::new(config.monitor_pd.clone(), rng.derive("monitor-pd")),
            preamble_matcher: matcher,
            nonlinear,
            config,
            loaded_op: None,
            engine_unit_a: None,
            one_level_w: None,
            monitor_threshold_a: None,
            frames_processed: 0,
            computations_run: 0,
            result_readouts: 0,
            tel_frames: Counter::noop(),
            tel_computations: Counter::noop(),
            tel_readouts: Counter::noop(),
        }
    }

    /// Profiling hook: mirror the frame/computation/readout counters (and
    /// the TX/RX path counters) onto a [`MetricsRegistry`][reg].
    ///
    /// [reg]: ofpc_telemetry::MetricsRegistry
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tx.set_telemetry(tel);
        self.rx.set_telemetry(tel);
        self.tel_frames = tel.counter("transponder_frames_total", &Vec::new());
        self.tel_computations = tel.counter("transponder_computations_total", &Vec::new());
        self.tel_readouts = tel.counter("transponder_result_readouts_total", &Vec::new());
    }

    /// Ideal device with loopback calibration.
    pub fn ideal(rng: &mut SimRng) -> Self {
        let mut t = PhotonicComputeTransponder::new(ComputeTransponderConfig::ideal(), rng);
        let one = t.tx.one_level_w();
        t.calibrate(one);
        t
    }

    /// Calibrate for an expected received '1'-level power (link budget):
    /// sets the monitor threshold, the RX threshold, and the engine unit
    /// current via a training block through the weight arm.
    pub fn calibrate(&mut self, one_level_w: f64) {
        assert!(one_level_w > 0.0, "one-level power must be positive");
        self.one_level_w = Some(one_level_w);
        self.rx.calibrate_for_one_level(one_level_w);
        let i_one = self.monitor_pd.expected_current_a(one_level_w);
        let i_zero = self.monitor_pd.expected_current_a(0.0);
        self.monitor_threshold_a = Some((i_one + i_zero) / 2.0);
        // Training block: unit-level CW through the weight MZM at full
        // transmission, averaged to beat the noise down.
        let k = 256;
        let cw = OpticalField::cw(k, one_level_w, self.tx.config.line_rate_bps, 1550e-9);
        let drive = AnalogWaveform::new(
            vec![self.weight_mzm.drive_for_transmission(1.0); k],
            self.tx.config.line_rate_bps,
        );
        let lit = self.weight_mzm.modulate(&cw, &drive);
        let mean = self.engine_pd.detect(&lit).mean();
        let dark = self.engine_pd.expected_current_a(0.0);
        let unit = mean - dark;
        assert!(unit > 0.0, "engine calibration failed: no signal contrast");
        self.engine_unit_a = Some(unit);
    }

    /// Install a compute operation (done by the centralized controller).
    pub fn load_op(&mut self, op: ComputeOp) {
        self.loaded_op = Some(op);
    }

    pub fn loaded_op(&self) -> Option<&ComputeOp> {
        self.loaded_op.as_ref()
    }

    /// Build the on-the-wire optical signal for a compute frame: OOK
    /// header bits followed by the amplitude-encoded operand segment.
    /// Used by end hosts (and tests) to originate compute traffic.
    pub fn transmit_compute_frame(&mut self, frame: &Frame, operands: &[f64]) -> OpticalField {
        let mut field = self.tx.transmit(&frame.to_bits());
        if !operands.is_empty() {
            let analog = self.transmit_operands(operands);
            field.samples.extend(analog.samples);
        }
        field
    }

    /// Amplitude-encode an operand vector (values in `[0,1]`).
    fn transmit_operands(&mut self, operands: &[f64]) -> OpticalField {
        // Reuse the TX laser/modulator at analog drive levels: encode each
        // value as power transmission.
        let bits_equiv = vec![true; operands.len()];
        let carrier = self.tx.transmit(&bits_equiv);
        // Scale each '1' sample down to the operand value (the TX MZM is
        // driven at the analog level rather than full swing; power scales
        // linearly with the encoded value).
        let mut out = carrier;
        for (s, &v) in out.samples.iter_mut().zip(operands.iter()) {
            *s = s.scale(v.clamp(0.0, 1.0).sqrt());
        }
        out
    }

    /// Slice the incoming field to bits with the monitor photodiode
    /// (1-bit analog comparison — no full-rate ADC charged).
    fn monitor_slice(&mut self, field: &OpticalField) -> Vec<bool> {
        let threshold = self
            .monitor_threshold_a
            .expect("transponder must be calibrated before use; call calibrate()");
        let current = self.monitor_pd.detect(field);
        current.samples.iter().map(|&i| i > threshold).collect()
    }

    /// P1 on-fiber dot product: incoming operand light through the weight
    /// modulator into the integrating photodetector. Signed weights use
    /// two passes (positive and negative rails) over split copies.
    /// Dispatches on the configured [`KernelBackend`].
    fn engine_dot(&mut self, operand_field: &OpticalField, weights: &[f64]) -> f64 {
        match self.config.backend {
            KernelBackend::Scalar => self.engine_dot_scalar(operand_field, weights),
            KernelBackend::Vectorized => self.engine_dot_block(operand_field, weights),
        }
    }

    /// The reference scalar engine pass, kept verbatim as the
    /// golden-replay baseline.
    fn engine_dot_scalar(&mut self, operand_field: &OpticalField, weights: &[f64]) -> f64 {
        let unit = self
            .engine_unit_a
            .expect("transponder must be calibrated before use; call calibrate()");
        let dark = self.engine_pd.expected_current_a(0.0);
        let rails = ofpc_photonics::coupler::split_n(operand_field, 2);
        let mut pass = |field: &OpticalField, rail: &dyn Fn(f64) -> f64| -> f64 {
            let drive = AnalogWaveform::new(
                weights
                    .iter()
                    .map(|&w| self.weight_mzm.drive_for_transmission(rail(w)))
                    .collect(),
                field.sample_rate_hz,
            );
            let lit = self.weight_mzm.modulate(field, &drive);
            let summed: f64 = self.engine_pd.detect(&lit).samples.iter().sum();
            summed - weights.len() as f64 * dark
        };
        // Each rail sees half the power; compensate with 2×.
        let pos = pass(&rails[0], &|w: f64| w.clamp(0.0, 1.0));
        let neg = pass(&rails[1], &|w: f64| (-w).clamp(0.0, 1.0));
        self.result_readouts += 1;
        self.tel_readouts.inc();
        2.0 * (pos - neg) / unit
    }

    /// The vectorized engine pass: the rail split, weight transfer, and
    /// photodetection collapse to power-domain loops over flat buffers —
    /// no per-pass `OpticalField` clones or drive waveforms. Rail powers
    /// reproduce [`ofpc_photonics::coupler::split_n`]'s amplitude scale
    /// bit for bit; the weight transfer goes through the fused
    /// encode→transmit curve; symbol and detector-time accounting match
    /// the scalar pass exactly (DESIGN.md §12).
    fn engine_dot_block(&mut self, operand_field: &OpticalField, weights: &[f64]) -> f64 {
        let unit = self
            .engine_unit_a
            .expect("transponder must be calibrated before use; call calibrate()");
        let dark = self.engine_pd.expected_current_a(0.0);
        let rate = operand_field.sample_rate_hz;
        let n = weights.len();
        // Power each 50/50 rail carries, per sample (split_n's √½
        // amplitude scale, squared through the detector's |e|²).
        let rail_scale = (1.0f64 / 2.0).sqrt();
        let rail_powers: Vec<f64> = operand_field.samples[..n]
            .iter()
            .map(|s| s.scale(rail_scale).norm_sqr())
            .collect();
        let mut t2 = Vec::with_capacity(n);
        let mut powers = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut pass = |this: &mut Self, rail: &dyn Fn(f64) -> f64| -> f64 {
            targets.clear();
            targets.extend(weights.iter().map(|&w| rail(w)));
            this.weight_mzm
                .power_transmissions_into(&targets, rate, &mut t2);
            powers.clear();
            powers.extend(rail_powers.iter().zip(&t2).map(|(&p, &t)| p * t));
            this.engine_pd.detect_power_block(&mut powers, rate);
            this.weight_mzm.symbols_modulated += n as u64;
            powers.iter().sum::<f64>() - n as f64 * dark
        };
        let pos = pass(self, &|w: f64| w.clamp(0.0, 1.0));
        let neg = pass(self, &|w: f64| (-w).clamp(0.0, 1.0));
        self.result_readouts += 1;
        self.tel_readouts.inc();
        2.0 * (pos - neg) / unit
    }

    /// Process an incoming optical field end-to-end (Fig. 4 receive path
    /// plus regeneration). Returns a [`FrameError`] if no valid frame is
    /// found in the light.
    pub fn process(&mut self, field: &OpticalField) -> Result<ProcessOutcome, FrameError> {
        let bits = self.monitor_slice(field);
        // Optical preamble detection: the matcher slides over the stream.
        // We charge the matcher for the symbols it scanned.
        let off = Frame::find_preamble(&bits).ok_or(FrameError::BadPreamble(0))?;
        let (mut frame, consumed) = Frame::from_bits(&bits[off..])?;
        self.frames_processed += 1;
        self.tel_frames.inc();
        let mut computed = None;
        let mut latency = self.config.engine_latency_s;
        if frame.is_compute() {
            if let Some(op) = self.loaded_op.clone() {
                if op.wire_tag() == frame.op {
                    let n = op.operand_len();
                    let start = off + consumed;
                    if field.samples.len() >= start + n {
                        let operand_field = OpticalField {
                            samples: field.samples[start..start + n].to_vec(),
                            sample_rate_hz: field.sample_rate_hz,
                            wavelength_m: field.wavelength_m,
                        };
                        let result = self.run_op(&op, &operand_field, &bits[start..start + n]);
                        latency += n as f64 / field.sample_rate_hz;
                        frame.result = match &result {
                            ComputeResult::Dot(v) => encode_result(*v),
                            ComputeResult::Match { matched, distance } => {
                                let mut r = encode_result(*distance);
                                r[0] = if *matched { 1 } else { 0 };
                                r
                            }
                            ComputeResult::Nonlinear { elements } => {
                                (*elements as u32).to_be_bytes()
                            }
                        };
                        computed = Some(result);
                        self.computations_run += 1;
                        self.tel_computations.inc();
                    }
                }
            }
        }
        // Regenerate the (possibly updated) frame for the next span.
        let output = self.tx.transmit(&frame.to_bits());
        latency += frame.line_bits() as f64 / self.tx.config.line_rate_bps;
        Ok(ProcessOutcome {
            frame,
            output,
            computed,
            added_latency_s: latency,
        })
    }

    fn run_op(
        &mut self,
        op: &ComputeOp,
        operand_field: &OpticalField,
        operand_bits: &[bool],
    ) -> ComputeResult {
        match op {
            ComputeOp::DotProduct { weights } => {
                ComputeResult::Dot(self.engine_dot(operand_field, weights))
            }
            ComputeOp::PatternMatch { pattern } => {
                let r = self.preamble_matcher.match_block(operand_bits, pattern);
                ComputeResult::Match {
                    matched: r.matched,
                    distance: r.distance_estimate,
                }
            }
            ComputeOp::Nonlinear { len } => {
                let one = self.one_level_w.unwrap_or(1e-3);
                let values: Vec<f64> = operand_field
                    .samples
                    .iter()
                    .map(|s| (s.norm_sqr() / one).clamp(0.0, 1.0))
                    .collect();
                let _transformed = self.nonlinear.activate_vec(&values);
                ComputeResult::Nonlinear {
                    elements: (*len).min(values.len()),
                }
            }
        }
    }

    /// Energy ledger across all stages.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = self.tx.energy_ledger();
        ledger.merge(&self.rx.energy_ledger());
        ledger.add("engine-weight-mzm", self.weight_mzm.energy_consumed_j());
        ledger.add("engine-pd", self.engine_pd.energy_consumed_j());
        ledger.add("monitor-pd", self.monitor_pd.energy_consumed_j());
        ledger.add(
            "engine-result-adc",
            self.result_readouts as f64 * self.config.result_adc_energy_j,
        );
        ledger.merge(&self.preamble_matcher.energy_ledger());
        ledger.merge(&self.nonlinear.energy_ledger());
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_pair() -> (PhotonicComputeTransponder, SimRng) {
        let mut rng = SimRng::seed_from_u64(0);
        let t = PhotonicComputeTransponder::ideal(&mut rng);
        (t, rng)
    }

    #[test]
    fn result_encoding_round_trips() {
        for v in [-3.25, -0.0001, 0.0, 0.5, 100.125] {
            let got = decode_result(encode_result(v));
            assert!((got - v).abs() < 1e-4, "v {v} got {got}");
        }
    }

    #[test]
    fn plain_frames_pass_through_unchanged() {
        let (mut t, _) = ideal_pair();
        let frame = Frame::data(&b"just passing through"[..]);
        let field = t.tx.transmit(&frame.to_bits());
        let out = t.process(&field).unwrap();
        assert_eq!(out.frame, frame);
        assert!(out.computed.is_none());
        // Regenerated output decodes to the same frame.
        let (mut t2, _) = ideal_pair();
        let re = t2.process(&out.output).unwrap();
        assert_eq!(re.frame, frame);
    }

    #[test]
    fn dot_product_op_computes_on_fiber() {
        let (mut t, _) = ideal_pair();
        let weights = vec![0.5, 1.0, 0.25, 0.75];
        t.load_op(ComputeOp::DotProduct {
            weights: weights.clone(),
        });
        let operands = vec![0.8, 0.2, 1.0, 0.4];
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"ml-query"[..]);
        let field = t.transmit_compute_frame(&frame, &operands);
        let out = t.process(&field).unwrap();
        let want: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
        match out.computed {
            Some(ComputeResult::Dot(v)) => {
                assert!((v - want).abs() < 0.05, "got {v} want {want}");
                assert!((decode_result(out.frame.result) - want).abs() < 0.05);
            }
            other => panic!("expected Dot result, got {other:?}"),
        }
    }

    #[test]
    fn signed_weights_work() {
        let (mut t, _) = ideal_pair();
        let weights = vec![0.5, -0.5, 1.0, -1.0];
        t.load_op(ComputeOp::DotProduct {
            weights: weights.clone(),
        });
        let operands = vec![1.0, 1.0, 0.5, 0.25];
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"q"[..]);
        let field = t.transmit_compute_frame(&frame, &operands);
        let out = t.process(&field).unwrap();
        let want: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
        match out.computed {
            Some(ComputeResult::Dot(v)) => assert!((v - want).abs() < 0.05, "got {v} want {want}"),
            other => panic!("expected Dot, got {other:?}"),
        }
    }

    #[test]
    fn pattern_match_op_fires() {
        let (mut t, _) = ideal_pair();
        let pattern = vec![true, false, true, true, false, false, true, false];
        t.load_op(ComputeOp::PatternMatch {
            pattern: pattern.clone(),
        });
        let frame = Frame::compute(Primitive::PatternMatching.wire_id(), &b"ids"[..]);
        // Matching operands: encode pattern bits as on/off levels.
        let operands: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let field = t.transmit_compute_frame(&frame, &operands);
        let out = t.process(&field).unwrap();
        match out.computed {
            Some(ComputeResult::Match { matched, .. }) => assert!(matched),
            other => panic!("expected Match, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_op_tag_skips_compute() {
        let (mut t, _) = ideal_pair();
        t.load_op(ComputeOp::DotProduct {
            weights: vec![1.0; 4],
        });
        // Frame asks for pattern matching, engine has dot product loaded.
        let frame = Frame::compute(Primitive::PatternMatching.wire_id(), &b"x"[..]);
        let field = t.transmit_compute_frame(&frame, &[1.0; 4]);
        let out = t.process(&field).unwrap();
        assert!(out.computed.is_none());
    }

    #[test]
    fn no_loaded_op_means_transit_only() {
        let (mut t, _) = ideal_pair();
        let frame = Frame::compute(1, &b"y"[..]);
        let field = t.transmit_compute_frame(&frame, &[0.5; 4]);
        let out = t.process(&field).unwrap();
        assert!(out.computed.is_none());
        assert_eq!(out.frame.result, [0; 4]);
    }

    #[test]
    fn nonlinear_op_reports_elements() {
        let (mut t, _) = ideal_pair();
        t.load_op(ComputeOp::Nonlinear { len: 6 });
        let frame = Frame::compute(Primitive::NonlinearFunction.wire_id(), &b"act"[..]);
        let field = t.transmit_compute_frame(&frame, &[0.1, 0.3, 0.5, 0.7, 0.9, 1.0]);
        let out = t.process(&field).unwrap();
        assert_eq!(out.computed, Some(ComputeResult::Nonlinear { elements: 6 }));
    }

    #[test]
    fn truncated_operand_segment_skips_compute() {
        let (mut t, _) = ideal_pair();
        t.load_op(ComputeOp::DotProduct {
            weights: vec![1.0; 8],
        });
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"z"[..]);
        // Only 3 of the 8 expected operand symbols arrive.
        let field = t.transmit_compute_frame(&frame, &[0.5; 3]);
        let out = t.process(&field).unwrap();
        assert!(out.computed.is_none());
    }

    #[test]
    fn dark_input_is_an_error() {
        let (mut t, _) = ideal_pair();
        let dark = OpticalField::dark(128, 32e9, 1550e-9);
        assert!(t.process(&dark).is_err());
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_process_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut t = PhotonicComputeTransponder::new(ComputeTransponderConfig::ideal(), &mut rng);
        let field = OpticalField::cw(32, 1e-3, 32e9, 1550e-9);
        let _ = t.process(&field);
    }

    #[test]
    fn compute_latency_is_nanoseconds_not_milliseconds() {
        let (mut t, _) = ideal_pair();
        t.load_op(ComputeOp::DotProduct {
            weights: vec![0.5; 16],
        });
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"lat"[..]);
        let field = t.transmit_compute_frame(&frame, &[0.5; 16]);
        let out = t.process(&field).unwrap();
        assert!(
            out.added_latency_s < 1e-6,
            "added latency {} should be sub-microsecond",
            out.added_latency_s
        );
    }

    /// Ideal transponder running the vectorized engine kernel.
    fn ideal_vectorized() -> PhotonicComputeTransponder {
        let mut rng = SimRng::seed_from_u64(0);
        let mut cfg = ComputeTransponderConfig::ideal();
        cfg.backend = KernelBackend::Vectorized;
        let mut t = PhotonicComputeTransponder::new(cfg, &mut rng);
        let one = t.tx.one_level_w();
        t.calibrate(one);
        t
    }

    #[test]
    fn vectorized_engine_dot_matches_ideal_algebra() {
        let mut t = ideal_vectorized();
        let weights = vec![0.5, -0.5, 1.0, -1.0, 0.25, 0.75];
        t.load_op(ComputeOp::DotProduct {
            weights: weights.clone(),
        });
        let operands = vec![1.0, 1.0, 0.5, 0.25, 0.8, 0.4];
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"vq"[..]);
        let field = t.transmit_compute_frame(&frame, &operands);
        let out = t.process(&field).unwrap();
        let want: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
        match out.computed {
            Some(ComputeResult::Dot(v)) => assert!((v - want).abs() < 0.05, "got {v} want {want}"),
            other => panic!("expected Dot, got {other:?}"),
        }
    }

    #[test]
    fn vectorized_backend_matches_scalar_value_and_accounting() {
        // Ideal devices are noiseless, so the only backend difference is
        // the fused transfer's ulp-level rounding: the computed values
        // must agree far below the physical tolerance, and the energy
        // ledger (symbols, detector-seconds, readouts) must agree to the
        // last bit.
        let run = |backend: KernelBackend| {
            let mut rng = SimRng::seed_from_u64(0);
            let mut cfg = ComputeTransponderConfig::ideal();
            cfg.backend = backend;
            let mut t = PhotonicComputeTransponder::new(cfg, &mut rng);
            let one = t.tx.one_level_w();
            t.calibrate(one);
            let weights = vec![0.9, -0.3, 0.0, 1.0, -1.0, 0.125, 0.625, -0.0625];
            t.load_op(ComputeOp::DotProduct {
                weights: weights.clone(),
            });
            let operands = vec![1.0, 0.5, 0.25, 0.75, 0.3, 0.0, 1.0, 0.6];
            let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"diff"[..]);
            let field = t.transmit_compute_frame(&frame, &operands);
            let out = t.process(&field).unwrap();
            let v = match out.computed {
                Some(ComputeResult::Dot(v)) => v,
                other => panic!("expected Dot, got {other:?}"),
            };
            (v, t.energy_ledger(), t.result_readouts)
        };
        let (v_s, ledger_s, readouts_s) = run(KernelBackend::Scalar);
        let (v_v, ledger_v, readouts_v) = run(KernelBackend::Vectorized);
        assert!(
            (v_s - v_v).abs() < 1e-9,
            "noiseless backends disagree: scalar {v_s} vectorized {v_v}"
        );
        assert_eq!(readouts_s, readouts_v);
        for key in ["engine-weight-mzm", "engine-pd", "engine-result-adc"] {
            assert_eq!(
                ledger_s.get(key).to_bits(),
                ledger_v.get(key).to_bits(),
                "ledger key {key} diverged between backends"
            );
        }
    }

    #[test]
    fn energy_ledger_has_no_per_element_adc() {
        let (mut t, _) = ideal_pair();
        t.load_op(ComputeOp::DotProduct {
            weights: vec![0.5; 64],
        });
        let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"e"[..]);
        let field = t.transmit_compute_frame(&frame, &[0.5; 64]);
        let _ = t.process(&field).unwrap();
        // The conventional RX ADC never ran on the operand segment: the
        // rx path was not invoked at all in transit+compute mode.
        let ledger = t.energy_ledger();
        assert_eq!(ledger.get("rx-adc"), 0.0);
        assert_eq!(t.result_readouts, 1);
    }
}
