//! Receive path (Fig. 3, bottom): fiber → photodetector → ADC → DSP bits.
//!
//! Square-law detection of the OOK envelope, threshold slicing at the
//! calibrated midpoint, energy charged per stage (ADC per sample, TIA
//! over the block, DSP per recovered bit). This is the path the Fig.-4
//! design *augments* with the photonic engine; keeping it as its own type
//! lets the compute transponder reuse it unchanged after the engine.

use ofpc_photonics::converter::{Adc, ConverterConfig};
use ofpc_photonics::energy::{constants, EnergyLedger};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::OpticalField;
use ofpc_photonics::SimRng;
use ofpc_telemetry::{Counter, Telemetry};

/// Receive-path configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RxConfig {
    pub pd: PhotodetectorConfig,
    pub adc: ConverterConfig,
    /// DSP energy per recovered bit, J.
    pub dsp_energy_per_bit_j: f64,
}

impl RxConfig {
    pub fn ideal() -> Self {
        RxConfig {
            pd: PhotodetectorConfig::ideal(),
            adc: ConverterConfig::ideal(8),
            dsp_energy_per_bit_j: 0.0,
        }
    }

    pub fn realistic() -> Self {
        RxConfig {
            pd: PhotodetectorConfig::default(),
            adc: ConverterConfig {
                energy_per_sample_j: constants::ADC_SAMPLE_J,
                ..ConverterConfig::default()
            },
            dsp_energy_per_bit_j: constants::DSP_BIT_J,
        }
    }
}

/// The receive path of a transponder.
#[derive(Debug, Clone)]
pub struct RxPath {
    pub config: RxConfig,
    pd: Photodetector,
    adc: Adc,
    /// Decision threshold in amps (midpoint of calibrated 0/1 currents).
    threshold_a: Option<f64>,
    pub bits_received: u64,
    tel_blocks: Counter,
    tel_bits: Counter,
}

impl RxPath {
    pub fn new(config: RxConfig, rng: &mut SimRng) -> Self {
        RxPath {
            pd: Photodetector::new(config.pd.clone(), rng.derive("rx-pd")),
            adc: Adc::new(config.adc.clone(), rng.derive("rx-adc")),
            config,
            threshold_a: None,
            bits_received: 0,
            tel_blocks: Counter::noop(),
            tel_bits: Counter::noop(),
        }
    }

    /// Profiling hook: count received blocks/bits on the registry
    /// (`transponder_rx_*` series).
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel_blocks = tel.counter("transponder_rx_blocks_total", &Vec::new());
        self.tel_bits = tel.counter("transponder_rx_bits_total", &Vec::new());
    }

    pub fn is_calibrated(&self) -> bool {
        self.threshold_a.is_some()
    }

    /// Set the decision threshold from the expected received '1' power
    /// (link budget): threshold at half the '1' photocurrent.
    pub fn calibrate_for_one_level(&mut self, one_level_w: f64) {
        assert!(one_level_w > 0.0, "one-level power must be positive");
        let i_one = self.pd.expected_current_a(one_level_w);
        let i_zero = self.pd.expected_current_a(0.0);
        self.threshold_a = Some((i_one + i_zero) / 2.0);
    }

    /// Detect a field and slice it to bits. Requires calibration.
    pub fn receive(&mut self, field: &OpticalField) -> Vec<bool> {
        let threshold = self
            .threshold_a
            .expect("RxPath must be calibrated before use; call calibrate_for_one_level()");
        let current = self.pd.detect(field);
        // The ADC digitizes every sample (this is the cost the photonic
        // engine avoids for compute operands).
        let _codes = self.adc.convert(&current);
        let bits: Vec<bool> = current.samples.iter().map(|&i| i > threshold).collect();
        self.bits_received += bits.len() as u64;
        self.tel_blocks.inc();
        self.tel_bits.add(bits.len() as u64);
        bits
    }

    /// Receiver sensitivity check: SNR at the given received power.
    pub fn snr_db(&self, power_w: f64, sample_rate_hz: f64) -> f64 {
        self.pd.snr_db(power_w, sample_rate_hz)
    }

    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.add("rx-pd", self.pd.energy_consumed_j());
        ledger.add("rx-adc", self.adc.energy_consumed_j());
        ledger.add(
            "rx-dsp",
            self.bits_received as f64 * self.config.dsp_energy_per_bit_j,
        );
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txpath::{TxConfig, TxPath};

    #[test]
    fn loopback_recovers_bits() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let mut rx = RxPath::new(RxConfig::ideal(), &mut rng);
        rx.calibrate_for_one_level(tx.one_level_w());
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let field = tx.transmit(&bits);
        assert_eq!(rx.receive(&field), bits);
    }

    #[test]
    fn attenuated_link_still_decodes_with_adjusted_threshold() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let mut rx = RxPath::new(RxConfig::ideal(), &mut rng);
        let span = ofpc_photonics::fiber::FiberSpan::compensated(80.0); // 16 dB loss
        rx.calibrate_for_one_level(
            tx.one_level_w() * ofpc_photonics::units::db_to_linear(-span.total_loss_db()),
        );
        let bits: Vec<bool> = (0..64).map(|i| i % 5 < 2).collect();
        let field = span.propagate(&tx.transmit(&bits));
        assert_eq!(rx.receive(&field), bits);
    }

    #[test]
    fn wrong_threshold_misdecodes() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let mut rx = RxPath::new(RxConfig::ideal(), &mut rng);
        // Threshold calibrated for 100× the actual power: everything
        // slices to zero.
        rx.calibrate_for_one_level(tx.one_level_w() * 100.0);
        let field = tx.transmit(&[true, true, true]);
        assert_eq!(rx.receive(&field), vec![false, false, false]);
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_rx_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut rx = RxPath::new(RxConfig::ideal(), &mut rng);
        let field = OpticalField::cw(4, 1e-3, 32e9, 1550e-9);
        rx.receive(&field);
    }

    #[test]
    fn rx_energy_charges_adc_per_sample() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut tx = TxPath::new(TxConfig::ideal(), &mut rng);
        let mut rx = RxPath::new(RxConfig::realistic(), &mut rng);
        rx.calibrate_for_one_level(tx.one_level_w());
        rx.receive(&tx.transmit(&vec![true; 500]));
        let ledger = rx.energy_ledger();
        let expect_adc = 500.0 * constants::ADC_SAMPLE_J;
        assert!((ledger.get("rx-adc") - expect_adc).abs() / expect_adc < 1e-9);
        assert!(ledger.get("rx-dsp") > 0.0);
    }
}
