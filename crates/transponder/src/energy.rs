//! Form-factor power and area budgets (§5 "Form factor").
//!
//! The paper flags the open question of whether the photonic engine fits
//! a pluggable module's power and area envelope. This module makes that
//! question computable: standard pluggable form factors with their power
//! ceilings, per-component power/area estimates for both the commodity
//! blocks and the added photonic-engine blocks, and a budget checker the
//! experiments use to report headroom.

use serde::{Deserialize, Serialize};

/// Standard pluggable module form factors and their power ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FormFactor {
    /// QSFP-DD: ~20 W class.
    QsfpDd,
    /// OSFP: ~28 W class (what 800G pluggables use).
    Osfp,
    /// CFP2: ~24 W class.
    Cfp2,
}

impl FormFactor {
    /// Maximum module power, W.
    pub fn power_ceiling_w(self) -> f64 {
        match self {
            FormFactor::QsfpDd => 20.0,
            FormFactor::Osfp => 28.0,
            FormFactor::Cfp2 => 24.0,
        }
    }

    /// Usable PIC area, mm² (order-of-magnitude per published module
    /// teardowns; silicon photonics dies in pluggables run tens of mm²).
    pub fn pic_area_mm2(self) -> f64 {
        match self {
            FormFactor::QsfpDd => 40.0,
            FormFactor::Osfp => 60.0,
            FormFactor::Cfp2 => 55.0,
        }
    }
}

/// One hardware block's power and area demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockBudget {
    pub name: String,
    pub power_w: f64,
    pub area_mm2: f64,
}

impl BlockBudget {
    /// Budget entry from a calibrated catalog part.
    pub fn from_part(part: &dyn ofpc_photonics::parts::HardwarePart) -> Self {
        BlockBudget {
            name: part.part_name().to_string(),
            power_w: part.power_w(),
            area_mm2: part.area_mm2(),
        }
    }
}

/// Catalog of block budgets (commodity + photonic-engine additions).
/// Values are engineering estimates consistent with the published device
/// classes the paper cites; they exist to make §5's form-factor question
/// quantitative, not to claim component-level accuracy.
pub fn block(name: &str) -> BlockBudget {
    let (power_w, area_mm2) = match name {
        // Commodity transponder blocks (Fig. 3).
        "laser" => (1.5, 2.0),
        "tx-mzm" => (0.8, 3.0),
        "dac" => (2.5, 4.0),
        "adc" => (3.5, 4.0),
        "pd-tia" => (0.5, 1.0),
        "dsp" => (8.0, 15.0),
        // Photonic-engine additions (Fig. 4).
        "engine-weight-mzm" => (0.8, 3.0),
        "engine-pd" => (0.5, 1.0),
        "engine-monitor-pd" => (0.3, 0.5),
        "engine-matcher" => (1.0, 4.0),
        "engine-nonlinear" => (0.8, 3.0),
        "engine-control" => (1.0, 2.0),
        "engine-weight-memory" => (0.5, 3.0),
        other => panic!("unknown block {other:?}"),
    };
    BlockBudget {
        name: name.to_string(),
        power_w,
        area_mm2,
    }
}

/// The block set of a commodity transponder (Fig. 3).
pub fn commodity_blocks() -> Vec<BlockBudget> {
    ["laser", "tx-mzm", "dac", "adc", "pd-tia", "dsp"]
        .iter()
        .map(|n| block(n))
        .collect()
}

/// The block set of a photonic compute transponder (Fig. 4): commodity
/// blocks plus the engine additions.
pub fn compute_blocks() -> Vec<BlockBudget> {
    let mut blocks = commodity_blocks();
    for n in [
        "engine-weight-mzm",
        "engine-pd",
        "engine-monitor-pd",
        "engine-matcher",
        "engine-nonlinear",
        "engine-control",
        "engine-weight-memory",
    ] {
        blocks.push(block(n));
    }
    blocks
}

/// The Fig.-4 block set with the converter/modulator/laser estimates
/// replaced by calibrated catalog parts — what a design point in the
/// `ofpc-dse` sweep actually asks the form factor to carry.
pub fn compute_blocks_with(
    dac: &dyn ofpc_photonics::parts::HardwarePart,
    adc: &dyn ofpc_photonics::parts::HardwarePart,
    modulator: &dyn ofpc_photonics::parts::HardwarePart,
    laser: &dyn ofpc_photonics::parts::HardwarePart,
) -> Vec<BlockBudget> {
    compute_blocks()
        .into_iter()
        .map(|b| match b.name.as_str() {
            "dac" => BlockBudget::from_part(dac),
            "adc" => BlockBudget::from_part(adc),
            "tx-mzm" => BlockBudget::from_part(modulator),
            "laser" => BlockBudget::from_part(laser),
            _ => b,
        })
        .collect()
}

/// Budget-check result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    pub form_factor: FormFactor,
    pub total_power_w: f64,
    pub total_area_mm2: f64,
    pub power_headroom_w: f64,
    pub area_headroom_mm2: f64,
    pub fits: bool,
}

/// Check whether a block set fits a form factor.
pub fn check_budget(blocks: &[BlockBudget], ff: FormFactor) -> BudgetReport {
    let total_power_w: f64 = blocks.iter().map(|b| b.power_w).sum();
    let total_area_mm2: f64 = blocks.iter().map(|b| b.area_mm2).sum();
    let power_headroom_w = ff.power_ceiling_w() - total_power_w;
    let area_headroom_mm2 = ff.pic_area_mm2() - total_area_mm2;
    BudgetReport {
        form_factor: ff,
        total_power_w,
        total_area_mm2,
        power_headroom_w,
        area_headroom_mm2,
        fits: power_headroom_w >= 0.0 && area_headroom_mm2 >= 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_fits_qsfp_dd() {
        let report = check_budget(&commodity_blocks(), FormFactor::QsfpDd);
        assert!(report.fits, "{report:?}");
    }

    #[test]
    fn compute_transponder_fits_osfp_but_is_tight_in_qsfp_dd() {
        // The §5 form-factor concern, quantified: the engine additions
        // push past the QSFP-DD 20 W class but fit OSFP.
        let qsfp = check_budget(&compute_blocks(), FormFactor::QsfpDd);
        let osfp = check_budget(&compute_blocks(), FormFactor::Osfp);
        assert!(!qsfp.fits, "{qsfp:?}");
        assert!(osfp.fits, "{osfp:?}");
    }

    #[test]
    fn engine_additions_cost_roughly_5w() {
        let commodity: f64 = commodity_blocks().iter().map(|b| b.power_w).sum();
        let compute: f64 = compute_blocks().iter().map(|b| b.power_w).sum();
        let delta = compute - commodity;
        assert!(delta > 3.0 && delta < 8.0, "engine delta {delta} W");
    }

    #[test]
    fn headroom_math_is_consistent() {
        let report = check_budget(&commodity_blocks(), FormFactor::Osfp);
        assert!(
            (report.total_power_w + report.power_headroom_w - FormFactor::Osfp.power_ceiling_w())
                .abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn unknown_block_panics() {
        block("flux-capacitor");
    }

    #[test]
    fn form_factors_are_ordered_by_power() {
        assert!(FormFactor::QsfpDd.power_ceiling_w() < FormFactor::Cfp2.power_ceiling_w());
        assert!(FormFactor::Cfp2.power_ceiling_w() < FormFactor::Osfp.power_ceiling_w());
    }
}
