//! # ofpc-transponder — optical transponder models
//!
//! The data-plane hardware of the paper's §3: the commodity transponder of
//! Fig. 3 (laser, modulator, DAC on the transmit path; photodetector, ADC
//! on the receive path) and the proposed photonic compute transponder of
//! Fig. 4, whose receive path gains a **photonic engine** that operates on
//! the incoming light *before* detection — preamble detection, the
//! configured P1/P2/P3 computation, and result insertion into a reserved
//! frame field.
//!
//! Everything is accounted: per-stage energy ([`energy`]), added latency,
//! bit errors ([`ber`]), form-factor power/area budgets (§5), and
//! reconfiguration latency ([`config`]). The comparison between
//! [`commodity::CommodityTransponder`] + an external accelerator and
//! [`compute::PhotonicComputeTransponder`] is experiment E3's subject.

pub mod ber;
pub mod coherent;
pub mod commodity;
pub mod compute;
pub mod config;
pub mod energy;
pub mod frame;
pub mod rxpath;
pub mod txpath;
pub mod watchdog;

pub use commodity::CommodityTransponder;
pub use compute::{ComputeOp, PhotonicComputeTransponder};
pub use frame::Frame;
pub use watchdog::{EngineWatchdog, Health, WatchdogConfig};
