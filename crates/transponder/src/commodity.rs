//! The commodity transponder of Fig. 3: a TX path and an RX path, no
//! compute. This is both the baseline device of experiment E3 and the
//! regeneration stage every node (compute-capable or not) uses to put
//! frames back on the next fiber span.

use crate::frame::{Frame, FrameError};
use crate::rxpath::{RxConfig, RxPath};
use crate::txpath::{TxConfig, TxPath};
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::fiber::FiberSpan;
use ofpc_photonics::signal::OpticalField;
use ofpc_photonics::SimRng;

/// A commodity optical transponder (Fig. 3).
#[derive(Debug, Clone)]
pub struct CommodityTransponder {
    pub tx: TxPath,
    pub rx: RxPath,
    pub frames_sent: u64,
    pub frames_received: u64,
    pub crc_failures: u64,
}

impl CommodityTransponder {
    pub fn new(tx_config: TxConfig, rx_config: RxConfig, rng: &mut SimRng) -> Self {
        let tx = TxPath::new(tx_config, rng);
        let rx = RxPath::new(rx_config, rng);
        CommodityTransponder {
            tx,
            rx,
            frames_sent: 0,
            frames_received: 0,
            crc_failures: 0,
        }
    }

    /// Ideal loopback-grade transponder.
    pub fn ideal(rng: &mut SimRng) -> Self {
        let mut t = CommodityTransponder::new(TxConfig::ideal(), RxConfig::ideal(), rng);
        t.rx.calibrate_for_one_level(t.tx.one_level_w());
        t
    }

    /// Realistic transponder, receiver calibrated for a link of
    /// `link_loss_db` between peer TX and this RX.
    pub fn realistic(link_loss_db: f64, rng: &mut SimRng) -> Self {
        let mut t = CommodityTransponder::new(TxConfig::realistic(), RxConfig::realistic(), rng);
        let rx_power = t.tx.one_level_w() * ofpc_photonics::units::db_to_linear(-link_loss_db);
        t.rx.calibrate_for_one_level(rx_power);
        t
    }

    /// Serialize and modulate a frame onto light.
    pub fn transmit_frame(&mut self, frame: &Frame) -> OpticalField {
        self.frames_sent += 1;
        self.tx.transmit(&frame.to_bits())
    }

    /// Detect, slice, and parse a frame from light.
    pub fn receive_frame(&mut self, field: &OpticalField) -> Result<Frame, FrameError> {
        let bits = self.rx.receive(field);
        let off = Frame::find_preamble(&bits).ok_or(FrameError::BadPreamble(0))?;
        match Frame::from_bits(&bits[off..]) {
            Ok((frame, _)) => {
                self.frames_received += 1;
                Ok(frame)
            }
            Err(e) => {
                if matches!(e, FrameError::BadCrc { .. }) {
                    self.crc_failures += 1;
                }
                Err(e)
            }
        }
    }

    /// Serialization latency of a frame at the line rate, seconds.
    pub fn frame_latency_s(&self, frame: &Frame) -> f64 {
        frame.line_bits() as f64 / self.tx.config.line_rate_bps
    }

    /// Combined energy ledger.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = self.tx.energy_ledger();
        ledger.merge(&self.rx.energy_ledger());
        ledger
    }
}

/// Send `frame` from `a` to `b` across `span`, returning the received
/// frame (or error) and the one-way latency in seconds.
pub fn send_over_span(
    a: &mut CommodityTransponder,
    b: &mut CommodityTransponder,
    span: &FiberSpan,
    frame: &Frame,
) -> (Result<Frame, FrameError>, f64) {
    let field = a.transmit_frame(frame);
    let received = span.propagate(&field);
    let latency = span.delay_s() + a.frame_latency_s(frame);
    (b.receive_frame(&received), latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_frame_round_trip() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut t = CommodityTransponder::ideal(&mut rng);
        let frame = Frame::data(&b"the quick brown photon"[..]);
        let field = t.transmit_frame(&frame);
        let got = t.receive_frame(&field).unwrap();
        assert_eq!(got, frame);
        assert_eq!(t.frames_sent, 1);
        assert_eq!(t.frames_received, 1);
    }

    #[test]
    fn span_transfer_with_matched_calibration() {
        let mut rng = SimRng::seed_from_u64(1);
        let span = FiberSpan::compensated(40.0);
        let mut a = CommodityTransponder::ideal(&mut rng);
        let mut b = CommodityTransponder::new(TxConfig::ideal(), RxConfig::ideal(), &mut rng);
        b.rx.calibrate_for_one_level(
            a.tx.one_level_w() * ofpc_photonics::units::db_to_linear(-span.total_loss_db()),
        );
        let frame = Frame::compute(1, &[9u8, 8, 7][..]);
        let (got, latency) = send_over_span(&mut a, &mut b, &span, &frame);
        assert_eq!(got.unwrap(), frame);
        // 40 km ≈ 196 µs of flight plus serialization.
        assert!(latency > 1.9e-4 && latency < 2.1e-4, "latency {latency}");
    }

    #[test]
    fn realistic_link_survives_metro_distance() {
        let mut rng = SimRng::seed_from_u64(2);
        let span = FiberSpan::compensated(40.0);
        let mut a = CommodityTransponder::realistic(0.0, &mut rng);
        let mut b = CommodityTransponder::realistic(span.total_loss_db(), &mut rng);
        let frame = Frame::data(&b"metro hop payload 123456"[..]);
        let (got, _) = send_over_span(&mut a, &mut b, &span, &frame);
        assert_eq!(got.unwrap(), frame);
    }

    #[test]
    fn unlit_fiber_yields_no_frame() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut t = CommodityTransponder::ideal(&mut rng);
        let dark = OpticalField::dark(256, 32e9, 1550e-9);
        assert!(t.receive_frame(&dark).is_err());
        assert_eq!(t.frames_received, 0);
    }

    #[test]
    fn energy_ledger_spans_both_paths() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut t = CommodityTransponder::realistic(0.0, &mut rng);
        let frame = Frame::data(&b"energy"[..]);
        let field = t.transmit_frame(&frame);
        let _ = t.receive_frame(&field);
        let ledger = t.energy_ledger();
        assert!(ledger.get("tx-dac") > 0.0);
        assert!(ledger.get("rx-adc") > 0.0);
    }
}
