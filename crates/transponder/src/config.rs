//! Transponder reconfiguration state machine.
//!
//! The paper's §3: "Service providers will reconfigure each transponder
//! according to the desired operation" and the controller "dynamically
//! reconfigure\[s\] them to accommodate a diverse set of photonic computing
//! tasks". Reconfiguration is not free — weights must be pushed over the
//! control channel and thermo-optic phase shifters need settling time —
//! so the controller's allocator has to know the cost. This module
//! models that: a state machine with explicit reconfiguration latency and
//! a version counter the controller uses for idempotent updates.

use crate::compute::ComputeOp;
use serde::{Deserialize, Serialize};

/// Reconfiguration timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigTiming {
    /// Control-channel transfer rate for weights/patterns, bits/s.
    pub control_rate_bps: f64,
    /// Fixed thermo-optic settling time after new analog set-points, s.
    pub settle_s: f64,
}

impl Default for ReconfigTiming {
    fn default() -> Self {
        ReconfigTiming {
            control_rate_bps: 1e9, // 1 Gb/s management channel
            settle_s: 100e-6,      // thermal phase-shifter settling
        }
    }
}

impl ReconfigTiming {
    /// Derive the control-plane timing from a calibrated weight DAC:
    /// set-points stream at the part's word rate (bits × samples/s),
    /// capped by the 1 Gb/s management channel; thermo-optic settling
    /// is a property of the phase shifters, not the DAC, and stays.
    pub fn from_weight_dac(dac: &dyn ofpc_photonics::parts::DacPart) -> Self {
        ReconfigTiming {
            control_rate_bps: (dac.sample_rate_hz() * f64::from(dac.bits())).min(1e9),
            settle_s: ReconfigTiming::default().settle_s,
        }
    }

    /// Time to install `op`, seconds: payload transfer plus settling.
    pub fn reconfigure_latency_s(&self, op: &ComputeOp) -> f64 {
        let payload_bits = match op {
            // 16-bit fixed-point weights.
            ComputeOp::DotProduct { weights } => weights.len() * 16,
            ComputeOp::PatternMatch { pattern } => pattern.len(),
            ComputeOp::Nonlinear { .. } => 64, // a handful of set-points
        };
        payload_bits as f64 / self.control_rate_bps + self.settle_s
    }
}

/// Operational state of a compute transponder, as tracked by both the
/// device and the centralized controller's inventory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineState {
    /// No operation loaded; transit only.
    Idle,
    /// Operation loaded and serving.
    Active { op_tag: u8, version: u64 },
    /// Mid-reconfiguration until the embedded deadline (sim time, ps).
    Reconfiguring { until_ps: u64, version: u64 },
}

/// The reconfigurable control plane of one transponder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineControl {
    pub timing: ReconfigTiming,
    pub state: EngineState,
    /// Monotonic configuration version.
    pub version: u64,
}

impl EngineControl {
    pub fn new(timing: ReconfigTiming) -> Self {
        EngineControl {
            timing,
            state: EngineState::Idle,
            version: 0,
        }
    }

    /// Begin installing `op` at sim time `now_ps`. Returns the completion
    /// time in picoseconds. Idempotent per version: the caller gets the
    /// new version to match against status reports.
    pub fn begin_reconfigure(&mut self, op: &ComputeOp, now_ps: u64) -> (u64, u64) {
        let latency_ps = (self.timing.reconfigure_latency_s(op) * 1e12).round() as u64;
        let until_ps = now_ps + latency_ps;
        self.version += 1;
        self.state = EngineState::Reconfiguring {
            until_ps,
            version: self.version,
        };
        (until_ps, self.version)
    }

    /// Advance the state machine to sim time `now_ps`; completes any
    /// finished reconfiguration. `op_tag` is the tag that becomes active.
    pub fn tick(&mut self, now_ps: u64, op_tag: u8) {
        if let EngineState::Reconfiguring { until_ps, version } = self.state {
            if now_ps >= until_ps {
                self.state = EngineState::Active { op_tag, version };
            }
        }
    }

    /// Whether the engine can serve compute frames right now.
    pub fn is_active(&self) -> bool {
        matches!(self.state, EngineState::Active { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_op(n: usize) -> ComputeOp {
        ComputeOp::DotProduct {
            weights: vec![0.5; n],
        }
    }

    #[test]
    fn reconfig_latency_scales_with_payload() {
        let t = ReconfigTiming::default();
        let small = t.reconfigure_latency_s(&dot_op(16));
        let large = t.reconfigure_latency_s(&dot_op(16_000));
        assert!(large > small);
        // Settling dominates small payloads.
        assert!((small - 100e-6).abs() / 100e-6 < 0.01, "small {small}");
    }

    #[test]
    fn state_machine_walkthrough() {
        let mut ctl = EngineControl::new(ReconfigTiming::default());
        assert!(!ctl.is_active());
        let (until, v) = ctl.begin_reconfigure(&dot_op(64), 1_000);
        assert_eq!(v, 1);
        assert!(until > 1_000);
        // Before the deadline: still reconfiguring.
        ctl.tick(until - 1, 1);
        assert!(!ctl.is_active());
        // At the deadline: active.
        ctl.tick(until, 1);
        assert!(ctl.is_active());
        assert_eq!(
            ctl.state,
            EngineState::Active {
                op_tag: 1,
                version: 1
            }
        );
    }

    #[test]
    fn versions_are_monotonic() {
        let mut ctl = EngineControl::new(ReconfigTiming::default());
        let (_, v1) = ctl.begin_reconfigure(&dot_op(4), 0);
        let (_, v2) = ctl.begin_reconfigure(&dot_op(4), 10);
        assert!(v2 > v1);
    }

    #[test]
    fn reconfigure_preempts_active_state() {
        let mut ctl = EngineControl::new(ReconfigTiming::default());
        let (until, _) = ctl.begin_reconfigure(&dot_op(4), 0);
        ctl.tick(until, 1);
        assert!(ctl.is_active());
        ctl.begin_reconfigure(&dot_op(8), until + 10);
        assert!(!ctl.is_active());
    }

    #[test]
    fn pattern_and_nonlinear_payload_sizes() {
        let t = ReconfigTiming::default();
        let pm = ComputeOp::PatternMatch {
            pattern: vec![true; 1024],
        };
        let nl = ComputeOp::Nonlinear { len: 10 };
        assert!(t.reconfigure_latency_s(&pm) > t.reconfigure_latency_s(&nl));
    }
}
