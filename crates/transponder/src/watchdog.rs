//! BER/SNR watchdogs and loss-of-light detection.
//!
//! The fault-detection half of the recovery loop: every engine site runs
//! a watchdog over its measured link quality (Q-factor samples from the
//! receive path, mapped to BER via [`crate::ber::q_to_ber`]). Slow
//! analog drift — EDFA gain wander, laser power droop, photodetector
//! responsivity degradation — pushes BER up gradually; the watchdog
//! EWMA-smooths samples, trips *unhealthy* after a run of threshold
//! violations (debounced, so one noisy sample never fails an engine),
//! and re-arms only after a longer run of clean samples (hysteresis, so
//! a marginal engine does not flap). A cut fiber is detected separately
//! and instantly as **loss of light**: received power below the
//! photodetector floor.
//!
//! The controller polls [`EngineWatchdog::health`] and excludes
//! non-[`Health::Healthy`]/[`Health::Degraded`] engines from allocation
//! (protection switching); `ofpc-net` marks the corresponding engine
//! slots unhealthy so in-flight packets pass through tagged rather than
//! carrying garbage results.

use crate::ber::q_to_ber;
use ofpc_telemetry::{Counter, Telemetry};
use serde::{Deserialize, Serialize};

/// Engine health as judged by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// BER comfortably under the warning threshold.
    Healthy,
    /// BER above the warning threshold but not tripped — still usable,
    /// flagged for the controller to watch.
    Degraded,
    /// Sustained BER violations: results can no longer be trusted.
    Unhealthy,
    /// Received power under the detector floor — cut fiber or dead
    /// laser. Detection is immediate, not debounced.
    LossOfLight,
}

impl Health {
    /// Whether the engine may keep serving traffic.
    pub fn usable(self) -> bool {
        matches!(self, Health::Healthy | Health::Degraded)
    }
}

/// Watchdog thresholds and debounce settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// EWMA BER above this is a violation; enough in a row trips the
    /// watchdog. Default 1e-6 (well past FEC comfort).
    pub ber_trip: f64,
    /// EWMA BER above this marks the engine degraded. Default 1e-9
    /// (the classic Q≈6 operating point).
    pub ber_warn: f64,
    /// Received optical power floor, watts; below it is loss of light.
    /// Default 1 µW (−30 dBm).
    pub power_floor_w: f64,
    /// EWMA weight of each new sample, in (0, 1]. Default 0.3.
    pub alpha: f64,
    /// Consecutive violating samples before tripping. Default 3.
    pub trip_after: u32,
    /// Consecutive clean samples before a tripped watchdog re-arms.
    /// Default 8 (hysteresis: recovery is harder than failure).
    pub clear_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            ber_trip: 1e-6,
            ber_warn: 1e-9,
            power_floor_w: 1e-6,
            alpha: 0.3,
            trip_after: 3,
            clear_after: 8,
        }
    }
}

/// Per-engine watchdog state machine.
#[derive(Debug, Clone)]
pub struct EngineWatchdog {
    cfg: WatchdogConfig,
    ewma_ber: Option<f64>,
    violations: u32,
    clean: u32,
    tripped: bool,
    loss_of_light: bool,
    /// How many times the watchdog has tripped over its lifetime.
    pub trips: u64,
    tel_trips: Counter,
}

impl EngineWatchdog {
    pub fn new(cfg: WatchdogConfig) -> Self {
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "alpha in (0,1]");
        assert!(cfg.ber_trip >= cfg.ber_warn, "trip must be ≥ warn");
        assert!(cfg.trip_after > 0 && cfg.clear_after > 0);
        EngineWatchdog {
            cfg,
            ewma_ber: None,
            violations: 0,
            clean: 0,
            tripped: false,
            loss_of_light: false,
            trips: 0,
            tel_trips: Counter::noop(),
        }
    }

    /// Profiling hook: mirror trips onto `watchdog_trips_total`.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel_trips = tel.counter("watchdog_trips_total", &Vec::new());
    }

    /// Feed one BER sample; returns the resulting health.
    ///
    /// Trip/clear debouncing runs on the *raw* sample (a run of
    /// `trip_after` violations trips; a run of `clear_after` clean
    /// samples re-arms), while the EWMA provides the smoothed estimate
    /// behind the degraded warning zone. On re-arm the EWMA is re-seeded
    /// from the current sample — recovery implies the drift was repaired
    /// or recalibrated, so the stale elevated estimate is discarded.
    pub fn observe_ber(&mut self, ber: f64) -> Health {
        let ber = ber.clamp(0.0, 0.5);
        let ewma = match self.ewma_ber {
            Some(prev) => self.cfg.alpha * ber + (1.0 - self.cfg.alpha) * prev,
            None => ber,
        };
        self.ewma_ber = Some(ewma);
        if ber > self.cfg.ber_trip {
            self.violations += 1;
            self.clean = 0;
            if !self.tripped && self.violations >= self.cfg.trip_after {
                self.tripped = true;
                self.trips += 1;
                self.tel_trips.inc();
            }
        } else {
            self.violations = 0;
            self.clean += 1;
            if self.tripped && self.clean >= self.cfg.clear_after {
                self.tripped = false;
                self.ewma_ber = Some(ber);
            }
        }
        self.health()
    }

    /// Feed one Q-factor sample (receive-path level statistics).
    pub fn observe_q(&mut self, q: f64) -> Health {
        self.observe_ber(q_to_ber(q))
    }

    /// Feed one received-power sample; below the floor is loss of light
    /// (immediate, undebounced — a cut fiber is unambiguous). Light
    /// returning clears it just as immediately.
    pub fn observe_power(&mut self, watts: f64) -> Health {
        self.loss_of_light = watts < self.cfg.power_floor_w;
        self.health()
    }

    /// Current smoothed BER estimate.
    pub fn ewma_ber(&self) -> Option<f64> {
        self.ewma_ber
    }

    pub fn health(&self) -> Health {
        if self.loss_of_light {
            Health::LossOfLight
        } else if self.tripped {
            Health::Unhealthy
        } else if self.ewma_ber.is_some_and(|b| b > self.cfg.ber_warn) {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }
}

impl Default for EngineWatchdog {
    fn default() -> Self {
        EngineWatchdog::new(WatchdogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_samples_stay_healthy() {
        let mut w = EngineWatchdog::default();
        for _ in 0..50 {
            assert_eq!(w.observe_q(7.5), Health::Healthy);
        }
        assert_eq!(w.trips, 0);
    }

    #[test]
    fn drift_ramp_degrades_then_trips() {
        // Q drifting down 7.5 → 3.0, as gain drift would push it.
        let mut w = EngineWatchdog::default();
        let mut saw_degraded = false;
        let mut tripped_at = None;
        for step in 0..=45 {
            let q = 7.5 - step as f64 * 0.1;
            match w.observe_q(q) {
                Health::Degraded => saw_degraded = true,
                Health::Unhealthy if tripped_at.is_none() => tripped_at = Some(step),
                _ => {}
            }
        }
        assert!(saw_degraded, "should pass through the warning zone");
        let at = tripped_at.expect("ramp must trip the watchdog");
        assert!(at >= 3, "debounce: needs trip_after violations, got {at}");
        assert_eq!(w.trips, 1, "one sustained excursion = one trip");
        assert_eq!(w.health(), Health::Unhealthy);
    }

    #[test]
    fn single_bad_sample_does_not_trip() {
        let mut w = EngineWatchdog::default();
        for _ in 0..10 {
            w.observe_q(8.0);
        }
        // One glitch then clean again: debounce holds — no trip. The
        // EWMA keeps the estimate elevated (possibly Degraded) but the
        // engine remains usable throughout.
        w.observe_ber(1e-3);
        for _ in 0..5 {
            w.observe_q(8.0);
        }
        assert!(w.health().usable(), "{:?}", w.health());
        assert_eq!(w.trips, 0);
    }

    #[test]
    fn recovery_needs_sustained_clean_samples() {
        let mut w = EngineWatchdog::default();
        for _ in 0..5 {
            w.observe_ber(1e-2);
        }
        assert_eq!(w.health(), Health::Unhealthy);
        // A couple of clean samples are not enough (hysteresis)…
        w.observe_ber(1e-12);
        w.observe_ber(1e-12);
        assert_eq!(w.health(), Health::Unhealthy);
        // …but a sustained clean run re-arms.
        for _ in 0..20 {
            w.observe_ber(1e-12);
        }
        assert_eq!(w.health(), Health::Healthy);
        assert_eq!(w.trips, 1);
    }

    #[test]
    fn loss_of_light_is_immediate_and_reversible() {
        let mut w = EngineWatchdog::default();
        w.observe_q(8.0);
        assert_eq!(w.observe_power(1e-9), Health::LossOfLight);
        assert!(!w.health().usable());
        // Light restored (e.g. protection switch to the backup path).
        assert_eq!(w.observe_power(1e-3), Health::Healthy);
        assert!(w.health().usable());
    }

    #[test]
    fn exactly_at_trip_bound_never_trips() {
        // The violation test is strict (`ber > ber_trip`): an engine
        // sitting *exactly* on the alarm bound is marginal-but-usable,
        // not failed. Only crossing the bound counts.
        let cfg = WatchdogConfig::default();
        let mut w = EngineWatchdog::new(cfg);
        for _ in 0..cfg.trip_after * 10 {
            let h = w.observe_ber(cfg.ber_trip);
            assert!(h.usable(), "at-bound sample must stay usable, got {h:?}");
        }
        assert_eq!(w.trips, 0);
        // EWMA sits at the bound, well past the warning zone.
        assert_eq!(w.health(), Health::Degraded);
    }

    #[test]
    fn infinitesimally_above_bound_trips_after_debounce() {
        let cfg = WatchdogConfig::default();
        let mut w = EngineWatchdog::new(cfg);
        let above = cfg.ber_trip * (1.0 + 1e-12);
        for i in 1..=cfg.trip_after {
            let h = w.observe_ber(above);
            if i < cfg.trip_after {
                assert!(
                    h.usable(),
                    "violation {i} of {} must not trip",
                    cfg.trip_after
                );
            } else {
                assert_eq!(h, Health::Unhealthy, "trip exactly at the debounce count");
            }
        }
        assert_eq!(w.trips, 1);
    }

    #[test]
    fn at_bound_samples_reset_the_violation_run() {
        // trip_after-1 violations followed by an exactly-at-bound sample:
        // the run resets, so the next violation starts a fresh count.
        let cfg = WatchdogConfig::default();
        let mut w = EngineWatchdog::new(cfg);
        let above = cfg.ber_trip * 1.001;
        for _ in 0..cfg.trip_after - 1 {
            w.observe_ber(above);
        }
        w.observe_ber(cfg.ber_trip); // at the bound: clean
        for _ in 0..cfg.trip_after - 1 {
            w.observe_ber(above);
        }
        assert!(w.health().usable(), "interrupted runs must not accumulate");
        assert_eq!(w.trips, 0);
    }

    #[test]
    fn recovery_hysteresis_does_not_flap() {
        // A marginal engine oscillating near the bound after a trip:
        // every violation restarts the clean run, so the watchdog stays
        // Unhealthy rather than flapping in and out of service.
        let cfg = WatchdogConfig::default();
        let mut w = EngineWatchdog::new(cfg);
        for _ in 0..cfg.trip_after {
            w.observe_ber(1e-3);
        }
        assert_eq!(w.health(), Health::Unhealthy);
        for _cycle in 0..10 {
            for _ in 0..cfg.clear_after - 1 {
                w.observe_ber(1e-12);
            }
            w.observe_ber(1e-3); // one excursion short of re-arming
            assert_eq!(w.health(), Health::Unhealthy, "must not flap usable");
        }
        assert_eq!(w.trips, 1, "still the one original trip");
        // A genuinely repaired engine re-arms after a sustained clean run
        // and then needs a *full* fresh debounce to trip again.
        for _ in 0..cfg.clear_after {
            w.observe_ber(1e-12);
        }
        assert_eq!(w.health(), Health::Healthy);
        w.observe_ber(1e-3);
        assert!(
            w.health().usable(),
            "one post-recovery glitch must not re-trip"
        );
        assert_eq!(w.trips, 1);
    }

    #[test]
    fn usable_partition() {
        assert!(Health::Healthy.usable());
        assert!(Health::Degraded.usable());
        assert!(!Health::Unhealthy.usable());
        assert!(!Health::LossOfLight.usable());
    }
}
