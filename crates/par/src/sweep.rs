//! Sharded multi-scenario sweeps and the seed-splitting rule.
//!
//! Experiment harnesses sweep a parameter grid, one seeded scenario per
//! grid point. Run sequentially that is `for p in grid { run(p) }`; the
//! sweep runner shards the grid across the pool with results merged in
//! grid order, so the rendered tables and dumped JSON are byte-identical
//! to the sequential loop — wall-clock drops by ~Nworkers and nothing
//! else changes.
//!
//! ## The seed-splitting rule
//!
//! A scenario must never draw from an RNG shared with its siblings:
//! sequential execution would thread one stream through all of them,
//! making every scenario's noise depend on how many ran before it — and
//! a parallel run could not reproduce that without serializing. Instead
//! every task derives its own root seed as `split_seed(base, index)`
//! and builds a fresh `SimRng` from it. `split_seed` is a SplitMix64
//! finalizer (the same mixer `SimRng` seeds through), so sibling streams
//! are decorrelated even for adjacent indices.

use crate::pool::WorkerPool;

/// Derive the root seed for parallel task `index` from an experiment
/// `base` seed. Pure, stateless, and stable across platforms — part of
/// the replay contract (DESIGN.md §8).
#[inline]
#[must_use]
pub fn split_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 finalizer over the golden-ratio-striped index.
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run one seeded scenario per element of `grid` across the pool,
/// returning results in grid order. `f(index, seed, point)` receives the
/// per-task seed already split from `base_seed`.
pub fn run_scenarios<P, R, F>(pool: &WorkerPool, base_seed: u64, grid: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, u64, P) -> R + Sync,
{
    pool.scatter_gather("sweep", grid, |i, p| {
        f(i, split_seed(base_seed, i as u64), p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_stable() {
        // Pinned values: the replay fixtures depend on this function
        // never changing.
        assert_eq!(split_seed(0, 0), 0);
        assert_eq!(split_seed(12, 0), split_seed(12, 0));
        assert_ne!(split_seed(12, 0), split_seed(12, 1));
        assert_ne!(split_seed(12, 1), split_seed(13, 1));
    }

    #[test]
    fn adjacent_indices_decorrelate() {
        // Hamming distance between adjacent task seeds should look like
        // independent draws (~32 of 64 bits), not a counter.
        let mut total = 0;
        for i in 0..64u64 {
            total += (split_seed(7, i) ^ split_seed(7, i + 1)).count_ones();
        }
        let mean = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&mean), "mean bit flips {mean}");
    }

    #[test]
    fn scenario_sweep_preserves_grid_order() {
        let pool = WorkerPool::new(4);
        let out = run_scenarios(&pool, 5, vec![10u64, 20, 30, 40, 50], |i, seed, p| {
            (i, seed, p)
        });
        for (i, (gi, seed, p)) in out.iter().enumerate() {
            assert_eq!(*gi, i);
            assert_eq!(*seed, split_seed(5, i as u64));
            assert_eq!(*p, (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn sweep_matches_sequential_reference() {
        let run = |workers| {
            run_scenarios(
                &WorkerPool::new(workers),
                42,
                (0..17u64).collect(),
                |_, seed, p| seed.wrapping_mul(p + 1),
            )
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }
}
