//! A memoizing transfer-function cache keyed by quantized operating
//! point.
//!
//! Device transfer curves (MZM `sin²` transmission, EDFA saturation
//! gain) are pure `f64 → f64` maps evaluated millions of times per
//! experiment at a handful of distinct operating points (DAC-quantized
//! drive levels, steady launch powers). The cache snaps the operating
//! point to a quantization grid and memoizes the curve *at the grid
//! point*:
//!
//! * **Deterministic under concurrency** — the stored value is
//!   `f(k·step)`, a pure function of the key alone. If two workers race
//!   on a miss they compute identical bits, so insert order can never
//!   change an observable result. Lookups after the first are bit-exact
//!   replays of the first.
//! * **Bounded error** — `|eval(v) − f(v)| ≤ L·step/2` for a curve with
//!   Lipschitz constant `L`, since the only approximation is snapping
//!   `v` to the nearest grid point. The property tests in
//!   `tests/parallel.rs` sweep 10k seeded operating points against this
//!   bound.
//!
//! Share one cache read-mostly across workers behind an `Arc`; interior
//! mutability is an `RwLock` so the steady state (all keys warm) takes
//! only read locks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Boxed transfer function: pure, thread-safe `f64 → f64`.
pub type TransferFn = Box<dyn Fn(f64) -> f64 + Send + Sync>;

/// A quantized-key memo cache over a transfer function.
pub struct TransferCache {
    step: f64,
    f: TransferFn,
    /// Quantized key → `f64::to_bits` of the curve at the grid point.
    map: RwLock<HashMap<i64, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for TransferCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferCache")
            .field("step", &self.step)
            .field("entries", &self.len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl TransferCache {
    /// Build a cache over `f` with quantization step `step` (> 0, finite).
    pub fn new(step: f64, f: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "quantization step must be positive and finite"
        );
        TransferCache {
            step,
            f: Box::new(f),
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The quantization step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Snap an operating point to its grid point.
    #[inline]
    pub fn quantize(&self, v: f64) -> f64 {
        (v / self.step).round() * self.step
    }

    /// Evaluate through the cache: `f` at the nearest grid point,
    /// memoized. Bit-exact across repeated calls and across threads.
    pub fn eval(&self, v: f64) -> f64 {
        let key = (v / self.step).round() as i64;
        if let Some(&bits) = self.map.read().expect("cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return f64::from_bits(bits);
        }
        let val = (self.f)(key as f64 * self.step);
        self.map
            .write()
            .expect("cache lock poisoned")
            .insert(key, val.to_bits());
        self.misses.fetch_add(1, Ordering::Relaxed);
        val
    }

    /// The uncached curve, for error-bound checks.
    pub fn eval_direct(&self, v: f64) -> f64 {
        (self.f)(v)
    }

    /// Warm the cache at every grid point touched by `points`, under a
    /// single write lock. Returns the number of entries actually
    /// inserted (already-warm grid points are skipped and counted as
    /// neither hit nor miss).
    ///
    /// Use this to build dense lookup tables up front — e.g. the
    /// vectorized dot-product kernel preloads the fused MZM power curve
    /// at every converter code — so the steady state never takes the
    /// write lock at all.
    pub fn preload(&self, points: impl IntoIterator<Item = f64>) -> usize {
        let mut map = self.map.write().expect("cache lock poisoned");
        let mut inserted = 0;
        for v in points {
            let key = (v / self.step).round() as i64;
            if let std::collections::hash_map::Entry::Vacant(e) = map.entry(key) {
                e.insert((self.f)(key as f64 * self.step).to_bits());
                inserted += 1;
            }
        }
        inserted
    }

    /// Distinct grid points cached so far.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the map.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that computed and inserted.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cached_value_is_curve_at_grid_point() {
        let c = TransferCache::new(0.25, |v| v * v);
        // 0.6 snaps to 0.5; the cached value is 0.25, not 0.36.
        assert_eq!(c.eval(0.6), 0.25);
        assert_eq!(c.quantize(0.6), 0.5);
        assert_eq!(c.eval_direct(0.6), 0.36);
    }

    #[test]
    fn repeat_lookups_are_bit_exact_hits() {
        let c = TransferCache::new(1e-3, f64::sin);
        let first = c.eval(1.234_567);
        for _ in 0..100 {
            assert_eq!(c.eval(1.234_567).to_bits(), first.to_bits());
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn error_bounded_by_half_step_times_slope() {
        let step = 1e-4;
        let c = TransferCache::new(step, f64::sin); // |sin'| ≤ 1
        for i in 0..1000 {
            let v = -3.0 + i as f64 * 6.0 / 1000.0;
            let err = (c.eval(v) - c.eval_direct(v)).abs();
            assert!(err <= step / 2.0 + 1e-15, "v={v} err={err}");
        }
    }

    #[test]
    fn concurrent_warmup_is_deterministic() {
        let c = Arc::new(TransferCache::new(1e-2, |v| (v * 3.7).cos()));
        let seq: Vec<u64> = (0..200)
            .map(|i| c.eval_direct(c.quantize(i as f64 * 0.013)).to_bits())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        c.eval(i as f64 * 0.013);
                    }
                });
            }
        });
        let after: Vec<u64> = (0..200)
            .map(|i| c.eval(i as f64 * 0.013).to_bits())
            .collect();
        assert_eq!(seq, after, "racy warmup must not change any bits");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        TransferCache::new(0.0, |v| v);
    }

    #[test]
    fn preload_warms_exactly_the_touched_grid_points() {
        let c = TransferCache::new(0.5, |v| v * 2.0);
        // 0.0, 0.2 → key 0; 0.6 → key 1; 1.1 → key 2.
        let inserted = c.preload([0.0, 0.2, 0.6, 1.1]);
        assert_eq!(inserted, 3);
        assert_eq!(c.len(), 3);
        // A second preload over the same points inserts nothing.
        assert_eq!(c.preload([0.0, 0.6, 1.1]), 0);
        // Preloaded entries are bit-exact with what eval would compute,
        // and eval now serves them as hits.
        assert_eq!(c.eval(0.6).to_bits(), c.eval_direct(0.5).to_bits());
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hits(), 1);
    }
}
