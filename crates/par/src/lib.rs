//! # ofpc-par — deterministic parallel execution
//!
//! Every hot path in the workspace — engine kernel batches, the serving
//! event loop, the experiment sweeps — is seeded and virtual-time, so
//! the results of a run are a pure function of its inputs. This crate
//! exploits that purity to buy wall-clock parallelism *without giving up
//! byte-identical outputs*:
//!
//! * [`pool::WorkerPool`] — a std-only scatter/gather pool. Tasks are
//!   sharded round-robin by submission index (task `i` → worker
//!   `i % workers`, a schedule independent of OS timing) and results are
//!   merged back in submission order, so the output vector is identical
//!   for 1, 2, or 64 workers. The differential tests in
//!   `tests/parallel.rs` pin this contract.
//! * [`sweep::split_seed`] — the seed-splitting rule: parallel task `i`
//!   derives its RNG stream from `split_seed(base, i)` (a SplitMix64
//!   finalizer), never from a shared sequential RNG, so noise streams
//!   are independent of execution order and worker count.
//! * [`cache::TransferCache`] — a memoizing cache for expensive
//!   transfer-function evaluations (MZM curves, EDFA saturation gain)
//!   keyed by *quantized* operating point. The cached value is always
//!   the function evaluated at the quantization-grid point, so a racy
//!   double-insert computes the same bits — the cache is deterministic
//!   under concurrency by construction, and shared read-mostly across
//!   workers behind an `Arc`.
//!
//! No external dependencies; the pool uses `std::thread::scope` so
//! borrowed task closures need no `'static` bound.

pub mod cache;
pub mod pool;
pub mod sweep;

pub use cache::TransferCache;
pub use pool::WorkerPool;
pub use sweep::split_seed;
