//! The ordered scatter/gather worker pool.
//!
//! Determinism contract (DESIGN.md §8): the pool may only run tasks that
//! are pure functions of their inputs (seeded via
//! [`crate::sweep::split_seed`], no shared mutable state beyond
//! deterministic caches). Under that contract the merged output is
//! byte-identical to a sequential left-to-right execution regardless of
//! worker count or OS scheduling, because
//!
//! 1. task → worker assignment is round-robin by submission index, fixed
//!    before any thread starts;
//! 2. results are gathered into a slot table indexed by submission
//!    index, so completion order cannot reorder them;
//! 3. telemetry attribution is emitted *after* the join, on the calling
//!    thread, in (worker, slot) order — trace bytes never depend on
//!    thread interleaving.

use ofpc_telemetry::{labels, track, Telemetry};

/// A deterministic scatter/gather worker pool.
///
/// The pool is a lightweight handle: threads are scoped to each
/// [`WorkerPool::scatter_gather`] call (no idle thread park/unpark state
/// to leak between runs), which also lets task closures borrow from the
/// caller's stack.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: usize,
    tel: Telemetry,
}

impl WorkerPool {
    /// A pool running `workers` tasks concurrently. `workers == 1` is the
    /// sequential reference path (no threads are spawned).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        WorkerPool {
            workers,
            tel: Telemetry::disabled(),
        }
    }

    /// The sequential reference pool (1 worker, inline execution).
    pub fn sequential() -> Self {
        WorkerPool::new(1)
    }

    /// Worker count from the `OFPC_WORKERS` env var, falling back to the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("OFPC_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        WorkerPool::new(workers)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attach an observability handle: each scatter/gather records
    /// per-worker task counters (`par_tasks_total{worker=…}`) and spans
    /// on the PAR track (`tid` = worker index, timestamps in *task-slot*
    /// units, not picoseconds). Attribution is emitted post-join in a
    /// fixed order, so enabling it never perturbs determinism.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self
    }

    /// Execute `tasks` and return their results **in submission order**.
    ///
    /// `f(i, task)` receives the submission index so tasks can derive
    /// per-task seeds ([`crate::sweep::split_seed`]). With one worker (or
    /// fewer than two tasks) everything runs inline on the caller's
    /// thread — that is the sequential path the differential tests diff
    /// against.
    pub fn scatter_gather<T, R, F>(&self, label: &str, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = tasks.len();
        let shard_count = self.workers.min(n.max(1));
        if shard_count <= 1 {
            let out: Vec<R> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
            self.attribute(label, &[(0..n).collect()]);
            return out;
        }

        // Fixed round-robin sharding by submission index: the schedule is
        // decided before any thread runs.
        let mut shards: Vec<Vec<(usize, T)>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            shards[i % shard_count].push((i, t));
        }
        let assignment: Vec<Vec<usize>> = shards
            .iter()
            .map(|s| s.iter().map(|(i, _)| *i).collect())
            .collect();

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move || {
                        shard
                            .into_iter()
                            .map(|(i, t)| (i, f(i, t)))
                            .collect::<Vec<(usize, R)>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("pool worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        self.attribute(label, &assignment);
        slots
            .into_iter()
            .map(|r| r.expect("every submitted task must produce a result"))
            .collect()
    }

    /// Post-join telemetry: one span per task on the PAR track (`tid` =
    /// worker, virtual time = slot index within that worker) plus
    /// per-worker counters. Emission order is (worker, slot) — fully
    /// deterministic for a given worker count.
    fn attribute(&self, label: &str, assignment: &[Vec<usize>]) {
        if !self.tel.is_enabled() {
            return;
        }
        for (worker, indices) in assignment.iter().enumerate() {
            let w = worker.to_string();
            self.tel
                .counter("par_tasks_total", &labels(&[("worker", &w)]))
                .add(indices.len() as u64);
            for (slot, &task) in indices.iter().enumerate() {
                self.tel.span_args(
                    track::PAR,
                    worker as u64,
                    "par",
                    label,
                    slot as u64,
                    slot as u64 + 1,
                    vec![
                        ("task".to_string(), task.to_string()),
                        ("worker".to_string(), w.clone()),
                    ],
                );
            }
        }
        self.tel.counter("par_scatter_total", &Vec::new()).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::split_seed;
    use ofpc_telemetry::Telemetry;

    fn squares(pool: &WorkerPool, n: usize) -> Vec<u64> {
        pool.scatter_gather("sq", (0..n as u64).collect(), |i, v| {
            assert_eq!(i as u64, v);
            v * v
        })
    }

    #[test]
    fn results_arrive_in_submission_order() {
        for workers in [1, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let got = squares(&pool, 23);
            let want: Vec<u64> = (0..23).map(|v| v * v).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_does_not_change_bytes() {
        // A seeded pseudo-noisy task: output depends only on the per-task
        // seed, never on which worker ran it.
        let run = |workers: usize| -> Vec<u64> {
            WorkerPool::new(workers).scatter_gather("noise", (0..64usize).collect(), |i, _| {
                let mut acc = split_seed(99, i as u64);
                for _ in 0..10 {
                    acc = split_seed(acc, 1);
                }
                acc
            })
        };
        let seq = run(1);
        assert_eq!(seq, run(2));
        assert_eq!(seq, run(8));
    }

    #[test]
    fn empty_and_single_task_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u64> = pool.scatter_gather("e", Vec::<u64>::new(), |_, v| v);
        assert!(empty.is_empty());
        assert_eq!(pool.scatter_gather("s", vec![7u64], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn telemetry_attribution_is_deterministic() {
        let emit = |workers: usize| {
            let tel = Telemetry::enabled();
            let pool = WorkerPool::new(workers).with_telemetry(&tel);
            squares(&pool, 10);
            (tel.metrics_json(), tel.chrome_trace_json())
        };
        assert_eq!(emit(3), emit(3), "same worker count ⇒ same attribution");
        let (metrics, _) = emit(2);
        // 10 tasks over 2 workers round-robin: 5 each.
        assert!(metrics.contains("par_tasks_total"));
        let tel = Telemetry::enabled();
        let pool = WorkerPool::new(2).with_telemetry(&tel);
        squares(&pool, 10);
        let snap = tel.snapshot();
        for w in ["0", "1"] {
            assert_eq!(
                snap.counter("par_tasks_total", &ofpc_telemetry::labels(&[("worker", w)])),
                Some(5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn from_env_honors_override() {
        // Serialized by cargo running tests in one process is not
        // guaranteed; use a unique var read path by setting and removing
        // around the call.
        std::env::set_var("OFPC_WORKERS", "3");
        assert_eq!(WorkerPool::from_env().workers(), 3);
        std::env::set_var("OFPC_WORKERS", "not-a-number");
        assert!(WorkerPool::from_env().workers() >= 1);
        std::env::remove_var("OFPC_WORKERS");
    }
}
