//! P3 — photonic nonlinear function (Fig. 2c).
//!
//! The electro-optic activation of Bandyopadhyay et al.: a tap coupler
//! siphons a fraction of the incoming light onto a photodetector; the
//! resulting photovoltage drives an MZM that gates the *remaining* copy of
//! the light. With the gate biased near its null, weak inputs stay blocked
//! and strong inputs open the gate — a smooth ReLU-like transfer entirely
//! in the analog domain. The bias and tap ratio select the knee position
//! and sharpness.
//!
//! The unit operates on *power-encoded values*: input `x ∈ [0, 1]` is an
//! optical power fraction, output `y = f(x)` likewise.

use ofpc_photonics::coupler::Coupler;
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

/// Configuration of a P3 nonlinear unit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NonlinearConfig {
    pub laser: LaserConfig,
    /// Input-encoding modulator (maps the digital test value to power;
    /// in-line deployments receive the power directly).
    pub encoder: MzmConfig,
    /// The gate MZM driven by the tap photovoltage.
    pub gate: MzmConfig,
    pub tap_pd: PhotodetectorConfig,
    pub out_pd: PhotodetectorConfig,
    /// Fraction of input power tapped for the feed-forward detector.
    pub tap_ratio: f64,
    /// Transimpedance gain converting tap photocurrent to gate drive
    /// voltage, V/A. Sets the activation sharpness.
    pub tia_gain_v_a: f64,
    /// Gate bias voltage offset (shifts the knee), volts. Negative values
    /// delay turn-on (larger dead zone at small inputs).
    pub gate_bias_v: f64,
    pub sample_rate_hz: f64,
}

impl NonlinearConfig {
    pub fn ideal() -> Self {
        NonlinearConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            encoder: MzmConfig::ideal(),
            gate: MzmConfig::ideal(),
            tap_pd: PhotodetectorConfig::ideal(),
            out_pd: PhotodetectorConfig::ideal(),
            tap_ratio: 0.1,
            // Chosen so the gate approaches full transmission as x → 1.
            tia_gain_v_a: 1.6e3,
            gate_bias_v: -0.45,
            sample_rate_hz: 32e9,
        }
    }
}

/// A P3 electro-optic nonlinear activation unit.
#[derive(Debug, Clone)]
pub struct NonlinearUnit {
    pub config: NonlinearConfig,
    laser: Laser,
    encoder: MachZehnderModulator,
    gate: MachZehnderModulator,
    tap: Coupler,
    tap_pd: Photodetector,
    out_pd: Photodetector,
    /// Output normalization measured by calibration (current for x = 1).
    full_scale_current_a: Option<f64>,
    pub activations: u64,
}

impl NonlinearUnit {
    pub fn new(config: NonlinearConfig, rng: &mut SimRng) -> Self {
        assert!(
            (0.0..1.0).contains(&config.tap_ratio),
            "tap ratio must be in [0,1)"
        );
        NonlinearUnit {
            laser: Laser::new(config.laser.clone(), rng.derive("p3-laser")),
            encoder: MachZehnderModulator::new(config.encoder.clone()),
            gate: MachZehnderModulator::new(config.gate.clone()),
            tap: Coupler::new(config.tap_ratio, 0.0),
            tap_pd: Photodetector::new(config.tap_pd.clone(), rng.derive("p3-tap-pd")),
            out_pd: Photodetector::new(config.out_pd.clone(), rng.derive("p3-out-pd")),
            config,
            full_scale_current_a: None,
            activations: 0,
        }
    }

    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut u = NonlinearUnit::new(NonlinearConfig::ideal(), &mut rng);
        u.calibrate();
        u
    }

    /// Attach shared amplitude-transmission caches to the encoder and
    /// gate MZMs (build with
    /// [`ofpc_photonics::tfcache::mzm_amplitude_cache`] from the same
    /// `config.encoder` / `config.gate`). Attach *before*
    /// [`Self::calibrate`] so the full-scale normalization and every
    /// activation see the same quantized curves.
    pub fn set_mzm_caches(
        &mut self,
        encoder: std::sync::Arc<ofpc_par::TransferCache>,
        gate: std::sync::Arc<ofpc_par::TransferCache>,
    ) {
        self.encoder.set_amplitude_cache(encoder);
        self.gate.set_amplitude_cache(gate);
    }

    /// Measure the output current at full-scale input for normalization.
    pub fn calibrate(&mut self) {
        let i = self.raw_activate(1.0);
        assert!(i > 0.0, "calibration failed: gate never opens");
        self.full_scale_current_a = Some(i);
        self.activations = self.activations.saturating_sub(1);
    }

    /// One physical activation: encode `x` as power, tap, detect, gate.
    /// Returns the output photocurrent (single integrated symbol).
    fn raw_activate(&mut self, x: f64) -> f64 {
        let light = self.laser.emit(1, self.config.sample_rate_hz);
        let drive = AnalogWaveform::new(
            vec![self.encoder.drive_for_transmission(x.clamp(0.0, 1.0))],
            self.config.sample_rate_hz,
        );
        let encoded = self.encoder.modulate(&light, &drive);
        // Tap coupler: through port keeps (1−κ), coupled port κ.
        let (through, tapped) = self.tap.combine(
            &encoded,
            &ofpc_photonics::signal::OpticalField::dark(
                1,
                self.config.sample_rate_hz,
                encoded.wavelength_m,
            ),
        );
        let tap_current = self.tap_pd.detect(&tapped).samples[0];
        let gate_v = (tap_current * self.config.tia_gain_v_a + self.config.gate_bias_v).max(0.0);
        let gate_drive = AnalogWaveform::new(vec![gate_v], self.config.sample_rate_hz);
        let out = self.gate.modulate(&through, &gate_drive);
        self.activations += 1;
        self.out_pd.detect(&out).samples[0]
    }

    /// Apply the nonlinearity to a value in `[0, 1]`.
    pub fn activate(&mut self, x: f64) -> f64 {
        let fs = self
            .full_scale_current_a
            .expect("NonlinearUnit must be calibrated before use; call calibrate()");
        (self.raw_activate(x) / fs).clamp(0.0, 1.0)
    }

    /// Apply the nonlinearity element-wise.
    pub fn activate_vec(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.activate(x)).collect()
    }

    /// Sweep the transfer curve over `steps` points — experiment E2c's
    /// figure data.
    pub fn transfer_curve(&mut self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2, "a curve needs at least two points");
        (0..steps)
            .map(|i| {
                let x = i as f64 / (steps - 1) as f64;
                (x, self.activate(x))
            })
            .collect()
    }

    /// Latency of one activation, seconds (one symbol + analog loop).
    pub fn latency_s(&self) -> f64 {
        1.0 / self.config.sample_rate_hz + 1e-9
    }

    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let secs = self.activations as f64 / self.config.sample_rate_hz;
        ledger.add("laser", self.laser.config.wall_plug_w * secs);
        ledger.add("encoder", self.encoder.energy_consumed_j());
        ledger.add("gate", self.gate.energy_consumed_j());
        ledger.add("tap-pd", self.tap_pd.energy_consumed_j());
        ledger.add("out-pd", self.out_pd.energy_consumed_j());
        ledger
    }
}

/// Exact ReLU clipped to `[0, 1]`, shifted by `knee` — the digital
/// reference activation the photonic curve approximates.
pub fn relu_reference(x: f64, knee: f64) -> f64 {
    ((x - knee) / (1.0 - knee).max(f64::MIN_POSITIVE)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_monotric_and_relu_shaped() {
        let mut u = NonlinearUnit::ideal();
        let curve = u.transfer_curve(21);
        // Monotonically non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "curve not monotone at {:?}", w);
        }
        // Suppressed at the bottom, open at the top.
        assert!(curve[0].1 < 0.05, "f(0) = {}", curve[0].1);
        assert!(curve[2].1 < 0.1, "f(0.1) = {}", curve[2].1);
        let top = curve.last().unwrap().1;
        assert!((top - 1.0).abs() < 1e-6, "f(1) = {top}");
    }

    #[test]
    fn knee_suppresses_small_inputs_nonlinearly() {
        // A linear device would have f(0.2)/f(0.8) = 0.25; the activation
        // must suppress small inputs much harder.
        let mut u = NonlinearUnit::ideal();
        let small = u.activate(0.2);
        let large = u.activate(0.8);
        assert!(small / large < 0.15, "ratio {}", small / large);
    }

    #[test]
    fn activate_vec_matches_scalar() {
        let mut u1 = NonlinearUnit::ideal();
        let mut u2 = NonlinearUnit::ideal();
        let xs = [0.0, 0.3, 0.6, 1.0];
        let v = u1.activate_vec(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert!((v[i] - u2.activate(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn tracks_relu_reference_roughly() {
        let mut u = NonlinearUnit::ideal();
        // Find the knee empirically, then compare the top half of the
        // curve against the shifted ReLU.
        let curve = u.transfer_curve(41);
        let knee = curve
            .iter()
            .find(|(_, y)| *y > 0.05)
            .map(|(x, _)| *x)
            .unwrap_or(0.0);
        let mut max_err: f64 = 0.0;
        for &(x, y) in curve.iter().filter(|(x, _)| *x > knee + 0.2) {
            max_err = max_err.max((y - relu_reference(x, knee)).abs());
        }
        assert!(max_err < 0.25, "max deviation from ReLU {max_err}");
    }

    #[test]
    fn bias_shifts_the_knee() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut soft_cfg = NonlinearConfig::ideal();
        soft_cfg.gate_bias_v = -0.2;
        let mut hard_cfg = NonlinearConfig::ideal();
        hard_cfg.gate_bias_v = -0.9;
        let mut soft = NonlinearUnit::new(soft_cfg, &mut rng);
        let mut hard = NonlinearUnit::new(hard_cfg, &mut rng);
        soft.calibrate();
        hard.calibrate();
        // The harder bias needs more input before the gate opens.
        assert!(soft.activate(0.3) > hard.activate(0.3));
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut u = NonlinearUnit::new(NonlinearConfig::ideal(), &mut rng);
        u.activate(0.5);
    }

    #[test]
    #[should_panic(expected = "tap ratio")]
    fn rejects_full_tap() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut cfg = NonlinearConfig::ideal();
        cfg.tap_ratio = 1.0;
        NonlinearUnit::new(cfg, &mut rng);
    }

    #[test]
    fn cached_mzms_agree_with_uncached() {
        use ofpc_photonics::tfcache::{mzm_amplitude_cache, MZM_DRIVE_STEP_V};
        // Ideal MZMs have infinite extinction ratio, so both curves are
        // Lipschitz and the quantization bound applies end to end.
        let cfg = NonlinearConfig::ideal();
        let mut plain = NonlinearUnit::new(cfg.clone(), &mut SimRng::seed_from_u64(8));
        let mut cached = NonlinearUnit::new(cfg.clone(), &mut SimRng::seed_from_u64(8));
        let enc = mzm_amplitude_cache(&cfg.encoder, MZM_DRIVE_STEP_V);
        let gate = mzm_amplitude_cache(&cfg.gate, MZM_DRIVE_STEP_V);
        cached.set_mzm_caches(std::sync::Arc::clone(&enc), std::sync::Arc::clone(&gate));
        plain.calibrate();
        cached.calibrate();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let a = plain.activate(x);
            let b = cached.activate(x);
            assert!((a - b).abs() < 2e-3, "x={x}: plain {a} cached {b}");
        }
        // Repeated sweeps land on the same grid points.
        assert!(enc.hits() + gate.hits() > 0);
    }

    #[test]
    fn energy_and_latency_reported() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut cfg = NonlinearConfig::ideal();
        cfg.laser.wall_plug_w = 1.0;
        let mut u = NonlinearUnit::new(cfg, &mut rng);
        u.calibrate();
        u.activate(0.5);
        assert!(u.energy_ledger().total_j() > 0.0);
        assert!(u.latency_s() > 0.0);
    }
}
