//! WDM-parallel matrix-vector multiplication.
//!
//! One P1 dot-product unit computes one row at a time; WDM gives the
//! photonic engine row-parallelism without new hardware paths — each grid
//! channel carries an independent copy of the Fig. 2a pipeline on its own
//! wavelength (the architecture of integrated photonic tensor cores). A
//! matrix-vector product over an `m×n` matrix finishes in
//! `ceil(m / lanes)` sequential dot products.

use crate::dot::{DotProductUnit, DotUnitConfig, KernelBackend};
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::wdm::WdmGrid;
use ofpc_photonics::SimRng;
use ofpc_telemetry::{Counter, Telemetry};

/// A bank of P1 units, one per WDM lane.
#[derive(Debug, Clone)]
pub struct PhotonicMatVec {
    lanes: Vec<DotProductUnit>,
    grid: WdmGrid,
    tel_mvms: Counter,
    tel_macs: Counter,
}

impl PhotonicMatVec {
    /// Build a matvec engine with `lanes` WDM channels, all sharing the
    /// same unit configuration. Each lane's devices get independent noise
    /// streams derived from `rng`.
    pub fn new(config: DotUnitConfig, lanes: usize, rng: &mut SimRng) -> Self {
        assert!(lanes >= 1, "need at least one WDM lane");
        let grid = WdmGrid::c_band(lanes);
        let mut units = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let mut cfg = config.clone();
            cfg.laser.wavelength_m = grid.wavelength_m(lane);
            let mut lane_rng = rng.derive(&format!("mvm-lane-{lane}"));
            units.push(DotProductUnit::new(cfg, &mut lane_rng));
        }
        PhotonicMatVec {
            lanes: units,
            grid,
            tel_mvms: Counter::noop(),
            tel_macs: Counter::noop(),
        }
    }

    /// Profiling hook: count matvec calls and MACs on the registry
    /// (`engine_mvms_total` / `engine_macs_total`).
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel_mvms = tel.counter("engine_mvms_total", &Vec::new());
        self.tel_macs = tel.counter("engine_macs_total", &Vec::new());
    }

    /// Attach shared MZM transfer caches to every lane (see
    /// [`crate::dot::DotProductUnit::set_mzm_caches`]). Attach before
    /// [`PhotonicMatVec::calibrate`].
    pub fn set_mzm_caches(
        &mut self,
        a: std::sync::Arc<ofpc_par::TransferCache>,
        b: std::sync::Arc<ofpc_par::TransferCache>,
    ) {
        for lane in &mut self.lanes {
            lane.set_mzm_caches(std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        }
    }

    /// Ideal engine for algebra tests.
    pub fn ideal(lanes: usize) -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut engine = PhotonicMatVec::new(DotUnitConfig::ideal(), lanes, &mut rng);
        engine.calibrate(64);
        engine
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// Calibrate every lane.
    pub fn calibrate(&mut self, n: usize) {
        for lane in &mut self.lanes {
            lane.calibrate(n);
        }
    }

    /// `y = W·x` with signed entries in `[-1, 1]`. `matrix` is row-major:
    /// `matrix[r]` is row `r`, and every row must have `x.len()` entries.
    ///
    /// Under the vectorized backend the shared `x` operand (the `b` side
    /// of every per-row dot product) is precoded once — DAC quantization
    /// and MZM power transfer evaluated a single time instead of once per
    /// row — which is byte-identical to the per-row path (see
    /// [`crate::dot::PrecodedOperand`]).
    pub fn mat_vec_signed(&mut self, matrix: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        assert!(!matrix.is_empty(), "empty matrix");
        let precoded = (self.lanes[0].config.backend == KernelBackend::Vectorized)
            .then(|| self.lanes[0].precode_signed(x));
        let mut y = Vec::with_capacity(matrix.len());
        for (r, row) in matrix.iter().enumerate() {
            assert_eq!(
                row.len(),
                x.len(),
                "matrix row {r} has {} entries, vector has {}",
                row.len(),
                x.len()
            );
            let lane = r % self.lanes.len();
            y.push(match &precoded {
                Some((xp, xn)) => self.lanes[lane].dot_signed_precoded(row, xp, xn),
                None => self.lanes[lane].dot_signed(row, x),
            });
        }
        self.tel_mvms.inc();
        self.tel_macs.add((matrix.len() * x.len()) as u64);
        y
    }

    /// `y = W·x` with entries in `[0, 1]`. Precodes the shared `x`
    /// operand once under the vectorized backend, like
    /// [`PhotonicMatVec::mat_vec_signed`].
    pub fn mat_vec_nonneg(&mut self, matrix: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        assert!(!matrix.is_empty(), "empty matrix");
        let precoded = (self.lanes[0].config.backend == KernelBackend::Vectorized)
            .then(|| self.lanes[0].precode(x));
        let mut y = Vec::with_capacity(matrix.len());
        for (r, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), x.len(), "matrix row {r} length mismatch");
            let lane = r % self.lanes.len();
            y.push(match &precoded {
                Some(xp) => self.lanes[lane].dot_nonneg_precoded(row, xp),
                None => self.lanes[lane].dot_nonneg(row, x),
            });
        }
        self.tel_mvms.inc();
        self.tel_macs.add((matrix.len() * x.len()) as u64);
        y
    }

    /// Wall-clock latency of an `m×n` matvec: rows run `lanes`-wide in
    /// parallel, so `ceil(m/lanes)` sequential dot products.
    pub fn latency_s(&self, rows: usize, cols: usize) -> f64 {
        let rounds = rows.div_ceil(self.lanes.len());
        rounds as f64 * self.lanes[0].latency_s(cols)
    }

    /// Total MACs across lanes.
    pub fn macs_performed(&self) -> u64 {
        self.lanes.iter().map(|l| l.macs_performed).sum()
    }

    /// Merged energy ledger across lanes.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut total = EnergyLedger::new();
        for lane in &self.lanes {
            total.merge(&lane.energy_ledger());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_matvec(m: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        m.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn single_lane_matches_exact() {
        let mut e = PhotonicMatVec::ideal(1);
        let m = vec![vec![0.5, 0.25], vec![1.0, 0.0]];
        let x = vec![0.5, 1.0];
        let got = e.mat_vec_nonneg(&m, &x);
        let want = exact_matvec(&m, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.01, "got {g} want {w}");
        }
    }

    #[test]
    fn multi_lane_matches_single_lane_semantics() {
        let m: Vec<Vec<f64>> = (0..8)
            .map(|r| (0..4).map(|c| ((r * 4 + c) % 5) as f64 / 5.0).collect())
            .collect();
        let x = vec![0.2, 0.4, 0.6, 0.8];
        let want = exact_matvec(&m, &x);
        let mut wide = PhotonicMatVec::ideal(4);
        let got = wide.mat_vec_nonneg(&m, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.02, "got {g} want {w}");
        }
    }

    #[test]
    fn signed_matvec() {
        let mut e = PhotonicMatVec::ideal(2);
        let m = vec![vec![0.5, -0.5], vec![-1.0, 1.0]];
        let x = vec![1.0, 0.5];
        let got = e.mat_vec_signed(&m, &x);
        let want = exact_matvec(&m, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.03, "got {g} want {w}");
        }
    }

    #[test]
    fn lanes_speed_up_latency() {
        let one = PhotonicMatVec::ideal(1);
        let eight = PhotonicMatVec::ideal(8);
        let l1 = one.latency_s(64, 100);
        let l8 = eight.latency_s(64, 100);
        assert!((l1 / l8 - 8.0).abs() < 0.01, "speedup {}", l1 / l8);
    }

    #[test]
    fn latency_rounds_up_partial_rounds() {
        let e = PhotonicMatVec::ideal(8);
        // 9 rows on 8 lanes = 2 rounds.
        assert!((e.latency_s(9, 10) / e.latency_s(8, 10) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lanes_have_distinct_wavelengths() {
        let e = PhotonicMatVec::ideal(4);
        let wl: std::collections::BTreeSet<u64> = (0..4)
            .map(|i| (e.grid().wavelength_m(i) * 1e15) as u64)
            .collect();
        assert_eq!(wl.len(), 4);
    }

    #[test]
    fn mac_count_accumulates() {
        let mut e = PhotonicMatVec::ideal(2);
        let m = vec![vec![0.1; 16]; 4];
        let x = vec![0.5; 16];
        e.mat_vec_nonneg(&m, &x);
        assert_eq!(e.macs_performed(), 64);
    }

    #[test]
    fn vectorized_blocked_matvec_replays_per_row_dots_byte_for_byte() {
        let mut cfg = DotUnitConfig::realistic();
        cfg.backend = KernelBackend::Vectorized;
        let mut rng1 = SimRng::seed_from_u64(21);
        let mut rng2 = SimRng::seed_from_u64(21);
        let mut blocked = PhotonicMatVec::new(cfg.clone(), 2, &mut rng1);
        let mut manual = PhotonicMatVec::new(cfg, 2, &mut rng2);
        blocked.calibrate(64);
        manual.calibrate(64);
        let m: Vec<Vec<f64>> = (0..6)
            .map(|r| {
                (0..8)
                    .map(|c| ((r * 8 + c) % 7) as f64 / 3.5 - 1.0)
                    .collect()
            })
            .collect();
        let x: Vec<f64> = (0..8).map(|c| (c as f64 / 7.0) * 2.0 - 1.0).collect();
        let got = blocked.mat_vec_signed(&m, &x);
        // Per-row reference: exactly what mat_vec_signed did before the
        // blocked path existed.
        let want: Vec<f64> = m
            .iter()
            .enumerate()
            .map(|(r, row)| manual.lanes[r % 2].dot_signed(row, &x))
            .collect();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(blocked.macs_performed(), manual.macs_performed());
        assert_eq!(
            blocked.energy_ledger().total_j().to_bits(),
            manual.energy_ledger().total_j().to_bits()
        );
    }

    #[test]
    fn vectorized_matvec_matches_exact_algebra() {
        let mut cfg = DotUnitConfig::ideal();
        cfg.backend = KernelBackend::Vectorized;
        let mut rng = SimRng::seed_from_u64(0);
        let mut e = PhotonicMatVec::new(cfg, 4, &mut rng);
        e.calibrate(64);
        let m: Vec<Vec<f64>> = (0..8)
            .map(|r| (0..4).map(|c| ((r * 4 + c) % 5) as f64 / 5.0).collect())
            .collect();
        let x = vec![0.2, 0.4, 0.6, 0.8];
        let got = e.mat_vec_nonneg(&m, &x);
        let want = exact_matvec(&m, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 0.02, "got {g} want {w}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_matrix() {
        let mut e = PhotonicMatVec::ideal(1);
        let m = vec![vec![0.1, 0.2], vec![0.1]];
        e.mat_vec_nonneg(&m, &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_matrix() {
        let mut e = PhotonicMatVec::ideal(1);
        e.mat_vec_nonneg(&[], &[0.5]);
    }
}
