//! Analog precision analysis.
//!
//! Photonic computing trades digital exactness for speed and energy; the
//! currency of that trade is *effective bits*. This module predicts the
//! effective resolution of a P1 readout from the receiver physics and
//! measures it empirically from repeated trials, so experiments (E2a,
//! E10) can plot precision against optical power, vector length, and
//! noise sources — the paper's §4 "high accuracy" challenge made
//! quantitative.

use crate::dot::DotProductUnit;
use ofpc_photonics::units;

/// Predicted effective bits of a single-symbol P1 measurement given the
/// photodetector's SNR at the operating optical power.
///
/// The integrated readout over `n` symbols averages noise down by `√n`
/// *relative to the per-symbol full scale*, but the result's full scale
/// also grows as `n`, so per-element resolution is what the SNR sets.
pub fn predicted_effective_bits(pd_snr_db: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    // Averaging gain: SNR of the sum improves by 10·log10(n) for
    // independent noise, referenced to the summed signal.
    let snr_sum = pd_snr_db + 10.0 * (n as f64).log10();
    units::snr_db_to_enob(snr_sum)
}

/// Empirical precision measurement of a dot-product unit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrecisionReport {
    /// RMS error of the normalized result (result / n), dimensionless.
    pub rms_error: f64,
    /// Worst-case absolute error of the normalized result.
    pub max_error: f64,
    /// Effective bits: `log2(1 / rms_error)` of the normalized result.
    pub effective_bits: f64,
    /// Trials run.
    pub trials: usize,
}

/// Measure the effective precision of `unit` on random vectors of length
/// `n` over `trials` repetitions. The reference is the exact dot product
/// of the quantized operands.
pub fn measure_precision(
    unit: &mut DotProductUnit,
    n: usize,
    trials: usize,
    rng: &mut ofpc_photonics::SimRng,
) -> PrecisionReport {
    assert!(n > 0 && trials > 0, "need positive n and trials");
    let mut sq_sum = 0.0;
    let mut max_err: f64 = 0.0;
    for _ in 0..trials {
        let a: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = unit.dot_nonneg(&a, &b);
        let err = (got - exact).abs() / n as f64;
        sq_sum += err * err;
        max_err = max_err.max(err);
    }
    let rms = (sq_sum / trials as f64).sqrt();
    PrecisionReport {
        rms_error: rms,
        max_error: max_err,
        effective_bits: if rms > 0.0 {
            (1.0 / rms).log2()
        } else {
            f64::INFINITY
        },
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot::DotUnitConfig;
    use ofpc_photonics::SimRng;

    #[test]
    fn predicted_bits_grow_with_snr() {
        let low = predicted_effective_bits(20.0, 1);
        let high = predicted_effective_bits(50.0, 1);
        assert!(high > low + 4.0);
    }

    #[test]
    fn averaging_adds_half_bit_per_doubling() {
        let b1 = predicted_effective_bits(30.0, 16);
        let b2 = predicted_effective_bits(30.0, 64);
        // 10·log10(4) ≈ 6 dB ≈ 1 bit.
        assert!((b2 - b1 - 1.0).abs() < 0.05, "b1 {b1} b2 {b2}");
    }

    #[test]
    fn zero_length_has_zero_bits() {
        assert_eq!(predicted_effective_bits(40.0, 0), 0.0);
    }

    #[test]
    fn ideal_unit_measures_many_effective_bits() {
        let mut unit = DotProductUnit::ideal();
        let mut rng = SimRng::seed_from_u64(11);
        let report = measure_precision(&mut unit, 16, 20, &mut rng);
        assert!(report.effective_bits > 8.0, "{report:?}");
        assert!(report.max_error < 0.01, "{report:?}");
    }

    #[test]
    fn noisy_unit_loses_bits() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut ideal = DotProductUnit::ideal();
        let mut noisy = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        noisy.calibrate(256);
        let mut r1 = SimRng::seed_from_u64(13);
        let mut r2 = SimRng::seed_from_u64(13);
        let clean = measure_precision(&mut ideal, 32, 15, &mut r1);
        let dirty = measure_precision(&mut noisy, 32, 15, &mut r2);
        assert!(
            clean.effective_bits > dirty.effective_bits + 1.0,
            "clean {clean:?} dirty {dirty:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_trials() {
        let mut unit = DotProductUnit::ideal();
        let mut rng = SimRng::seed_from_u64(0);
        measure_precision(&mut unit, 4, 0, &mut rng);
    }
}
