//! P2 — photonic pattern matching (Fig. 2b).
//!
//! Data bits and pattern bits are BPSK-encoded (phases 0/π) on two phase
//! modulators feeding a 3-dB coupler. A static −π/2 bias on the pattern
//! arm cancels the coupler's intrinsic quadrature, so at the difference
//! port the fields are `(E_data − E_pattern)/√2`: a **matched** symbol
//! interferes destructively (no light), a **mismatched** symbol
//! constructively (2P). The photodetector's integrated power over the
//! block is therefore proportional to the *Hamming distance* between data
//! and pattern — an all-optical correlator in the spirit of the tunable
//! optical correlators the paper cites (Alishahi et al., Ziyadi et al.).
//!
//! A calibration pass (all-match / all-mismatch blocks) measures the
//! per-mismatch photocurrent so the digital threshold logic can convert
//! integrated charge to a distance estimate.

use ofpc_photonics::coupler::Coupler;
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{PhaseModulator, PhaseModulatorConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

/// Configuration of a P2 pattern-matching unit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MatcherConfig {
    pub laser: LaserConfig,
    pub pm_data: PhaseModulatorConfig,
    pub pm_pattern: PhaseModulatorConfig,
    pub pd: PhotodetectorConfig,
    /// Symbol rate, Hz.
    pub sample_rate_hz: f64,
    /// Decision threshold as a fraction of one mismatch's charge: a block
    /// whose distance estimate is below this matches. 0.5 = "less than
    /// half a bit of disagreement".
    pub match_threshold: f64,
}

impl MatcherConfig {
    pub fn ideal() -> Self {
        MatcherConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            pm_data: PhaseModulatorConfig::ideal(),
            pm_pattern: PhaseModulatorConfig::ideal(),
            pd: PhotodetectorConfig::ideal(),
            sample_rate_hz: 32e9,
            match_threshold: 0.5,
        }
    }

    pub fn realistic() -> Self {
        MatcherConfig {
            laser: LaserConfig::default(),
            pm_data: PhaseModulatorConfig::default(),
            pm_pattern: PhaseModulatorConfig::default(),
            pd: PhotodetectorConfig::default(),
            sample_rate_hz: 32e9,
            match_threshold: 0.5,
        }
    }
}

/// Result of one pattern-match operation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MatchResult {
    /// Analog estimate of the Hamming distance (may be fractional).
    pub distance_estimate: f64,
    /// Rounded integer Hamming distance.
    pub hamming: u64,
    /// Whether the block matched under the configured threshold.
    pub matched: bool,
}

/// A P2 photonic pattern matcher.
#[derive(Debug, Clone)]
pub struct PatternMatcher {
    pub config: MatcherConfig,
    laser: Laser,
    pm_data: PhaseModulator,
    pm_pattern: PhaseModulator,
    coupler: Coupler,
    pd: Photodetector,
    /// Photocurrent per mismatched symbol (from calibration), A.
    unit_current_a: Option<f64>,
    /// Dark/matched-floor current per symbol, A.
    floor_current_a: f64,
    /// Symbols matched so far.
    pub symbols_matched: u64,
}

impl PatternMatcher {
    pub fn new(config: MatcherConfig, rng: &mut SimRng) -> Self {
        PatternMatcher {
            laser: Laser::new(config.laser.clone(), rng.derive("p2-laser")),
            pm_data: PhaseModulator::new(config.pm_data.clone()),
            pm_pattern: PhaseModulator::new(config.pm_pattern.clone()),
            coupler: Coupler::three_db(),
            pd: Photodetector::new(config.pd.clone(), rng.derive("p2-pd")),
            config,
            unit_current_a: None,
            floor_current_a: 0.0,
            symbols_matched: 0,
        }
    }

    /// Ideal matcher with a fixed seed, pre-calibrated.
    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = PatternMatcher::new(MatcherConfig::ideal(), &mut rng);
        m.calibrate(64);
        m
    }

    pub fn is_calibrated(&self) -> bool {
        self.unit_current_a.is_some()
    }

    /// Measure the per-mismatch photocurrent with all-match and
    /// all-mismatch test blocks.
    pub fn calibrate(&mut self, n: usize) {
        assert!(n > 0, "calibration needs at least one symbol");
        let zeros = vec![false; n];
        let ones = vec![true; n];
        let all_match = self.raw_pass(&zeros, &zeros);
        let all_mismatch = self.raw_pass(&ones, &zeros);
        let floor = all_match / n as f64;
        let unit = (all_mismatch - all_match) / n as f64;
        assert!(unit > 0.0, "calibration failed: no mismatch contrast");
        self.unit_current_a = Some(unit);
        self.floor_current_a = floor;
        self.symbols_matched = self.symbols_matched.saturating_sub(2 * n as u64);
    }

    /// One physical pass: phase-encode, interfere, detect, integrate.
    /// Returns summed photocurrent at the difference port.
    fn raw_pass(&mut self, data: &[bool], pattern: &[bool]) -> f64 {
        assert_eq!(
            data.len(),
            pattern.len(),
            "data and pattern must match in length"
        );
        assert!(!data.is_empty(), "cannot match empty blocks");
        let n = data.len();
        let light = self.laser.emit(n, self.config.sample_rate_hz);
        let (arm_data, arm_pattern) = self.coupler.split(&light);
        let phase_wave = |bits: &[bool], pm: &PhaseModulator| {
            AnalogWaveform::new(
                bits.iter()
                    .map(|&b| pm.drive_for_phase(if b { std::f64::consts::PI } else { 0.0 }))
                    .collect(),
                self.config.sample_rate_hz,
            )
        };
        let d_data = phase_wave(data, &self.pm_data);
        let d_pattern = phase_wave(pattern, &self.pm_pattern);
        let enc_data = self.pm_data.modulate(&arm_data, &d_data);
        let mut enc_pattern = self.pm_pattern.modulate(&arm_pattern, &d_pattern);
        // Static bias aligning the coupler so the difference port nulls on
        // matched symbols (see module docs). The extra π accounts for the
        // π/2 picked up in the splitter path.
        enc_pattern.rotate_phase(-std::f64::consts::PI);
        let (_sum_port, diff_port) = self.coupler.combine(&enc_data, &enc_pattern);
        let current = self.pd.detect(&diff_port);
        self.symbols_matched += n as u64;
        current.samples.iter().sum()
    }

    /// Estimate the Hamming distance between `data` and `pattern` and
    /// apply the match threshold. Requires prior calibration.
    pub fn match_block(&mut self, data: &[bool], pattern: &[bool]) -> MatchResult {
        let n = data.len();
        let unit = self
            .unit_current_a
            .expect("PatternMatcher must be calibrated before use; call calibrate()");
        let charge = self.raw_pass(data, pattern);
        let est = ((charge - n as f64 * self.floor_current_a) / unit).max(0.0);
        MatchResult {
            distance_estimate: est,
            hamming: est.round().max(0.0) as u64,
            matched: est < self.config.match_threshold,
        }
    }

    /// Latency of matching an n-symbol block, seconds.
    pub fn latency_s(&self, n: usize) -> f64 {
        n as f64 / self.config.sample_rate_hz + 1e-9
    }

    /// Energy spent so far.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let secs = self.symbols_matched as f64 / self.config.sample_rate_hz;
        ledger.add("laser", self.laser.config.wall_plug_w * secs);
        ledger.add("pm-data", self.pm_data.energy_consumed_j());
        ledger.add("pm-pattern", self.pm_pattern.energy_consumed_j());
        ledger.add("photodetector", self.pd.energy_consumed_j());
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let mut m = PatternMatcher::ideal();
        let d = bits("10110010");
        let r = m.match_block(&d, &d);
        assert_eq!(r.hamming, 0);
        assert!(r.matched);
        assert!(r.distance_estimate < 0.01);
    }

    #[test]
    fn hamming_distance_is_recovered_exactly() {
        let mut m = PatternMatcher::ideal();
        let data = bits("1011001110100101");
        let pattern = bits("1011001010100001");
        let true_distance = data.iter().zip(&pattern).filter(|(a, b)| a != b).count() as u64;
        let r = m.match_block(&data, &pattern);
        assert_eq!(r.hamming, true_distance);
        assert!(!r.matched);
    }

    #[test]
    fn all_mismatch_distance_is_n() {
        let mut m = PatternMatcher::ideal();
        let data = vec![true; 32];
        let pattern = vec![false; 32];
        let r = m.match_block(&data, &pattern);
        assert_eq!(r.hamming, 32);
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut m = PatternMatcher::ideal();
        let data = bits("11110000111100001111000011110000");
        let mut flipped = data.clone();
        flipped[17] = !flipped[17];
        let r = m.match_block(&data, &flipped);
        assert_eq!(r.hamming, 1);
        assert!(!r.matched);
    }

    #[test]
    fn noisy_matcher_still_discriminates() {
        let mut rng = SimRng::seed_from_u64(10);
        let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
        m.calibrate(256);
        let pattern = bits("11001010111100001100101011110000");
        // Matching data: estimate near 0. One flip: estimate near 1.
        let r_match = m.match_block(&pattern, &pattern);
        assert!(r_match.matched, "estimate {}", r_match.distance_estimate);
        let mut one_off = pattern.clone();
        one_off[5] = !one_off[5];
        let r_miss = m.match_block(&one_off, &pattern);
        assert!(!r_miss.matched, "estimate {}", r_miss.distance_estimate);
        assert_eq!(r_miss.hamming, 1);
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_matcher_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = PatternMatcher::new(MatcherConfig::ideal(), &mut rng);
        m.match_block(&[true], &[true]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut m = PatternMatcher::ideal();
        m.match_block(&[true, false], &[true]);
    }

    #[test]
    fn energy_is_accounted() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
        m.calibrate(64);
        m.match_block(&[true; 64], &[false; 64]);
        let ledger = m.energy_ledger();
        assert!(ledger.total_j() > 0.0);
        assert!(ledger.get("pm-data") > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut rng = SimRng::seed_from_u64(2);
            let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
            m.calibrate(64);
            m.match_block(&bits("10101010"), &bits("10100010"))
                .distance_estimate
        };
        assert_eq!(run(), run());
    }
}
