//! Calibration of analog compute units.
//!
//! The paper's §4 names "new algorithms to mitigate photonic noise during
//! computation and achieve high accuracy" as a required system component.
//! The first such algorithm is plain gain/offset calibration: analog
//! results come off the photodetector scaled by every insertion loss in
//! the chain and offset by dark current; measuring those two constants
//! with known test vectors removes the systematic error, leaving only the
//! stochastic noise floor. Experiment E10 ablates calibration to show the
//! accuracy collapse.

/// Gain/offset calibration of a P1 dot-product chain: the measured
/// photocurrent for a unit product, and the dark (zero-input) current.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DotCalibration {
    /// Photocurrent per unit product per symbol, A.
    pub unit_current_a: f64,
    /// Dark photocurrent per symbol, A.
    pub dark_current_a: f64,
}

impl DotCalibration {
    /// Map a summed photocurrent over `n` symbols back to `Σ aᵢbᵢ`.
    pub fn apply(&self, summed_current_a: f64, n: usize) -> f64 {
        (summed_current_a - n as f64 * self.dark_current_a) / self.unit_current_a
    }
}

/// Running drift tracker: photonic chains drift with temperature; a
/// production engine re-calibrates when the drift estimate exceeds a
/// threshold. The tracker holds an exponentially weighted estimate of the
/// ratio between fresh unit-current measurements and the stored
/// calibration.
#[derive(Debug, Clone)]
pub struct DriftTracker {
    /// EWMA of measured/calibrated unit-current ratio.
    ratio: f64,
    /// EWMA weight for new observations.
    alpha: f64,
    /// Re-calibration threshold on `|ratio − 1|`.
    threshold: f64,
    observations: u64,
}

impl DriftTracker {
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(threshold > 0.0, "threshold must be positive");
        DriftTracker {
            ratio: 1.0,
            alpha,
            threshold,
            observations: 0,
        }
    }

    /// Record a fresh measurement of the unit current against the stored
    /// calibration value.
    pub fn observe(&mut self, measured_unit_a: f64, calibrated_unit_a: f64) {
        if calibrated_unit_a <= 0.0 {
            return;
        }
        let r = measured_unit_a / calibrated_unit_a;
        self.ratio += self.alpha * (r - self.ratio);
        self.observations += 1;
    }

    /// Current drift estimate, as a fraction (0 = no drift).
    pub fn drift(&self) -> f64 {
        (self.ratio - 1.0).abs()
    }

    /// Whether the engine should re-calibrate.
    pub fn needs_recalibration(&self) -> bool {
        self.observations > 0 && self.drift() > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_inverts_gain_and_offset() {
        let cal = DotCalibration {
            unit_current_a: 2e-3,
            dark_current_a: 1e-6,
        };
        // 10 symbols, true sum 3.5: current = 3.5*2e-3 + 10*1e-6.
        let current = 3.5 * 2e-3 + 10.0 * 1e-6;
        let got = cal.apply(current, 10);
        assert!((got - 3.5).abs() < 1e-12);
    }

    #[test]
    fn drift_tracker_flags_sustained_drift() {
        let mut t = DriftTracker::new(0.5, 0.05);
        assert!(!t.needs_recalibration());
        for _ in 0..20 {
            t.observe(0.9, 1.0); // 10% gain sag
        }
        assert!(t.drift() > 0.05);
        assert!(t.needs_recalibration());
    }

    #[test]
    fn drift_tracker_tolerates_jitter_around_unity() {
        let mut t = DriftTracker::new(0.1, 0.05);
        for i in 0..50 {
            let r = if i % 2 == 0 { 1.01 } else { 0.99 };
            t.observe(r, 1.0);
        }
        assert!(!t.needs_recalibration(), "drift {}", t.drift());
    }

    #[test]
    fn drift_tracker_ignores_bad_reference() {
        let mut t = DriftTracker::new(0.5, 0.05);
        t.observe(1.0, 0.0); // nonsense reference must not poison the EWMA
        assert_eq!(t.drift(), 0.0);
        assert!(!t.needs_recalibration());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        DriftTracker::new(1.5, 0.05);
    }
}
