//! Sliding photonic correlator — signature search over a bit stream.
//!
//! The intrusion-detection use case (Table 1) needs "photonic regular
//! expression matching hardware". The deployable photonic kernel is a
//! *correlator*: slide a P2 pattern matcher over the payload bit stream
//! and report every offset whose Hamming distance falls below a
//! threshold. Exact signature sets (the Snort-style common case) map
//! directly; a tolerance > 0 gives the fuzzy matching that catches
//! polymorphic variants of a signature.

use crate::matcher::{MatcherConfig, PatternMatcher};
use ofpc_photonics::SimRng;

/// A match hit produced by the correlator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorrelationHit {
    /// Bit offset in the stream where the pattern aligns.
    pub offset: usize,
    /// Index of the matched pattern in the signature set.
    pub pattern_index: usize,
    /// Analog distance estimate at the hit.
    pub distance: f64,
}

/// A photonic sliding correlator over a signature set.
#[derive(Debug)]
pub struct Correlator {
    matcher: PatternMatcher,
    signatures: Vec<Vec<bool>>,
    /// Maximum Hamming distance still reported as a hit.
    pub tolerance: f64,
    /// Stride in bits between alignments (8 = byte-aligned signatures).
    pub stride: usize,
}

impl Correlator {
    /// Build a correlator over `signatures` with the given matcher
    /// hardware config. `tolerance` ≤ 0.5 means exact matching.
    pub fn new(
        config: MatcherConfig,
        signatures: Vec<Vec<bool>>,
        tolerance: f64,
        stride: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            !signatures.is_empty(),
            "correlator needs at least one signature"
        );
        assert!(
            signatures.iter().all(|s| !s.is_empty()),
            "signatures must be non-empty"
        );
        assert!(stride >= 1, "stride must be at least 1 bit");
        let mut cfg = config;
        // The matcher's own threshold is not used — the correlator applies
        // its tolerance to the analog estimate directly.
        cfg.match_threshold = 0.5;
        let mut matcher = PatternMatcher::new(cfg, rng);
        matcher.calibrate(128);
        Correlator {
            matcher,
            signatures,
            tolerance: tolerance.max(0.0),
            stride,
        }
    }

    /// Ideal-hardware correlator (for algorithmic tests).
    pub fn ideal(signatures: Vec<Vec<bool>>, tolerance: f64, stride: usize) -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        Correlator::new(
            MatcherConfig::ideal(),
            signatures,
            tolerance,
            stride,
            &mut rng,
        )
    }

    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Scan a bit stream, returning all hits across all signatures.
    pub fn scan(&mut self, stream: &[bool]) -> Vec<CorrelationHit> {
        let mut hits = Vec::new();
        for pi in 0..self.signatures.len() {
            let pattern = &self.signatures[pi];
            if pattern.len() > stream.len() {
                continue;
            }
            let mut offset = 0;
            while offset + pattern.len() <= stream.len() {
                let window = &stream[offset..offset + pattern.len()];
                let r = self.matcher.match_block(window, pattern);
                if r.distance_estimate <= self.tolerance + 0.5 {
                    hits.push(CorrelationHit {
                        offset,
                        pattern_index: pi,
                        distance: r.distance_estimate,
                    });
                }
                offset += self.stride;
            }
        }
        hits.sort_by_key(|h| (h.offset, h.pattern_index));
        hits
    }

    /// Symbols pushed through the optical matcher so far (cost metric).
    pub fn symbols_scanned(&self) -> u64 {
        self.matcher.symbols_matched
    }

    /// Wall-clock time to scan `stream_bits` against the signature set,
    /// seconds: each alignment is one optical block.
    pub fn scan_latency_s(&self, stream_bits: usize) -> f64 {
        let mut total = 0.0;
        for pattern in &self.signatures {
            if pattern.len() > stream_bits {
                continue;
            }
            let alignments = (stream_bits - pattern.len()) / self.stride + 1;
            total += alignments as f64 * self.matcher.latency_s(pattern.len());
        }
        total
    }
}

/// Convert a byte string to a bit vector, MSB first — the encoding used
/// for payload scanning.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_to_bits_msb_first() {
        assert_eq!(
            bytes_to_bits(&[0b1010_0001]),
            vec![true, false, true, false, false, false, false, true]
        );
        assert_eq!(bytes_to_bits(&[]).len(), 0);
    }

    #[test]
    fn finds_planted_signature() {
        let sig = bytes_to_bits(b"EVIL");
        let mut c = Correlator::ideal(vec![sig.clone()], 0.0, 8);
        let stream = bytes_to_bits(b"xxxxEVILyyyy");
        let hits = c.scan(&stream);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 32);
        assert_eq!(hits[0].pattern_index, 0);
    }

    #[test]
    fn clean_stream_has_no_hits() {
        let sig = bytes_to_bits(b"EVIL");
        let mut c = Correlator::ideal(vec![sig], 0.0, 8);
        let hits = c.scan(&bytes_to_bits(b"perfectly benign payload"));
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn multiple_signatures_and_occurrences() {
        let sigs = vec![bytes_to_bits(b"AB"), bytes_to_bits(b"CD")];
        let mut c = Correlator::ideal(sigs, 0.0, 8);
        let hits = c.scan(&bytes_to_bits(b"ABxCDxAB"));
        let found: Vec<(usize, usize)> = hits.iter().map(|h| (h.offset, h.pattern_index)).collect();
        assert_eq!(found, vec![(0, 0), (24, 1), (48, 0)]);
    }

    #[test]
    fn tolerance_catches_fuzzed_signature() {
        let sig = bytes_to_bits(b"MALWARE!");
        // Flip two bits of the planted copy.
        let mut stream = bytes_to_bits(b"...MALWARE!...");
        stream[3 * 8 + 5] = !stream[3 * 8 + 5];
        stream[3 * 8 + 13] = !stream[3 * 8 + 13];
        let mut exact = Correlator::ideal(vec![sig.clone()], 0.0, 8);
        assert!(exact.scan(&stream).is_empty());
        let mut fuzzy = Correlator::ideal(vec![sig], 2.0, 8);
        let hits = fuzzy.scan(&stream);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].offset, 24);
        assert!((hits[0].distance - 2.0).abs() < 0.2);
    }

    #[test]
    fn bit_stride_finds_unaligned_match() {
        let sig = bytes_to_bits(b"XY");
        // Shift the payload by 3 bits so byte alignment misses it.
        let mut stream = vec![false; 3];
        stream.extend(bytes_to_bits(b"XY"));
        stream.extend(vec![false; 5]);
        let mut byte_aligned = Correlator::ideal(vec![sig.clone()], 0.0, 8);
        assert!(byte_aligned.scan(&stream).is_empty());
        let mut bit_aligned = Correlator::ideal(vec![sig], 0.0, 1);
        let hits = bit_aligned.scan(&stream);
        assert!(hits.iter().any(|h| h.offset == 3), "{hits:?}");
    }

    #[test]
    fn pattern_longer_than_stream_is_skipped() {
        let sig = bytes_to_bits(b"LONGPATTERN");
        let mut c = Correlator::ideal(vec![sig], 0.0, 8);
        assert!(c.scan(&bytes_to_bits(b"hi")).is_empty());
        assert_eq!(c.scan_latency_s(16), 0.0);
    }

    #[test]
    fn latency_scales_with_stream_and_signatures() {
        let sigs = vec![bytes_to_bits(b"AAAA"), bytes_to_bits(b"BBBB")];
        let c = Correlator::ideal(sigs, 0.0, 8);
        let short = c.scan_latency_s(256);
        let long = c.scan_latency_s(2560);
        assert!(long > 5.0 * short);
    }

    #[test]
    #[should_panic(expected = "at least one signature")]
    fn rejects_empty_signature_set() {
        Correlator::ideal(vec![], 0.0, 8);
    }
}
