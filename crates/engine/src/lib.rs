//! # ofpc-engine — the photonic computing primitives
//!
//! Implements the three primitives of the paper's §2.1 (Fig. 2a–c) on top
//! of the `ofpc-photonics` device substrate, plus the composite units the
//! use cases need:
//!
//! * **P1** [`dot::DotProductUnit`] — time-multiplexed photonic vector dot
//!   product: two back-to-back Mach-Zehnder modulators produce per-symbol
//!   products `aᵢ·bᵢ`; a photodetector integrates the block into the sum.
//!   [`mvm::PhotonicMatVec`] replicates the unit across WDM lanes for
//!   matrix-vector products.
//! * **P2** [`matcher::PatternMatcher`] — phase-encoded interference
//!   matching: data and pattern ride two phase modulators into a 3-dB
//!   coupler; matched symbols interfere destructively, so integrated
//!   output power *is* the Hamming distance. [`ternary::TernaryMatcher`]
//!   extends it with wildcards (IP routing); [`correlator::Correlator`]
//!   slides it over a stream (intrusion detection);
//!   [`comparator::PhotonicComparator`] uses balanced detection (load
//!   balancing).
//! * **P3** [`nonlinear::NonlinearUnit`] — an electro-optic ReLU-like
//!   activation: a tapped photodetector self-modulates the optical copy of
//!   the signal (Bandyopadhyay et al.), enabling all-optical DNN layers.
//!
//! [`dnn::PhotonicDnn`] composes P1 and P3 into full deep-network
//! inference; [`calibration`] provides the gain/offset calibration the
//! paper's §4 lists as a required noise-mitigation algorithm; and
//! [`precision`] converts measured SNR into effective bits so experiments
//! can report the analog precision budget.

pub mod batch;
pub mod calibration;
pub mod comparator;
pub mod correlator;
pub mod dnn;
pub mod dot;
pub mod matcher;
pub mod mvm;
pub mod nonlinear;
pub mod precision;
pub mod ternary;

pub use dnn::PhotonicDnn;
pub use dot::DotProductUnit;
pub use matcher::PatternMatcher;
pub use nonlinear::NonlinearUnit;

/// The three photonic computing primitive classes of the paper's §2.1.
/// Carried in the compute-communication protocol header (`ofpc-net`) and
/// used by the controller to describe transponder capabilities.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Primitive {
    /// P1 — photonic vector dot product (Fig. 2a).
    VectorDotProduct,
    /// P2 — photonic pattern matching (Fig. 2b).
    PatternMatching,
    /// P3 — photonic nonlinear function (Fig. 2c).
    NonlinearFunction,
}

impl Primitive {
    /// Protocol wire identifier (one byte in the photonic compute header).
    pub fn wire_id(self) -> u8 {
        match self {
            Primitive::VectorDotProduct => 1,
            Primitive::PatternMatching => 2,
            Primitive::NonlinearFunction => 3,
        }
    }

    /// Parse a wire identifier.
    pub fn from_wire_id(id: u8) -> Option<Primitive> {
        match id {
            1 => Some(Primitive::VectorDotProduct),
            2 => Some(Primitive::PatternMatching),
            3 => Some(Primitive::NonlinearFunction),
            _ => None,
        }
    }

    /// All primitives, in wire-ID order.
    pub const ALL: [Primitive; 3] = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Primitive::VectorDotProduct => write!(f, "P1:dot-product"),
            Primitive::PatternMatching => write!(f, "P2:pattern-match"),
            Primitive::NonlinearFunction => write!(f, "P3:nonlinear"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_round_trip() {
        for p in Primitive::ALL {
            assert_eq!(Primitive::from_wire_id(p.wire_id()), Some(p));
        }
        assert_eq!(Primitive::from_wire_id(0), None);
        assert_eq!(Primitive::from_wire_id(42), None);
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Primitive::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names.len(), 3);
    }
}
