//! Ternary pattern matching (match / mismatch / wildcard).
//!
//! The "photonic ternary matching hardware" that Table 1 lists for the IP
//! routing use case: TCAM-style rules with don't-care bits. A wildcard
//! position simply gets *no light* on the pattern arm — the pattern-arm
//! modulator is gated dark for that symbol — so the difference port sees a
//! constant, data-independent power of `P/4` there (only the data arm's
//! half-field arrives). The digital threshold logic subtracts that known
//! per-wildcard offset before deciding.
//!
//! Built on the same physics as [`crate::matcher`], reusing phase
//! encoding and the 3-dB coupler.

use ofpc_photonics::coupler::Coupler;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{
    MachZehnderModulator, MzmConfig, PhaseModulator, PhaseModulatorConfig,
};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

/// One symbol of a ternary pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Tern {
    Zero,
    One,
    /// Don't care.
    Wild,
}

impl Tern {
    pub fn from_char(c: char) -> Option<Tern> {
        match c {
            '0' => Some(Tern::Zero),
            '1' => Some(Tern::One),
            '*' | 'x' | 'X' => Some(Tern::Wild),
            _ => None,
        }
    }
}

/// Parse a ternary pattern string like `"10**01"`.
pub fn parse_pattern(s: &str) -> Option<Vec<Tern>> {
    s.chars().map(Tern::from_char).collect()
}

/// Configuration of a ternary matcher (superset of the P2 matcher: the
/// pattern arm gains an intensity gate for wildcards).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TernaryConfig {
    pub laser: LaserConfig,
    pub pm_data: PhaseModulatorConfig,
    pub pm_pattern: PhaseModulatorConfig,
    /// Intensity gate on the pattern arm (dark = wildcard).
    pub gate: MzmConfig,
    pub pd: PhotodetectorConfig,
    pub sample_rate_hz: f64,
    /// Distance threshold below which the rule matches.
    pub match_threshold: f64,
}

impl TernaryConfig {
    pub fn ideal() -> Self {
        TernaryConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            pm_data: PhaseModulatorConfig::ideal(),
            pm_pattern: PhaseModulatorConfig::ideal(),
            gate: MzmConfig::ideal(),
            pd: PhotodetectorConfig::ideal(),
            sample_rate_hz: 32e9,
            match_threshold: 0.5,
        }
    }
}

/// Result of a ternary match.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TernaryResult {
    /// Estimated mismatches over the non-wildcard positions.
    pub distance_estimate: f64,
    pub matched: bool,
}

/// A photonic ternary matcher.
#[derive(Debug, Clone)]
pub struct TernaryMatcher {
    pub config: TernaryConfig,
    laser: Laser,
    pm_data: PhaseModulator,
    pm_pattern: PhaseModulator,
    gate: MachZehnderModulator,
    coupler: Coupler,
    pd: Photodetector,
    /// Per-mismatch current (calibrated), A.
    unit_current_a: Option<f64>,
    /// Per-wildcard offset current, A.
    wild_current_a: f64,
    /// Matched-floor current per symbol, A.
    floor_current_a: f64,
    pub symbols_matched: u64,
}

impl TernaryMatcher {
    pub fn new(config: TernaryConfig, rng: &mut SimRng) -> Self {
        TernaryMatcher {
            laser: Laser::new(config.laser.clone(), rng.derive("tern-laser")),
            pm_data: PhaseModulator::new(config.pm_data.clone()),
            pm_pattern: PhaseModulator::new(config.pm_pattern.clone()),
            gate: MachZehnderModulator::new(config.gate.clone()),
            coupler: Coupler::three_db(),
            pd: Photodetector::new(config.pd.clone(), rng.derive("tern-pd")),
            config,
            unit_current_a: None,
            wild_current_a: 0.0,
            floor_current_a: 0.0,
            symbols_matched: 0,
        }
    }

    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = TernaryMatcher::new(TernaryConfig::ideal(), &mut rng);
        m.calibrate(64);
        m
    }

    /// Attach a shared amplitude-transmission cache to the wildcard gate
    /// MZM (build with [`ofpc_photonics::tfcache::mzm_amplitude_cache`]
    /// from the same `config.gate`). Attach *before* [`Self::calibrate`]
    /// so calibration and matching see the same quantized curve.
    pub fn set_gate_cache(&mut self, cache: std::sync::Arc<ofpc_par::TransferCache>) {
        self.gate.set_amplitude_cache(cache);
    }

    /// Calibrate the three per-symbol currents: matched floor, mismatch
    /// unit, and wildcard offset.
    pub fn calibrate(&mut self, n: usize) {
        assert!(n > 0, "calibration needs at least one symbol");
        let zeros = vec![false; n];
        let ones = vec![true; n];
        let p_zero = vec![Tern::Zero; n];
        let p_wild = vec![Tern::Wild; n];
        let all_match = self.raw_pass(&zeros, &p_zero);
        let all_mismatch = self.raw_pass(&ones, &p_zero);
        let all_wild = self.raw_pass(&zeros, &p_wild);
        let floor = all_match / n as f64;
        let unit = (all_mismatch - all_match) / n as f64;
        assert!(unit > 0.0, "calibration failed: no mismatch contrast");
        self.unit_current_a = Some(unit);
        self.floor_current_a = floor;
        self.wild_current_a = all_wild / n as f64;
        self.symbols_matched = self.symbols_matched.saturating_sub(3 * n as u64);
    }

    fn raw_pass(&mut self, data: &[bool], pattern: &[Tern]) -> f64 {
        assert_eq!(
            data.len(),
            pattern.len(),
            "data and pattern must match in length"
        );
        assert!(!data.is_empty(), "cannot match empty blocks");
        let n = data.len();
        let light = self.laser.emit(n, self.config.sample_rate_hz);
        let (arm_data, arm_pattern) = self.coupler.split(&light);
        let d_data = AnalogWaveform::new(
            data.iter()
                .map(|&b| {
                    self.pm_data
                        .drive_for_phase(if b { std::f64::consts::PI } else { 0.0 })
                })
                .collect(),
            self.config.sample_rate_hz,
        );
        let d_pattern = AnalogWaveform::new(
            pattern
                .iter()
                .map(|&t| {
                    self.pm_pattern.drive_for_phase(match t {
                        Tern::One => std::f64::consts::PI,
                        _ => 0.0,
                    })
                })
                .collect(),
            self.config.sample_rate_hz,
        );
        // Wildcards gate the pattern arm dark.
        let d_gate = AnalogWaveform::new(
            pattern
                .iter()
                .map(|&t| {
                    self.gate
                        .drive_for_transmission(if t == Tern::Wild { 0.0 } else { 1.0 })
                })
                .collect(),
            self.config.sample_rate_hz,
        );
        let enc_data = self.pm_data.modulate(&arm_data, &d_data);
        let gated = self.gate.modulate(&arm_pattern, &d_gate);
        let mut enc_pattern = self.pm_pattern.modulate(&gated, &d_pattern);
        enc_pattern.rotate_phase(-std::f64::consts::PI);
        let (_sum, diff) = self.coupler.combine(&enc_data, &enc_pattern);
        let current = self.pd.detect(&diff);
        self.symbols_matched += n as u64;
        current.samples.iter().sum()
    }

    /// Match data bits against a ternary pattern.
    pub fn match_block(&mut self, data: &[bool], pattern: &[Tern]) -> TernaryResult {
        let unit = self
            .unit_current_a
            .expect("TernaryMatcher must be calibrated before use; call calibrate()");
        let wilds = pattern.iter().filter(|&&t| t == Tern::Wild).count();
        let cared = data.len() - wilds;
        let charge = self.raw_pass(data, pattern);
        // Subtract the known wildcard offset and the matched floor over
        // the cared positions.
        let corrected =
            charge - wilds as f64 * self.wild_current_a - cared as f64 * self.floor_current_a;
        let est = (corrected / unit).max(0.0);
        TernaryResult {
            distance_estimate: est,
            matched: est < self.config.match_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn parse_pattern_accepts_ternary_alphabet() {
        let p = parse_pattern("10*x").unwrap();
        assert_eq!(p, vec![Tern::One, Tern::Zero, Tern::Wild, Tern::Wild]);
        assert!(parse_pattern("102").is_none());
    }

    #[test]
    fn exact_pattern_matches() {
        let mut m = TernaryMatcher::ideal();
        let data = bits("10110010");
        let pattern = parse_pattern("10110010").unwrap();
        let r = m.match_block(&data, &pattern);
        assert!(r.matched, "estimate {}", r.distance_estimate);
    }

    #[test]
    fn wildcards_ignore_disagreement() {
        let mut m = TernaryMatcher::ideal();
        // Pattern cares only about the first 4 bits.
        let pattern = parse_pattern("1011****").unwrap();
        assert!(m.match_block(&bits("10110000"), &pattern).matched);
        assert!(m.match_block(&bits("10111111"), &pattern).matched);
        assert!(!m.match_block(&bits("00110000"), &pattern).matched);
    }

    #[test]
    fn all_wild_pattern_matches_anything() {
        let mut m = TernaryMatcher::ideal();
        let pattern = parse_pattern("********").unwrap();
        assert!(m.match_block(&bits("10110010"), &pattern).matched);
        assert!(m.match_block(&bits("01001101"), &pattern).matched);
    }

    #[test]
    fn distance_counts_only_cared_positions() {
        let mut m = TernaryMatcher::ideal();
        let pattern = parse_pattern("1111****").unwrap();
        // Two mismatches in the cared half, garbage in the wild half.
        let r = m.match_block(&bits("10101010"), &pattern);
        assert!(
            (r.distance_estimate - 2.0).abs() < 0.1,
            "est {}",
            r.distance_estimate
        );
    }

    #[test]
    fn prefix_match_models_ip_lpm() {
        // A /4 prefix rule on an 8-bit address space — exactly the IP
        // routing use-case shape from Table 1.
        let mut m = TernaryMatcher::ideal();
        let rule_1010 = parse_pattern("1010****").unwrap();
        assert!(m.match_block(&bits("10101111"), &rule_1010).matched);
        assert!(m.match_block(&bits("10100000"), &rule_1010).matched);
        assert!(!m.match_block(&bits("10111111"), &rule_1010).matched);
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut m = TernaryMatcher::new(TernaryConfig::ideal(), &mut rng);
        m.match_block(&[true], &[Tern::One]);
    }

    #[test]
    fn cached_gate_agrees_with_uncached() {
        use ofpc_photonics::tfcache::{mzm_amplitude_cache, MZM_DRIVE_STEP_V};
        // Ideal config: infinite extinction ratio, so the gate curve is
        // smooth at the null and the grid bound holds (see tfcache docs).
        let cfg = TernaryConfig::ideal();
        let mut plain = TernaryMatcher::new(cfg.clone(), &mut SimRng::seed_from_u64(7));
        let mut cached = TernaryMatcher::new(cfg.clone(), &mut SimRng::seed_from_u64(7));
        let cache = mzm_amplitude_cache(&cfg.gate, MZM_DRIVE_STEP_V);
        cached.set_gate_cache(std::sync::Arc::clone(&cache));
        plain.calibrate(16);
        cached.calibrate(16);
        let pattern = parse_pattern("10**11*0").unwrap();
        for data in ["10101100", "10011110", "00110010"] {
            let a = plain.match_block(&bits(data), &pattern);
            let b = cached.match_block(&bits(data), &pattern);
            assert_eq!(a.matched, b.matched, "data {data}");
            assert!(
                (a.distance_estimate - b.distance_estimate).abs() < 0.05,
                "data {data}: plain {} cached {}",
                a.distance_estimate,
                b.distance_estimate
            );
        }
        // The gate sees only the two drive levels (dark / open).
        assert!(cache.len() <= 2, "gate cache holds {} points", cache.len());
        assert!(cache.hits() > 0);
    }
}
