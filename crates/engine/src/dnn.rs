//! Photonic deep neural network inference.
//!
//! Composes P1 (WDM matrix-vector multiply) and P3 (electro-optic
//! activation) into full DNN forward passes — the "all-optical deep
//! neural network inference" the paper's §2.1 points to via
//! Bandyopadhyay et al.'s single-chip photonic DNN.
//!
//! Design notes that mirror real photonic DNN deployments:
//!
//! * Weights are normalized per layer to `[-1, 1]` (the modulator's
//!   encoding range); the per-layer scale is re-applied digitally to the
//!   single integrated readout, which is cheap.
//! * Hidden activations are renormalized to `[0, 1]` between layers using
//!   a per-layer activation scale estimated from calibration inputs —
//!   this is exactly the "trained DNN models ... distributed across
//!   network devices in advance" metadata the paper's §4 mentions. The
//!   scaling is uniform and positive per layer, so argmax classification
//!   is unaffected.
//! * The photonic activation is *not* an exact ReLU; its measured
//!   transfer curve can be fed back into training (see
//!   [`Activation::Measured`]), which is the §4 "new algorithms to ...
//!   achieve high accuracy" knob that experiment E10 ablates.

use crate::mvm::PhotonicMatVec;
use crate::nonlinear::NonlinearUnit;
use ofpc_photonics::SimRng;

/// One fully-connected layer, row-major weights: `weights[out][in]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DenseLayer {
    pub weights: Vec<Vec<f64>>,
    pub bias: Vec<f64>,
}

impl DenseLayer {
    pub fn out_dim(&self) -> usize {
        self.weights.len()
    }

    pub fn in_dim(&self) -> usize {
        self.weights.first().map_or(0, |r| r.len())
    }

    /// Largest absolute weight (for normalization).
    pub fn max_abs_weight(&self) -> f64 {
        self.weights
            .iter()
            .flatten()
            .fold(0.0f64, |m, &w| m.max(w.abs()))
    }
}

/// The activation used in a digital forward pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// Exact ReLU.
    Relu,
    /// A measured photonic transfer curve `(x, f(x))`, interpolated
    /// linearly — used for photonics-aware training.
    Measured(Vec<(f64, f64)>),
}

impl Activation {
    /// Evaluate the activation at `x` (input already normalized to the
    /// unit scale for `Measured`; `Relu` takes raw values).
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Measured(curve) => interp_curve(curve, x),
        }
    }
}

/// Piecewise-linear interpolation of a monotone sample curve; clamps
/// outside the sampled domain.
pub fn interp_curve(curve: &[(f64, f64)], x: f64) -> f64 {
    assert!(curve.len() >= 2, "interpolation needs at least two points");
    if x <= curve[0].0 {
        return curve[0].1;
    }
    if x >= curve[curve.len() - 1].0 {
        return curve[curve.len() - 1].1;
    }
    for w in curve.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if x <= x1 {
            let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
            return y0 + t * (y1 - y0);
        }
    }
    curve[curve.len() - 1].1
}

/// A multi-layer perceptron (weights live in the digital domain; the
/// photonic engine executes them).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    pub layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Random MLP with the given layer sizes (He-style init).
    pub fn new_random(sizes: &[usize], rng: &mut SimRng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs input and output sizes");
        let mut layers = Vec::new();
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let weights = (0..fan_out)
                .map(|_| (0..fan_in).map(|_| rng.normal(0.0, std)).collect())
                .collect();
            let bias = vec![0.0; fan_out];
            layers.push(DenseLayer { weights, bias });
        }
        Mlp { layers }
    }

    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_dim())
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Digital forward pass with the given hidden activation; the output
    /// layer is linear (logits).
    pub fn forward_digital(&self, x: &[f64], activation: &Activation) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut a = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z: Vec<f64> = layer
                .weights
                .iter()
                .zip(&layer.bias)
                .map(|(row, b)| row.iter().zip(&a).map(|(w, v)| w * v).sum::<f64>() + b)
                .collect();
            if li + 1 < self.layers.len() {
                for v in &mut z {
                    *v = activation.eval(*v);
                }
            }
            a = z;
        }
        a
    }

    /// Digital argmax prediction.
    pub fn predict_digital(&self, x: &[f64]) -> usize {
        argmax(&self.forward_digital(x, &Activation::Relu))
    }

    /// Total MACs in one forward pass.
    pub fn macs_per_inference(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.in_dim() * l.out_dim()) as u64)
            .sum()
    }
}

/// Index of the maximum element (first on ties). Panics on empty input.
pub fn argmax(v: &[f64]) -> usize {
    assert!(!v.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

/// A DNN bound to photonic execution units.
#[derive(Debug)]
pub struct PhotonicDnn {
    /// Normalized weights (per-layer max-abs brought to 1).
    mlp: Mlp,
    /// Per-layer weight scales (multiply readouts back up).
    weight_scales: Vec<f64>,
    /// Per-layer activation scales (normalize hidden values to [0,1]).
    act_scales: Vec<f64>,
    engine: PhotonicMatVec,
    activation: NonlinearUnit,
    pub inferences: u64,
}

impl PhotonicDnn {
    /// Bind `mlp` to photonic units, estimating per-layer activation
    /// scales from `calib_inputs` (digital dry runs). The scales travel
    /// with the model, as the paper's §4 prescribes for distributing
    /// trained models to network devices.
    pub fn new(
        mlp: &Mlp,
        engine: PhotonicMatVec,
        activation: NonlinearUnit,
        calib_inputs: &[Vec<f64>],
    ) -> Self {
        assert!(
            !calib_inputs.is_empty(),
            "need calibration inputs to estimate activation scales"
        );
        // Normalize weights per layer.
        let mut norm = mlp.clone();
        let mut weight_scales = Vec::new();
        for layer in &mut norm.layers {
            let s = layer.max_abs_weight().max(f64::MIN_POSITIVE);
            for row in &mut layer.weights {
                for w in row {
                    *w /= s;
                }
            }
            weight_scales.push(s);
        }
        // Estimate activation scales: the max |pre-activation| observed
        // per hidden layer over the calibration set (digital dry run on
        // the *original* network).
        let mut act_scales = vec![1.0f64; mlp.layers.len().saturating_sub(1)];
        for x in calib_inputs {
            let mut a = x.clone();
            for (li, layer) in mlp.layers.iter().enumerate() {
                let z: Vec<f64> = layer
                    .weights
                    .iter()
                    .zip(&layer.bias)
                    .map(|(row, b)| row.iter().zip(&a).map(|(w, v)| w * v).sum::<f64>() + b)
                    .collect();
                if li < act_scales.len() {
                    let peak = z.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                    act_scales[li] = act_scales[li].max(peak);
                    a = z.iter().map(|&v| v.max(0.0)).collect();
                } else {
                    a = z;
                }
            }
        }
        PhotonicDnn {
            mlp: norm,
            weight_scales,
            act_scales,
            engine,
            activation,
            inferences: 0,
        }
    }

    /// Like [`PhotonicDnn::new`], but with caller-supplied activation
    /// scales (one per hidden layer) instead of calibration-set
    /// estimation. Photonics-aware training (E10) uses this so inference
    /// runs with *exactly* the scales the network was trained under.
    pub fn with_act_scales(
        mlp: &Mlp,
        engine: PhotonicMatVec,
        activation: NonlinearUnit,
        act_scales: Vec<f64>,
    ) -> Self {
        assert_eq!(
            act_scales.len(),
            mlp.layers.len().saturating_sub(1),
            "need one activation scale per hidden layer"
        );
        let mut norm = mlp.clone();
        let mut weight_scales = Vec::new();
        for layer in &mut norm.layers {
            let s = layer.max_abs_weight().max(f64::MIN_POSITIVE);
            for row in &mut layer.weights {
                for w in row {
                    *w /= s;
                }
            }
            weight_scales.push(s);
        }
        PhotonicDnn {
            mlp: norm,
            weight_scales,
            act_scales,
            engine,
            activation,
            inferences: 0,
        }
    }

    /// Photonic forward pass. Hidden activations are computed by the P3
    /// unit on `[0,1]`-normalized values; the final layer returns logits
    /// (scaled by the product of layer scales, which preserves argmax).
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mlp.input_dim(), "input dimension mismatch");
        let mut a: Vec<f64> = x.iter().map(|&v| v.clamp(0.0, 1.0)).collect();
        let n_layers = self.mlp.layers.len();
        for li in 0..n_layers {
            let layer = &self.mlp.layers[li];
            let w_scale = self.weight_scales[li];
            // Photonic matvec on normalized weights; rescale the readout
            // and add the bias digitally (one scalar op per neuron).
            let weights = layer.weights.clone();
            let bias = layer.bias.clone();
            let raw = self.engine.mat_vec_signed(&weights, &a);
            let z: Vec<f64> = raw
                .iter()
                .zip(&bias)
                .map(|(v, b)| v * w_scale + b)
                .collect();
            if li + 1 < n_layers {
                let s = self.act_scales[li].max(f64::MIN_POSITIVE);
                a = z
                    .iter()
                    .map(|&v| self.activation.activate((v / s).clamp(0.0, 1.0)))
                    .collect();
            } else {
                a = z;
            }
        }
        self.inferences += 1;
        a
    }

    /// Photonic argmax prediction.
    pub fn predict(&mut self, x: &[f64]) -> usize {
        argmax(&self.forward(x))
    }

    /// The per-layer activation scales estimated at construction.
    pub fn act_scales(&self) -> &[f64] {
        &self.act_scales
    }

    /// Exact digital replica of the photonic pipeline using a measured
    /// activation transfer `curve` in place of the analog P3 unit. This
    /// is the reference for validating photonic execution and the forward
    /// function for photonics-aware training (experiment E10).
    pub fn digital_twin_forward(&self, x: &[f64], curve: &[(f64, f64)]) -> Vec<f64> {
        assert_eq!(x.len(), self.mlp.input_dim(), "input dimension mismatch");
        let mut a: Vec<f64> = x.iter().map(|&v| v.clamp(0.0, 1.0)).collect();
        let n_layers = self.mlp.layers.len();
        for li in 0..n_layers {
            let layer = &self.mlp.layers[li];
            let w_scale = self.weight_scales[li];
            let z: Vec<f64> = layer
                .weights
                .iter()
                .zip(&layer.bias)
                .map(|(row, b)| row.iter().zip(&a).map(|(w, v)| w * v).sum::<f64>() * w_scale + b)
                .collect();
            if li + 1 < n_layers {
                let s = self.act_scales[li].max(f64::MIN_POSITIVE);
                a = z
                    .iter()
                    .map(|&v| interp_curve(curve, (v / s).clamp(0.0, 1.0)))
                    .collect();
            } else {
                a = z;
            }
        }
        a
    }

    /// Wall-clock latency of one inference, seconds.
    pub fn latency_s(&self) -> f64 {
        let mut total = 0.0;
        for (li, layer) in self.mlp.layers.iter().enumerate() {
            // Signed dot products take 4 passes.
            total += 4.0 * self.engine.latency_s(layer.out_dim(), layer.in_dim());
            if li + 1 < self.mlp.layers.len() {
                total += layer.out_dim() as f64 * self.activation.latency_s();
            }
        }
        total
    }

    /// Total energy spent so far across engine and activation.
    pub fn energy_ledger(&self) -> ofpc_photonics::energy::EnergyLedger {
        let mut ledger = self.engine.energy_ledger();
        ledger.merge(&self.activation.energy_ledger());
        ledger
    }

    pub fn macs_performed(&self) -> u64 {
        self.engine.macs_performed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mlp(rng: &mut SimRng) -> Mlp {
        Mlp::new_random(&[4, 6, 3], rng)
    }

    #[test]
    fn digital_forward_shapes() {
        let mut rng = SimRng::seed_from_u64(1);
        let mlp = tiny_mlp(&mut rng);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.macs_per_inference(), 4 * 6 + 6 * 3);
        let y = mlp.forward_digital(&[0.1, 0.2, 0.3, 0.4], &Activation::Relu);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn argmax_semantics() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_rejects_empty() {
        argmax(&[]);
    }

    #[test]
    fn interp_curve_endpoints_and_midpoints() {
        let curve = vec![(0.0, 0.0), (0.5, 0.2), (1.0, 1.0)];
        assert_eq!(interp_curve(&curve, -1.0), 0.0);
        assert_eq!(interp_curve(&curve, 2.0), 1.0);
        assert!((interp_curve(&curve, 0.25) - 0.1).abs() < 1e-12);
        assert!((interp_curve(&curve, 0.75) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn measured_activation_uses_curve() {
        let curve = vec![(0.0, 0.0), (1.0, 0.5)];
        let act = Activation::Measured(curve);
        assert!((act.eval(0.5) - 0.25).abs() < 1e-12);
        assert_eq!(Activation::Relu.eval(-1.0), 0.0);
        assert_eq!(Activation::Relu.eval(2.0), 2.0);
    }

    fn build_photonic(mlp: &Mlp, calib: &[Vec<f64>]) -> PhotonicDnn {
        let engine = PhotonicMatVec::ideal(4);
        let act = NonlinearUnit::ideal();
        PhotonicDnn::new(mlp, engine, act, calib)
    }

    #[test]
    fn photonic_forward_produces_logits() {
        let mut rng = SimRng::seed_from_u64(2);
        let mlp = tiny_mlp(&mut rng);
        let calib: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let mut pdnn = build_photonic(&mlp, &calib);
        let y = pdnn.forward(&[0.3, 0.6, 0.1, 0.9]);
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| v.is_finite()));
        assert_eq!(pdnn.inferences, 1);
    }

    #[test]
    fn photonic_execution_agrees_with_its_digital_twin() {
        // The photonic forward pass must track the digital replica that
        // uses the *measured* activation curve — that twin is the
        // reference for photonics-aware training (E10). Residual error
        // comes only from quantization and analog readout.
        let mut rng = SimRng::seed_from_u64(3);
        let mlp = tiny_mlp(&mut rng);
        let calib: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let mut pdnn = build_photonic(&mlp, &calib);
        let curve = NonlinearUnit::ideal().transfer_curve(64);
        let mut confident = 0;
        for _ in 0..30 {
            let x: Vec<f64> = (0..4).map(|_| rng.uniform()).collect();
            let twin = pdnn.digital_twin_forward(&x, &curve);
            let phot = pdnn.forward(&x);
            // Logit-level tracking within the analog readout floor.
            for (t, p) in twin.iter().zip(&phot) {
                assert!((t - p).abs() < 0.01, "twin {twin:?} phot {phot:?}");
            }
            // Argmax must agree whenever the margin clears the floor.
            let mut sorted = twin.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            if sorted[0] - sorted[1] > 0.02 {
                confident += 1;
                assert_eq!(argmax(&phot), argmax(&twin));
            }
        }
        assert!(confident >= 3, "only {confident} confident samples");
    }

    #[test]
    fn latency_and_energy_are_positive() {
        let mut rng = SimRng::seed_from_u64(4);
        let mlp = tiny_mlp(&mut rng);
        let calib = vec![vec![0.5; 4]];
        let mut pdnn = build_photonic(&mlp, &calib);
        pdnn.forward(&[0.5; 4]);
        assert!(pdnn.latency_s() > 0.0);
        assert!(pdnn.macs_performed() > 0);
    }

    #[test]
    fn weight_normalization_preserves_digital_argmax() {
        // Scaling weights per layer and rescaling readouts is exact in
        // the digital domain; verify via a hand-built network.
        let mlp = Mlp {
            layers: vec![
                DenseLayer {
                    weights: vec![vec![2.0, -4.0], vec![1.0, 3.0]],
                    bias: vec![0.1, -0.2],
                },
                DenseLayer {
                    weights: vec![vec![0.5, 1.5], vec![-2.5, 0.5]],
                    bias: vec![0.0, 0.0],
                },
            ],
        };
        let x = vec![0.8, 0.3];
        let digital = mlp.predict_digital(&x);
        let engine = PhotonicMatVec::ideal(2);
        let act = NonlinearUnit::ideal();
        let mut pdnn = PhotonicDnn::new(&mlp, engine, act, std::slice::from_ref(&x));
        assert_eq!(pdnn.predict(&x), digital);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_input_size() {
        let mut rng = SimRng::seed_from_u64(5);
        let mlp = tiny_mlp(&mut rng);
        mlp.forward_digital(&[0.0; 3], &Activation::Relu);
    }

    #[test]
    #[should_panic(expected = "calibration inputs")]
    fn rejects_empty_calibration_set() {
        let mut rng = SimRng::seed_from_u64(6);
        let mlp = tiny_mlp(&mut rng);
        let engine = PhotonicMatVec::ideal(1);
        let act = NonlinearUnit::ideal();
        PhotonicDnn::new(&mlp, engine, act, &[]);
    }
}
