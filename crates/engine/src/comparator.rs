//! Photonic comparator — balanced photodetection.
//!
//! Table 1's load-balancing use case needs "photonic comparator hardware":
//! deciding which of two analog quantities is larger without digitizing
//! either. The classic optical realization is a *balanced photodetector*:
//! the two intensity-encoded values illuminate two matched photodiodes
//! wired back-to-back, so the output current is `R·(P_a − P_b)` and its
//! **sign** is the comparison result. No ADC is needed for the decision —
//! a single comparator latch reads the sign.

use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

/// Configuration of a photonic comparator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ComparatorConfig {
    pub laser: LaserConfig,
    pub mzm_a: MzmConfig,
    pub mzm_b: MzmConfig,
    pub pd_a: PhotodetectorConfig,
    pub pd_b: PhotodetectorConfig,
    pub sample_rate_hz: f64,
    /// Number of symbol slots integrated per comparison (longer = less
    /// noise, more latency).
    pub integration_symbols: usize,
    /// Dead zone: |difference| below this fraction of full scale reports
    /// [`Comparison::TooClose`] instead of a possibly-noisy sign.
    pub dead_zone: f64,
}

impl ComparatorConfig {
    pub fn ideal() -> Self {
        ComparatorConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            mzm_a: MzmConfig::ideal(),
            mzm_b: MzmConfig::ideal(),
            pd_a: PhotodetectorConfig::ideal(),
            pd_b: PhotodetectorConfig::ideal(),
            sample_rate_hz: 32e9,
            integration_symbols: 4,
            dead_zone: 0.0,
        }
    }

    pub fn realistic() -> Self {
        ComparatorConfig {
            laser: LaserConfig::default(),
            mzm_a: MzmConfig::default(),
            mzm_b: MzmConfig::default(),
            pd_a: PhotodetectorConfig::default(),
            pd_b: PhotodetectorConfig::default(),
            sample_rate_hz: 32e9,
            integration_symbols: 8,
            dead_zone: 0.02,
        }
    }
}

/// Outcome of a photonic comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Comparison {
    /// `a > b` with margin.
    AGreater,
    /// `b > a` with margin.
    BGreater,
    /// The difference fell inside the dead zone.
    TooClose,
}

/// A balanced-photodetector comparator.
#[derive(Debug, Clone)]
pub struct PhotonicComparator {
    pub config: ComparatorConfig,
    laser: Laser,
    mzm_a: MachZehnderModulator,
    mzm_b: MachZehnderModulator,
    pd_a: Photodetector,
    pd_b: Photodetector,
    pub comparisons: u64,
}

impl PhotonicComparator {
    pub fn new(config: ComparatorConfig, rng: &mut SimRng) -> Self {
        PhotonicComparator {
            laser: Laser::new(config.laser.clone(), rng.derive("cmp-laser")),
            mzm_a: MachZehnderModulator::new(config.mzm_a.clone()),
            mzm_b: MachZehnderModulator::new(config.mzm_b.clone()),
            pd_a: Photodetector::new(config.pd_a.clone(), rng.derive("cmp-pd-a")),
            pd_b: Photodetector::new(config.pd_b.clone(), rng.derive("cmp-pd-b")),
            config,
            comparisons: 0,
        }
    }

    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        PhotonicComparator::new(ComparatorConfig::ideal(), &mut rng)
    }

    /// Compare two values in `[0, 1]` by balanced detection.
    pub fn compare(&mut self, a: f64, b: f64) -> Comparison {
        let n = self.config.integration_symbols.max(1);
        let light = self.laser.emit(2 * n, self.config.sample_rate_hz);
        let half_a = ofpc_photonics::coupler::split_n(&light, 2);
        let (arm_a, arm_b) = (half_a[0].clone(), half_a[1].clone());
        let drive_a = AnalogWaveform::new(
            vec![self.mzm_a.drive_for_transmission(a.clamp(0.0, 1.0)); 2 * n],
            self.config.sample_rate_hz,
        );
        let drive_b = AnalogWaveform::new(
            vec![self.mzm_b.drive_for_transmission(b.clamp(0.0, 1.0)); 2 * n],
            self.config.sample_rate_hz,
        );
        let lit_a = self.mzm_a.modulate(&arm_a, &drive_a);
        let lit_b = self.mzm_b.modulate(&arm_b, &drive_b);
        let i_a: f64 = self.pd_a.detect(&lit_a).samples.iter().sum::<f64>();
        let i_b: f64 = self.pd_b.detect(&lit_b).samples.iter().sum::<f64>();
        self.comparisons += 1;
        // Differential current, normalized to the full-scale per-arm
        // current so the dead zone is unit-independent.
        let full_scale =
            self.laser.power_w() / 2.0 * self.pd_a.config.responsivity_a_w * 2.0 * n as f64;
        let diff = (i_a - i_b) / full_scale.max(f64::MIN_POSITIVE);
        if diff.abs() < self.config.dead_zone {
            Comparison::TooClose
        } else if diff > 0.0 {
            Comparison::AGreater
        } else {
            Comparison::BGreater
        }
    }

    /// Find the index of the maximum of `values` by a single-elimination
    /// tournament of pairwise comparisons (ties broken toward the lower
    /// index). This is the photonic "argmin queue-depth" kernel of the
    /// load-balancing use case.
    pub fn argmax(&mut self, values: &[f64]) -> usize {
        assert!(!values.is_empty(), "argmax of empty slice");
        let mut best = 0;
        for i in 1..values.len() {
            if self.compare(values[i], values[best]) == Comparison::AGreater {
                best = i;
            }
        }
        best
    }

    /// Latency of one comparison, seconds.
    pub fn latency_s(&self) -> f64 {
        self.config.integration_symbols as f64 * 2.0 / self.config.sample_rate_hz + 1e-9
    }

    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        let secs = self.comparisons as f64 * 2.0 * self.config.integration_symbols as f64
            / self.config.sample_rate_hz;
        ledger.add("laser", self.laser.config.wall_plug_w * secs);
        ledger.add("mzm-a", self.mzm_a.energy_consumed_j());
        ledger.add("mzm-b", self.mzm_b.energy_consumed_j());
        ledger.add("pd-a", self.pd_a.energy_consumed_j());
        ledger.add("pd-b", self.pd_b.energy_consumed_j());
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_differences_are_decided() {
        let mut c = PhotonicComparator::ideal();
        assert_eq!(c.compare(0.9, 0.1), Comparison::AGreater);
        assert_eq!(c.compare(0.1, 0.9), Comparison::BGreater);
    }

    #[test]
    fn equal_values_with_dead_zone_are_too_close() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut cfg = ComparatorConfig::ideal();
        cfg.dead_zone = 0.01;
        let mut c = PhotonicComparator::new(cfg, &mut rng);
        assert_eq!(c.compare(0.5, 0.5), Comparison::TooClose);
    }

    #[test]
    fn small_differences_resolve_without_dead_zone() {
        let mut c = PhotonicComparator::ideal();
        assert_eq!(c.compare(0.51, 0.50), Comparison::AGreater);
    }

    #[test]
    fn noisy_comparator_resolves_clear_margins() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut c = PhotonicComparator::new(ComparatorConfig::realistic(), &mut rng);
        let mut correct = 0;
        let trials = 100;
        for i in 0..trials {
            let (a, b) = if i % 2 == 0 { (0.8, 0.3) } else { (0.2, 0.7) };
            let want = if a > b {
                Comparison::AGreater
            } else {
                Comparison::BGreater
            };
            if c.compare(a, b) == want {
                correct += 1;
            }
        }
        assert!(correct >= 98, "only {correct}/{trials} correct");
    }

    #[test]
    fn argmax_finds_the_maximum() {
        let mut c = PhotonicComparator::ideal();
        let values = [0.2, 0.9, 0.4, 0.7, 0.1];
        assert_eq!(c.argmax(&values), 1);
        assert_eq!(c.argmax(&[0.5]), 0);
    }

    #[test]
    fn argmax_prefers_lower_index_on_ties() {
        let mut c = PhotonicComparator::ideal();
        assert_eq!(c.argmax(&[0.5, 0.5, 0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_rejects_empty() {
        PhotonicComparator::ideal().argmax(&[]);
    }

    #[test]
    fn comparison_count_and_energy() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut c = PhotonicComparator::new(ComparatorConfig::realistic(), &mut rng);
        c.compare(0.1, 0.9);
        c.compare(0.9, 0.1);
        assert_eq!(c.comparisons, 2);
        assert!(c.energy_ledger().total_j() > 0.0);
        assert!(c.latency_s() > 0.0);
    }
}
