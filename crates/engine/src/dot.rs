//! P1 — photonic vector dot product (Fig. 2a).
//!
//! The time-multiplexed architecture of Feldmann/Sludds-style photonic
//! MACs: element `i` of each vector occupies one symbol slot. A DAC turns
//! the digital value into a drive voltage, the first MZM encodes `aᵢ` as
//! optical transmission, the second MZM (driven by `bᵢ`) multiplies, and
//! the photodetector's integrated charge over the block is `Σ aᵢ·bᵢ` up to
//! a calibration constant. One ADC read converts the integrated result
//! back to digital.
//!
//! Values are physically non-negative (intensity encoding); signed
//! arithmetic decomposes into four non-negative passes
//! (`a⁺b⁺ + a⁻b⁻ − a⁺b⁻ − a⁻b⁺`), exactly as time-multiplexed photonic
//! accelerators do it.
//!
//! The unit supports an **on-fiber mode** (the paper's key delta over
//! Lightning-style accelerators): when the `a` operand is already optical
//! — it arrived on the fiber — the unit skips the per-element DAC for `a`,
//! which is where the §2.2 "no constant conversions" energy saving comes
//! from. Experiment E3 measures it via the [`EnergyLedger`].

use crate::calibration::DotCalibration;
use ofpc_photonics::converter::{Adc, ConverterConfig, Dac};
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

/// Where the `a` operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OperandSource {
    /// `a` is digital and must be DAC-converted (conventional photonic
    /// accelerator, e.g. Lightning).
    Digital,
    /// `a` is already optical — it arrived on the fiber through the
    /// transponder's receive path, so no DAC conversion is charged
    /// (on-fiber photonic computing).
    OnFiber,
}

/// Configuration of a P1 dot-product unit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DotUnitConfig {
    pub laser: LaserConfig,
    pub mzm_a: MzmConfig,
    pub mzm_b: MzmConfig,
    pub pd: PhotodetectorConfig,
    /// DAC used per vector element (weights always; data unless on-fiber).
    pub dac: ConverterConfig,
    /// ADC used once per dot-product readout.
    pub adc: ConverterConfig,
    /// Symbol rate: vector elements per second through the unit.
    pub sample_rate_hz: f64,
    /// Source of the `a` operand (see [`OperandSource`]).
    pub source: OperandSource,
}

impl DotUnitConfig {
    /// Ideal devices everywhere — algebra validation.
    pub fn ideal() -> Self {
        DotUnitConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            mzm_a: MzmConfig::ideal(),
            mzm_b: MzmConfig::ideal(),
            pd: PhotodetectorConfig::ideal(),
            dac: ConverterConfig::ideal(12),
            adc: ConverterConfig::ideal(12),
            sample_rate_hz: 32e9,
            source: OperandSource::OnFiber,
        }
    }

    /// Realistic defaults: lossy modulators, noisy receiver, 8-bit
    /// converters at transponder symbol rate.
    pub fn realistic() -> Self {
        DotUnitConfig {
            laser: LaserConfig::default(),
            mzm_a: MzmConfig::default(),
            mzm_b: MzmConfig::default(),
            pd: PhotodetectorConfig::default(),
            dac: ConverterConfig::default(),
            adc: ConverterConfig {
                energy_per_sample_j: ofpc_photonics::energy::constants::ADC_SAMPLE_J,
                ..ConverterConfig::default()
            },
            sample_rate_hz: 32e9,
            source: OperandSource::OnFiber,
        }
    }
}

/// A P1 photonic dot-product unit.
#[derive(Debug, Clone)]
pub struct DotProductUnit {
    pub config: DotUnitConfig,
    laser: Laser,
    mzm_a: MachZehnderModulator,
    mzm_b: MachZehnderModulator,
    pd: Photodetector,
    dac: Dac,
    adc: Adc,
    calibration: Option<DotCalibration>,
    /// Total scalar multiply-accumulates performed.
    pub macs_performed: u64,
    /// Dot products (readouts) performed.
    pub readouts: u64,
}

impl DotProductUnit {
    pub fn new(config: DotUnitConfig, rng: &mut SimRng) -> Self {
        DotProductUnit {
            laser: Laser::new(config.laser.clone(), rng.derive("p1-laser")),
            mzm_a: MachZehnderModulator::new(config.mzm_a.clone()),
            mzm_b: MachZehnderModulator::new(config.mzm_b.clone()),
            pd: Photodetector::new(config.pd.clone(), rng.derive("p1-pd")),
            dac: Dac::new(config.dac.clone(), rng.derive("p1-dac")),
            adc: Adc::new(config.adc.clone(), rng.derive("p1-adc")),
            config,
            calibration: None,
            macs_performed: 0,
            readouts: 0,
        }
    }

    /// Convenience: ideal unit with a fixed seed.
    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut unit = DotProductUnit::new(DotUnitConfig::ideal(), &mut rng);
        unit.calibrate(64);
        unit
    }

    /// Whether the unit has been calibrated.
    pub fn is_calibrated(&self) -> bool {
        self.calibration.is_some()
    }

    /// Attach shared amplitude-transmission caches to the two MZMs
    /// (built from this unit's `mzm_a`/`mzm_b` configs, e.g. via
    /// [`ofpc_photonics::tfcache::mzm_amplitude_cache`]). Attach *before*
    /// [`DotProductUnit::calibrate`] so calibration and compute see the
    /// same quantized curve.
    pub fn set_mzm_caches(
        &mut self,
        a: std::sync::Arc<ofpc_par::TransferCache>,
        b: std::sync::Arc<ofpc_par::TransferCache>,
    ) {
        self.mzm_a.set_amplitude_cache(a);
        self.mzm_b.set_amplitude_cache(b);
    }

    /// Run the calibration procedure: measure the photocurrent for a
    /// unit-product vector (all ones) and for a dark vector, storing the
    /// gain and offset that map integrated charge back to value. This is
    /// the §4 "algorithm to mitigate photonic noise" in its simplest
    /// load-bearing form — without it, device insertion losses bias every
    /// result (experiment E10 ablates it).
    pub fn calibrate(&mut self, n: usize) {
        assert!(n > 0, "calibration needs at least one symbol");
        let ones = self.raw_pass(&vec![1.0; n], &vec![1.0; n]);
        let zeros = self.raw_pass(&vec![0.0; n], &vec![0.0; n]);
        let unit = ones / n as f64;
        let dark = zeros / n as f64;
        self.calibration = Some(DotCalibration {
            unit_current_a: unit - dark,
            dark_current_a: dark,
        });
        // Calibration traffic shouldn't count as useful MACs.
        self.macs_performed = self.macs_performed.saturating_sub(2 * n as u64);
        self.readouts = self.readouts.saturating_sub(2);
    }

    /// Inject an explicit calibration (e.g. a stale or wrong one, for the
    /// ablation experiments).
    pub fn set_calibration(&mut self, cal: DotCalibration) {
        self.calibration = Some(cal);
    }

    pub fn calibration(&self) -> Option<&DotCalibration> {
        self.calibration.as_ref()
    }

    /// One physical pass: quantize, modulate, detect, integrate.
    /// Returns the *summed photocurrent* over the block (amps·samples).
    fn raw_pass(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot-product operands must match in length"
        );
        assert!(!a.is_empty(), "dot product of empty vectors");
        let n = a.len();
        // Quantize operands through the DAC code space. In on-fiber mode
        // the `a` operand is already analog/optical: it skips quantization
        // and DAC energy (the paper's conversion-saving claim).
        let a_vals: Vec<f64> = match self.config.source {
            OperandSource::Digital => a
                .iter()
                .map(|&x| {
                    let code = self.dac.encode_unit(x);
                    self.adc.decode_unit(code) // code → value grid
                })
                .collect(),
            OperandSource::OnFiber => a.to_vec(),
        };
        if self.config.source == OperandSource::Digital {
            // Account DAC energy for the data operand.
            let codes: Vec<u64> = a.iter().map(|&x| self.dac.encode_unit(x)).collect();
            let _ = self.dac.convert(&codes, self.config.sample_rate_hz);
        }
        // Weights are always digital → always DAC-converted.
        let b_codes: Vec<u64> = b.iter().map(|&x| self.dac.encode_unit(x)).collect();
        let _ = self.dac.convert(&b_codes, self.config.sample_rate_hz);
        let b_vals: Vec<f64> = b_codes.iter().map(|&c| self.adc.decode_unit(c)).collect();

        let light = self.laser.emit(n, self.config.sample_rate_hz);
        // Each value is encoded as the MZM's *power* transmission, so the
        // cascade of the two modulators' power transmissions is aᵢ·bᵢ.
        let drive_a = AnalogWaveform::new(
            a_vals
                .iter()
                .map(|&v| self.mzm_a.drive_for_transmission(v.clamp(0.0, 1.0)))
                .collect(),
            self.config.sample_rate_hz,
        );
        let drive_b = AnalogWaveform::new(
            b_vals
                .iter()
                .map(|&v| self.mzm_b.drive_for_transmission(v.clamp(0.0, 1.0)))
                .collect(),
            self.config.sample_rate_hz,
        );
        let stage1 = self.mzm_a.modulate(&light, &drive_a);
        let stage2 = self.mzm_b.modulate(&stage1, &drive_b);
        let current = self.pd.detect(&stage2);
        self.macs_performed += n as u64;
        self.readouts += 1;
        current.samples.iter().sum()
    }

    /// Dot product of non-negative vectors with elements in `[0, 1]`.
    /// Requires prior calibration.
    pub fn dot_nonneg(&mut self, a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let cal = *self
            .calibration
            .as_ref()
            .expect("DotProductUnit must be calibrated before use; call calibrate()");
        let charge = self.raw_pass(a, b);
        let raw = (charge - n as f64 * cal.dark_current_a) / cal.unit_current_a;
        // Single ADC readout of the normalized integrator output.
        let normalized = (raw / n as f64).clamp(0.0, 1.0);
        let wave = AnalogWaveform::new(
            vec![normalized * self.adc.config.full_scale_v],
            self.config.sample_rate_hz,
        );
        let code = self.adc.convert(&wave)[0];
        self.adc.decode_unit(code) * n as f64
    }

    /// Signed dot product with elements in `[-1, 1]`, via the standard
    /// four-pass positive/negative decomposition.
    pub fn dot_signed(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot-product operands must match in length"
        );
        let pos = |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| x.clamp(0.0, 1.0)).collect() };
        let neg = |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| (-x).clamp(0.0, 1.0)).collect() };
        let (ap, an) = (pos(a), neg(a));
        let (bp, bn) = (pos(b), neg(b));
        self.dot_nonneg(&ap, &bp) + self.dot_nonneg(&an, &bn)
            - self.dot_nonneg(&ap, &bn)
            - self.dot_nonneg(&an, &bp)
    }

    /// Latency of one n-element dot product, seconds: the block occupies
    /// `n` symbol slots plus a fixed analog front-end latency (~1 ns for
    /// modulator + detector + readout).
    pub fn latency_s(&self, n: usize) -> f64 {
        n as f64 / self.config.sample_rate_hz + 1e-9
    }

    /// Energy ledger over everything this unit has done so far.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.add(
            "laser",
            self.laser.config.wall_plug_w * self.seconds_active(),
        );
        ledger.add("mzm-a", self.mzm_a.energy_consumed_j());
        ledger.add("mzm-b", self.mzm_b.energy_consumed_j());
        ledger.add("photodetector", self.pd.energy_consumed_j());
        ledger.add("dac", self.dac.energy_consumed_j());
        ledger.add("adc", self.adc.energy_consumed_j());
        ledger
    }

    /// Seconds of optical signal processed.
    fn seconds_active(&self) -> f64 {
        self.macs_performed as f64 / self.config.sample_rate_hz
    }

    /// Energy per MAC achieved so far, J (total ledger / MACs).
    pub fn energy_per_mac_j(&self) -> f64 {
        if self.macs_performed == 0 {
            return 0.0;
        }
        self.energy_ledger().total_j() / self.macs_performed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn ideal_unit_computes_exact_dot() {
        let mut unit = DotProductUnit::ideal();
        let a = vec![0.5, 0.25, 1.0, 0.0, 0.75];
        let b = vec![1.0, 0.5, 0.5, 1.0, 0.25];
        let got = unit.dot_nonneg(&a, &b);
        let want = exact_dot(&a, &b);
        assert!((got - want).abs() < 0.01, "got {got} want {want}");
    }

    #[test]
    fn signed_dot_product() {
        let mut unit = DotProductUnit::ideal();
        let a = vec![0.5, -0.25, 1.0, -0.5];
        let b = vec![-1.0, 0.5, 0.5, 1.0];
        let got = unit.dot_signed(&a, &b);
        let want = exact_dot(&a, &b);
        assert!((got - want).abs() < 0.02, "got {got} want {want}");
    }

    #[test]
    fn calibration_corrects_insertion_loss() {
        // Lossy modulators scale the light by ~-7 dB; an uncalibrated
        // nominal gain would be off by that factor, calibration fixes it.
        let mut rng = SimRng::seed_from_u64(1);
        let mut cfg = DotUnitConfig::ideal();
        cfg.mzm_a.insertion_loss_db = 3.5;
        cfg.mzm_b.insertion_loss_db = 3.5;
        let mut unit = DotProductUnit::new(cfg, &mut rng);
        unit.calibrate(64);
        let a = vec![0.8, 0.4];
        let b = vec![0.5, 0.5];
        let got = unit.dot_nonneg(&a, &b);
        assert!((got - 0.6).abs() < 0.01, "got {got}");
    }

    #[test]
    fn uncalibrated_lossy_unit_is_biased() {
        // The E10 ablation in miniature: inject the "nominal" calibration
        // that ignores insertion loss and watch the bias appear.
        let mut rng = SimRng::seed_from_u64(2);
        let mut cfg = DotUnitConfig::ideal();
        cfg.mzm_a.insertion_loss_db = 3.5;
        cfg.mzm_b.insertion_loss_db = 3.5;
        let p0 = ofpc_photonics::units::dbm_to_watts(cfg.laser.power_dbm);
        let mut unit = DotProductUnit::new(cfg, &mut rng);
        unit.set_calibration(DotCalibration {
            unit_current_a: p0, // nominal R·P0, ignoring 7 dB of loss
            dark_current_a: 0.0,
        });
        let got = unit.dot_nonneg(&[1.0], &[1.0]);
        assert!(
            got < 0.5,
            "uncalibrated result should be badly low, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_unit_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut unit = DotProductUnit::new(DotUnitConfig::ideal(), &mut rng);
        unit.dot_nonneg(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut unit = DotProductUnit::ideal();
        unit.dot_nonneg(&[1.0, 0.5], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vectors_panic() {
        let mut unit = DotProductUnit::ideal();
        unit.dot_nonneg(&[], &[]);
    }

    #[test]
    fn noisy_unit_is_approximately_right() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        unit.calibrate(256);
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (n - i) as f64 / n as f64).collect();
        let want = exact_dot(&a, &b);
        let got = unit.dot_nonneg(&a, &b);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.1, "relative error {rel} (got {got}, want {want})");
    }

    #[test]
    fn on_fiber_mode_skips_data_dac_energy() {
        let mut rng1 = SimRng::seed_from_u64(4);
        let mut rng2 = SimRng::seed_from_u64(4);
        let mut cfg_fiber = DotUnitConfig::realistic();
        cfg_fiber.source = OperandSource::OnFiber;
        let mut cfg_digital = cfg_fiber.clone();
        cfg_digital.source = OperandSource::Digital;

        let mut on_fiber = DotProductUnit::new(cfg_fiber, &mut rng1);
        let mut digital = DotProductUnit::new(cfg_digital, &mut rng2);
        on_fiber.calibrate(64);
        digital.calibrate(64);
        let a = vec![0.5; 128];
        let b = vec![0.5; 128];
        on_fiber.dot_nonneg(&a, &b);
        digital.dot_nonneg(&a, &b);
        let e_fiber = on_fiber.energy_ledger().get("dac");
        let e_digital = digital.energy_ledger().get("dac");
        assert!(
            e_digital > 1.5 * e_fiber,
            "digital DAC energy {e_digital} should dwarf on-fiber {e_fiber}"
        );
    }

    #[test]
    fn energy_per_mac_is_reported() {
        let mut unit = DotProductUnit::ideal();
        let _ = unit.dot_nonneg(&[0.5; 32], &[0.5; 32]);
        // Ideal config has zero device energies.
        assert_eq!(unit.energy_per_mac_j(), 0.0);
        assert_eq!(unit.macs_performed, 32);

        let mut rng = SimRng::seed_from_u64(5);
        let mut real = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        real.calibrate(64);
        let _ = real.dot_nonneg(&[0.5; 32], &[0.5; 32]);
        assert!(real.energy_per_mac_j() > 0.0);
    }

    #[test]
    fn latency_scales_with_vector_length() {
        let unit = DotProductUnit::ideal();
        let l64 = unit.latency_s(64);
        let l128 = unit.latency_s(128);
        assert!(l128 > l64);
        // 64 symbols at 32 GHz = 2 ns, plus 1 ns front end.
        assert!((l64 - 3e-9).abs() < 1e-10, "latency {l64}");
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let run = || {
            let mut rng = SimRng::seed_from_u64(7);
            let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
            unit.calibrate(64);
            unit.dot_nonneg(&[0.3; 40], &[0.7; 40])
        };
        assert_eq!(run(), run());
    }
}
