//! P1 — photonic vector dot product (Fig. 2a).
//!
//! The time-multiplexed architecture of Feldmann/Sludds-style photonic
//! MACs: element `i` of each vector occupies one symbol slot. A DAC turns
//! the digital value into a drive voltage, the first MZM encodes `aᵢ` as
//! optical transmission, the second MZM (driven by `bᵢ`) multiplies, and
//! the photodetector's integrated charge over the block is `Σ aᵢ·bᵢ` up to
//! a calibration constant. One ADC read converts the integrated result
//! back to digital.
//!
//! Values are physically non-negative (intensity encoding); signed
//! arithmetic decomposes into four non-negative passes
//! (`a⁺b⁺ + a⁻b⁻ − a⁺b⁻ − a⁻b⁺`), exactly as time-multiplexed photonic
//! accelerators do it.
//!
//! The unit supports an **on-fiber mode** (the paper's key delta over
//! Lightning-style accelerators): when the `a` operand is already optical
//! — it arrived on the fiber — the unit skips the per-element DAC for `a`,
//! which is where the §2.2 "no constant conversions" energy saving comes
//! from. Experiment E3 measures it via the [`EnergyLedger`].

use crate::calibration::DotCalibration;
use ofpc_photonics::converter::{Adc, ConverterConfig, Dac};
use ofpc_photonics::energy::EnergyLedger;
use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::photodetector::{Photodetector, PhotodetectorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;

pub use ofpc_photonics::simd::KernelBackend;

/// Where the `a` operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OperandSource {
    /// `a` is digital and must be DAC-converted (conventional photonic
    /// accelerator, e.g. Lightning).
    Digital,
    /// `a` is already optical — it arrived on the fiber through the
    /// transponder's receive path, so no DAC conversion is charged
    /// (on-fiber photonic computing).
    OnFiber,
}

/// Configuration of a P1 dot-product unit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DotUnitConfig {
    pub laser: LaserConfig,
    pub mzm_a: MzmConfig,
    pub mzm_b: MzmConfig,
    pub pd: PhotodetectorConfig,
    /// DAC used per vector element (weights always; data unless on-fiber).
    pub dac: ConverterConfig,
    /// ADC used once per dot-product readout.
    pub adc: ConverterConfig,
    /// Symbol rate: vector elements per second through the unit.
    pub sample_rate_hz: f64,
    /// Source of the `a` operand (see [`OperandSource`]).
    pub source: OperandSource,
    /// Which kernel implementation executes the physical pass.
    ///
    /// `Scalar` (the default) is the reference device-by-device walk and
    /// reproduces every historical result bit for bit. `Vectorized` runs
    /// the same physics as fused power-domain loops over flat buffers:
    /// deterministic per seed and statistically identical, but on a
    /// different noise stream (see DESIGN.md §12 for the full contract).
    #[serde(default)]
    pub backend: KernelBackend,
}

impl DotUnitConfig {
    /// Ideal devices everywhere — algebra validation.
    pub fn ideal() -> Self {
        DotUnitConfig {
            laser: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            mzm_a: MzmConfig::ideal(),
            mzm_b: MzmConfig::ideal(),
            pd: PhotodetectorConfig::ideal(),
            dac: ConverterConfig::ideal(12),
            adc: ConverterConfig::ideal(12),
            sample_rate_hz: 32e9,
            source: OperandSource::OnFiber,
            backend: KernelBackend::Scalar,
        }
    }

    /// Realistic defaults: lossy modulators, noisy receiver, 8-bit
    /// converters at transponder symbol rate.
    pub fn realistic() -> Self {
        DotUnitConfig {
            laser: LaserConfig::default(),
            mzm_a: MzmConfig::default(),
            mzm_b: MzmConfig::default(),
            pd: PhotodetectorConfig::default(),
            dac: ConverterConfig::default(),
            adc: ConverterConfig {
                energy_per_sample_j: ofpc_photonics::energy::constants::ADC_SAMPLE_J,
                ..ConverterConfig::default()
            },
            sample_rate_hz: 32e9,
            source: OperandSource::OnFiber,
            backend: KernelBackend::Scalar,
        }
    }
}

/// Reusable scratch buffers and lookup tables for the vectorized
/// kernel, grown once and reused across passes so the steady state
/// performs no per-pass allocation.
#[derive(Debug, Clone, Default)]
struct VecScratch {
    /// Per-sample instantaneous power walking down the chain, W.
    powers: Vec<f64>,
    /// Per-sample power transmissions of the current modulator stage.
    t2: Vec<f64>,
    /// Quantized operand values (code → value grid).
    vals: Vec<f64>,
    /// DAC code → fused power transmission of `mzm_a` (Digital source,
    /// passthrough drive only).
    lut_a: Option<std::sync::Arc<Vec<f64>>>,
    /// DAC code → fused power transmission of `mzm_b` (passthrough
    /// drive only).
    lut_b: Option<std::sync::Arc<Vec<f64>>>,
    /// Whether the LUTs above have been (not) built for this config.
    luts_ready: bool,
}

/// A weight operand pre-encoded for the vectorized backend: the DAC
/// quantization and the `mzm_b` power transfer are evaluated once and
/// reused across every row of a matrix–vector product. Build with
/// [`DotProductUnit::precode`] / [`DotProductUnit::precode_signed`].
///
/// Byte-compatible with the per-row path: the vectorized `b` side
/// consumes no RNG, so a precoded pass produces bit-identical results
/// to passing the same vector to [`DotProductUnit::dot_nonneg`] (the
/// per-pass DAC energy and modulator symbol accounting still happen on
/// every use).
#[derive(Debug, Clone)]
pub struct PrecodedOperand {
    /// Per-element power transmission of the `b` modulator.
    t2: Vec<f64>,
}

impl PrecodedOperand {
    /// Number of vector elements.
    pub fn len(&self) -> usize {
        self.t2.len()
    }

    /// Whether the operand holds no elements.
    pub fn is_empty(&self) -> bool {
        self.t2.is_empty()
    }
}

/// A P1 photonic dot-product unit.
#[derive(Debug, Clone)]
pub struct DotProductUnit {
    pub config: DotUnitConfig,
    laser: Laser,
    mzm_a: MachZehnderModulator,
    mzm_b: MachZehnderModulator,
    pd: Photodetector,
    dac: Dac,
    adc: Adc,
    calibration: Option<DotCalibration>,
    scratch: VecScratch,
    /// Total scalar multiply-accumulates performed.
    pub macs_performed: u64,
    /// Dot products (readouts) performed.
    pub readouts: u64,
}

impl DotProductUnit {
    pub fn new(config: DotUnitConfig, rng: &mut SimRng) -> Self {
        DotProductUnit {
            laser: Laser::new(config.laser.clone(), rng.derive("p1-laser")),
            mzm_a: MachZehnderModulator::new(config.mzm_a.clone()),
            mzm_b: MachZehnderModulator::new(config.mzm_b.clone()),
            pd: Photodetector::new(config.pd.clone(), rng.derive("p1-pd")),
            dac: Dac::new(config.dac.clone(), rng.derive("p1-dac")),
            adc: Adc::new(config.adc.clone(), rng.derive("p1-adc")),
            config,
            calibration: None,
            scratch: VecScratch::default(),
            macs_performed: 0,
            readouts: 0,
        }
    }

    /// Convenience: ideal unit with a fixed seed.
    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        let mut unit = DotProductUnit::new(DotUnitConfig::ideal(), &mut rng);
        unit.calibrate(64);
        unit
    }

    /// Whether the unit has been calibrated.
    pub fn is_calibrated(&self) -> bool {
        self.calibration.is_some()
    }

    /// Attach shared amplitude-transmission caches to the two MZMs
    /// (built from this unit's `mzm_a`/`mzm_b` configs, e.g. via
    /// [`ofpc_photonics::tfcache::mzm_amplitude_cache`]). Attach *before*
    /// [`DotProductUnit::calibrate`] so calibration and compute see the
    /// same quantized curve.
    pub fn set_mzm_caches(
        &mut self,
        a: std::sync::Arc<ofpc_par::TransferCache>,
        b: std::sync::Arc<ofpc_par::TransferCache>,
    ) {
        self.mzm_a.set_amplitude_cache(a);
        self.mzm_b.set_amplitude_cache(b);
    }

    /// Run the calibration procedure: measure the photocurrent for a
    /// unit-product vector (all ones) and for a dark vector, storing the
    /// gain and offset that map integrated charge back to value. This is
    /// the §4 "algorithm to mitigate photonic noise" in its simplest
    /// load-bearing form — without it, device insertion losses bias every
    /// result (experiment E10 ablates it).
    pub fn calibrate(&mut self, n: usize) {
        assert!(n > 0, "calibration needs at least one symbol");
        let ones = self.raw_pass(&vec![1.0; n], &vec![1.0; n]);
        let zeros = self.raw_pass(&vec![0.0; n], &vec![0.0; n]);
        let unit = ones / n as f64;
        let dark = zeros / n as f64;
        self.calibration = Some(DotCalibration {
            unit_current_a: unit - dark,
            dark_current_a: dark,
        });
        // Calibration traffic shouldn't count as useful MACs.
        self.macs_performed = self.macs_performed.saturating_sub(2 * n as u64);
        self.readouts = self.readouts.saturating_sub(2);
    }

    /// Inject an explicit calibration (e.g. a stale or wrong one, for the
    /// ablation experiments).
    pub fn set_calibration(&mut self, cal: DotCalibration) {
        self.calibration = Some(cal);
    }

    pub fn calibration(&self) -> Option<&DotCalibration> {
        self.calibration.as_ref()
    }

    /// One physical pass: quantize, modulate, detect, integrate.
    /// Returns the *summed photocurrent* over the block (amps·samples).
    /// Dispatches on the configured [`KernelBackend`].
    fn raw_pass(&mut self, a: &[f64], b: &[f64]) -> f64 {
        match self.config.backend {
            KernelBackend::Scalar => self.raw_pass_scalar(a, b),
            KernelBackend::Vectorized => self.raw_pass_vectorized(a, b),
        }
    }

    /// The reference scalar pass: device-by-device field walk, kept
    /// verbatim as the golden-replay baseline.
    fn raw_pass_scalar(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot-product operands must match in length"
        );
        assert!(!a.is_empty(), "dot product of empty vectors");
        let n = a.len();
        // Quantize operands through the DAC code space. In on-fiber mode
        // the `a` operand is already analog/optical: it skips quantization
        // and DAC energy (the paper's conversion-saving claim).
        let a_vals: Vec<f64> = match self.config.source {
            OperandSource::Digital => a
                .iter()
                .map(|&x| {
                    let code = self.dac.encode_unit(x);
                    self.adc.decode_unit(code) // code → value grid
                })
                .collect(),
            OperandSource::OnFiber => a.to_vec(),
        };
        if self.config.source == OperandSource::Digital {
            // Account DAC energy for the data operand.
            let codes: Vec<u64> = a.iter().map(|&x| self.dac.encode_unit(x)).collect();
            let _ = self.dac.convert(&codes, self.config.sample_rate_hz);
        }
        // Weights are always digital → always DAC-converted.
        let b_codes: Vec<u64> = b.iter().map(|&x| self.dac.encode_unit(x)).collect();
        let _ = self.dac.convert(&b_codes, self.config.sample_rate_hz);
        let b_vals: Vec<f64> = b_codes.iter().map(|&c| self.adc.decode_unit(c)).collect();

        let light = self.laser.emit(n, self.config.sample_rate_hz);
        // Each value is encoded as the MZM's *power* transmission, so the
        // cascade of the two modulators' power transmissions is aᵢ·bᵢ.
        let drive_a = AnalogWaveform::new(
            a_vals
                .iter()
                .map(|&v| self.mzm_a.drive_for_transmission(v.clamp(0.0, 1.0)))
                .collect(),
            self.config.sample_rate_hz,
        );
        let drive_b = AnalogWaveform::new(
            b_vals
                .iter()
                .map(|&v| self.mzm_b.drive_for_transmission(v.clamp(0.0, 1.0)))
                .collect(),
            self.config.sample_rate_hz,
        );
        let stage1 = self.mzm_a.modulate(&light, &drive_a);
        let stage2 = self.mzm_b.modulate(&stage1, &drive_b);
        let current = self.pd.detect(&stage2);
        self.macs_performed += n as u64;
        self.readouts += 1;
        current.samples.iter().sum()
    }

    /// The vectorized pass: the whole chain collapses to power-domain
    /// loops over one flat buffer — `p[i] = laser power × T_a(aᵢ) ×
    /// T_b(bᵢ)`, then photodetection in place. Physics preserved (same
    /// transfer curves, same noise variances, same energy accounting);
    /// the per-element DAC conversions the scalar path discards are
    /// elided and charged via [`Dac::charge_samples`], the laser phase
    /// walk is skipped (invisible to square-law detection), and shot +
    /// thermal noise collapse to one Gaussian draw per sample.
    fn raw_pass_vectorized(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot-product operands must match in length"
        );
        assert!(!a.is_empty(), "dot product of empty vectors");
        let n = a.len();
        let rate = self.config.sample_rate_hz;
        self.ensure_luts();
        let mut powers = std::mem::take(&mut self.scratch.powers);
        self.laser.emit_power_block(n, rate, &mut powers);
        self.apply_mzm_a(a, &mut powers);
        self.apply_mzm_b(b, &mut powers);
        self.pd.detect_power_block(&mut powers, rate);
        let sum = powers.iter().sum();
        self.scratch.powers = powers;
        self.macs_performed += n as u64;
        self.readouts += 1;
        sum
    }

    /// Apply the `a`-side encode + modulator power transfer in place.
    fn apply_mzm_a(&mut self, a: &[f64], powers: &mut [f64]) {
        let rate = self.config.sample_rate_hz;
        match self.config.source {
            OperandSource::Digital => {
                if let Some(lut) = &self.scratch.lut_a {
                    for (p, &x) in powers.iter_mut().zip(a) {
                        *p *= lut[self.dac.encode_unit(x) as usize];
                    }
                } else {
                    let mut vals = std::mem::take(&mut self.scratch.vals);
                    vals.clear();
                    vals.extend(
                        a.iter()
                            .map(|&x| self.adc.decode_unit(self.dac.encode_unit(x))),
                    );
                    let mut t2 = std::mem::take(&mut self.scratch.t2);
                    self.mzm_a.power_transmissions_into(&vals, rate, &mut t2);
                    for (p, &t) in powers.iter_mut().zip(&t2) {
                        *p *= t;
                    }
                    self.scratch.vals = vals;
                    self.scratch.t2 = t2;
                }
                // The scalar path converts the quantized operand and
                // discards the waveform; pay for those conversions
                // without performing them.
                self.dac.charge_samples(a.len() as u64);
            }
            OperandSource::OnFiber => {
                if self.mzm_a.is_drive_passthrough(rate) {
                    let (floor, il) = self.mzm_a.fused_amplitude_constants();
                    for (p, &x) in powers.iter_mut().zip(a) {
                        let amp = x.clamp(0.0, 1.0).sqrt().max(floor) * il;
                        *p *= amp * amp;
                    }
                } else {
                    let mut t2 = std::mem::take(&mut self.scratch.t2);
                    self.mzm_a.power_transmissions_into(a, rate, &mut t2);
                    for (p, &t) in powers.iter_mut().zip(&t2) {
                        *p *= t;
                    }
                    self.scratch.t2 = t2;
                }
            }
        }
        self.mzm_a.symbols_modulated += a.len() as u64;
    }

    /// Apply the `b`-side (always-digital weight) encode + modulator
    /// power transfer in place, including the per-pass DAC charge.
    fn apply_mzm_b(&mut self, b: &[f64], powers: &mut [f64]) {
        let rate = self.config.sample_rate_hz;
        if let Some(lut) = &self.scratch.lut_b {
            for (p, &x) in powers.iter_mut().zip(b) {
                *p *= lut[self.dac.encode_unit(x) as usize];
            }
        } else {
            let mut vals = std::mem::take(&mut self.scratch.vals);
            vals.clear();
            vals.extend(
                b.iter()
                    .map(|&x| self.adc.decode_unit(self.dac.encode_unit(x))),
            );
            let mut t2 = std::mem::take(&mut self.scratch.t2);
            self.mzm_b.power_transmissions_into(&vals, rate, &mut t2);
            for (p, &t) in powers.iter_mut().zip(&t2) {
                *p *= t;
            }
            self.scratch.vals = vals;
            self.scratch.t2 = t2;
        }
        self.dac.charge_samples(b.len() as u64);
        self.mzm_b.symbols_modulated += b.len() as u64;
    }

    /// Largest DAC code space a dense lookup table is built for.
    const MAX_LUT_LEVELS: u64 = 1 << 16;

    /// Build the code → power-transmission LUTs once per unit, where
    /// the config allows it (passthrough drive, tractable code space).
    /// Built through the [`ofpc_photonics::tfcache`] seam so the curve
    /// values are bit-identical to any shared fused-power cache.
    fn ensure_luts(&mut self) {
        if self.scratch.luts_ready {
            return;
        }
        let rate = self.config.sample_rate_hz;
        if self.dac.levels() <= Self::MAX_LUT_LEVELS {
            if self.config.source == OperandSource::Digital && self.mzm_a.is_drive_passthrough(rate)
            {
                self.scratch.lut_a = Some(Self::build_code_lut(
                    &self.config.mzm_a,
                    &self.dac,
                    &self.adc,
                ));
            }
            if self.mzm_b.is_drive_passthrough(rate) {
                self.scratch.lut_b = Some(Self::build_code_lut(
                    &self.config.mzm_b,
                    &self.dac,
                    &self.adc,
                ));
            }
        }
        self.scratch.luts_ready = true;
    }

    /// DAC code → fused power transmission of an MZM with `config`,
    /// dense over the code space. The grid step puts every decoded code
    /// on a cache grid point, so the table is the fused curve itself.
    fn build_code_lut(config: &MzmConfig, dac: &Dac, adc: &Adc) -> std::sync::Arc<Vec<f64>> {
        let step = 0.5 / (adc.levels() - 1) as f64;
        let cache = ofpc_photonics::tfcache::mzm_fused_power_cache(config, step);
        cache.preload((0..dac.levels()).map(|c| adc.decode_unit(c)));
        std::sync::Arc::new(
            (0..dac.levels())
                .map(|c| cache.eval(adc.decode_unit(c)))
                .collect(),
        )
    }

    /// Pre-encode a non-negative weight vector (elements in `[0, 1]`)
    /// for reuse across many [`DotProductUnit::dot_nonneg_precoded`]
    /// calls. Vectorized backend only.
    pub fn precode(&mut self, b: &[f64]) -> PrecodedOperand {
        assert!(
            self.config.backend == KernelBackend::Vectorized,
            "precoding requires the vectorized backend"
        );
        self.ensure_luts();
        let rate = self.config.sample_rate_hz;
        let t2 = if let Some(lut) = &self.scratch.lut_b {
            b.iter()
                .map(|&x| lut[self.dac.encode_unit(x) as usize])
                .collect()
        } else {
            let vals: Vec<f64> = b
                .iter()
                .map(|&x| self.adc.decode_unit(self.dac.encode_unit(x)))
                .collect();
            let mut t2 = Vec::new();
            self.mzm_b.power_transmissions_into(&vals, rate, &mut t2);
            t2
        };
        PrecodedOperand { t2 }
    }

    /// Pre-encode a signed weight vector as its positive/negative
    /// decomposition, for [`DotProductUnit::dot_signed_precoded`].
    pub fn precode_signed(&mut self, b: &[f64]) -> (PrecodedOperand, PrecodedOperand) {
        let bp: Vec<f64> = b.iter().map(|&x| x.clamp(0.0, 1.0)).collect();
        let bn: Vec<f64> = b.iter().map(|&x| (-x).clamp(0.0, 1.0)).collect();
        (self.precode(&bp), self.precode(&bn))
    }

    /// The vectorized pass against a precoded `b` operand: identical to
    /// [`DotProductUnit::raw_pass_vectorized`] with the `b`-side table
    /// lookups replaced by the stored transmissions.
    fn raw_pass_precoded(&mut self, a: &[f64], pre: &PrecodedOperand) -> f64 {
        assert_eq!(
            a.len(),
            pre.len(),
            "dot-product operands must match in length"
        );
        assert!(!a.is_empty(), "dot product of empty vectors");
        let n = a.len();
        let rate = self.config.sample_rate_hz;
        self.ensure_luts();
        let mut powers = std::mem::take(&mut self.scratch.powers);
        self.laser.emit_power_block(n, rate, &mut powers);
        self.apply_mzm_a(a, &mut powers);
        for (p, &t) in powers.iter_mut().zip(&pre.t2) {
            *p *= t;
        }
        self.dac.charge_samples(n as u64);
        self.mzm_b.symbols_modulated += n as u64;
        self.pd.detect_power_block(&mut powers, rate);
        let sum = powers.iter().sum();
        self.scratch.powers = powers;
        self.macs_performed += n as u64;
        self.readouts += 1;
        sum
    }

    /// Dot product of non-negative vectors with elements in `[0, 1]`.
    /// Requires prior calibration.
    pub fn dot_nonneg(&mut self, a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let cal = *self
            .calibration
            .as_ref()
            .expect("DotProductUnit must be calibrated before use; call calibrate()");
        let charge = self.raw_pass(a, b);
        self.convert_readout(charge, n, cal)
    }

    /// Non-negative dot product against a precoded weight operand
    /// (vectorized backend only; see [`PrecodedOperand`]).
    pub fn dot_nonneg_precoded(&mut self, a: &[f64], b: &PrecodedOperand) -> f64 {
        let n = a.len();
        let cal = *self
            .calibration
            .as_ref()
            .expect("DotProductUnit must be calibrated before use; call calibrate()");
        let charge = self.raw_pass_precoded(a, b);
        self.convert_readout(charge, n, cal)
    }

    /// Calibration-corrected single-sample ADC readout of an integrated
    /// charge: the shared back half of every dot product.
    fn convert_readout(&mut self, charge: f64, n: usize, cal: DotCalibration) -> f64 {
        let raw = (charge - n as f64 * cal.dark_current_a) / cal.unit_current_a;
        // Single ADC readout of the normalized integrator output.
        let normalized = (raw / n as f64).clamp(0.0, 1.0);
        let wave = AnalogWaveform::new(
            vec![normalized * self.adc.config.full_scale_v],
            self.config.sample_rate_hz,
        );
        let code = self.adc.convert(&wave)[0];
        self.adc.decode_unit(code) * n as f64
    }

    /// Signed dot product with elements in `[-1, 1]`, via the standard
    /// four-pass positive/negative decomposition.
    pub fn dot_signed(&mut self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot-product operands must match in length"
        );
        let pos = |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| x.clamp(0.0, 1.0)).collect() };
        let neg = |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| (-x).clamp(0.0, 1.0)).collect() };
        let (ap, an) = (pos(a), neg(a));
        let (bp, bn) = (pos(b), neg(b));
        self.dot_nonneg(&ap, &bp) + self.dot_nonneg(&an, &bn)
            - self.dot_nonneg(&ap, &bn)
            - self.dot_nonneg(&an, &bp)
    }

    /// Signed dot product against a precoded weight decomposition from
    /// [`DotProductUnit::precode_signed`]: the same four passes, in the
    /// same order, as [`DotProductUnit::dot_signed`].
    pub fn dot_signed_precoded(
        &mut self,
        a: &[f64],
        bp: &PrecodedOperand,
        bn: &PrecodedOperand,
    ) -> f64 {
        assert_eq!(
            a.len(),
            bp.len(),
            "dot-product operands must match in length"
        );
        assert_eq!(
            a.len(),
            bn.len(),
            "dot-product operands must match in length"
        );
        let ap: Vec<f64> = a.iter().map(|&x| x.clamp(0.0, 1.0)).collect();
        let an: Vec<f64> = a.iter().map(|&x| (-x).clamp(0.0, 1.0)).collect();
        self.dot_nonneg_precoded(&ap, bp) + self.dot_nonneg_precoded(&an, bn)
            - self.dot_nonneg_precoded(&ap, bn)
            - self.dot_nonneg_precoded(&an, bp)
    }

    /// Latency of one n-element dot product, seconds: the block occupies
    /// `n` symbol slots plus a fixed analog front-end latency (~1 ns for
    /// modulator + detector + readout).
    pub fn latency_s(&self, n: usize) -> f64 {
        n as f64 / self.config.sample_rate_hz + 1e-9
    }

    /// Energy ledger over everything this unit has done so far.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.add(
            "laser",
            self.laser.config.wall_plug_w * self.seconds_active(),
        );
        ledger.add("mzm-a", self.mzm_a.energy_consumed_j());
        ledger.add("mzm-b", self.mzm_b.energy_consumed_j());
        ledger.add("photodetector", self.pd.energy_consumed_j());
        ledger.add("dac", self.dac.energy_consumed_j());
        ledger.add("adc", self.adc.energy_consumed_j());
        ledger
    }

    /// Seconds of optical signal processed.
    fn seconds_active(&self) -> f64 {
        self.macs_performed as f64 / self.config.sample_rate_hz
    }

    /// Energy per MAC achieved so far, J (total ledger / MACs).
    pub fn energy_per_mac_j(&self) -> f64 {
        if self.macs_performed == 0 {
            return 0.0;
        }
        self.energy_ledger().total_j() / self.macs_performed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn ideal_unit_computes_exact_dot() {
        let mut unit = DotProductUnit::ideal();
        let a = vec![0.5, 0.25, 1.0, 0.0, 0.75];
        let b = vec![1.0, 0.5, 0.5, 1.0, 0.25];
        let got = unit.dot_nonneg(&a, &b);
        let want = exact_dot(&a, &b);
        assert!((got - want).abs() < 0.01, "got {got} want {want}");
    }

    #[test]
    fn signed_dot_product() {
        let mut unit = DotProductUnit::ideal();
        let a = vec![0.5, -0.25, 1.0, -0.5];
        let b = vec![-1.0, 0.5, 0.5, 1.0];
        let got = unit.dot_signed(&a, &b);
        let want = exact_dot(&a, &b);
        assert!((got - want).abs() < 0.02, "got {got} want {want}");
    }

    #[test]
    fn calibration_corrects_insertion_loss() {
        // Lossy modulators scale the light by ~-7 dB; an uncalibrated
        // nominal gain would be off by that factor, calibration fixes it.
        let mut rng = SimRng::seed_from_u64(1);
        let mut cfg = DotUnitConfig::ideal();
        cfg.mzm_a.insertion_loss_db = 3.5;
        cfg.mzm_b.insertion_loss_db = 3.5;
        let mut unit = DotProductUnit::new(cfg, &mut rng);
        unit.calibrate(64);
        let a = vec![0.8, 0.4];
        let b = vec![0.5, 0.5];
        let got = unit.dot_nonneg(&a, &b);
        assert!((got - 0.6).abs() < 0.01, "got {got}");
    }

    #[test]
    fn uncalibrated_lossy_unit_is_biased() {
        // The E10 ablation in miniature: inject the "nominal" calibration
        // that ignores insertion loss and watch the bias appear.
        let mut rng = SimRng::seed_from_u64(2);
        let mut cfg = DotUnitConfig::ideal();
        cfg.mzm_a.insertion_loss_db = 3.5;
        cfg.mzm_b.insertion_loss_db = 3.5;
        let p0 = ofpc_photonics::units::dbm_to_watts(cfg.laser.power_dbm);
        let mut unit = DotProductUnit::new(cfg, &mut rng);
        unit.set_calibration(DotCalibration {
            unit_current_a: p0, // nominal R·P0, ignoring 7 dB of loss
            dark_current_a: 0.0,
        });
        let got = unit.dot_nonneg(&[1.0], &[1.0]);
        assert!(
            got < 0.5,
            "uncalibrated result should be badly low, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "calibrated")]
    fn uncalibrated_unit_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut unit = DotProductUnit::new(DotUnitConfig::ideal(), &mut rng);
        unit.dot_nonneg(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut unit = DotProductUnit::ideal();
        unit.dot_nonneg(&[1.0, 0.5], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vectors_panic() {
        let mut unit = DotProductUnit::ideal();
        unit.dot_nonneg(&[], &[]);
    }

    #[test]
    fn noisy_unit_is_approximately_right() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        unit.calibrate(256);
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (n - i) as f64 / n as f64).collect();
        let want = exact_dot(&a, &b);
        let got = unit.dot_nonneg(&a, &b);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.1, "relative error {rel} (got {got}, want {want})");
    }

    #[test]
    fn on_fiber_mode_skips_data_dac_energy() {
        let mut rng1 = SimRng::seed_from_u64(4);
        let mut rng2 = SimRng::seed_from_u64(4);
        let mut cfg_fiber = DotUnitConfig::realistic();
        cfg_fiber.source = OperandSource::OnFiber;
        let mut cfg_digital = cfg_fiber.clone();
        cfg_digital.source = OperandSource::Digital;

        let mut on_fiber = DotProductUnit::new(cfg_fiber, &mut rng1);
        let mut digital = DotProductUnit::new(cfg_digital, &mut rng2);
        on_fiber.calibrate(64);
        digital.calibrate(64);
        let a = vec![0.5; 128];
        let b = vec![0.5; 128];
        on_fiber.dot_nonneg(&a, &b);
        digital.dot_nonneg(&a, &b);
        let e_fiber = on_fiber.energy_ledger().get("dac");
        let e_digital = digital.energy_ledger().get("dac");
        assert!(
            e_digital > 1.5 * e_fiber,
            "digital DAC energy {e_digital} should dwarf on-fiber {e_fiber}"
        );
    }

    #[test]
    fn energy_per_mac_is_reported() {
        let mut unit = DotProductUnit::ideal();
        let _ = unit.dot_nonneg(&[0.5; 32], &[0.5; 32]);
        // Ideal config has zero device energies.
        assert_eq!(unit.energy_per_mac_j(), 0.0);
        assert_eq!(unit.macs_performed, 32);

        let mut rng = SimRng::seed_from_u64(5);
        let mut real = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        real.calibrate(64);
        let _ = real.dot_nonneg(&[0.5; 32], &[0.5; 32]);
        assert!(real.energy_per_mac_j() > 0.0);
    }

    #[test]
    fn latency_scales_with_vector_length() {
        let unit = DotProductUnit::ideal();
        let l64 = unit.latency_s(64);
        let l128 = unit.latency_s(128);
        assert!(l128 > l64);
        // 64 symbols at 32 GHz = 2 ns, plus 1 ns front end.
        assert!((l64 - 3e-9).abs() < 1e-10, "latency {l64}");
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let run = || {
            let mut rng = SimRng::seed_from_u64(7);
            let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
            unit.calibrate(64);
            unit.dot_nonneg(&[0.3; 40], &[0.7; 40])
        };
        assert_eq!(run(), run());
    }

    fn vectorized(mut cfg: DotUnitConfig, seed: u64, cal: usize) -> DotProductUnit {
        cfg.backend = KernelBackend::Vectorized;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut unit = DotProductUnit::new(cfg, &mut rng);
        unit.calibrate(cal);
        unit
    }

    #[test]
    fn vectorized_results_are_deterministic_per_seed() {
        let run = || {
            let mut unit = vectorized(DotUnitConfig::realistic(), 7, 64);
            unit.dot_nonneg(&[0.3; 40], &[0.7; 40])
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn vectorized_ideal_unit_matches_scalar_within_readout_lsb() {
        // Noiseless config: the only divergence allowed between the
        // backends is the final readout quantizing to an adjacent code —
        // one LSB of the result scale, n/(2^bits − 1).
        let mut scalar = DotProductUnit::ideal();
        let mut vec = vectorized(DotUnitConfig::ideal(), 0, 64);
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (n - i) as f64 / n as f64).collect();
        let lsb = n as f64 / ((1u64 << 12) - 1) as f64;
        let (s, v) = (scalar.dot_nonneg(&a, &b), vec.dot_nonneg(&a, &b));
        assert!((s - v).abs() <= lsb + 1e-12, "scalar {s} vectorized {v}");
        let (s, v) = (
            scalar.dot_signed(&[0.5, -0.25, 1.0, -0.5], &[-1.0, 0.5, 0.5, 1.0]),
            vec.dot_signed(&[0.5, -0.25, 1.0, -0.5], &[-1.0, 0.5, 0.5, 1.0]),
        );
        let lsb4 = 4.0 / ((1u64 << 12) - 1) as f64;
        assert!(
            (s - v).abs() <= 4.0 * lsb4 + 1e-12,
            "scalar {s} vectorized {v}"
        );
    }

    #[test]
    fn vectorized_digital_source_matches_scalar_within_readout_lsb() {
        let mut cfg = DotUnitConfig::ideal();
        cfg.source = OperandSource::Digital;
        let mut rng = SimRng::seed_from_u64(0);
        let mut scalar = DotProductUnit::new(cfg.clone(), &mut rng);
        scalar.calibrate(64);
        let mut vec = vectorized(cfg, 0, 64);
        let a = vec![0.5, 0.25, 1.0, 0.0, 0.75];
        let b = vec![1.0, 0.5, 0.5, 1.0, 0.25];
        let lsb = 5.0 / ((1u64 << 12) - 1) as f64;
        let (s, v) = (scalar.dot_nonneg(&a, &b), vec.dot_nonneg(&a, &b));
        assert!((s - v).abs() <= lsb + 1e-12, "scalar {s} vectorized {v}");
    }

    #[test]
    fn precoded_weights_replay_per_row_results_byte_for_byte() {
        let a = vec![0.3, -0.8, 0.1, 0.9, -0.4, 0.0, 0.65, -1.0];
        let w = vec![0.2, 0.7, -0.5, 1.0, -0.15, 0.4, -0.9, 0.05];
        let mut per_row = vectorized(DotUnitConfig::realistic(), 9, 256);
        let mut pre = vectorized(DotUnitConfig::realistic(), 9, 256);
        let (bp, bn) = pre.precode_signed(&w);
        for _ in 0..3 {
            let x = per_row.dot_signed(&a, &w);
            let y = pre.dot_signed_precoded(&a, &bp, &bn);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Energy and symbol accounting must also be identical: precoding
        // still pays the per-pass DAC and modulator costs.
        assert_eq!(per_row.macs_performed, pre.macs_performed);
        assert_eq!(
            per_row.energy_ledger().total_j().to_bits(),
            pre.energy_ledger().total_j().to_bits()
        );
    }

    #[test]
    fn vectorized_noisy_unit_is_approximately_right() {
        let mut unit = vectorized(DotUnitConfig::realistic(), 3, 256);
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (n - i) as f64 / n as f64).collect();
        let want = exact_dot(&a, &b);
        let got = unit.dot_nonneg(&a, &b);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.1, "relative error {rel} (got {got}, want {want})");
    }

    #[test]
    fn vectorized_on_fiber_mode_skips_data_dac_energy() {
        let mut cfg_fiber = DotUnitConfig::realistic();
        cfg_fiber.source = OperandSource::OnFiber;
        let mut cfg_digital = cfg_fiber.clone();
        cfg_digital.source = OperandSource::Digital;
        let mut on_fiber = vectorized(cfg_fiber, 4, 64);
        let mut digital = vectorized(cfg_digital, 4, 64);
        on_fiber.dot_nonneg(&[0.5; 128], &[0.5; 128]);
        digital.dot_nonneg(&[0.5; 128], &[0.5; 128]);
        let e_fiber = on_fiber.energy_ledger().get("dac");
        let e_digital = digital.energy_ledger().get("dac");
        assert!(
            e_digital > 1.5 * e_fiber,
            "digital DAC energy {e_digital} should dwarf on-fiber {e_fiber}"
        );
    }

    #[test]
    fn vectorized_dac_energy_matches_scalar_exactly() {
        // The elided (discarded) conversions must still be charged:
        // after identical workloads both backends report the same DAC
        // sample count and energy.
        let mut cfg = DotUnitConfig::realistic();
        cfg.source = OperandSource::Digital;
        let mut rng = SimRng::seed_from_u64(6);
        let mut scalar = DotProductUnit::new(cfg.clone(), &mut rng);
        scalar.calibrate(64);
        let mut vec = vectorized(cfg, 6, 64);
        scalar.dot_signed(&[0.4; 32], &[-0.6; 32]);
        vec.dot_signed(&[0.4; 32], &[-0.6; 32]);
        assert_eq!(
            scalar.energy_ledger().get("dac").to_bits(),
            vec.energy_ledger().get("dac").to_bits()
        );
        assert_eq!(
            scalar.energy_ledger().get("mzm-a").to_bits(),
            vec.energy_ledger().get("mzm-a").to_bits()
        );
        assert_eq!(
            scalar.energy_ledger().get("mzm-b").to_bits(),
            vec.energy_ledger().get("mzm-b").to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "length")]
    fn vectorized_mismatched_lengths_panic() {
        let mut unit = vectorized(DotUnitConfig::ideal(), 0, 64);
        unit.dot_nonneg(&[1.0, 0.5], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "vectorized backend")]
    fn precode_rejects_scalar_backend() {
        let mut unit = DotProductUnit::ideal();
        unit.precode(&[0.5]);
    }

    #[test]
    fn backend_field_deserializes_with_default() {
        // Configs serialized before the backend existed must load as
        // Scalar, preserving historical replay.
        let mut doc = serde_json::to_value(&DotUnitConfig::realistic()).unwrap();
        if let serde_json::Value::Map(entries) = &mut doc {
            entries.retain(|(k, _)| k != "backend");
        }
        let cfg: DotUnitConfig = serde_json::from_value(&doc).unwrap();
        assert_eq!(cfg.backend, KernelBackend::Scalar);
    }
}
