//! Ordered batch execution of engine kernels over the worker pool.
//!
//! Serving and the experiment harnesses accumulate many independent
//! kernel invocations — per-wavelength MVM rows, correlator scans,
//! pattern-match probes — that the sequential path runs one after
//! another. [`BatchEngine`] scatters a batch across an
//! [`ofpc_par::WorkerPool`] and gathers outputs in submission order.
//!
//! Determinism comes from the seed-splitting rule (DESIGN.md §8): each
//! task builds its photonic unit from a **fresh** `SimRng` seeded with
//! `split_seed(base_seed, index)`, never from a stream shared with its
//! siblings. That makes task `i`'s output a pure function of
//! `(base_seed, i, spec)` — the same bytes whether the batch runs on 1
//! worker or 8, which is exactly what `tests/parallel.rs` diffs.
//!
//! Optionally the batch shares one pair of MZM transfer caches
//! ([`BatchEngine::with_shared_mzm_cache`]) across all tasks and
//! workers; the cache is race-benign by construction, so sharing it
//! never perturbs the bytes either.

use std::sync::Arc;

use ofpc_par::{split_seed, TransferCache, WorkerPool};
use ofpc_photonics::tfcache;
use ofpc_photonics::SimRng;

use crate::correlator::{CorrelationHit, Correlator};
use crate::dot::DotUnitConfig;
use crate::matcher::{MatchResult, MatcherConfig, PatternMatcher};
use crate::mvm::PhotonicMatVec;

/// One kernel invocation, fully described by value (so a batch can be
/// serialized into a replay fixture).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum KernelSpec {
    /// `y = W·x`, signed entries in `[-1, 1]`, over `lanes` WDM lanes.
    MvmSigned {
        matrix: Vec<Vec<f64>>,
        x: Vec<f64>,
        lanes: usize,
    },
    /// `y = W·x`, entries in `[0, 1]`, over `lanes` WDM lanes.
    MvmNonneg {
        matrix: Vec<Vec<f64>>,
        x: Vec<f64>,
        lanes: usize,
    },
    /// Sliding-window signature scan over a bit stream.
    Correlate {
        signatures: Vec<Vec<bool>>,
        stream: Vec<bool>,
        tolerance: f64,
        stride: usize,
    },
    /// Single-block pattern match.
    MatchBlock { data: Vec<bool>, pattern: Vec<bool> },
}

/// The result of one [`KernelSpec`], mirroring its variant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum KernelOutput {
    Vector(Vec<f64>),
    Hits(Vec<CorrelationHit>),
    Match(MatchResult),
}

/// A batch executor: fixed device configs + base seed, applied to any
/// number of kernel batches.
#[derive(Debug)]
pub struct BatchEngine {
    /// Root seed; task `i` runs from `split_seed(base_seed, i)`.
    pub base_seed: u64,
    /// P1 device config used by the MVM kernels.
    pub dot_config: DotUnitConfig,
    /// P2 device config used by the correlator/matcher kernels.
    pub matcher_config: MatcherConfig,
    /// Calibration symbols per freshly built unit.
    pub calibration_symbols: usize,
    mzm_caches: Option<(Arc<TransferCache>, Arc<TransferCache>)>,
}

impl BatchEngine {
    /// Realistic device models (the serving configuration).
    pub fn realistic(base_seed: u64) -> Self {
        BatchEngine {
            base_seed,
            dot_config: DotUnitConfig::realistic(),
            matcher_config: MatcherConfig::realistic(),
            calibration_symbols: 128,
            mzm_caches: None,
        }
    }

    /// Ideal device models (algebra validation).
    pub fn ideal(base_seed: u64) -> Self {
        BatchEngine {
            base_seed,
            dot_config: DotUnitConfig::ideal(),
            matcher_config: MatcherConfig::ideal(),
            calibration_symbols: 128,
            mzm_caches: None,
        }
    }

    /// Run every MVM kernel on the given
    /// [`KernelBackend`](crate::dot::KernelBackend). The default
    /// is `Scalar` (the byte-stable reference); `Vectorized` selects the
    /// fused power-domain kernels — same physics and energy accounting,
    /// deterministic per seed, different noise stream (DESIGN.md §12).
    pub fn with_backend(mut self, backend: crate::dot::KernelBackend) -> Self {
        self.dot_config.backend = backend;
        self
    }

    /// Share one pair of MZM amplitude-transmission caches (step `step_v`
    /// volts) across every MVM task in every batch. Calibration runs
    /// through the cache too, so the quantized curve is self-consistent.
    pub fn with_shared_mzm_cache(mut self, step_v: f64) -> Self {
        self.mzm_caches = Some((
            tfcache::mzm_amplitude_cache(&self.dot_config.mzm_a, step_v),
            tfcache::mzm_amplitude_cache(&self.dot_config.mzm_b, step_v),
        ));
        self
    }

    /// The shared MZM caches, if configured (for hit-rate inspection).
    pub fn mzm_caches(&self) -> Option<&(Arc<TransferCache>, Arc<TransferCache>)> {
        self.mzm_caches.as_ref()
    }

    /// Execute `batch` across the pool, outputs in submission order.
    pub fn execute(&self, pool: &WorkerPool, batch: Vec<KernelSpec>) -> Vec<KernelOutput> {
        pool.scatter_gather("engine-batch", batch, |i, spec| self.run_one(i, spec))
    }

    /// Run task `i` from its split seed — the sequential reference the
    /// differential tests compare against is `execute` on a 1-worker
    /// pool, which calls exactly this, in order.
    fn run_one(&self, index: usize, spec: KernelSpec) -> KernelOutput {
        let mut rng = SimRng::seed_from_u64(split_seed(self.base_seed, index as u64));
        match spec {
            KernelSpec::MvmSigned { matrix, x, lanes } => {
                let mut engine = self.build_mvm(lanes, &mut rng);
                KernelOutput::Vector(engine.mat_vec_signed(&matrix, &x))
            }
            KernelSpec::MvmNonneg { matrix, x, lanes } => {
                let mut engine = self.build_mvm(lanes, &mut rng);
                KernelOutput::Vector(engine.mat_vec_nonneg(&matrix, &x))
            }
            KernelSpec::Correlate {
                signatures,
                stream,
                tolerance,
                stride,
            } => {
                let mut correlator = Correlator::new(
                    self.matcher_config.clone(),
                    signatures,
                    tolerance,
                    stride,
                    &mut rng,
                );
                KernelOutput::Hits(correlator.scan(&stream))
            }
            KernelSpec::MatchBlock { data, pattern } => {
                let mut matcher = PatternMatcher::new(self.matcher_config.clone(), &mut rng);
                matcher.calibrate(self.calibration_symbols);
                KernelOutput::Match(matcher.match_block(&data, &pattern))
            }
        }
    }

    fn build_mvm(&self, lanes: usize, rng: &mut SimRng) -> PhotonicMatVec {
        let mut engine = PhotonicMatVec::new(self.dot_config.clone(), lanes, rng);
        if let Some((a, b)) = &self.mzm_caches {
            engine.set_mzm_caches(Arc::clone(a), Arc::clone(b));
        }
        engine.calibrate(self.calibration_symbols);
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_batch() -> Vec<KernelSpec> {
        let sig = vec![true, false, true, true, false, false, true, false];
        let mut stream = vec![false; 40];
        stream[16..24].copy_from_slice(&sig);
        vec![
            KernelSpec::MvmNonneg {
                matrix: vec![vec![0.5, 0.25], vec![1.0, 0.0]],
                x: vec![0.5, 1.0],
                lanes: 2,
            },
            KernelSpec::MvmSigned {
                matrix: vec![vec![0.5, -0.5]],
                x: vec![1.0, 0.5],
                lanes: 1,
            },
            KernelSpec::Correlate {
                signatures: vec![sig.clone()],
                stream,
                tolerance: 0.5,
                stride: 8,
            },
            KernelSpec::MatchBlock {
                data: sig.clone(),
                pattern: sig,
            },
        ]
    }

    fn output_bytes(engine: &BatchEngine, workers: usize) -> String {
        let pool = WorkerPool::new(workers);
        let out = engine.execute(&pool, mixed_batch());
        serde_json::to_string_pretty(&out).expect("serializes")
    }

    #[test]
    fn parallel_batch_matches_sequential_bytes() {
        let engine = BatchEngine::realistic(42);
        let seq = output_bytes(&engine, 1);
        assert_eq!(seq, output_bytes(&engine, 2));
        assert_eq!(seq, output_bytes(&engine, 8));
    }

    #[test]
    fn shared_cache_does_not_perturb_determinism() {
        let engine = BatchEngine::realistic(42).with_shared_mzm_cache(1e-6);
        let seq = output_bytes(&engine, 1);
        assert_eq!(seq, output_bytes(&engine, 8));
        let (a, b) = engine.mzm_caches().expect("caches configured");
        assert!(a.hits() + a.misses() > 0, "mzm-a cache untouched");
        assert!(b.hits() + b.misses() > 0, "mzm-b cache untouched");
    }

    #[test]
    fn results_are_numerically_sane() {
        let engine = BatchEngine::ideal(7);
        let pool = WorkerPool::new(2);
        let out = engine.execute(&pool, mixed_batch());
        match &out[0] {
            KernelOutput::Vector(y) => {
                assert!((y[0] - 0.5).abs() < 0.02, "got {}", y[0]);
                assert!((y[1] - 0.5).abs() < 0.02, "got {}", y[1]);
            }
            other => panic!("expected vector, got {other:?}"),
        }
        match &out[2] {
            KernelOutput::Hits(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].offset, 16);
            }
            other => panic!("expected hits, got {other:?}"),
        }
        match &out[3] {
            KernelOutput::Match(m) => assert!(m.matched),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn different_base_seeds_give_different_noise() {
        let a = output_bytes(&BatchEngine::realistic(1), 1);
        let b = output_bytes(&BatchEngine::realistic(2), 1);
        assert_ne!(a, b, "realistic noise must depend on the base seed");
    }
}
