#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), and the full test
# suite. Everything runs offline against the vendored deps.
set -euo pipefail
cd "$(dirname "$0")"

# `cargo test` does not promote warnings to errors on its own: run it
# under a tee and fail the gate if anything in the build or the test
# output itself warned (deprecations, dead code resurfacing in
# test-only cfgs, tests eprintln-ing "warning:" diagnostics).
run_no_warnings() {
    local log
    log="$(mktemp)"
    "$@" 2>&1 | tee "$log"
    if grep -E '(^|[[:space:]])[Ww]arning(:|\[)' "$log" > /dev/null; then
        echo "==> FAIL: warnings in output of: $*" >&2
        rm -f "$log"
        exit 1
    fi
    rm -f "$log"
}

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q (debug, no warnings tolerated)"
run_no_warnings cargo test --offline --workspace -q

echo "==> cargo test -q --release (tier-1)"
run_no_warnings cargo test --offline --workspace -q --release

echo "==> cargo test --test faults (fault injection & recovery)"
run_no_warnings cargo test --offline --test faults -q

echo "==> telemetry overhead gate (disabled handle within noise of baseline)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench telemetry_overhead

echo "==> core kernel benches (dot product, network sim)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench dot_product
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench network_sim

echo "==> kernel differential suite (scalar vs vectorized backends, tests/kernels.rs)"
run_no_warnings cargo test --offline --test kernels -q

echo "==> vectorized kernel speedup gate (>=5x vs scalar, BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench kernel_speedup

echo "==> parallel scaling & sequential regression gate (BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench par_scaling

echo "==> graph compiler gate (pipelined >=1.5x sequential, deterministic)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench graph_pipeline

echo "==> E16 graph compiler smoke run (expt_graph)"
run_no_warnings cargo run --offline -q -p ofpc-bench --bin expt_graph

echo "==> design-space sweep gate (deterministic, throughput vs BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench dse_sweep

echo "==> E17 design-space exploration smoke run (expt_dse)"
run_no_warnings cargo run --offline -q -p ofpc-bench --bin expt_dse

echo "==> resilience integration gate (tests/resil.rs)"
run_no_warnings cargo test --offline --test resil -q

echo "==> resilience overhead gate (deterministic, energy gates, throughput vs BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench resil_overhead

echo "==> E18 proactive-resilience smoke run (expt_resil)"
run_no_warnings cargo run --offline -q -p ofpc-bench --bin expt_resil

echo "==> sharded-controller differential & churn suite (tests/shard.rs)"
run_no_warnings cargo test --offline --test shard -q

echo "==> shard scaling gate (determinism, >=2x @4w, decision latency vs BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench shard_scaling

echo "==> E20 sharded-controller smoke run (expt_controller_shard, mini)"
run_no_warnings env OFPC_E20_MINI=1 cargo run --offline -q -p ofpc-bench --bin expt_controller_shard

echo "==> ingest property suite (tests/ingest.rs)"
run_no_warnings cargo test --offline --test ingest -q

echo "==> serve scale gate (determinism, >=2x @4w, throughput/core vs BENCH_BASELINE.json)"
run_no_warnings cargo bench --offline -q -p ofpc-bench --bench serve_scale

echo "==> E21 ingest front-end smoke run (expt_ingest, mini)"
run_no_warnings env OFPC_E21_MINI=1 cargo run --offline -q -p ofpc-bench --bin expt_ingest

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

echo "CI green."
