#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), and the full test
# suite. Everything runs offline against the vendored deps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "==> cargo test --test faults (fault injection & recovery)"
cargo test --offline --test faults -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

echo "CI green."
