//! Explore the hardware design space with the `ofpc-dse` component
//! library: sweep three calibrated converter pairings across core sizes
//! and wavelength counts, read the per-app Pareto frontier, and watch
//! the lowerer bind *different* catalog parts to different stages of
//! the same DNN when the whole catalog is on the table.
//!
//! Run with: `cargo run --example dse_sweep`

use ofpc_apps::digital::ComputeModel;
use ofpc_dse::{hardware_variant, run_sweep, App, ConverterChoice, SweepSpec};
use ofpc_graph::lower::{lower, ErrorBudget, LowerConfig};
use ofpc_par::WorkerPool;

fn main() {
    // 1. The design space: every catalog converter pairing (a 12-bit
    //    precision part and two 8-bit parts at different speed/power
    //    corners) × three photonic core sizes × two WDM widths, priced
    //    for each Table-1 app. `run_sweep` parallelizes across the
    //    worker pool and returns the same bytes for any worker count.
    let spec = SweepSpec::e17();
    let points = run_sweep(&WorkerPool::from_env(), &spec);
    println!(
        "swept {} design points ({} apps x {} converters x {} cores x {} wavelength counts)",
        points.len(),
        spec.apps.len(),
        spec.converters.len(),
        spec.core_sizes.len(),
        spec.wavelength_counts.len()
    );

    // 2. The Pareto frontier: the non-dominated points per app on
    //    (energy/request, batch latency, effective bits).
    for p in points.iter().filter(|p| p.pareto && p.app == "dnn") {
        println!(
            "  dnn frontier: {:>11} core={:<2} wl={} -> {:7.1} pJ/req, {:6.2} us, {:.2} bits",
            p.converter,
            p.core_size,
            p.wavelengths,
            p.energy_per_request_j * 1e12,
            p.latency_ps as f64 * 1e-6,
            p.effective_bits
        );
    }

    // 3. Per-stage selection: hand the lowerer *all three* pairings at
    //    once. The DNN's hidden layers only need 3.5 effective bits, so
    //    they get the cheap 8-bit DAC; the 7.2-bit output layer is out
    //    of the 8-bit part's reach and escalates to the 12-bit one —
    //    two different physical converters in one compiled plan.
    let variants: Vec<_> = ConverterChoice::ALL
        .iter()
        .map(|&c| hardware_variant(c, 4))
        .collect();
    let graph = App::Dnn.build(16, 17);
    let cfg = LowerConfig {
        budget: ErrorBudget::realistic(),
        model: variants[0].model.clone(),
        digital: ComputeModel::edge_soc(),
        variants,
    };
    let plan = lower(&graph, &cfg).expect("DNN lowers");
    println!("\nmixed lowering of the 16-wide DNN:");
    for s in &plan.stages {
        println!(
            "  {:>14} -> {:?} on {} ({:.2} predicted bits, {:.1} pJ)",
            s.label,
            s.target,
            s.variant.as_deref().unwrap_or("digital DSP"),
            s.predicted_bits,
            s.energy_j * 1e12
        );
    }
    println!(
        "distinct variants bound: {:?} ({:.1} pJ/request total)",
        plan.variants_used(),
        plan.energy_per_request_j() * 1e12
    );
}
