//! The million-tenant ingest front-end in miniature: 5,008 tenants in
//! three classes — a handful of abusive whales, a thousand steady
//! subscribers, four thousand long-tail users — hash-sharded over four
//! deterministic event loops in front of five transponder slots.
//!
//! Watch three things in the output:
//!
//! * **Backpressure lands on the whales.** Every shed request is a
//!   whale bounded-queue rejection; the small tenants shed nothing.
//! * **The rebalancer works between epochs.** Hot tenants migrate with
//!   their queued work and slot inventory follows measured load.
//! * **The run is deterministic.** Re-running on any worker count
//!   produces byte-identical results (the golden tests pin this).
//!
//! Run with: `cargo run --example ingest`

use ofpc_bench::ingest::{mini_config, run_e21};
use ofpc_par::WorkerPool;

fn main() {
    let config = mini_config();
    let pool = WorkerPool::from_env();
    println!(
        "ingest front-end: {} tenants, {} shards, {} workers",
        config.classes.iter().map(|c| c.population).sum::<u32>(),
        config.shards,
        pool.workers()
    );

    let report = run_e21(config, &pool);

    println!(
        "\noffered {:.0} req/s -> completed {} / shed {} / unfinished {} (goodput {:.0} req/s)",
        report.offered_rps, report.completed, report.shed, report.unfinished, report.goodput_rps
    );
    println!(
        "frames: {} parsed, {} rejected with typed errors (no panics)",
        report.parsed, report.frames.rejected_total
    );
    println!("\nper-class fairness:");
    for c in &report.classes {
        println!(
            "  {:>6}: {:>6} tenants, {:>5} arrivals, {:>5} completed, {:>5} shed, \
             goodput/weight {:>7.2}",
            c.name,
            c.tenants,
            c.arrivals,
            c.completed,
            c.shed_queue_full + c.shed_expired_queued + c.shed_expired_serving,
            c.goodput_per_weight,
        );
    }
    println!(
        "\nrebalance: {} passes, {} tenant migrations, {} slot moves, {} displaced at horizon",
        report.rebalance.passes,
        report.rebalance.migrations,
        report.rebalance.slot_moves,
        report.rebalance.displaced
    );
    for s in &report.shard_reports {
        println!(
            "  shard {}: {} completed, {} slots, {} tenants holding state",
            s.shard, s.completed, s.slots, s.active_tenant_state
        );
    }
}
