//! The Fig.-1 "image recognition" application, end to end: train a glyph
//! classifier against the *measured* photonic activation curve, deploy
//! it on P1/P3 engine hardware, and check that photonic inference
//! matches digital accuracy — the paper's §4 noise-mitigation loop.
//!
//! Run with: `cargo run --release --example image_recognition_wan`

use ofpc_apps::ml::{
    accuracy_photonic, accuracy_with_activation, deploy_curve_trained, synthetic_glyphs, train_mlp,
    TrainActivation, TrainConfig,
};
use ofpc_engine::nonlinear::NonlinearUnit;
use ofpc_photonics::SimRng;

fn main() {
    let mut rng = SimRng::seed_from_u64(2026);

    // 1. Synthetic "camera" data: four 8×8 glyph classes with noise.
    let train = synthetic_glyphs(40, 0.08, &mut rng);
    let test = synthetic_glyphs(15, 0.08, &mut rng);
    println!(
        "dataset: {} training / {} test images, {} classes",
        train.len(),
        test.len(),
        train.classes
    );

    // 2. Characterize the deployed P3 activation: sweep its transfer
    //    curve once (this is calibration metadata the controller ships
    //    with the model, per §4).
    let curve = NonlinearUnit::ideal().transfer_curve(64);
    let scale = 4.0;
    let act = TrainActivation::ScaledCurve {
        curve: curve.clone(),
        scale,
    };

    // 3. Train the MLP *through* that curve (photonics-aware training).
    let mlp = train_mlp(&[64, 16, 4], &train, TrainConfig::default(), &act, &mut rng);
    let digital_acc = accuracy_with_activation(&mlp, &test, &act);
    println!("digital accuracy (curve activation): {digital_acc:.3}");

    // 4. Deploy onto the photonic engine: 4 WDM lanes of P1 dot-product
    //    units plus the P3 activation, with the training-time scales.
    let mut pdnn = deploy_curve_trained(&mlp, scale, 4, &mut rng);
    let photonic_acc = accuracy_photonic(&mut pdnn, &test);
    println!("photonic accuracy (on-engine):       {photonic_acc:.3}");

    // 5. The deployment economics: latency and energy per inference.
    println!(
        "\nper-inference latency on engine: {:.1} ns ({} MACs per inference)",
        pdnn.latency_s() * 1e9,
        mlp.macs_per_inference()
    );
    let ledger = pdnn.energy_ledger();
    println!(
        "engine energy ledger after {} inferences:\n{ledger}",
        test.len()
    );

    assert!(
        photonic_acc >= digital_acc - 0.1,
        "photonic inference must track digital accuracy"
    );
    println!("\nphotonic inference tracks digital accuracy — §4 mitigation works.");
}
