//! Serving walkthrough: stand up the serving runtime over a metro
//! deployment and watch two tenants share the photonic substrate.
//!
//! Run with: `cargo run --example serving`

use ofpc_core::OnFiberNetwork;
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_serve::{ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, TenantSpec};
use ofpc_transponder::compute::ComputeTransponderConfig;

fn main() {
    // 1. A three-site metro line with 10 km spans; photonic compute
    //    transponders plugged into the two downstream sites.
    let mut system = OnFiberNetwork::new(Topology::line(3, 10.0), 42);
    system.upgrade_site(NodeId(1), 1);
    system.upgrade_site(NodeId(2), 1);

    // 2. Two tenants share the substrate: a steady inference service
    //    (weight 3) and a bursty analytics job (weight 1). Arrivals are
    //    open-loop — they come whether or not the system keeps up.
    let config = ServeConfig {
        seed: 42,
        horizon_ps: 2_000_000_000, // 2 ms of arrivals
        drain_grace_ps: 1_000_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000, // close partial batches after 5 µs
        },
        tenants: vec![
            TenantSpec {
                name: "inference".to_string(),
                weight: 3,
                queue_capacity: 96,
                arrivals: ArrivalSpec::Poisson { rate_rps: 8e6 },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 2_000_000_000,
            },
            TenantSpec {
                name: "analytics".to_string(),
                weight: 1,
                queue_capacity: 32,
                arrivals: ArrivalSpec::Mmpp {
                    calm_rps: 2e6,
                    burst_rps: 18e6,
                    mean_calm_s: 200e-6,
                    mean_burst_s: 50e-6,
                },
                primitive: Primitive::VectorDotProduct,
                operand_len: 2048,
                deadline_ps: 2_000_000_000,
            },
        ],
        verify_every: 64,
    };

    // 3. The runtime derives compute sites and access delays from the
    //    deployed network, batches compatible requests onto WDM
    //    channels, dispatches earliest-deadline-first, and sheds
    //    explicitly when overloaded.
    let runtime = ServeRuntime::over_network(
        &system,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        4, // WDM channels per batch pass
        config,
    );
    let report = runtime.run();

    println!(
        "offered {:.2} M req/s  goodput {:.2} M req/s  shed {:.1}%",
        report.offered_rps / 1e6,
        report.goodput_rps / 1e6,
        report.shed_rate * 100.0
    );
    println!(
        "latency p50/p99/p999: {:.0}/{:.0}/{:.0} µs   batches {} (occupancy {:.2})",
        report.p50_latency_us.unwrap_or(f64::NAN),
        report.p99_latency_us.unwrap_or(f64::NAN),
        report.p999_latency_us.unwrap_or(f64::NAN),
        report.batches,
        report.mean_batch_occupancy
    );
    println!(
        "energy {:.2} nJ/request   engine cross-checks: {} (mean |err| {:.3})",
        report.joules_per_completed * 1e9,
        report.verified_samples,
        report.verify_mean_abs_error
    );
    for t in &report.tenants {
        println!(
            "tenant {:?}: {} arrivals, {} completed ({:.2} M req/s), {} shed",
            t.tenant,
            t.arrivals,
            t.completed,
            t.goodput_rps / 1e6,
            t.shed_queue_full + t.shed_expired_queued + t.shed_expired_serving
        );
    }

    // Conservation: every arrival ends somewhere.
    assert_eq!(
        report.arrivals,
        report.completed + report.shed + report.unfinished
    );
}
