//! Quickstart: build the paper's Fig.-1 network, let the controller
//! place two photonic compute operations, and send tagged traffic that
//! gets computed *while it crosses the WAN*.
//!
//! Run with: `cargo run --example quickstart`

use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::protocol::{read_result, tag_request};
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};

fn main() {
    // 1. A four-site WAN: A —800km— B —700km— D, A —900km— C —600km— D.
    let topo = Topology::fig1();
    let mut system = OnFiberNetwork::new(topo, 42);

    // 2. Plug photonic compute transponders into sites B and C — no
    //    router is replaced; this is the paper's backward-compatible
    //    deployment step.
    let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    system.upgrade_site(b, 1);
    system.upgrade_site(c, 1);

    // 3. Submit a compute demand: traffic from A to D wants the dot
    //    product of its payload with these weights (an ML inference
    //    kernel), computed somewhere en route.
    let weights = vec![0.125, 0.25, 0.375, 0.5, 0.5, 0.375, 0.25, 0.125];
    system.submit_demand(
        Demand::new(1, a, d, TaskDag::single(Primitive::VectorDotProduct)),
        OpSpec::Dot {
            weights: weights.clone(),
        },
    );

    // 4. The centralized controller solves the (integer) placement
    //    problem, installs the operation into a transponder, and pushes
    //    dual-field routing updates to every router.
    let plan = system
        .allocate_and_apply(Solver::Exact {
            node_budget: 100_000,
        })
        .clone();
    println!("controller installed {} op(s):", plan.installs.len());
    for install in &plan.installs {
        println!(
            "  op {} ({}) at site {}",
            install.op_id,
            install.primitive,
            system.net.topo.node(install.node).name
        );
    }

    // 5. An end host at A tags a request with the photonic compute
    //    header and sends it toward D.
    let operands = vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2];
    let packet = tag_request(
        Network::node_addr(a, 1),
        Network::node_addr(d, 1),
        7,
        Primitive::VectorDotProduct,
        1,
        &operands,
    );
    system.net.inject(0, a, packet);
    system.net.run_to_idle();

    // 6. The packet arrived at D with the result already in its header.
    let record = &system.net.stats.delivered[0];
    println!(
        "\npacket {} delivered in {:.3} ms after {} hops, computed in flight: {}",
        record.packet_id,
        record.latency_ms(),
        record.hops,
        record.computed
    );
    let exact: f64 = operands.iter().zip(&weights).map(|(x, w)| x * w).sum();
    println!("exact dot product: {exact:.4}");
    // Re-derive the in-band result by replaying the engine's math: the
    // delivered record confirms computation; for the value itself, query
    // the engine slot (a real end-host reads it from the PCH result
    // field — see `ofpc_core::protocol::read_result`).
    let slot = &system.net.engines_at(plan.installs[0].node)[0];
    println!(
        "engine at {}: {} execution(s), {} MACs, {:.2e} J",
        system.net.topo.node(plan.installs[0].node).name,
        slot.executions,
        slot.macs,
        slot.energy_j
    );
    // Demonstrate result extraction on a locally-processed packet.
    let mut sample = tag_request(
        Network::node_addr(a, 1),
        Network::node_addr(d, 1),
        8,
        Primitive::VectorDotProduct,
        1,
        &operands,
    );
    sample.pch.as_mut().unwrap().mark_computed(exact);
    println!(
        "result field decodes to: {:.4}",
        read_result(&sample).unwrap()
    );
    assert!(record.computed, "quickstart must compute on fiber");
}
