//! Compile a multi-stage DNN inference workload onto the on-fiber
//! substrate with the `ofpc-graph` workload compiler: build the
//! dataflow IR from a trained-shape MLP, lower it under a precision
//! budget, place its stages on engine sites along the Fig.-1 WAN,
//! pipeline requests across WDM wavelengths, and survive an engine
//! failure with partial digital fallback.
//!
//! Run with: `cargo run --example dnn_inference`

use ofpc_engine::dnn::Mlp;
use ofpc_faults::{FaultEvent, FaultKind, FaultPlan};
use ofpc_graph::exec::{ExecConfig, ExecMode};
use ofpc_graph::lower::LowerConfig;
use ofpc_graph::{compile, ir};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

fn main() {
    // 1. The workload: a 3-layer MLP, expressed as a dataflow graph.
    //    Hidden layers tolerate 4 effective bits, the output layer
    //    (where classification margins live) demands 6.
    let mut rng = SimRng::seed_from_u64(16);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    let graph = ir::dnn_graph(&mlp, 4.0, 6.0);
    println!(
        "IR: {} ops, {} MACs per request",
        graph.nodes.len(),
        graph.total_macs()
    );

    // 2. Compile: precision-driven partitioning, stage fusion,
    //    controller placement on the Fig.-1 WAN (compute sites at B and
    //    C), and WDM wavelength assignment. `metro()` is the realistic
    //    deployment: 40 dB receiver budget, realistic transponder
    //    prices, an edge-SoC DSP as the digital fallback.
    let executor = compile(
        &graph,
        &LowerConfig::metro(),
        &Topology::fig1(),
        &[0, 2, 2, 0],
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("DNN compiles onto fig1");
    let placed = executor.placed();
    for b in &placed.bindings {
        let s = &placed.plan.stages[b.stage];
        println!(
            "stage {}: {:<14} on node {} wavelength {} ({:.1} ns service)",
            b.stage,
            s.label,
            b.node.0,
            b.wavelength,
            s.service_ps as f64 * 1e-3,
        );
    }

    // 3. Execute 64 back-to-back requests both ways. Pipelined, stage
    //    k+1 of request i overlaps stage k of request i+1 on a
    //    different wavelength of the same fiber.
    let run = |mode| {
        executor.run(&ExecConfig {
            requests: 64,
            inter_arrival_ps: 0,
            mode,
        })
    };
    let pipe = run(ExecMode::Pipelined);
    let seq = run(ExecMode::Sequential);
    println!(
        "pipelined:  {:>6.0} req/s, {:.1} ms mean latency, {:.2} nJ/req",
        pipe.throughput_rps,
        pipe.mean_latency_ps as f64 * 1e-9,
        pipe.energy_per_request_j * 1e9,
    );
    println!(
        "sequential: {:>6.0} req/s, {:.1} ms mean latency, {:.2} nJ/req",
        seq.throughput_rps,
        seq.mean_latency_ps as f64 * 1e-9,
        seq.energy_per_request_j * 1e9,
    );
    println!(
        "pipelining gain: {:.1}x at equal energy",
        pipe.throughput_rps / seq.throughput_rps
    );

    // 4. Fault-aware re-lowering: an engine hard-fail at one placed
    //    site sends only that site's stages to the digital fallback.
    let mut faulty = executor.clone();
    let victim = faulty.placed().photonic_sites()[0];
    faulty.apply_faults(&FaultPlan {
        events: vec![FaultEvent {
            at_ps: 0,
            kind: FaultKind::EngineFail { node: victim },
        }],
    });
    let degraded = faulty.run(&ExecConfig {
        requests: 64,
        inter_arrival_ps: 0,
        mode: ExecMode::Pipelined,
    });
    println!(
        "after engine fail at node {}: {} of {} stages digital, {:.2} nJ/req",
        victim.0,
        degraded.digital_stages,
        degraded.stages,
        degraded.energy_per_request_j * 1e9,
    );
}
