//! The centralized controller at WAN scale: 24 compute demands over the
//! Abilene backbone, solved three ways (exact / LP-rounding / greedy),
//! then an incremental-deployment sweep — the operational view of the
//! paper's §3 controller and §5 scalability discussion.
//!
//! Run with: `cargo run --release --example wan_controller`

use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::deployment::{deployment_sweep, upgrade_order_by_degree};
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_net::sim::OpSpec;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

fn demands(topo: &Topology, n: usize, seed: u64) -> Vec<Demand> {
    let mut rng = SimRng::seed_from_u64(seed);
    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    (0..n)
        .map(|i| {
            let src = NodeId(rng.below(topo.node_count()) as u32);
            let mut dst = src;
            while dst == src {
                dst = NodeId(rng.below(topo.node_count()) as u32);
            }
            Demand::new(i as u32, src, dst, TaskDag::single(prims[rng.below(3)]))
        })
        .collect()
}

fn op_spec(_op: u16, prim: Primitive) -> OpSpec {
    match prim {
        Primitive::VectorDotProduct => OpSpec::Dot {
            weights: vec![0.5; 16],
        },
        Primitive::PatternMatching => OpSpec::Match {
            pattern: vec![true; 16],
        },
        Primitive::NonlinearFunction => OpSpec::Nonlinear,
    }
}

fn main() {
    let topo = Topology::abilene();
    println!(
        "Abilene: {} sites, {} fiber links\n",
        topo.node_count(),
        topo.link_count()
    );

    // Solve the same 24-demand workload with each solver.
    for (name, solver) in [
        (
            "exact B&B",
            Solver::Exact {
                node_budget: 2_000_000,
            },
        ),
        ("LP + rounding", Solver::LpRounding { trials: 20 }),
        ("greedy", Solver::Greedy),
    ] {
        let mut system = OnFiberNetwork::new(Topology::abilene(), 1);
        // Upgrade the four highest-degree hubs with 4 transponders each.
        let order = upgrade_order_by_degree(&system.net.topo);
        for &site in &order[..4] {
            system.upgrade_site(site, 4);
        }
        for d in demands(&system.net.topo, 24, 5) {
            let prim = d.dag.linearize().unwrap()[0];
            system.submit_demand(d, op_spec(0, prim));
        }
        let plan = system.allocate_and_apply(solver);
        println!(
            "{name:>14}: {} / 24 demands satisfied, {} installs, {} route overrides",
            24 - plan.unsatisfied.len(),
            plan.installs.len(),
            plan.overrides.len()
        );
    }

    // Incremental deployment: how coverage grows as sites are upgraded.
    println!("\nincremental deployment (hubs first, 8 slots/site):");
    let order = upgrade_order_by_degree(&topo);
    let sweep = deployment_sweep(&topo, &order, 8, &demands(&topo, 24, 5));
    for p in sweep.iter().step_by(2) {
        let bar = "#".repeat(p.satisfied);
        println!(
            "  {:>2} sites ({:>3.0}%): {:<24} {} / {}  (+{:.2} ms detour)",
            p.upgraded_sites,
            100.0 * p.fraction,
            bar,
            p.satisfied,
            p.total_demands,
            p.mean_added_latency_ms
        );
    }
}
