//! Distributed on-fiber photonic computing (§5): a dot product too large
//! for one transponder is split across three sites on the path, each
//! accumulating its partial result into the packet's compute header —
//! the packet arrives with the complete answer, and no single site ever
//! held the whole model.
//!
//! Run with: `cargo run --example distributed_inference`

use ofpc_core::distributed::install_distributed_dot;
use ofpc_core::protocol::tag_request;
use ofpc_engine::Primitive;
use ofpc_net::sim::Network;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

fn main() {
    // A 5-site line: src — t1 — t2 — t3 — dst, 300 km spans.
    let mut net = Network::new(Topology::line(5, 300.0), SimRng::seed_from_u64(7));
    net.install_shortest_path_routes();
    let src = NodeId(0);
    let dst = NodeId(4);
    let sites = [NodeId(1), NodeId(2), NodeId(3)];

    // A 48-element classifier row, too big for one engine slot in this
    // story: the controller splits it three ways along the path.
    let weights: Vec<f64> = (0..48).map(|i| ((i * 7) % 16) as f64 / 16.0).collect();
    let plan = install_distributed_dot(
        &mut net,
        &sites,
        100,
        &weights,
        Network::node_prefix(dst),
        0.0,
    );
    println!("distributed plan (entry op {}):", plan.entry_op);
    for &(site, op, offset, len) in &plan.parts {
        println!(
            "  site n{}: op {op}, weights[{offset}..{}]",
            site.0,
            offset + len
        );
    }

    // An end host tags a request with the *first* part's op id; routing
    // and the engines handle the rest.
    let operands: Vec<f64> = (0..48).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
    let exact: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
    let p = tag_request(
        Network::node_addr(src, 1),
        Network::node_addr(dst, 1),
        1,
        Primitive::VectorDotProduct,
        plan.entry_op,
        &operands,
    );
    net.inject(0, src, p);
    net.run_to_idle();

    let rec = &net.stats.delivered[0];
    println!(
        "\npacket delivered in {:.3} ms after {} hops, computed: {}",
        rec.latency_ms(),
        rec.hops,
        rec.computed
    );
    for &site in &sites {
        let slot = &net.engines_at(site)[0];
        println!(
            "  engine n{}: {} MACs, {:.2e} J",
            site.0, slot.macs, slot.energy_j
        );
    }
    println!("exact dot product: {exact:.4} (accumulated in the PCH en route)");
    assert!(rec.computed);
    assert_eq!(rec.hops, 4, "straight down the line, no detours");
}
