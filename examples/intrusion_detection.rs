//! Line-rate intrusion detection on fiber (Table 1, C2): a photonic
//! sliding correlator scans payloads for attack signatures while they
//! traverse the transponder, cross-checked against a from-scratch
//! Aho–Corasick baseline (the server-side engine it displaces).
//!
//! Run with: `cargo run --release --example intrusion_detection`

use ofpc_apps::intrusion::{synthesize_traffic, AhoCorasick, PhotonicIds};
use ofpc_photonics::SimRng;

fn main() {
    let signatures: Vec<Vec<u8>> = vec![
        b"GETSHELL".to_vec(),
        b"EVILBYTES".to_vec(),
        b"\xde\xad\xbe\xef".to_vec(),
        b"DROP TABLE".to_vec(),
    ];
    println!("signature set: {} patterns", signatures.len());

    // Synthetic traffic with planted attacks.
    let mut rng = SimRng::seed_from_u64(7);
    let (payloads, truth) = synthesize_traffic(200, 256, &signatures, 0.3, &mut rng);
    let planted: usize = truth.values().map(|v| v.len()).sum();
    println!(
        "traffic: {} payloads of 256 B, {planted} planted signatures\n",
        payloads.len()
    );

    // Digital baseline.
    let mut ac = AhoCorasick::new(&signatures);
    let mut ac_hits = 0usize;
    for p in &payloads {
        ac_hits += ac.scan(p).len();
    }

    // Photonic correlator at the transponder.
    let mut ids = PhotonicIds::ideal(&signatures);
    let mut ids_hits = 0usize;
    let mut disagreements = 0usize;
    let mut detected_planted = 0usize;
    for (i, p) in payloads.iter().enumerate() {
        let hits = ids.scan(p);
        ids_hits += hits.len();
        let mut ac2 = AhoCorasick::new(&signatures);
        if hits != ac2.scan(p) {
            disagreements += 1;
        }
        if let Some(expected) = truth.get(&i) {
            detected_planted += expected.iter().filter(|e| hits.contains(e)).count();
        }
    }

    println!("Aho–Corasick hits:      {ac_hits}");
    println!("photonic correlator:    {ids_hits}");
    println!("payload disagreements:  {disagreements}");
    println!("planted detected:       {detected_planted}/{planted}");
    println!(
        "\nline-rate scan of a 1500 B packet against the set: {:.2} µs of optical time",
        ids.scan_latency_s(1500) * 1e6
    );

    assert_eq!(disagreements, 0, "photonic and digital engines must agree");
    assert_eq!(detected_planted, planted, "every planted signature found");
    println!(
        "\nphotonic IDS matches Aho–Corasick exactly on all {} payloads.",
        payloads.len()
    );
}
