//! Workspace root crate: see `examples/` and `tests/`.
